(* Cfgir: CFG recovery, dominators, loops, Freq. *)

module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Program = Mote_isa.Program
module Cfg = Cfgir.Cfg
module Freq = Cfgir.Freq

(* Diamond: entry branches to two arms that rejoin and return.
     B0: cmp, br -> B2 (taken) | B1 (fall)
     B1: movi, jmp B3
     B2: movi (falls into B3)
     B3: ret *)
let diamond_items =
  [
    Asm.Proc "f";
    Asm.cmpi 0 0;
    Asm.br Isa.Eq "arm2";
    Asm.movi 1 10;
    Asm.jmp "join";
    Asm.Label "arm2";
    Asm.movi 1 20;
    Asm.Label "join";
    Asm.ret;
  ]

let diamond () =
  let p = Asm.assemble diamond_items in
  Cfg.of_proc_name p "f"

(* Loop: while-style top-test loop. *)
let loop_items =
  [
    Asm.Proc "g";
    Asm.movi 0 5;
    Asm.Label "head";
    Asm.cmpi 0 0;
    Asm.br Isa.Le "exit";
    Asm.subi 0 0 1;
    Asm.jmp "head";
    Asm.Label "exit";
    Asm.ret;
  ]

let loop_cfg () =
  let p = Asm.assemble loop_items in
  Cfg.of_proc_name p "g"

let test_diamond_structure () =
  let cfg = diamond () in
  Alcotest.(check int) "blocks" 4 (Cfg.num_blocks cfg);
  (match (Cfg.block cfg 0).Cfg.term with
  | Cfg.T_branch (Isa.Eq, 2, 1) -> ()
  | _ -> Alcotest.fail "entry terminator");
  (match (Cfg.block cfg 1).Cfg.term with
  | Cfg.T_jump 3 -> ()
  | _ -> Alcotest.fail "arm1 jump");
  (match (Cfg.block cfg 2).Cfg.term with
  | Cfg.T_fall 3 -> ()
  | _ -> Alcotest.fail "arm2 fall");
  match (Cfg.block cfg 3).Cfg.term with
  | Cfg.T_ret -> ()
  | _ -> Alcotest.fail "join ret"

let test_diamond_edges () =
  let cfg = diamond () in
  Alcotest.(check int) "edge count" 4 (List.length (Cfg.edges cfg));
  Alcotest.(check (list int)) "preds of join" [ 1; 2 ] cfg.Cfg.preds.(3);
  Alcotest.(check (list int)) "branch blocks" [ 0 ] (Cfg.branch_blocks cfg);
  Alcotest.(check (list int)) "exit blocks" [ 3 ] (Cfg.exit_blocks cfg)

let test_diamond_is_dag () =
  let cfg = diamond () in
  Alcotest.(check bool) "dag" true (Cfg.is_dag cfg);
  Alcotest.(check (list (pair int int))) "no back edges" [] (Cfg.back_edges cfg)

let test_diamond_dominators () =
  let cfg = diamond () in
  let dom = Cfg.dominators cfg in
  Alcotest.(check (list int)) "entry" [ 0 ] dom.(0);
  Alcotest.(check (list int)) "arm1" [ 0; 1 ] dom.(1);
  Alcotest.(check (list int)) "join dominated only by entry" [ 0; 3 ] dom.(3)

let test_loop_detection () =
  let cfg = loop_cfg () in
  Alcotest.(check bool) "not a dag" false (Cfg.is_dag cfg);
  (* Back edge from the jmp block to the loop header (block 1). *)
  (match Cfg.back_edges cfg with
  | [ (_, header) ] -> Alcotest.(check int) "header" 1 header
  | _ -> Alcotest.fail "expected exactly one back edge");
  Alcotest.(check (list int)) "headers" [ 1 ] (Cfg.loop_headers cfg)

let test_block_costs () =
  let cfg = diamond () in
  (* Entry: cmpi(1) + br(1) = 2 cycles. *)
  Alcotest.(check int) "entry cost" 2 (Cfg.block cfg 0).Cfg.base_cost;
  (* Arm1: movi(1) + jmp(1). *)
  Alcotest.(check int) "arm1 cost" 2 (Cfg.block cfg 1).Cfg.base_cost;
  (* Join: ret(2). *)
  Alcotest.(check int) "join cost" 2 (Cfg.block cfg 3).Cfg.base_cost

let test_callees () =
  let p =
    Asm.assemble
      [
        Asm.Proc "f"; Asm.call "h"; Asm.call "h"; Asm.ret; Asm.Proc "h"; Asm.ret;
      ]
  in
  let cfg = Cfg.of_proc_name p "f" in
  Alcotest.(check (list string)) "callees" [ "h"; "h" ] (Cfg.block cfg 0).Cfg.callees

let test_escaping_branch_rejected () =
  let p =
    Asm.assemble
      [ Asm.Proc "f"; Asm.cmpi 0 0; Asm.br Isa.Eq "target"; Asm.ret; Asm.Proc "g"; Asm.Label "target"; Asm.ret ]
  in
  Alcotest.(check bool) "malformed" true
    (match Cfg.of_proc_name p "f" with
    | _ -> false
    | exception Cfg.Malformed _ -> true)

let test_reachability () =
  (* Dead block after ret. *)
  let p =
    Asm.assemble [ Asm.Proc "f"; Asm.ret; Asm.movi 0 1; Asm.ret ]
  in
  let cfg = Cfg.of_proc_name p "f" in
  let r = Cfg.reachable cfg in
  Alcotest.(check bool) "entry reachable" true r.(0);
  Alcotest.(check bool) "dead block" false r.(1)

let test_lower_bound () =
  let cfg = diamond () in
  (* Cheapest path: entry(2) + taken penalty(2) + arm2(1) + join(2) + ret penalty(2) = 9;
     via arm1: 2 + arm1(2) + jump penalty(2) + 2 + 2 = 10. *)
  Alcotest.(check int) "lower bound" 9 (Cfg.total_cost_lower_bound cfg)

let test_to_dot () =
  let dot = Cfg.to_dot (diamond ()) in
  Alcotest.(check bool) "has digraph" true (String.length dot > 20);
  Alcotest.(check bool) "has edges" true
    (String.split_on_char '\n' dot |> List.exists (fun l -> String.length l > 2))

let test_of_program () =
  let p =
    Asm.assemble [ Asm.Proc "a"; Asm.ret; Asm.Proc "b"; Asm.ret ]
  in
  Alcotest.(check int) "two cfgs" 2 (List.length (Cfg.of_program p))

(* --- Freq --- *)

let test_freq_basic () =
  let cfg = diamond () in
  let f = Freq.create cfg ~invocations:10.0 in
  Freq.bump f ~src:0 ~dst:2 ~kind:Cfg.K_taken 7.0;
  Freq.bump f ~src:0 ~dst:1 ~kind:Cfg.K_fall 3.0;
  Freq.bump f ~src:1 ~dst:3 ~kind:Cfg.K_jump 3.0;
  Freq.bump f ~src:2 ~dst:3 ~kind:Cfg.K_fall 7.0;
  Alcotest.(check (float 1e-9)) "taken prob" 0.7 (Freq.taken_probability f 0);
  let visits = Freq.block_visits f in
  Alcotest.(check (float 1e-9)) "entry visits" 10.0 visits.(0);
  Alcotest.(check (float 1e-9)) "join visits" 10.0 visits.(3);
  Alcotest.(check (array (float 1e-9))) "theta vector" [| 0.7 |] (Freq.theta_vector f)

let test_freq_unknown_edge () =
  let cfg = diamond () in
  let f = Freq.create cfg ~invocations:1.0 in
  Alcotest.(check bool) "bad edge rejected" true
    (match Freq.bump f ~src:3 ~dst:0 ~kind:Cfg.K_jump 1.0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_freq_default_theta () =
  let cfg = diamond () in
  let f = Freq.create cfg ~invocations:0.0 in
  Alcotest.(check (float 1e-9)) "unvisited branch is 0.5" 0.5 (Freq.taken_probability f 0)

let test_freq_scale () =
  let cfg = diamond () in
  let f = Freq.create cfg ~invocations:10.0 in
  Freq.bump f ~src:0 ~dst:2 ~kind:Cfg.K_taken 4.0;
  let half = Freq.scale f 0.5 in
  Alcotest.(check (float 1e-9)) "scaled invocations" 5.0 (Freq.invocations half);
  Alcotest.(check (float 1e-9)) "scaled weight" 2.0
    (Freq.get half ~src:0 ~dst:2 ~kind:Cfg.K_taken);
  let unit = Freq.per_invocation f in
  Alcotest.(check (float 1e-9)) "per invocation" 0.4
    (Freq.get unit ~src:0 ~dst:2 ~kind:Cfg.K_taken)

let test_freq_non_branch_theta () =
  let cfg = diamond () in
  let f = Freq.create cfg ~invocations:1.0 in
  Alcotest.(check bool) "non-branch rejected" true
    (match Freq.taken_probability f 1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "diamond structure" `Quick test_diamond_structure;
    Alcotest.test_case "diamond edges" `Quick test_diamond_edges;
    Alcotest.test_case "diamond is dag" `Quick test_diamond_is_dag;
    Alcotest.test_case "diamond dominators" `Quick test_diamond_dominators;
    Alcotest.test_case "loop detection" `Quick test_loop_detection;
    Alcotest.test_case "block costs" `Quick test_block_costs;
    Alcotest.test_case "callees" `Quick test_callees;
    Alcotest.test_case "escaping branch" `Quick test_escaping_branch_rejected;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "lower bound" `Quick test_lower_bound;
    Alcotest.test_case "to_dot" `Quick test_to_dot;
    Alcotest.test_case "of_program" `Quick test_of_program;
    Alcotest.test_case "freq basic" `Quick test_freq_basic;
    Alcotest.test_case "freq unknown edge" `Quick test_freq_unknown_edge;
    Alcotest.test_case "freq default theta" `Quick test_freq_default_theta;
    Alcotest.test_case "freq scale" `Quick test_freq_scale;
    Alcotest.test_case "freq non-branch theta" `Quick test_freq_non_branch_theta;
  ]

(* --- Profile_io persistence --- *)

module Pio = Cfgir.Profile_io

let persisted_pair () =
  let program = Mote_isa.Asm.assemble diamond_items in
  let cfg = Cfg.of_proc_name program "f" in
  let f = Freq.create cfg ~invocations:10.0 in
  Freq.bump f ~src:0 ~dst:2 ~kind:Cfg.K_taken 7.0;
  Freq.bump f ~src:0 ~dst:1 ~kind:Cfg.K_fall 3.0;
  Freq.bump f ~src:1 ~dst:3 ~kind:Cfg.K_jump 3.0;
  Freq.bump f ~src:2 ~dst:3 ~kind:Cfg.K_fall 7.0;
  (cfg, f)

let test_profile_io_roundtrip () =
  let cfg, f = persisted_pair () in
  let text = Pio.to_string [ ("f", f) ] in
  let restored = Pio.of_string ~lookup:(fun _ -> Some cfg) text in
  match restored with
  | [ ("f", g) ] ->
      Alcotest.(check (float 1e-6)) "invocations" 10.0 (Freq.invocations g);
      List.iter2
        (fun (_, a) (_, b) -> Alcotest.(check (float 1e-6)) "weight" a b)
        (Freq.weights f) (Freq.weights g)
  | _ -> Alcotest.fail "expected one profile"

let test_profile_io_file_roundtrip () =
  let cfg, f = persisted_pair () in
  let path = Filename.temp_file "codetomo" ".prof" in
  Pio.save ~path [ ("f", f) ];
  let restored = Pio.load ~path ~lookup:(fun _ -> Some cfg) in
  Sys.remove path;
  Alcotest.(check int) "one profile" 1 (List.length restored)

let test_profile_io_unknown_proc_skipped () =
  let cfg, f = persisted_pair () in
  let text = Pio.to_string [ ("f", f) ] in
  ignore cfg;
  Alcotest.(check int) "skipped" 0 (List.length (Pio.of_string ~lookup:(fun _ -> None) text))

let test_profile_io_stale_detected () =
  let _, f = persisted_pair () in
  let text = Pio.to_string [ ("f", f) ] in
  (* Attach to a structurally different CFG (the loop program, 3 blocks). *)
  let other = Cfg.of_proc_name (Mote_isa.Asm.assemble loop_items) "g" in
  Alcotest.(check bool) "stale rejected" true
    (match Pio.of_string ~lookup:(fun _ -> Some other) text with
    | _ -> false
    | exception Pio.Format_error _ -> true)

let test_profile_io_syntax_errors () =
  let bad text =
    match Pio.of_string ~lookup:(fun _ -> None) text with
    | _ -> false
    | exception Pio.Format_error _ -> true
  in
  Alcotest.(check bool) "missing header" true (bad "proc f blocks 2 invocations 1\n");
  Alcotest.(check bool) "garbage line" true (bad "codetomo-profile 1\nwat\n");
  Alcotest.(check bool) "edge before proc" true
    (bad "codetomo-profile 1\nedge 0 1 fall 1.0\n")

let suite =
  suite
  @ [
      Alcotest.test_case "profile io roundtrip" `Quick test_profile_io_roundtrip;
      Alcotest.test_case "profile io file" `Quick test_profile_io_file_roundtrip;
      Alcotest.test_case "profile io unknown proc" `Quick test_profile_io_unknown_proc_skipped;
      Alcotest.test_case "profile io stale" `Quick test_profile_io_stale_detected;
      Alcotest.test_case "profile io syntax" `Quick test_profile_io_syntax_errors;
    ]
