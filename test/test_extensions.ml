(* Tomo extensions (Confidence, Windowed, Planner) and the random program
   generator, including whole-stack property tests on generated code. *)

module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Cfg = Cfgir.Cfg
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices
module Compile = Mote_lang.Compile

(* Diamond model shared with test_tomo (rebuilt here to keep modules
   independent). *)
let diamond_model () =
  let p =
    Asm.assemble
      [
        Asm.Proc "f"; Asm.cmpi 0 0; Asm.br Isa.Eq "arm2"; Asm.movi 1 1; Asm.movi 1 2;
        Asm.movi 1 3; Asm.jmp "join"; Asm.Label "arm2"; Asm.movi 1 9; Asm.Label "join";
        Asm.ret;
      ]
  in
  Tomo.Model.of_cfg ~call_residual:0 ~window_correction:0 (Cfg.of_proc_name p "f")

let synth_samples ?(n = 2000) theta seed =
  let m = diamond_model () in
  let p = Tomo.Paths.enumerate m in
  let rng = Stats.Rng.create seed in
  (p, Tomo.Paths.sample_costs rng p ~theta:[| theta |] ~n)

(* --- Confidence --- *)

let test_ci_contains_truth () =
  let paths, samples = synth_samples 0.4 5 in
  let point = (Tomo.Em.estimate paths ~samples).Tomo.Em.theta in
  let ci =
    Tomo.Confidence.bootstrap (Stats.Rng.create 1) paths ~samples ~point
  in
  Alcotest.(check bool) "interval contains truth" true (Tomo.Confidence.contains ci 0 0.4);
  Alcotest.(check bool) "interval is narrow" true
    (Tomo.Confidence.width ci.Tomo.Confidence.intervals.(0) < 0.1)

let test_ci_shrinks_with_samples () =
  let paths, small = synth_samples ~n:100 0.4 6 in
  let _, large = synth_samples ~n:4000 0.4 7 in
  let width samples =
    let point = (Tomo.Em.estimate paths ~samples).Tomo.Em.theta in
    let ci =
      Tomo.Confidence.bootstrap ~replicates:60 (Stats.Rng.create 2) paths ~samples ~point
    in
    Tomo.Confidence.width ci.Tomo.Confidence.intervals.(0)
  in
  Alcotest.(check bool) "more data, tighter interval" true (width large < width small)

let test_ci_empty_samples () =
  let paths, _ = synth_samples 0.5 8 in
  Alcotest.(check bool) "empty rejected" true
    (match
       Tomo.Confidence.bootstrap (Stats.Rng.create 1) paths ~samples:[||] ~point:[| 0.5 |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Windowed --- *)

let test_windowed_stationary () =
  let paths, samples = synth_samples ~n:1000 0.3 9 in
  let w = Tomo.Windowed.estimate ~window_size:250 paths ~samples in
  Alcotest.(check int) "four windows" 4 (List.length w.Tomo.Windowed.windows);
  Alcotest.(check bool) "no drift" false (Tomo.Windowed.drifted w);
  Alcotest.(check bool) "final theta close" true
    (abs_float ((Tomo.Windowed.final_theta w).(0) -. 0.3) < 0.07)

let test_windowed_detects_shift () =
  let m = diamond_model () in
  let paths = Tomo.Paths.enumerate m in
  let rng = Stats.Rng.create 10 in
  let early = Tomo.Paths.sample_costs rng paths ~theta:[| 0.9 |] ~n:600 in
  let late = Tomo.Paths.sample_costs rng paths ~theta:[| 0.1 |] ~n:600 in
  let w = Tomo.Windowed.estimate ~window_size:200 paths ~samples:(Array.append early late) in
  Alcotest.(check bool) "drift detected" true (Tomo.Windowed.drifted w);
  Alcotest.(check bool) "big drift" true (w.Tomo.Windowed.max_drift > 0.5)

let test_windowed_tail_folding () =
  let paths, samples = synth_samples ~n:420 0.5 11 in
  (* 420 = 2 full windows of 200 + tail 20 (< 50): folded into the last. *)
  let w = Tomo.Windowed.estimate ~window_size:200 paths ~samples in
  Alcotest.(check int) "two windows" 2 (List.length w.Tomo.Windowed.windows);
  let last = List.nth w.Tomo.Windowed.windows 1 in
  Alcotest.(check int) "second window start" 200 last.Tomo.Windowed.first_sample

let test_windowed_too_few () =
  let paths, samples = synth_samples ~n:10 0.5 12 in
  Alcotest.(check bool) "too few samples rejected" true
    (match Tomo.Windowed.estimate ~window_size:100 paths ~samples with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Planner --- *)

let test_planner_scaling () =
  let paths, samples = synth_samples ~n:500 0.4 13 in
  let plan = Tomo.Planner.plan (Stats.Rng.create 3) paths ~samples ~target_se:1e-4 in
  Alcotest.(check bool) "needs more samples for tiny target" true
    (plan.Tomo.Planner.samples_needed > 500);
  let generous = Tomo.Planner.plan (Stats.Rng.create 3) paths ~samples ~target_se:0.5 in
  Alcotest.(check int) "already met" 500 generous.Tomo.Planner.samples_needed

let test_planner_bad_target () =
  let paths, samples = synth_samples ~n:100 0.4 14 in
  Alcotest.(check bool) "non-positive target rejected" true
    (match Tomo.Planner.plan (Stats.Rng.create 1) paths ~samples ~target_se:0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Fit --- *)

let test_fit_good_model () =
  let paths, samples = synth_samples ~n:2000 0.35 20 in
  let theta = (Tomo.Em.estimate paths ~samples).Tomo.Em.theta in
  let fit = Tomo.Fit.check paths ~theta ~samples in
  Alcotest.(check bool)
    (Format.asprintf "good fit accepted (%a)" Tomo.Fit.pp fit)
    true (Tomo.Fit.acceptable fit);
  Alcotest.(check (float 1e-9)) "nothing unexplained" 0.0 fit.Tomo.Fit.unexplained_mass

let test_fit_detects_outliers () =
  let paths, samples = synth_samples ~n:500 0.35 21 in
  (* Contaminate with samples no path can produce (an unmodelled code
     path adding ~40 cycles). *)
  let contaminated = Array.map (fun s -> s +. 40.0) (Array.sub samples 0 50) in
  let samples = Array.append samples contaminated in
  let theta = (Tomo.Em.estimate paths ~samples).Tomo.Em.theta in
  let fit = Tomo.Fit.check paths ~theta ~samples in
  Alcotest.(check bool)
    (Format.asprintf "outliers flagged (%a)" Tomo.Fit.pp fit)
    true
    (fit.Tomo.Fit.unexplained_mass > 0.05);
  Alcotest.(check bool) "fit rejected" false (Tomo.Fit.acceptable fit)

let test_fit_detects_wrong_theta () =
  let paths, samples = synth_samples ~n:2000 0.9 22 in
  let fit = Tomo.Fit.check paths ~theta:[| 0.1 |] ~samples in
  Alcotest.(check bool)
    (Format.asprintf "wrong theta rejected (%a)" Tomo.Fit.pp fit)
    false (Tomo.Fit.acceptable fit)

(* --- Generator: whole-stack properties --- *)

let generated_configs =
  List.map
    (fun seed -> { Workloads.Generator.default_config with Workloads.Generator.seed })
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_generated_programs_compile_and_run () =
  List.iter
    (fun config ->
      let program = Workloads.Generator.generate ~config () in
      let c = Compile.compile program in
      let devices = Devices.create () in
      let env = Env.create (Workloads.Generator.env_config ~seed:config.Workloads.Generator.seed) in
      Env.attach env devices;
      let m = Machine.create ~program:c.Compile.program ~devices () in
      ignore (Machine.run_proc m Compile.init_proc_name);
      for _ = 1 to 50 do
        ignore (Machine.run_proc m "gen_task")
      done;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d executed" config.Workloads.Generator.seed)
        true
        ((Machine.stats m).Machine.instructions > 0))
    generated_configs

let test_generated_rewrite_equivalence () =
  (* For random programs and random placements, the rewritten binary must
     produce identical outputs. *)
  let rng = Stats.Rng.create 2024 in
  List.iter
    (fun config ->
      let seed = config.Workloads.Generator.seed in
      let program = Workloads.Generator.generate ~config () in
      let c = Compile.compile program in
      let original = c.Compile.program in
      let run binary =
        let devices = Devices.create () in
        let env = Env.create (Workloads.Generator.env_config ~seed) in
        Env.attach env devices;
        let m = Machine.create ~program:binary ~devices () in
        ignore (Machine.run_proc m Compile.init_proc_name);
        for _ = 1 to 60 do
          ignore (Machine.run_proc m "gen_task")
        done;
        ( Devices.tx_log devices,
          Machine.read_mem m (Compile.var_address c ~proc:"gen_task" "out") )
      in
      let base = run original in
      let cfg = Cfg.of_proc_name original "gen_task" in
      let n = Cfg.num_blocks cfg in
      for _ = 1 to 3 do
        let rest = Array.init (n - 1) (fun i -> i + 1) in
        Stats.Rng.shuffle rng rest;
        let placement = Array.append [| 0 |] rest in
        let rewritten = Layout.Rewrite.program original ~placements:[ ("gen_task", placement) ] in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d equivalent under shuffle" seed)
          true
          (run rewritten = base)
      done)
    generated_configs

let test_generated_estimation_recovers_oracle () =
  (* End-to-end property: probes + EM recover the oracle's branch ratios on
     machine-generated programs.  Individual programs may contain
     equal-cost (timing-unidentifiable) arms, so per-program bounds are
     loose and the tight assertion is on the suite mean. *)
  let maes = ref [] in
  List.iter
    (fun config ->
      let seed = config.Workloads.Generator.seed in
      let program = Workloads.Generator.generate ~config () in
      let c = Compile.compile program in
      let instrumented = Asm.assemble (Profilekit.Probes.instrument c.Compile.items) in
      let devices = Devices.create () in
      let env = Env.create (Workloads.Generator.env_config ~seed:(seed + 100)) in
      Env.attach env devices;
      let m = Machine.create ~program:instrumented ~devices () in
      ignore (Machine.run_proc m Compile.init_proc_name);
      let oracle = Profilekit.Oracle.attach m in
      for _ = 1 to 1500 do
        ignore (Machine.run_proc m "gen_task")
      done;
      let samples =
        Profilekit.Probes.(samples_for (collect ~program:instrumented ~devices)) "gen_task"
      in
      let truth = Profilekit.Oracle.theta_vector oracle ~proc:"gen_task" in
      if Array.length truth > 0 then begin
        let model = Tomo.Model.of_cfg (Cfg.of_proc_name instrumented "gen_task") in
        match Tomo.Paths.enumerate ~max_paths:20_000 ~max_visits:10 model with
        | paths ->
            let r = Tomo.Em.estimate paths ~samples in
            let mae = Stats.Metrics.mae r.Tomo.Em.theta truth in
            maes := (seed, mae) :: !maes
        | exception Tomo.Paths.Too_complex _ -> ()
      end)
    generated_configs;
  (* Unidentifiable programs (all arms equal-cost) are counted but only the
     population statistics are asserted: most programs estimate well. *)
  let values = List.map snd !maes in
  let mean = List.fold_left ( +. ) 0.0 values /. float_of_int (max 1 (List.length values)) in
  let good = List.length (List.filter (fun m -> m < 0.1) values) in
  Alcotest.(check bool)
    (Printf.sprintf "suite mean mae %.3f < 0.2" mean)
    true (mean < 0.2);
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d programs under 0.1 MAE" good (List.length values))
    true
    (2 * good >= List.length values)

let test_generator_deterministic () =
  let a = Workloads.Generator.generate () in
  let b = Workloads.Generator.generate () in
  Alcotest.(check bool) "same program for same seed" true (a = b)

let suite =
  [
    Alcotest.test_case "ci contains truth" `Quick test_ci_contains_truth;
    Alcotest.test_case "ci shrinks" `Slow test_ci_shrinks_with_samples;
    Alcotest.test_case "ci empty" `Quick test_ci_empty_samples;
    Alcotest.test_case "windowed stationary" `Quick test_windowed_stationary;
    Alcotest.test_case "windowed detects shift" `Quick test_windowed_detects_shift;
    Alcotest.test_case "windowed tail folding" `Quick test_windowed_tail_folding;
    Alcotest.test_case "windowed too few" `Quick test_windowed_too_few;
    Alcotest.test_case "planner scaling" `Slow test_planner_scaling;
    Alcotest.test_case "planner bad target" `Quick test_planner_bad_target;
    Alcotest.test_case "fit good model" `Quick test_fit_good_model;
    Alcotest.test_case "fit detects outliers" `Quick test_fit_detects_outliers;
    Alcotest.test_case "fit detects wrong theta" `Quick test_fit_detects_wrong_theta;
    Alcotest.test_case "generated compile+run" `Quick test_generated_programs_compile_and_run;
    Alcotest.test_case "generated rewrite equivalence" `Slow test_generated_rewrite_equivalence;
    Alcotest.test_case "generated estimation" `Slow test_generated_estimation_recovers_oracle;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
  ]

(* --- Online (streaming) estimation --- *)

let test_online_converges () =
  let paths, samples = synth_samples ~n:3000 0.3 30 in
  let online = Tomo.Online.create ~sigma:0.3 paths in
  Tomo.Online.observe_all online samples;
  Alcotest.(check int) "counted" 3000 (Tomo.Online.observations online);
  Alcotest.(check bool) "close to truth" true
    (abs_float ((Tomo.Online.theta online).(0) -. 0.3) < 0.05)

let test_online_no_evidence_is_half () =
  let paths, _ = synth_samples ~n:10 0.3 31 in
  let online = Tomo.Online.create paths in
  Alcotest.(check (array (float 1e-9))) "prior" [| 0.5 |] (Tomo.Online.theta online)

let test_online_tracks_drift () =
  let m = diamond_model () in
  let paths = Tomo.Paths.enumerate m in
  let rng = Stats.Rng.create 32 in
  let early = Tomo.Paths.sample_costs rng paths ~theta:[| 0.9 |] ~n:2000 in
  let late = Tomo.Paths.sample_costs rng paths ~theta:[| 0.1 |] ~n:2000 in
  let online = Tomo.Online.create ~decay:0.995 ~sigma:0.3 paths in
  Tomo.Online.observe_all online early;
  let after_early = (Tomo.Online.theta online).(0) in
  Tomo.Online.observe_all online late;
  let after_late = (Tomo.Online.theta online).(0) in
  Alcotest.(check bool)
    (Printf.sprintf "tracked 0.9 (%f)" after_early)
    true
    (abs_float (after_early -. 0.9) < 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "tracked drift to 0.1 (%f)" after_late)
    true
    (abs_float (after_late -. 0.1) < 0.05)

let test_online_matches_batch_without_decay () =
  let paths, samples = synth_samples ~n:1500 0.6 33 in
  let online = Tomo.Online.create ~decay:1.0 ~sigma:0.3 paths in
  Tomo.Online.observe_all online samples;
  let batch = Tomo.Em.estimate ~sigma:0.3 ~estimate_sigma:false paths ~samples in
  Alcotest.(check bool) "agrees with batch EM" true
    (abs_float ((Tomo.Online.theta online).(0) -. batch.Tomo.Em.theta.(0)) < 0.02)

let test_online_validation () =
  let paths, _ = synth_samples ~n:10 0.3 34 in
  Alcotest.(check bool) "bad decay" true
    (match Tomo.Online.create ~decay:0.0 paths with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "online converges" `Quick test_online_converges;
      Alcotest.test_case "online prior" `Quick test_online_no_evidence_is_half;
      Alcotest.test_case "online tracks drift" `Quick test_online_tracks_drift;
      Alcotest.test_case "online matches batch" `Quick test_online_matches_batch_without_decay;
      Alcotest.test_case "online validation" `Quick test_online_validation;
    ]

(* --- Identifiability analysis and cost watermarking --- *)

(* A diamond whose arms cost the same: timing carries no information. *)
let ambiguous_model () =
  let p =
    Asm.assemble
      [
        Asm.Proc "f"; Asm.cmpi 0 0; Asm.br Isa.Eq "a2"; Asm.movi 1 1; Asm.jmp "j";
        Asm.Label "a2"; Asm.movi 1 2; Asm.movi 1 3; Asm.Label "j"; Asm.ret;
      ]
  in
  (* Arm1: movi+jmp = 2 + jump penalty 2 = 4 on that path; arm2: 2 movi = 2
     + taken penalty 2 = 4: both outcomes cost the same. *)
  Tomo.Model.of_cfg ~call_residual:0 ~window_correction:0 (Cfg.of_proc_name p "f")

let test_identify_flags_equal_arms () =
  let paths = Tomo.Paths.enumerate (ambiguous_model ()) in
  let id = Tomo.Identify.analyze paths in
  Alcotest.(check bool) "flagged" true (Tomo.Identify.any id);
  Alcotest.(check (array bool)) "parameter 0" [| true |] id.Tomo.Identify.ambiguous

let test_identify_clears_distinct_arms () =
  let paths = Tomo.Paths.enumerate (diamond_model ()) in
  let id = Tomo.Identify.analyze paths in
  Alcotest.(check bool) "not flagged" false (Tomo.Identify.any id);
  Alcotest.(check int) "no collisions" 0 id.Tomo.Identify.collisions

let test_watermark_separates () =
  let items =
    [
      Asm.Proc "f"; Asm.cmpi 0 0; Asm.br Isa.Eq "a2"; Asm.movi 1 1; Asm.jmp "j";
      Asm.Label "a2"; Asm.movi 1 2; Asm.movi 1 3; Asm.Label "j"; Asm.ret;
    ]
  in
  let wm = Asm.assemble (Profilekit.Watermark.instrument ~sites:[ ("f", 0) ] items) in
  let model = Tomo.Model.of_cfg ~call_residual:0 ~window_correction:0 (Cfg.of_proc_name wm "f") in
  let id = Tomo.Identify.analyze (Tomo.Paths.enumerate model) in
  Alcotest.(check bool) "no longer ambiguous" false (Tomo.Identify.any id)

let test_watermark_preserves_semantics () =
  let c = Compile.compile Workloads.sense.Workloads.program in
  let sites = [ ("report_task", 3); ("report_task", 5) ] in
  let wm = Asm.assemble (Profilekit.Watermark.instrument ~sites c.Compile.items) in
  let run binary =
    let devices = Devices.create () in
    let seq = ref 0 in
    Devices.set_sensor devices (fun _ -> incr seq; !seq * 97 mod 1024);
    let m = Machine.create ~program:binary ~devices () in
    ignore (Machine.run_proc m Compile.init_proc_name);
    for _ = 1 to 60 do
      ignore (Machine.run_proc m "sense_task");
      ignore (Machine.run_proc m "report_task")
    done;
    Devices.tx_log devices
  in
  Alcotest.(check bool) "same outputs" true (run c.Compile.program = run wm)

let test_watermark_distinct_delays () =
  (* Two watermarked branches in one procedure must receive different
     delays or mutual collisions survive. *)
  let items =
    [
      Asm.Proc "f";
      Asm.cmpi 0 0; Asm.br Isa.Eq "s1"; Asm.Label "s1";
      Asm.cmpi 0 1; Asm.br Isa.Eq "s2"; Asm.Label "s2";
      Asm.ret;
    ]
  in
  let wm = Asm.assemble (Profilekit.Watermark.instrument ~sites:[ ("f", 0); ("f", 1) ] items) in
  let model = Tomo.Model.of_cfg ~call_residual:0 ~window_correction:0 (Cfg.of_proc_name wm "f") in
  let paths = Tomo.Paths.enumerate model in
  let costs =
    Array.to_list (Array.map (fun p -> p.Tomo.Paths.cost) (Tomo.Paths.paths paths))
  in
  Alcotest.(check int) "all four outcomes distinct" 4
    (List.length (List.sort_uniq compare costs))

let test_pipeline_watermarked_estimation () =
  let run =
    Codetomo.Pipeline.profile
      ~config:{ Codetomo.Pipeline.default_config with horizon = Some 2_000_000 }
      Workloads.sense
  in
  let sites = Codetomo.Pipeline.ambiguous_sites run in
  Alcotest.(check bool) "sense has ambiguous branches" true (sites <> []);
  let plain = Codetomo.Pipeline.estimate run in
  let wm, used = Codetomo.Pipeline.estimate_watermarked run in
  Alcotest.(check bool) "watermarks applied" true (used <> []);
  let mae_of proc ests =
    (List.find (fun e -> e.Codetomo.Pipeline.proc = proc) ests).Codetomo.Pipeline.mae
  in
  Alcotest.(check bool)
    (Printf.sprintf "report_task improves (%.4f -> %.4f)"
       (mae_of "report_task" plain) (mae_of "report_task" wm))
    true
    (mae_of "report_task" wm < 0.03 && mae_of "report_task" plain > 0.08)

let suite =
  suite
  @ [
      Alcotest.test_case "identify equal arms" `Quick test_identify_flags_equal_arms;
      Alcotest.test_case "identify distinct arms" `Quick test_identify_clears_distinct_arms;
      Alcotest.test_case "watermark separates" `Quick test_watermark_separates;
      Alcotest.test_case "watermark preserves semantics" `Quick
        test_watermark_preserves_semantics;
      Alcotest.test_case "watermark distinct delays" `Quick test_watermark_distinct_delays;
      Alcotest.test_case "pipeline watermarked estimation" `Slow
        test_pipeline_watermarked_estimation;
    ]
