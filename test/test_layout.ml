(* Layout: Placement, Eval, Algorithms, Rewrite. *)

module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Program = Mote_isa.Program
module Cfg = Cfgir.Cfg
module Freq = Cfgir.Freq
module Placement = Layout.Placement
module Eval = Layout.Eval
module Algorithms = Layout.Algorithms
module Rewrite = Layout.Rewrite

let diamond_program () =
  Asm.assemble
    [
      Asm.Proc "f";
      Asm.cmpi 0 0;
      Asm.br Isa.Eq "arm2";
      Asm.movi 1 10;
      Asm.jmp "join";
      Asm.Label "arm2";
      Asm.movi 1 20;
      Asm.Label "join";
      Asm.ret;
    ]

(* Hot path through the taken arm. *)
let hot_taken_freq cfg =
  let f = Freq.create cfg ~invocations:100.0 in
  Freq.bump f ~src:0 ~dst:2 ~kind:Cfg.K_taken 90.0;
  Freq.bump f ~src:0 ~dst:1 ~kind:Cfg.K_fall 10.0;
  Freq.bump f ~src:1 ~dst:3 ~kind:Cfg.K_jump 10.0;
  Freq.bump f ~src:2 ~dst:3 ~kind:Cfg.K_fall 90.0;
  f

let test_placement_validate () =
  let cfg = Cfg.of_proc_name (diamond_program ()) "f" in
  Placement.validate cfg [| 0; 1; 2; 3 |];
  Placement.validate cfg [| 0; 2; 3; 1 |];
  let invalid p =
    match Placement.validate cfg p with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "entry not first" true (invalid [| 1; 0; 2; 3 |]);
  Alcotest.(check bool) "wrong length" true (invalid [| 0; 1; 2 |]);
  Alcotest.(check bool) "duplicate" true (invalid [| 0; 1; 1; 3 |]);
  Alcotest.(check bool) "out of range" true (invalid [| 0; 1; 2; 9 |])

let test_placement_helpers () =
  let p = [| 0; 2; 3; 1 |] in
  Alcotest.(check (array int)) "positions" [| 0; 3; 1; 2 |] (Placement.position_of p);
  Alcotest.(check (option int)) "next of 2" (Some 3) (Placement.next_in_layout p 2);
  Alcotest.(check (option int)) "next of last" None (Placement.next_in_layout p 1)

let test_eval_natural () =
  let cfg = Cfg.of_proc_name (diamond_program ()) "f" in
  let f = hot_taken_freq cfg in
  let r = Eval.evaluate f (Placement.natural cfg) in
  (* Natural [0;1;2;3]: branch falls to B1 (weight 10), taken to B2 (90).
     B1 jumps (10 taken transfers), B2 falls to B3 adjacent? B2 next is B3:
     yes.  So taken = 90 (branch) + 10 (jump) = 100. *)
  Alcotest.(check (float 1e-9)) "taken" 100.0 r.Eval.taken_transfers;
  Alcotest.(check (float 1e-9)) "considered" 110.0 r.Eval.considered;
  Alcotest.(check int) "no bridges" 0 r.Eval.bridge_jumps

let test_eval_optimized () =
  let cfg = Cfg.of_proc_name (diamond_program ()) "f" in
  let f = hot_taken_freq cfg in
  (* Put the hot arm on the fall-through: [0;2;3;1].  Branch flips: taken
     fires for the old fall edge (10).  B2 falls to B3 adjacent.  B3 ret.
     B1 at the end: its jmp to B3 is non-adjacent: +10.  Total 20. *)
  let r = Eval.evaluate f [| 0; 2; 3; 1 |] in
  Alcotest.(check (float 1e-9)) "taken" 20.0 r.Eval.taken_transfers;
  Alcotest.(check (float 1e-9)) "rate" (20.0 /. 110.0) r.Eval.taken_rate

let test_eval_bridge_jump () =
  let cfg = Cfg.of_proc_name (diamond_program ()) "f" in
  let f = hot_taken_freq cfg in
  (* [0;3;1;2]: branch's successors are B2 (taken) and B1 (fall); next is
     B3 -> neither adjacent: bridge jump added, every execution transfers.
     taken = 90 + 10 (bridge) = 100 plus B1's jmp 10 and B2->B3 non-adjacent
     fall bridge 90. *)
  let r = Eval.evaluate f [| 0; 3; 1; 2 |] in
  Alcotest.(check (float 1e-9)) "taken" 200.0 r.Eval.taken_transfers;
  Alcotest.(check int) "bridges" 2 r.Eval.bridge_jumps

let test_eval_size_prediction_matches_rewrite () =
  let program = diamond_program () in
  let cfg = Cfg.of_proc_name program "f" in
  let f = hot_taken_freq cfg in
  List.iter
    (fun placement ->
      let predicted = (Eval.evaluate f placement).Eval.size_words in
      let rewritten = Rewrite.program program ~placements:[ ("f", placement) ] in
      Alcotest.(check int)
        (Format.asprintf "size for %a" Placement.pp placement)
        predicted (Program.flash_words rewritten))
    [ [| 0; 1; 2; 3 |]; [| 0; 2; 3; 1 |]; [| 0; 3; 1; 2 |]; [| 0; 3; 2; 1 |] ]

let test_pettis_hansen_picks_hot_chain () =
  let cfg = Cfg.of_proc_name (diamond_program ()) "f" in
  let f = hot_taken_freq cfg in
  let p = Algorithms.pettis_hansen f in
  (* The hot chain is 0 -> 2 -> 3. *)
  Alcotest.(check int) "first" 0 p.(0);
  Alcotest.(check int) "second" 2 p.(1);
  Alcotest.(check int) "third" 3 p.(2)

let test_greedy_valid_and_sensible () =
  let cfg = Cfg.of_proc_name (diamond_program ()) "f" in
  let f = hot_taken_freq cfg in
  let p = Algorithms.greedy f in
  Placement.validate cfg p;
  Alcotest.(check int) "follows hot edge" 2 p.(1)

let test_optimal_beats_or_ties_everything () =
  let cfg = Cfg.of_proc_name (diamond_program ()) "f" in
  let f = hot_taken_freq cfg in
  let best = Eval.taken_transfers f (Algorithms.optimal f) in
  let worst = Eval.taken_transfers f (Algorithms.pessimal f) in
  List.iter
    (fun algo ->
      let score = Eval.taken_transfers f (algo f) in
      Alcotest.(check bool) "optimal <= algo" true (best <= score +. 1e-9);
      Alcotest.(check bool) "algo <= pessimal" true (score <= worst +. 1e-9))
    [ Algorithms.pettis_hansen; Algorithms.greedy; (fun f -> Placement.natural (Freq.cfg f)) ]

let test_optimal_size_cap () =
  let items =
    List.concat
      [
        [ Asm.Proc "big" ];
        List.concat_map
          (fun i ->
            [
              Asm.cmpi 0 i;
              Asm.br Isa.Eq (Printf.sprintf "l%d" i);
              Asm.Label (Printf.sprintf "l%d" i);
            ])
          (List.init 12 Fun.id);
        [ Asm.ret ];
      ]
  in
  let p = Asm.assemble items in
  let cfg = Cfg.of_proc_name p "big" in
  let f = Freq.create cfg ~invocations:1.0 in
  Alcotest.(check bool) "too many blocks rejected" true
    (match Algorithms.optimal f with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- rewrite semantics --- *)

open Mote_lang.Ast.Dsl

let branchy_program =
  {
    Mote_lang.Ast.globals = [ ("a", 0); ("b", 0); ("n", 0) ];
    arrays = [];
    procs =
      [
        proc "task" ~params:[] ~locals:[ "x" ]
          [
            set "n" (v "n" +: i 1);
            set "x" (sensor 0);
            if_ (v "x" >: i 400)
              [ set "a" (v "a" +: v "x") ]
              [ set "b" (v "b" +: i 1) ];
            while_ (v "x" >: i 800) [ set "x" (v "x" -: i 300); set "a" (v "a" +: i 1) ];
            send (v "a");
          ];
      ];
  }

let run_variant program =
  let devices = Mote_machine.Devices.create () in
  let seq = ref 0 in
  Mote_machine.Devices.set_sensor devices (fun _ ->
      incr seq;
      !seq * 137 mod 1024);
  let m = Mote_machine.Machine.create ~program ~devices () in
  ignore (Mote_machine.Machine.run_proc m Mote_lang.Compile.init_proc_name);
  for _ = 1 to 100 do
    ignore (Mote_machine.Machine.run_proc m "task")
  done;
  (Mote_machine.Devices.tx_log devices, Mote_machine.Machine.stats m)

let test_rewrite_preserves_semantics () =
  let c = Mote_lang.Compile.compile branchy_program in
  let original = c.Mote_lang.Compile.program in
  let cfg = Cfg.of_proc_name original "task" in
  let n = Cfg.num_blocks cfg in
  (* Try several placements, including adversarial ones. *)
  let placements =
    [
      Placement.natural cfg;
      Array.init n (fun i -> if i = 0 then 0 else n - i);
    ]
  in
  let base_tx, _ = run_variant original in
  List.iter
    (fun p ->
      let rewritten = Rewrite.program original ~placements:[ ("task", p) ] in
      let tx, _ = run_variant rewritten in
      Alcotest.(check (list int)) "identical radio output" base_tx tx)
    placements

let test_rewrite_qcheck_random_placements () =
  let c = Mote_lang.Compile.compile branchy_program in
  let original = c.Mote_lang.Compile.program in
  let cfg = Cfg.of_proc_name original "task" in
  let n = Cfg.num_blocks cfg in
  let base_tx, _ = run_variant original in
  let rng = Stats.Rng.create 31 in
  for _ = 1 to 20 do
    let rest = Array.init (n - 1) (fun i -> i + 1) in
    Stats.Rng.shuffle rng rest;
    let p = Array.append [| 0 |] rest in
    let rewritten = Rewrite.program original ~placements:[ ("task", p) ] in
    let tx, _ = run_variant rewritten in
    Alcotest.(check (list int)) "random placement equivalent" base_tx tx
  done

let test_rewrite_reduces_taken_rate () =
  (* With the oracle profile, PH placement should not be worse than natural
     on the run it was trained on. *)
  let c = Mote_lang.Compile.compile branchy_program in
  let original = c.Mote_lang.Compile.program in
  let devices = Mote_machine.Devices.create () in
  let seq = ref 0 in
  Mote_machine.Devices.set_sensor devices (fun _ ->
      incr seq;
      !seq * 137 mod 1024);
  let m = Mote_machine.Machine.create ~program:original ~devices () in
  ignore (Mote_machine.Machine.run_proc m Mote_lang.Compile.init_proc_name);
  let oracle = Profilekit.Oracle.attach m in
  for _ = 1 to 200 do
    ignore (Mote_machine.Machine.run_proc m "task")
  done;
  let freq = Profilekit.Oracle.freq oracle ~proc:"task" ~invocations:200.0 in
  let placed =
    Rewrite.program original ~placements:[ ("task", Algorithms.pettis_hansen freq) ]
  in
  let _, stats_nat = run_variant original in
  let _, stats_opt = run_variant placed in
  Alcotest.(check bool) "taken rate improves" true
    (Mote_machine.Machine.taken_transfer_rate stats_opt
    <= Mote_machine.Machine.taken_transfer_rate stats_nat +. 1e-9)

let test_rewrite_keeps_unlisted_procs () =
  let p =
    Asm.assemble
      [ Asm.Proc "a"; Asm.movi 0 1; Asm.ret; Asm.Proc "b"; Asm.call "a"; Asm.ret ]
  in
  let r = Rewrite.program p ~placements:[] in
  Alcotest.(check int) "same procs" 2 (List.length (Program.procs r));
  let devices = Mote_machine.Devices.create () in
  let m = Mote_machine.Machine.create ~program:r ~devices () in
  ignore (Mote_machine.Machine.run_proc m "b");
  Alcotest.(check int) "call still works" 1 (Mote_machine.Machine.reg m 0)

let suite =
  [
    Alcotest.test_case "placement validate" `Quick test_placement_validate;
    Alcotest.test_case "placement helpers" `Quick test_placement_helpers;
    Alcotest.test_case "eval natural" `Quick test_eval_natural;
    Alcotest.test_case "eval optimized" `Quick test_eval_optimized;
    Alcotest.test_case "eval bridge jump" `Quick test_eval_bridge_jump;
    Alcotest.test_case "eval size = rewrite size" `Quick test_eval_size_prediction_matches_rewrite;
    Alcotest.test_case "pettis-hansen hot chain" `Quick test_pettis_hansen_picks_hot_chain;
    Alcotest.test_case "greedy" `Quick test_greedy_valid_and_sensible;
    Alcotest.test_case "optimal bounds" `Quick test_optimal_beats_or_ties_everything;
    Alcotest.test_case "optimal size cap" `Quick test_optimal_size_cap;
    Alcotest.test_case "rewrite preserves semantics" `Quick test_rewrite_preserves_semantics;
    Alcotest.test_case "rewrite random placements" `Quick test_rewrite_qcheck_random_placements;
    Alcotest.test_case "rewrite reduces taken rate" `Quick test_rewrite_reduces_taken_rate;
    Alcotest.test_case "rewrite keeps unlisted" `Quick test_rewrite_keeps_unlisted_procs;
  ]

(* --- BTFN policy in the static evaluator --- *)

let test_eval_btfn_policy () =
  (* Loop shape: B0 header branch (taken = exit forward), B1 body jmp back.
     Under not-taken the back jump stalls every iteration; under BTFN a
     BACKWARD conditional would be free when taken.  Build a CFG where the
     branch's taken target is placed EARLIER so BTFN predicts it taken. *)
  let p =
    Asm.assemble
      [
        Asm.Proc "g";
        Asm.Label "head";
        Asm.movi 0 1;
        Asm.cmpi 0 0;
        Asm.br Isa.Eq "head";
        Asm.ret;
      ]
  in
  let cfg = Cfg.of_proc_name p "g" in
  (* B0 self-loops (taken, backward in natural layout), exits to B1. *)
  let f = Freq.create cfg ~invocations:10.0 in
  Freq.bump f ~src:0 ~dst:0 ~kind:Cfg.K_taken 90.0;
  Freq.bump f ~src:0 ~dst:1 ~kind:Cfg.K_fall 10.0;
  let natural = Placement.natural cfg in
  let nt = Eval.evaluate ~policy:Eval.Not_taken f natural in
  let btfn = Eval.evaluate ~policy:Eval.Btfn f natural in
  (* Not-taken: stalls on the 90 taken loop-backs.  BTFN: backward target
     predicted taken, so it stalls only on the 10 exits. *)
  Alcotest.(check (float 1e-9)) "not-taken stalls" 90.0 nt.Eval.taken_transfers;
  Alcotest.(check (float 1e-9)) "btfn stalls" 10.0 btfn.Eval.taken_transfers;
  Alcotest.(check (float 1e-9)) "same considered" nt.Eval.considered btfn.Eval.considered

let test_eval_btfn_matches_machine () =
  (* The static BTFN prediction must equal the machine's dynamic count for
     a deterministic run, like the not-taken consistency test. *)
  let items =
    [
      Asm.Proc "g"; Asm.movi 0 5; Asm.Label "head"; Asm.subi 0 0 1; Asm.cmpi 0 0;
      Asm.br Isa.Gt "head"; Asm.ret;
    ]
  in
  let p = Asm.assemble items in
  let devices = Mote_machine.Devices.create () in
  let m =
    Mote_machine.Machine.create ~prediction:Mote_machine.Machine.Predict_btfn ~program:p
      ~devices ()
  in
  let oracle = Profilekit.Oracle.attach m in
  ignore (Mote_machine.Machine.run_proc m "g");
  let freq = Profilekit.Oracle.freq oracle ~proc:"g" ~invocations:1.0 in
  let cfg = Freq.cfg freq in
  let predicted =
    (Eval.evaluate ~policy:Eval.Btfn freq (Placement.natural cfg)).Eval.taken_transfers
  in
  let s = Mote_machine.Machine.stats m in
  Alcotest.(check int) "static btfn = dynamic btfn"
    (s.Mote_machine.Machine.mispredicted_branches
    + s.Mote_machine.Machine.unconditional_transfers)
    (int_of_float predicted)

let suite =
  suite
  @ [
      Alcotest.test_case "eval btfn policy" `Quick test_eval_btfn_policy;
      Alcotest.test_case "eval btfn = machine" `Quick test_eval_btfn_matches_machine;
    ]
