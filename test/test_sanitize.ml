(* Tomo.Sanitize (quarantine) and Tomo.Health (verdicts): the two halves
   of the graceful-degradation contract.  All inputs are hand-built, all
   expectations exact. *)

module Sanitize = Tomo.Sanitize
module Health = Tomo.Health

let farr = Alcotest.(array (float 1e-9))

let test_empty () =
  let kept, r = Sanitize.run ~sigma:1.0 [||] in
  Alcotest.(check farr) "empty in, empty out" [||] kept;
  Alcotest.(check int) "total" 0 r.Sanitize.total;
  Alcotest.(check int) "kept" 0 r.Sanitize.kept

let test_single_and_duplicates () =
  (* A single sample and a duplicates-only set survive: the MAD floor
     keeps zero-spread data, and mad_min_n skips tiny sets anyway. *)
  let kept, r = Sanitize.run ~sigma:1.0 [| 42.0 |] in
  Alcotest.(check farr) "single kept" [| 42.0 |] kept;
  Alcotest.(check int) "nothing dropped" 0 (r.Sanitize.envelope_dropped + r.Sanitize.mad_dropped);
  let dup = Array.make 10 17.0 in
  let kept, _ = Sanitize.run ~sigma:1.0 dup in
  Alcotest.(check farr) "duplicates kept" dup kept

let test_envelope () =
  (* slack = 6 * max(sigma, 1) = 6, so the window is [4, 26]. *)
  let samples = [| 3.9; 4.0; 10.0; 26.0; 26.1; -1e9; 1e9 |] in
  let kept, r = Sanitize.run ~min_cost:10.0 ~max_cost:20.0 ~sigma:1.0 samples in
  Alcotest.(check farr) "boundary inclusive, order preserved"
    [| 4.0; 10.0; 26.0 |] kept;
  Alcotest.(check int) "envelope dropped" 4 r.Sanitize.envelope_dropped;
  Alcotest.(check int) "MAD stood down" 0 r.Sanitize.mad_dropped

let test_mad_fallback_only () =
  (* Without an envelope the MAD stage is the only defense and must
     drop the wild point; with one, it stands down and the same point
     is the envelope's (or the robust estimator's) problem. *)
  let samples = Array.append (Array.init 20 (fun i -> 100.0 +. float_of_int (i mod 3))) [| 1e7 |] in
  let kept, r = Sanitize.run ~sigma:1.0 samples in
  Alcotest.(check int) "outlier quarantined" 20 (Array.length kept);
  Alcotest.(check int) "by the MAD stage" 1 r.Sanitize.mad_dropped;
  Alcotest.(check bool) "and it is the wild one" true
    (Array.for_all (fun x -> x < 1e6) kept);
  let kept, r = Sanitize.run ~min_cost:90.0 ~max_cost:2e7 ~sigma:1.0 samples in
  Alcotest.(check int) "envelope given: MAD stands down" 0 r.Sanitize.mad_dropped;
  Alcotest.(check int) "in-envelope garbage kept for the robust EM" 21
    (Array.length kept)

let test_all_quarantined () =
  let samples = [| 1e9; -1e9 |] in
  let kept, r = Sanitize.run ~min_cost:10.0 ~max_cost:20.0 ~sigma:1.0 samples in
  Alcotest.(check farr) "nothing survives" [||] kept;
  Alcotest.(check int) "report says so" 2 r.Sanitize.envelope_dropped;
  (* The downstream contract: zero survivors is a typed verdict, not an
     exception. *)
  let h = Health.judge ~converged:true ~sample_count:(Array.length kept) () in
  Alcotest.(check bool) "zero samples ⇒ Rejected" true (Health.is_rejected h)

let test_report_adds_up () =
  let samples = Array.init 200 (fun i -> if i mod 17 = 0 then 1e8 else 50.0 +. float_of_int (i mod 5)) in
  List.iter
    (fun (min_cost, max_cost) ->
      let kept, r = Sanitize.run ~min_cost ~max_cost ~sigma:2.0 samples in
      Alcotest.(check int) "kept = |output|" (Array.length kept) r.Sanitize.kept;
      Alcotest.(check int) "total = kept + dropped" r.Sanitize.total
        (r.Sanitize.kept + r.Sanitize.envelope_dropped + r.Sanitize.mad_dropped))
    [ (Float.neg_infinity, Float.infinity); (40.0, 60.0) ]

let test_median_mad () =
  Alcotest.(check (float 1e-9)) "median odd" 3.0 (Sanitize.median [| 5.0; 1.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "median even interpolates" 2.5
    (Sanitize.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "median empty" 0.0 (Sanitize.median [||]);
  Alcotest.(check (float 1e-9)) "mad" 1.0 (Sanitize.mad [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  Alcotest.(check (float 1e-9)) "mad of duplicates" 0.0 (Sanitize.mad (Array.make 5 7.0))

let test_health_judge () =
  Alcotest.(check bool) "healthy" true
    (Health.is_healthy (Health.judge ~converged:true ~sample_count:100 ()));
  Alcotest.(check bool) "zero samples rejected" true
    (Health.is_rejected (Health.judge ~converged:true ~sample_count:0 ()));
  Alcotest.(check bool) "thin samples rejected" true
    (Health.is_rejected
       (Health.judge ~converged:true ~sample_count:(Health.default_min_samples - 1) ()));
  Alcotest.(check bool) "at the floor: not rejected" false
    (Health.is_rejected
       (Health.judge ~converged:true ~sample_count:Health.default_min_samples ()));
  (match Health.judge ~converged:false ~sample_count:100 () with
  | Health.Degraded _ -> ()
  | h -> Alcotest.failf "non-convergence should degrade, got %s" (Health.to_string h));
  (* The sample floor outranks convergence. *)
  Alcotest.(check bool) "floor first" true
    (Health.is_rejected (Health.judge ~converged:false ~sample_count:0 ()))

let test_health_ci_width () =
  let open Health in
  Alcotest.(check bool) "narrow CI: untouched" true
    (is_healthy (apply_ci_width ~width:0.1 Healthy));
  (match apply_ci_width ~width:0.7 Healthy with
  | Degraded _ -> ()
  | h -> Alcotest.failf "wide CI should degrade, got %s" (to_string h));
  Alcotest.(check bool) "huge CI rejects" true
    (is_rejected (apply_ci_width ~width:0.96 Healthy));
  (* Never promotes: a Rejected verdict stays Rejected under any width. *)
  Alcotest.(check bool) "no promotion" true
    (is_rejected (apply_ci_width ~width:0.0 (Rejected "x")));
  (match apply_ci_width ~width:0.0 (Degraded "x") with
  | Degraded _ -> ()
  | h -> Alcotest.failf "degraded must not promote, got %s" (to_string h))

let test_health_worst () =
  let open Health in
  Alcotest.(check bool) "rejected beats degraded" true
    (is_rejected (worst (Degraded "a") (Rejected "b")));
  Alcotest.(check bool) "degraded beats healthy" false
    (is_healthy (worst Healthy (Degraded "a")));
  (match worst (Degraded "first") (Degraded "second") with
  | Degraded r -> Alcotest.(check string) "first among equals" "first" r
  | h -> Alcotest.failf "expected degraded, got %s" (to_string h))

let suite =
  [
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "single sample and duplicates" `Quick test_single_and_duplicates;
    Alcotest.test_case "cost envelope" `Quick test_envelope;
    Alcotest.test_case "MAD is fallback-only" `Quick test_mad_fallback_only;
    Alcotest.test_case "fully quarantined" `Quick test_all_quarantined;
    Alcotest.test_case "report adds up" `Quick test_report_adds_up;
    Alcotest.test_case "median and MAD" `Quick test_median_mad;
    Alcotest.test_case "health: judge" `Quick test_health_judge;
    Alcotest.test_case "health: CI width" `Quick test_health_ci_width;
    Alcotest.test_case "health: worst" `Quick test_health_worst;
  ]
