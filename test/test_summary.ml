(* Stats.Summary and Stats.Histogram. *)

let feq ?(tol = 1e-9) name a b =
  Alcotest.(check bool) (Printf.sprintf "%s: %f vs %f" name a b) true (abs_float (a -. b) < tol)

let test_basic () =
  let s = Stats.Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  feq "mean" 2.5 (Stats.Summary.mean s);
  feq "variance" (5.0 /. 3.0) (Stats.Summary.variance s);
  feq "min" 1.0 (Stats.Summary.min s);
  feq "max" 4.0 (Stats.Summary.max s);
  feq "total" 10.0 (Stats.Summary.total s)

let test_single () =
  let s = Stats.Summary.of_array [| 7.0 |] in
  feq "mean" 7.0 (Stats.Summary.mean s);
  feq "variance of single" 0.0 (Stats.Summary.variance s)

let test_second_moment () =
  let data = [| 1.0; 5.0; -2.0; 8.0 |] in
  let s = Stats.Summary.of_array data in
  let direct =
    Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 data /. 4.0
  in
  feq ~tol:1e-9 "E[X^2]" direct (Stats.Summary.second_moment s)

let test_merge () =
  let a = [| 1.0; 2.0; 9.5 |] and b = [| -4.0; 0.5; 3.0; 3.0 |] in
  let merged = Stats.Summary.merge (Stats.Summary.of_array a) (Stats.Summary.of_array b) in
  let all = Stats.Summary.of_array (Array.append a b) in
  feq "merged mean" (Stats.Summary.mean all) (Stats.Summary.mean merged);
  feq "merged variance" (Stats.Summary.variance all) (Stats.Summary.variance merged);
  Alcotest.(check int) "merged count" 7 (Stats.Summary.count merged)

let test_merge_empty () =
  let a = Stats.Summary.create () in
  let b = Stats.Summary.of_array [| 2.0; 4.0 |] in
  let merged = Stats.Summary.merge a b in
  feq "empty + b mean" 3.0 (Stats.Summary.mean merged)

let test_quantile () =
  let data = [| 4.0; 1.0; 3.0; 2.0 |] in
  feq "median" 2.5 (Stats.Summary.quantile data 0.5);
  feq "min" 1.0 (Stats.Summary.quantile data 0.0);
  feq "max" 4.0 (Stats.Summary.quantile data 1.0);
  feq "q25" 1.75 (Stats.Summary.quantile data 0.25)

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.quantile: empty data") (fun () ->
      ignore (Stats.Summary.quantile [||] 0.5));
  Alcotest.check_raises "bad q" (Invalid_argument "Summary.quantile: q outside [0,1]")
    (fun () -> ignore (Stats.Summary.quantile [| 1.0 |] 1.5))

let test_histogram_counts () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -5.0; 50.0 ];
  Alcotest.(check int) "total" 6 (Stats.Histogram.count h);
  Alcotest.(check int) "bin 0 gets 0.5 and clamped -5" 2 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Stats.Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9 gets 9.9 and clamped 50" 2 (Stats.Histogram.bin_count h 9)

let test_histogram_density () =
  let h = Stats.Histogram.of_data ~bins:8 (Array.init 100 (fun i -> float_of_int i)) in
  let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 (Stats.Histogram.to_density h) in
  feq ~tol:1e-9 "density mass" 1.0 total

let test_histogram_mode () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:4.0 ~bins:4 in
  List.iter (Stats.Histogram.add h) [ 2.5; 2.6; 2.7; 0.5 ];
  feq "mode center" 2.5 (Stats.Histogram.mode_center h)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"welford matches naive variance" ~count:200
         QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-100.0) 100.0))
         (fun xs ->
           let a = Array.of_list xs in
           let s = Stats.Summary.of_array a in
           let n = float_of_int (Array.length a) in
           let mean = Array.fold_left ( +. ) 0.0 a /. n in
           let var =
             Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a /. (n -. 1.0)
           in
           abs_float (Stats.Summary.variance s -. var) < 1e-6 *. (1.0 +. var)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mean within [min,max]" ~count:200
         QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.0) 1000.0))
         (fun xs ->
           let s = Stats.Summary.of_array (Array.of_list xs) in
           Stats.Summary.mean s >= Stats.Summary.min s -. 1e-9
           && Stats.Summary.mean s <= Stats.Summary.max s +. 1e-9));
  ]

let suite =
  [
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "single" `Quick test_single;
    Alcotest.test_case "second moment" `Quick test_second_moment;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "merge empty" `Quick test_merge_empty;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "quantile errors" `Quick test_quantile_errors;
    Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
    Alcotest.test_case "histogram density" `Quick test_histogram_density;
    Alcotest.test_case "histogram mode" `Quick test_histogram_mode;
  ]
  @ qcheck_tests
