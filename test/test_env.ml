(* Env: sensor models and radio arrivals. *)

let cfg ?(seed = 1) channels radio = { Env.seed; channels; radio }

let test_determinism () =
  let make () = Env.create (cfg [ (0, Env.Gaussian { mu = 500.0; sigma = 50.0 }) ] Env.Silent) in
  let a = make () and b = make () in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Env.read a 0) (Env.read b 0)
  done

let test_unconfigured_channel () =
  let e = Env.create (cfg [] Env.Silent) in
  Alcotest.(check int) "reads 0" 0 (Env.read e 5)

let test_constant () =
  let e = Env.create (cfg [ (0, Env.Constant 321) ] Env.Silent) in
  Alcotest.(check int) "constant" 321 (Env.read e 0)

let test_clamping () =
  let e = Env.create (cfg [ (0, Env.Constant 5000) ] Env.Silent) in
  Alcotest.(check int) "clamped to adc max" Env.adc_max (Env.read e 0);
  let e2 = Env.create (cfg [ (0, Env.Constant (-50)) ] Env.Silent) in
  Alcotest.(check int) "clamped to adc min" Env.adc_min (Env.read e2 0)

let test_uniform_range () =
  let e = Env.create (cfg [ (0, Env.Uniform (100, 110)) ] Env.Silent) in
  for _ = 1 to 500 do
    let v = Env.read e 0 in
    Alcotest.(check bool) "in range" true (v >= 100 && v <= 110)
  done

let test_gaussian_stats () =
  let e = Env.create (cfg [ (0, Env.Gaussian { mu = 500.0; sigma = 30.0 }) ] Env.Silent) in
  let s = Stats.Summary.create () in
  for _ = 1 to 10_000 do
    Stats.Summary.add s (float_of_int (Env.read e 0))
  done;
  Alcotest.(check bool) "mean near 500" true (abs_float (Stats.Summary.mean s -. 500.0) < 3.0)

let test_random_walk_bounds () =
  let e =
    Env.create
      (cfg [ (0, Env.Random_walk { start = 500; step_sigma = 60.0; lo = 400; hi = 600 }) ] Env.Silent)
  in
  for _ = 1 to 2000 do
    let v = Env.read e 0 in
    Alcotest.(check bool) "bounded" true (v >= 400 && v <= 600)
  done

let test_bursty_switches () =
  let e =
    Env.create
      (cfg
         [
           ( 0,
             Env.Bursty
               {
                 quiet = Env.Constant 100;
                 active = Env.Constant 900;
                 p_enter = 0.2;
                 p_exit = 0.2;
               } );
         ]
         Env.Silent)
  in
  let lows = ref 0 and highs = ref 0 in
  for _ = 1 to 3000 do
    match Env.read e 0 with
    | 100 -> incr lows
    | 900 -> incr highs
    | v -> Alcotest.failf "unexpected reading %d" v
  done;
  Alcotest.(check bool) "both states visited" true (!lows > 100 && !highs > 100)

let test_radio_silent () =
  let e = Env.create (cfg [] Env.Silent) in
  Alcotest.(check (list (pair int int))) "no arrivals" []
    (Env.radio_arrivals e ~from_cycle:0 ~to_cycle:1_000_000)

let test_radio_poisson_rate () =
  let e =
    Env.create (cfg [] (Env.Poisson { per_kilocycle = 2.0; payload_lo = 1; payload_hi = 9 }))
  in
  let arrivals = Env.radio_arrivals e ~from_cycle:0 ~to_cycle:1_000_000 in
  let n = List.length arrivals in
  (* Expect 2000 +- noise. *)
  Alcotest.(check bool) (Printf.sprintf "rate (%d)" n) true (n > 1700 && n < 2300);
  List.iter
    (fun (at, payload) ->
      Alcotest.(check bool) "cycle in window" true (at >= 0 && at < 1_000_000);
      Alcotest.(check bool) "payload in range" true (payload >= 1 && payload <= 9))
    arrivals;
  (* Increasing order. *)
  let rec ordered = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "ordered" true (ordered arrivals)

let test_radio_empty_window () =
  let e =
    Env.create (cfg [] (Env.Poisson { per_kilocycle = 2.0; payload_lo = 0; payload_hi = 1 }))
  in
  Alcotest.(check (list (pair int int))) "inverted window" []
    (Env.radio_arrivals e ~from_cycle:100 ~to_cycle:100)

let test_attach () =
  let d = Mote_machine.Devices.create () in
  let e = Env.create (cfg [ (0, Env.Constant 7) ] Env.Silent) in
  Env.attach e d;
  Alcotest.(check int) "wired" 7 (Mote_machine.Devices.read_sensor d ~channel:0)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "unconfigured channel" `Quick test_unconfigured_channel;
    Alcotest.test_case "constant" `Quick test_constant;
    Alcotest.test_case "clamping" `Quick test_clamping;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "gaussian stats" `Quick test_gaussian_stats;
    Alcotest.test_case "random walk bounds" `Quick test_random_walk_bounds;
    Alcotest.test_case "bursty switches" `Quick test_bursty_switches;
    Alcotest.test_case "radio silent" `Quick test_radio_silent;
    Alcotest.test_case "radio poisson rate" `Quick test_radio_poisson_rate;
    Alcotest.test_case "radio empty window" `Quick test_radio_empty_window;
    Alcotest.test_case "attach" `Quick test_attach;
  ]
