(* Tomo: Model, Paths, Em, Moments, Estimator — on a hand-built diamond
   CFG and a loop CFG where everything is analytically checkable. *)

module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Cfg = Cfgir.Cfg
module Model = Tomo.Model
module Paths = Tomo.Paths

let feq ?(tol = 1e-9) name a b =
  Alcotest.(check bool) (Printf.sprintf "%s: %f vs %f" name a b) true (abs_float (a -. b) < tol)

(* Diamond with distinct arm costs.  Bare model (no probe corrections). *)
let diamond_model () =
  let p =
    Asm.assemble
      [
        Asm.Proc "f";
        Asm.cmpi 0 0;
        Asm.br Isa.Eq "arm2";
        (* fall arm: 3 movi = 3 cycles *)
        Asm.movi 1 1; Asm.movi 1 2; Asm.movi 1 3;
        Asm.jmp "join";
        Asm.Label "arm2";
        (* taken arm: 1 movi *)
        Asm.movi 1 9;
        Asm.Label "join";
        Asm.ret;
      ]
  in
  Model.of_cfg ~call_residual:0 ~window_correction:0 (Cfg.of_proc_name p "f")

(* Self-loop: body repeats while the branch is taken. *)
let loop_model () =
  let p =
    Asm.assemble
      [
        Asm.Proc "g";
        Asm.Label "head";
        Asm.movi 0 1;
        Asm.cmpi 0 0;
        Asm.br Isa.Eq "head";
        Asm.ret;
      ]
  in
  Model.of_cfg ~call_residual:0 ~window_correction:0 (Cfg.of_proc_name p "g")

let test_model_shape () =
  let m = diamond_model () in
  Alcotest.(check int) "one parameter" 1 (Model.num_params m);
  Alcotest.(check (array int)) "param block" [| 0 |] (Model.param_blocks m);
  Alcotest.(check (option int)) "param_of_block" (Some 0) (Model.param_of_block m 0);
  Alcotest.(check (option int)) "non-branch" None (Model.param_of_block m 1)

let test_check_theta () =
  let m = diamond_model () in
  Alcotest.(check bool) "wrong arity" true
    (match Model.check_theta m [| 0.1; 0.2 |] with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range" true
    (match Model.check_theta m [| 1.5 |] with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_chain_rows () =
  let m = diamond_model () in
  let c = Model.chain m ~theta:[| 0.3 |] in
  feq "taken prob" 0.3 (Markov.Chain.prob c 0 2);
  feq "fall prob" 0.7 (Markov.Chain.prob c 0 1);
  feq "exit leaks" 1.0 (Markov.Chain.leak c 3)

let test_mean_time_analytic () =
  let m = diamond_model () in
  (* Blocks: B0 = cmpi+br = 2; B1 = 3 movi + jmp = 4; B2 = movi = 1; B3 = ret = 2.
     Taken path: 2 + pen2 + 1 + 2 = 7.  Fall path: 2 + 4 + pen2(jmp) + 2 = 10. *)
  feq "theta=1" 7.0 (Model.mean_time m ~theta:[| 1.0 |]);
  feq "theta=0" 10.0 (Model.mean_time m ~theta:[| 0.0 |]);
  feq "theta=0.5" 8.5 (Model.mean_time m ~theta:[| 0.5 |])

let test_variance_analytic () =
  let m = diamond_model () in
  (* Two-point distribution {7, 10} w.p. {t, 1-t}: var = t(1-t) * 9. *)
  feq ~tol:1e-6 "variance" (0.25 *. 9.0) (Model.variance_time m ~theta:[| 0.5 |]);
  feq ~tol:1e-6 "degenerate" 0.0 (Model.variance_time m ~theta:[| 1.0 |])

let test_expected_visits_loop () =
  let m = loop_model () in
  (* Loop body visited 1/(1-q) times for back-probability q. *)
  let v = Model.expected_visits m ~theta:[| 0.75 |] in
  feq ~tol:1e-9 "geometric visits" 4.0 v.(0)

let test_freq_of_theta () =
  let m = diamond_model () in
  let freq = Model.freq_of_theta m ~theta:[| 0.25 |] ~invocations:100.0 in
  feq "taken weight" 25.0 (Cfgir.Freq.get freq ~src:0 ~dst:2 ~kind:Cfg.K_taken);
  feq "fall weight" 75.0 (Cfgir.Freq.get freq ~src:0 ~dst:1 ~kind:Cfg.K_fall);
  feq "jump weight" 75.0 (Cfgir.Freq.get freq ~src:1 ~dst:3 ~kind:Cfg.K_jump);
  let visits = Cfgir.Freq.block_visits freq in
  feq "join visits" 100.0 visits.(3)

(* --- paths --- *)

let test_paths_diamond () =
  let m = diamond_model () in
  let p = Paths.enumerate m in
  Alcotest.(check int) "two paths" 2 (Array.length (Paths.paths p));
  Alcotest.(check bool) "not truncated" false (Paths.truncated p);
  feq "mass is 1" 1.0 (Paths.prior_mass p ~theta:[| 0.3 |]);
  feq "min cost" 7.0 (Paths.min_cost p);
  feq "max cost" 10.0 (Paths.max_cost p)

let test_paths_loop_truncation () =
  let m = loop_model () in
  let p = Paths.enumerate ~max_visits:5 m in
  Alcotest.(check int) "5 unrollings" 5 (Array.length (Paths.paths p));
  Alcotest.(check bool) "truncated" true (Paths.truncated p);
  (* Mass = 1 - q^5 for back-probability q. *)
  feq ~tol:1e-9 "tail mass missing" (1.0 -. (0.5 ** 5.0)) (Paths.prior_mass p ~theta:[| 0.5 |])

let test_paths_too_complex () =
  let m = loop_model () in
  Alcotest.(check bool) "raises when nothing fits" true
    (match Paths.enumerate ~max_paths:0 m with
    | _ -> false
    | exception Paths.Too_complex _ -> true)

let test_log_prior () =
  let m = diamond_model () in
  let p = Paths.enumerate m in
  let lp = Paths.log_prior p ~theta:[| 0.3 |] in
  let probs = Array.map exp lp |> Array.to_list |> List.sort compare in
  match probs with
  | [ a; b ] ->
      feq ~tol:1e-9 "smaller" 0.3 a;
      feq ~tol:1e-9 "larger" 0.7 b
  | _ -> Alcotest.fail "two paths"

let test_sample_costs () =
  let m = diamond_model () in
  let p = Paths.enumerate m in
  let rng = Stats.Rng.create 4 in
  let costs = Paths.sample_costs rng p ~theta:[| 0.25 |] ~n:10_000 in
  let taken = Array.fold_left (fun acc c -> if c = 7.0 then acc + 1 else acc) 0 costs in
  Alcotest.(check bool) "ratio near theta" true
    (abs_float ((float_of_int taken /. 10_000.0) -. 0.25) < 0.02)

(* --- EM --- *)

let synth_samples ?(noise = 0.0) ?(n = 3000) model theta seed =
  let p = Paths.enumerate model in
  let rng = Stats.Rng.create seed in
  let costs = Paths.sample_costs rng p ~theta ~n in
  if noise = 0.0 then costs
  else Array.map (fun c -> c +. Stats.Dist.gaussian rng ~mu:0.0 ~sigma:noise) costs

let test_em_recovers_diamond () =
  let m = diamond_model () in
  let p = Paths.enumerate m in
  let samples = synth_samples m [| 0.3 |] 11 in
  let r = Tomo.Em.estimate p ~samples in
  Alcotest.(check bool) "converged" true r.Tomo.Em.converged;
  feq ~tol:0.02 "theta recovered" 0.3 r.Tomo.Em.theta.(0)

let test_em_recovers_loop () =
  let m = loop_model () in
  let p = Paths.enumerate ~max_visits:20 m in
  let samples = synth_samples m [| 0.6 |] 12 in
  let r = Tomo.Em.estimate p ~samples in
  feq ~tol:0.03 "loop probability" 0.6 r.Tomo.Em.theta.(0)

let test_em_with_noise () =
  let m = diamond_model () in
  let p = Paths.enumerate m in
  let samples = synth_samples ~noise:1.0 m [| 0.7 |] 13 in
  let r = Tomo.Em.estimate ~sigma:1.0 p ~samples in
  feq ~tol:0.05 "theta under noise" 0.7 r.Tomo.Em.theta.(0);
  Alcotest.(check bool) "sigma sensible" true (r.Tomo.Em.sigma > 0.5 && r.Tomo.Em.sigma < 2.0)

let test_em_loglik_nondecreasing () =
  let m = diamond_model () in
  let p = Paths.enumerate m in
  let samples = synth_samples ~noise:0.5 m [| 0.4 |] 14 in
  let r = Tomo.Em.estimate ~sigma:0.8 ~estimate_sigma:false p ~samples in
  let lls = List.map snd r.Tomo.Em.trajectory in
  let rec monotone = function
    | a :: (b :: _ as rest) -> b >= a -. 1e-6 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "EM monotonicity" true (monotone lls)

let test_em_empty_samples () =
  let m = diamond_model () in
  let p = Paths.enumerate m in
  Alcotest.(check bool) "empty rejected" true
    (match Tomo.Em.estimate p ~samples:[||] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_em_init_respected () =
  let m = diamond_model () in
  let p = Paths.enumerate m in
  let samples = synth_samples m [| 0.5 |] 15 in
  let r = Tomo.Em.estimate ~max_iters:0 ~init:[| 0.123 |] p ~samples in
  feq "zero iterations keep init" 0.123 r.Tomo.Em.theta.(0)

(* --- robust (contamination) EM --- *)

let test_em_robustness_opt_in () =
  let m = diamond_model () in
  let p = Paths.enumerate m in
  let samples = synth_samples ~noise:0.5 m [| 0.4 |] 19 in
  let r = Tomo.Em.estimate p ~samples in
  Alcotest.(check bool) "no outlier: eps absent" true (r.Tomo.Em.outlier_eps = None);
  let fixed = { Tomo.Em.eps = 0.1; estimate_eps = false; max_eps = 0.5 } in
  let r = Tomo.Em.estimate ~outlier:fixed p ~samples in
  (match r.Tomo.Em.outlier_eps with
  | Some eps -> feq "fixed eps stays fixed" 0.1 eps
  | None -> Alcotest.fail "eps expected")

let test_em_robust_under_contamination () =
  let m = diamond_model () in
  let p = Paths.enumerate m in
  (* 10% garbage far above any feasible path cost — the shape the lossy
     transport produces (stale-entry windows, corrupted timestamps). *)
  let clean = synth_samples ~noise:0.5 ~n:3000 m [| 0.3 |] 20 in
  let garbage = Array.init 300 (fun i -> 500.0 +. float_of_int (i mod 7)) in
  let samples = Array.append clean garbage in
  let plain = Tomo.Em.estimate ~sigma:0.5 p ~samples in
  let robust = Tomo.Em.estimate ~sigma:0.5 ~outlier:Tomo.Em.default_outlier p ~samples in
  let err r = abs_float (r.Tomo.Em.theta.(0) -. 0.3) in
  feq ~tol:0.03 "robust theta survives the garbage" 0.3 robust.Tomo.Em.theta.(0);
  Alcotest.(check bool) "and beats the plain EM" true (err robust < err plain);
  Alcotest.(check bool) "plain sigma is dragged up" true
    (robust.Tomo.Em.sigma < plain.Tomo.Em.sigma);
  match robust.Tomo.Em.outlier_eps with
  | Some eps ->
      feq ~tol:0.05 "eps finds the contamination fraction" (300.0 /. 3300.0) eps
  | None -> Alcotest.fail "eps expected"

let test_em_robust_clean_data () =
  (* On clean data the robust variant must not invent outliers: eps
     clamps near its floor and theta matches the exact kernel closely. *)
  let m = diamond_model () in
  let p = Paths.enumerate m in
  let samples = synth_samples ~noise:0.5 ~n:3000 m [| 0.3 |] 21 in
  let exact = Tomo.Em.estimate ~sigma:0.5 p ~samples in
  let robust = Tomo.Em.estimate ~sigma:0.5 ~outlier:Tomo.Em.default_outlier p ~samples in
  feq ~tol:0.01 "theta unchanged" exact.Tomo.Em.theta.(0) robust.Tomo.Em.theta.(0);
  match robust.Tomo.Em.outlier_eps with
  | Some eps -> Alcotest.(check bool) "eps near zero" true (eps < 0.02)
  | None -> Alcotest.fail "eps expected"

let test_default_sigma () =
  feq "resolution 1 is exact (floored)" 0.1 (Tomo.Em.default_sigma ~resolution:1 ~jitter:0.0);
  feq "resolution 8 jitter 3" (sqrt ((63.0 /. 6.0) +. 18.0))
    (Tomo.Em.default_sigma ~resolution:8 ~jitter:3.0);
  Alcotest.(check bool) "monotone in resolution" true
    (Tomo.Em.default_sigma ~resolution:16 ~jitter:0.0
    > Tomo.Em.default_sigma ~resolution:4 ~jitter:0.0)

(* --- moments --- *)

let test_moments_recovers_diamond () =
  let m = diamond_model () in
  let samples = synth_samples m [| 0.35 |] 16 in
  let r = Tomo.Moments.estimate m ~samples in
  feq ~tol:0.05 "theta" 0.35 r.Tomo.Moments.theta.(0)

let test_moments_loop () =
  let m = loop_model () in
  let samples = synth_samples m [| 0.5 |] 17 in
  let r = Tomo.Moments.estimate m ~samples in
  feq ~tol:0.08 "loop theta" 0.5 r.Tomo.Moments.theta.(0)

let test_moments_empty () =
  let m = diamond_model () in
  Alcotest.(check bool) "empty rejected" true
    (match Tomo.Moments.estimate m ~samples:[||] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- estimator facade --- *)

let test_estimator_naive () =
  let m = diamond_model () in
  let r = Tomo.Estimator.run ~method_:Tomo.Estimator.Naive m ~samples:[| 1.0 |] in
  Alcotest.(check (array (float 1e-9))) "uniform" [| 0.5 |] r.Tomo.Estimator.theta

let test_estimator_em () =
  let m = diamond_model () in
  let samples = synth_samples m [| 0.2 |] 18 in
  let r = Tomo.Estimator.run ~method_:Tomo.Estimator.Em m ~samples in
  feq ~tol:0.03 "em theta" 0.2 r.Tomo.Estimator.theta.(0);
  Alcotest.(check bool) "loglik present" true (r.Tomo.Estimator.log_likelihood <> None);
  Alcotest.(check (list (pair int (float 0.05)))) "by block" [ (0, 0.2) ]
    r.Tomo.Estimator.thetas_by_block

let test_estimator_mae () =
  let m = diamond_model () in
  let r = Tomo.Estimator.run ~method_:Tomo.Estimator.Naive m ~samples:[| 1.0 |] in
  feq "mae" 0.2 (Tomo.Estimator.mae_against r [| 0.7 |])

let test_method_names () =
  Alcotest.(check (list string)) "names" [ "em"; "moments"; "naive" ]
    (List.map Tomo.Estimator.method_name Tomo.Estimator.all_methods)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"EM recovers random diamond theta" ~count:8
         QCheck.(pair (int_range 1 1000) (float_range 0.1 0.9))
         (fun (seed, theta) ->
           let m = diamond_model () in
           let p = Paths.enumerate m in
           let rng = Stats.Rng.create seed in
           let samples = Paths.sample_costs rng p ~theta:[| theta |] ~n:2000 in
           let r = Tomo.Em.estimate p ~samples in
           abs_float (r.Tomo.Em.theta.(0) -. theta) < 0.05));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mean_time is monotone in cheap-path probability" ~count:50
         QCheck.(pair (float_range 0.0 1.0) (float_range 0.0 1.0))
         (fun (a, b) ->
           let m = diamond_model () in
           let lo = Stdlib.min a b and hi = Stdlib.max a b in
           (* Higher taken-probability means more weight on the cheap (7)
              path, so the mean must not increase. *)
           Model.mean_time m ~theta:[| hi |] <= Model.mean_time m ~theta:[| lo |] +. 1e-9));
  ]

let suite =
  [
    Alcotest.test_case "model shape" `Quick test_model_shape;
    Alcotest.test_case "check theta" `Quick test_check_theta;
    Alcotest.test_case "chain rows" `Quick test_chain_rows;
    Alcotest.test_case "mean time analytic" `Quick test_mean_time_analytic;
    Alcotest.test_case "variance analytic" `Quick test_variance_analytic;
    Alcotest.test_case "visits loop" `Quick test_expected_visits_loop;
    Alcotest.test_case "freq of theta" `Quick test_freq_of_theta;
    Alcotest.test_case "paths diamond" `Quick test_paths_diamond;
    Alcotest.test_case "paths loop truncation" `Quick test_paths_loop_truncation;
    Alcotest.test_case "paths too complex" `Quick test_paths_too_complex;
    Alcotest.test_case "log prior" `Quick test_log_prior;
    Alcotest.test_case "sample costs" `Quick test_sample_costs;
    Alcotest.test_case "em diamond" `Quick test_em_recovers_diamond;
    Alcotest.test_case "em loop" `Quick test_em_recovers_loop;
    Alcotest.test_case "em noise" `Quick test_em_with_noise;
    Alcotest.test_case "em loglik monotone" `Quick test_em_loglik_nondecreasing;
    Alcotest.test_case "em empty" `Quick test_em_empty_samples;
    Alcotest.test_case "em init" `Quick test_em_init_respected;
    Alcotest.test_case "em robustness opt-in" `Quick test_em_robustness_opt_in;
    Alcotest.test_case "em robust vs contamination" `Quick test_em_robust_under_contamination;
    Alcotest.test_case "em robust on clean data" `Quick test_em_robust_clean_data;
    Alcotest.test_case "default sigma" `Quick test_default_sigma;
    Alcotest.test_case "moments diamond" `Quick test_moments_recovers_diamond;
    Alcotest.test_case "moments loop" `Quick test_moments_loop;
    Alcotest.test_case "moments empty" `Quick test_moments_empty;
    Alcotest.test_case "estimator naive" `Quick test_estimator_naive;
    Alcotest.test_case "estimator em" `Quick test_estimator_em;
    Alcotest.test_case "estimator mae" `Quick test_estimator_mae;
    Alcotest.test_case "method names" `Quick test_method_names;
  ]
  @ qcheck_tests
