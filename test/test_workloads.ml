(* Workloads: all compile, are well-formed, and drive the machine. *)

module Cfg = Cfgir.Cfg
module Program = Mote_isa.Program
module Node = Mote_os.Node

let test_all_compile () =
  List.iter
    (fun w ->
      let c = Workloads.compiled w in
      Alcotest.(check bool)
        (w.Workloads.name ^ " has code")
        true
        (Program.length c.Mote_lang.Compile.program > 0))
    Workloads.all

let test_five_workloads () = Alcotest.(check int) "count" 5 (List.length Workloads.all)

let test_names_unique () =
  let names = List.map (fun w -> w.Workloads.name) Workloads.all in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  Alcotest.(check string) "find sense" "sense" (Workloads.find "sense").Workloads.name;
  Alcotest.(check bool) "unknown raises" true
    (match Workloads.find "zzz" with _ -> false | exception Not_found -> true)

let test_tasks_reference_procs () =
  List.iter
    (fun w ->
      let c = Workloads.compiled w in
      List.iter
        (fun { Node.proc; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "%s task %s exists" w.Workloads.name proc)
            true
            (Program.find_proc c.Mote_lang.Compile.program proc <> None))
        w.Workloads.tasks)
    Workloads.all

let test_profiled_reference_procs () =
  List.iter
    (fun w ->
      let c = Workloads.compiled w in
      List.iter
        (fun proc ->
          Alcotest.(check bool)
            (Printf.sprintf "%s profiles %s" w.Workloads.name proc)
            true
            (Program.find_proc c.Mote_lang.Compile.program proc <> None))
        w.Workloads.profiled)
    Workloads.all

let test_cfgs_well_formed () =
  List.iter
    (fun w ->
      let c = Workloads.compiled w in
      List.iter
        (fun cfg ->
          let reach = Cfg.reachable cfg in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s entry reachable" w.Workloads.name
               cfg.Cfg.proc.Program.name)
            true reach.(0);
          (* Every procedure must have at least one exit. *)
          Alcotest.(check bool) "has exit" true (Cfg.exit_blocks cfg <> []))
        (Cfg.of_program c.Mote_lang.Compile.program))
    Workloads.all

let test_each_profiled_proc_has_branches () =
  List.iter
    (fun w ->
      let c = Workloads.compiled w in
      let total =
        List.fold_left
          (fun acc proc ->
            let cfg = Cfg.of_proc_name c.Mote_lang.Compile.program proc in
            acc + Cfg.static_cond_branches cfg)
          0 w.Workloads.profiled
      in
      Alcotest.(check bool)
        (w.Workloads.name ^ " has parameters to estimate")
        true (total > 0))
    Workloads.all

let test_workloads_run () =
  List.iter
    (fun w ->
      let c = Workloads.compiled w in
      let devices = Mote_machine.Devices.create () in
      let machine =
        Mote_machine.Machine.create ~program:c.Mote_lang.Compile.program ~devices ()
      in
      let env = Env.create w.Workloads.env_config in
      let node = Node.create ~machine ~env ~tasks:w.Workloads.tasks () in
      let stats = Node.run node ~until:200_000 in
      Alcotest.(check bool)
        (w.Workloads.name ^ " does work")
        true
        (stats.Node.busy_cycles > 0);
      Alcotest.(check int) (w.Workloads.name ^ " drops nothing") 0 stats.Node.tasks_dropped)
    Workloads.all

let test_horizons_positive () =
  List.iter
    (fun w ->
      Alcotest.(check bool) (w.Workloads.name ^ " horizon") true (w.Workloads.horizon > 0))
    Workloads.all

let suite =
  [
    Alcotest.test_case "all compile" `Quick test_all_compile;
    Alcotest.test_case "five workloads" `Quick test_five_workloads;
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "tasks reference procs" `Quick test_tasks_reference_procs;
    Alcotest.test_case "profiled reference procs" `Quick test_profiled_reference_procs;
    Alcotest.test_case "cfgs well formed" `Quick test_cfgs_well_formed;
    Alcotest.test_case "profiled have branches" `Quick test_each_profiled_proc_has_branches;
    Alcotest.test_case "workloads run" `Quick test_workloads_run;
    Alcotest.test_case "horizons positive" `Quick test_horizons_positive;
  ]
