(* Profilekit.Wire: the versioned probe-batch format.  A base station
   must never misparse an uplink batch: round-trips are exact, and every
   malformed or wrong-version input fails with the typed error, both
   directly and through the collectors' _wire entry points. *)

open Mote_lang.Ast.Dsl
module Compile = Mote_lang.Compile
module Asm = Mote_isa.Asm
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices
module Probes = Profilekit.Probes
module Wire = Profilekit.Wire

let record pc cycles value = { Devices.pc; cycles; value }

let check_records msg expected actual =
  Alcotest.(check (list (triple int int int)))
    msg
    (List.map (fun r -> (r.Devices.pc, r.Devices.cycles, r.Devices.value)) expected)
    (List.map (fun r -> (r.Devices.pc, r.Devices.cycles, r.Devices.value)) actual)

let roundtrip () =
  let records =
    [
      record 0 0 0;
      record 17 1234 42;
      record 65535 999_999_999 65535;
      (* cycles occupy 48 bits on the wire *)
      record 3 ((1 lsl 48) - 1) 7;
    ]
  in
  match Wire.decode (Wire.encode records) with
  | Ok got -> check_records "roundtrip" records got
  | Error e -> Alcotest.failf "decode failed: %s" (Wire.error_to_string e)

let roundtrip_empty () =
  match Wire.decode (Wire.encode []) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty batch decoded to records"
  | Error e -> Alcotest.failf "decode failed: %s" (Wire.error_to_string e)

let bad_magic () =
  let b = Bytes.of_string (Wire.encode [ record 1 2 3 ]) in
  Bytes.set b 0 'X';
  match Wire.decode (Bytes.to_string b) with
  | Error Wire.Bad_magic -> ()
  | Ok _ | Error _ -> Alcotest.fail "corrupted magic accepted"

let unsupported_version () =
  let b = Bytes.of_string (Wire.encode [ record 1 2 3 ]) in
  (* bump the big-endian u16 version at offset 4 *)
  Bytes.set b 4 '\000';
  Bytes.set b 5 '\002';
  match Wire.decode (Bytes.to_string b) with
  | Error (Wire.Unsupported_version 2) -> ()
  | Ok _ | Error _ -> Alcotest.fail "future version accepted"

let truncated () =
  let s = Wire.encode [ record 1 2 3; record 4 5 6 ] in
  let cut = String.sub s 0 (String.length s - 1) in
  (match Wire.decode cut with
  | Error (Wire.Truncated { expected; got }) ->
      Alcotest.(check int) "expected" (String.length s) expected;
      Alcotest.(check int) "got" (String.length s - 1) got
  | Ok _ | Error _ -> Alcotest.fail "truncated batch accepted");
  (* shorter than the header itself *)
  match Wire.decode "CTPL" with
  | Error (Wire.Truncated _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "bare magic accepted"

(* A real instrumented run, shipped through the wire and collected: the
   _wire collectors must agree exactly with the record-list collectors. *)
let program =
  {
    Mote_lang.Ast.globals = [ ("acc", 0) ];
    arrays = [];
    procs =
      [
        proc "task" ~params:[] ~locals:[ "x" ]
          [
            set "x" (sensor 0);
            if_ (v "x" >: i 100)
              [ set "acc" (v "acc" +: i 2) ]
              [ set "acc" (v "acc" +: i 1) ];
          ];
      ];
  }

let instrumented_log () =
  let c = Compile.compile program in
  let inst = Asm.assemble (Probes.instrument c.Compile.items) in
  let devices = Devices.create () in
  let m = Machine.create ~program:inst ~devices () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  for _ = 1 to 50 do
    ignore (Machine.run_proc m "task")
  done;
  (inst, Devices.probe_log devices)

let collectors_agree () =
  let inst, log = instrumented_log () in
  let batch = Wire.encode log in
  let direct = Probes.collect_records ~program:inst ~resolution:1 log in
  let wired = Probes.collect_wire ~program:inst ~resolution:1 batch in
  Alcotest.(check (array (float 1e-9)))
    "strict samples"
    (Probes.samples_for direct "task")
    (Probes.samples_for wired "task");
  let direct = Probes.collect_lossy_records ~program:inst ~resolution:1 log in
  let wired = Probes.collect_lossy_wire ~program:inst ~resolution:1 batch in
  Alcotest.(check int) "lossy discarded" direct.Probes.discarded wired.Probes.discarded;
  Alcotest.(check (array (float 1e-9)))
    "lossy samples"
    (Probes.samples_for direct.Probes.samples "task")
    (Probes.samples_for wired.Probes.samples "task")

let collectors_reject () =
  let inst, log = instrumented_log () in
  let b = Bytes.of_string (Wire.encode log) in
  Bytes.set b 5 '\007';
  let batch = Bytes.to_string b in
  let rejects f =
    match f () with
    | exception Wire.Error (Wire.Unsupported_version 7) -> ()
    | _ -> Alcotest.fail "collector accepted an unknown wire version"
  in
  rejects (fun () -> Probes.collect_wire ~program:inst ~resolution:1 batch);
  rejects (fun () -> Probes.collect_lossy_wire ~program:inst ~resolution:1 batch)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick roundtrip;
    Alcotest.test_case "roundtrip empty" `Quick roundtrip_empty;
    Alcotest.test_case "bad magic" `Quick bad_magic;
    Alcotest.test_case "unsupported version" `Quick unsupported_version;
    Alcotest.test_case "truncated" `Quick truncated;
    Alcotest.test_case "wire collectors agree" `Quick collectors_agree;
    Alcotest.test_case "wire collectors reject versions" `Quick collectors_reject;
  ]
