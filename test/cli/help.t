The estimating subcommands (profile, place, report, fleet) share one
flag vocabulary, defined once in Ctomo_flags.  This test holds them to
it: for each shared flag, the rendered help entry must be byte-identical
in every subcommand that offers it — same names, same metavariable,
same doc string.  A flag redefined locally (and drifting) fails here.

  $ extract () {
  >   ctomo "$1" --help=plain | awk -v opt="$2" '
  >     $0 ~ "^ +" opt "([ =,]|$)" { grab = 1 }
  >     grab && $0 ~ "^ *$" { grab = 0 }
  >     grab { sub(/^ +/, ""); print }'
  > }

Flags every estimating subcommand must document identically:

  $ for opt in "-w" "--seed" "--resolution" "--jitter" "--horizon" "-j" \
  >            "--loss" "--corrupt" "--duplicate" "--reorder" "--min-samples"; do
  >   extract profile "$opt" > ref.txt
  >   test -s ref.txt || echo "MISSING: profile $opt"
  >   for sub in place report fleet; do
  >     extract "$sub" "$opt" > cur.txt
  >     test -s cur.txt || echo "MISSING: $sub $opt"
  >     cmp -s ref.txt cur.txt || { echo "MISMATCH: $sub $opt"; diff ref.txt cur.txt; }
  >   done
  > done

The batch-estimation robustness knobs configure sanitization and the
outlier mixture of the offline EM; fleet's online estimators do not
take them, so they are shared by profile/place/report only:

  $ for opt in "--sanitize" "--robust"; do
  >   extract profile "$opt" > ref.txt
  >   test -s ref.txt || echo "MISSING: profile $opt"
  >   for sub in place report; do
  >     extract "$sub" "$opt" > cur.txt
  >     test -s cur.txt || echo "MISSING: $sub $opt"
  >     cmp -s ref.txt cur.txt || { echo "MISMATCH: $sub $opt"; diff ref.txt cur.txt; }
  >   done
  > done

The estimator-method flag is shared by profile and place:

  $ extract profile "--method" > ref.txt
  $ test -s ref.txt || echo "MISSING: profile --method"
  $ extract place "--method" > cur.txt
  $ cmp -s ref.txt cur.txt || { echo "MISMATCH: place --method"; diff ref.txt cur.txt; }

And fleet's own flags exist (the campaign shape is fleet-specific, not
shared):

  $ for opt in "--nodes" "--rounds" "--batch" "--field" "--no-vary" \
  >            "--decay" "--replace-every" "--timings"; do
  >   extract fleet "$opt" > cur.txt
  >   test -s cur.txt || echo "MISSING: fleet $opt"
  > done
