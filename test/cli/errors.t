Operational failures must exit 1 with a one-line message, never a
backtrace: a base-station operator scripting ctomo distinguishes "my
request was infeasible" (exit 1) from "the estimator crashed" (anything
else).

An unwritable --save-profile path (Sys_error):

  $ ctomo profile -w sense --horizon 20000 --save-profile /nonexistent-dir/x.prof > /dev/null
  ctomo: /nonexistent-dir/x.prof: No such file or directory
  [1]

A malformed saved profile (Profile_io.Format_error):

  $ echo garbage > bad.prof
  $ ctomo place -w sense --horizon 20000 --profile bad.prof
  ctomo: missing "codetomo-profile 1" header
  [1]

An infeasible device configuration (Invalid_argument):

  $ ctomo profile -w sense --horizon 20000 --resolution 0
  ctomo: Devices.create: resolution must be positive
  [1]

The guard does not swallow success: a clean run still exits 0.

  $ ctomo profile -w sense --horizon 20000 > /dev/null

Rejection is not an error: with a sample floor no procedure can meet,
the pipeline completes, reports the verdicts, and exits 0 (placement
would simply keep the natural layout).

  $ ctomo profile -w sense --horizon 20000 --min-samples 100000 | grep -c 'health: rejected'
  2
