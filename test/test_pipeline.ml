(* Codetomo.Pipeline: the end-to-end integration tests.  These use a
   shortened horizon to stay fast while keeping enough samples for the
   estimators. *)

module P = Codetomo.Pipeline
module Node = Mote_os.Node

let config = { P.default_config with P.horizon = Some 600_000 }

(* Profile runs are expensive; share one per workload across tests. *)
let runs =
  lazy
    (List.map (fun w -> (w.Workloads.name, P.profile ~config w)) Workloads.all)

let run_of name = List.assoc name (Lazy.force runs)

let test_profile_produces_samples () =
  List.iter
    (fun (name, run) ->
      List.iter
        (fun (proc, samples) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s has samples" name proc)
            true
            (Array.length samples > 10))
        run.P.samples)
    (Lazy.force runs)

let test_invocations_match_samples () =
  List.iter
    (fun (_, run) ->
      List.iter
        (fun (proc, samples) ->
          Alcotest.(check int) proc
            (List.assoc proc run.P.invocations)
            (Array.length samples))
        run.P.samples)
    (Lazy.force runs)

let test_samples_at_least_lower_bound () =
  (* Every exclusive sample must be at least the cheapest path cost through
     its (instrumented) procedure, minus the window correction. *)
  List.iter
    (fun (name, run) ->
      List.iter
        (fun (proc, samples) ->
          let model = P.model_of run proc in
          let paths = Tomo.Paths.enumerate ~max_paths:20000 ~max_visits:16 model in
          let min_cost = Tomo.Paths.min_cost paths in
          Array.iter
            (fun s ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s sample %.0f >= %.0f" name proc s min_cost)
                true
                (s >= min_cost -. 1.0))
            samples)
        run.P.samples)
    (Lazy.force runs)

let test_estimation_accuracy_em () =
  (* With exact timers the EM estimates should be very close to ground
     truth wherever paths are cost-distinguishable; we assert the
     suite-level mean is tight and every workload is within a loose
     bound (identifiability can blur individual parameters). *)
  let maes =
    List.concat_map
      (fun (_, run) -> List.map (fun e -> e.P.mae) (P.estimate run))
      (Lazy.force runs)
  in
  let mean = List.fold_left ( +. ) 0.0 maes /. float_of_int (List.length maes) in
  Alcotest.(check bool) (Printf.sprintf "mean MAE %.4f < 0.05" mean) true (mean < 0.05);
  List.iter
    (fun mae -> Alcotest.(check bool) (Printf.sprintf "mae %.3f < 0.25" mae) true (mae < 0.25))
    maes

let test_naive_is_worse_than_em () =
  let better = ref 0 and total = ref 0 in
  List.iter
    (fun (_, run) ->
      let em = P.estimate ~method_:Tomo.Estimator.Em run in
      let naive = P.estimate ~method_:Tomo.Estimator.Naive run in
      List.iter2
        (fun e n ->
          if Array.length e.P.truth > 0 then begin
            incr total;
            if e.P.mae <= n.P.mae +. 1e-9 then incr better
          end)
        em naive)
    (Lazy.force runs);
  Alcotest.(check bool)
    (Printf.sprintf "EM no worse than naive on %d/%d procs" !better !total)
    true
    (!better >= (3 * !total / 4))

let test_estimated_freqs_shape () =
  let run = run_of "sense" in
  let freqs = P.estimated_freqs run (P.estimate run) in
  List.iter
    (fun (proc, freq) ->
      let inv = float_of_int (List.assoc proc run.P.invocations) in
      Alcotest.(check (float 1e-6)) "invocations preserved" inv
        (Cfgir.Freq.invocations freq))
    freqs

let test_compare_layouts_ordering () =
  (* The paper's headline: tomography ~ perfect < natural < worst.  We
     assert the weak ordering that must hold for the reproduction. *)
  List.iter
    (fun (name, run) ->
      let variants = P.compare_layouts run in
      let rate label = (List.find (fun v -> v.P.label = label) variants).P.taken_rate in
      let taken label =
        (List.find (fun v -> v.P.label = label) variants).P.taken_transfers
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: tomography beats natural" name)
        true
        (taken "tomography" < taken "natural");
      Alcotest.(check bool)
        (Printf.sprintf "%s: perfect beats natural" name)
        true
        (taken "perfect" < taken "natural");
      Alcotest.(check bool)
        (Printf.sprintf "%s: worst stalls most" name)
        true
        (taken "worst" >= taken "natural");
      Alcotest.(check bool)
        (Printf.sprintf "%s: tomography within half of perfect's headroom" name)
        true
        (taken "tomography" - taken "perfect"
        <= ((taken "natural" - taken "perfect") / 2) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "%s: rate improves too" name)
        true
        (rate "tomography" < rate "natural"))
    (Lazy.force runs)

let test_compare_layouts_cycles () =
  List.iter
    (fun (name, run) ->
      let variants = P.compare_layouts run in
      let busy label = (List.find (fun v -> v.P.label = label) variants).P.busy_cycles in
      Alcotest.(check bool)
        (Printf.sprintf "%s: tomography saves cycles" name)
        true
        (busy "tomography" < busy "natural"))
    (Lazy.force runs)

let test_run_binary_determinism () =
  let run = run_of "filter" in
  let binary = P.natural_binary run in
  let a = P.run_binary ~config run.P.workload binary ~label:"x" in
  let b = P.run_binary ~config run.P.workload binary ~label:"x" in
  Alcotest.(check int) "same cycles" a.P.busy_cycles b.P.busy_cycles;
  Alcotest.(check (float 1e-12)) "same rate" a.P.taken_rate b.P.taken_rate

let test_noise_sigma () =
  Alcotest.(check bool) "higher resolution -> more noise" true
    (P.noise_sigma { config with P.timer_resolution = 16 }
    > P.noise_sigma { config with P.timer_resolution = 1 })

let test_quantized_profiling_still_estimates () =
  (* Resolution 4: samples are coarse but EM should still land close. *)
  let w = Workloads.filter in
  let run = P.profile ~config:{ config with P.timer_resolution = 4 } w in
  let est = P.estimate run in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "quantized mae %.3f < 0.2" e.P.mae)
        true (e.P.mae < 0.2))
    est

(* --- lossy telemetry: the graceful-degradation acceptance tests --- *)

(* The field preset: 5% loss + 1% corruption, the ISSUE's operating
   point.  One faulted run per workload, shared across the tests. *)
let faulted_config =
  { config with P.faults = Some (Profilekit.Transport.field ()) }

let faulted_runs =
  lazy
    (List.map (fun w -> (w.Workloads.name, P.profile ~config:faulted_config w)) Workloads.all)

let hardened_estimate run =
  P.estimate ~sanitize:Tomo.Sanitize.default ~outlier:Tomo.Em.default_outlier
    ~min_samples:Tomo.Health.default_min_samples run

let test_faulted_pipeline_completes () =
  (* At the field operating point every workload must profile, estimate
     and compare layouts without raising — degradation is typed, never
     thrown. *)
  List.iter
    (fun (name, run) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: transport dropped something" name)
        true
        (match run.P.transport with Some s -> s.Profilekit.Transport.sent > s.Profilekit.Transport.delivered | None -> false);
      let ests = hardened_estimate run in
      Alcotest.(check bool) (Printf.sprintf "%s: estimations" name) true (ests <> []);
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: finite mae" name)
            true (Float.is_finite e.P.mae))
        ests;
      let variants = P.compare_layouts ~sanitize:Tomo.Sanitize.default
          ~outlier:Tomo.Em.default_outlier ~min_samples:Tomo.Health.default_min_samples run
      in
      Alcotest.(check bool) (Printf.sprintf "%s: variants" name) true (List.length variants >= 4))
    (Lazy.force faulted_runs)

let test_sanitized_beats_unsanitized () =
  (* The ISSUE's accuracy clause: under faults, the hardened arm is at
     least as good per procedure (small tolerance for estimator noise)
     and strictly better in aggregate. *)
  let total_plain = ref 0.0 and total_hard = ref 0.0 in
  List.iter
    (fun (name, run) ->
      let plain = P.estimate run in
      let hard = hardened_estimate run in
      List.iter2
        (fun p h ->
          total_plain := !total_plain +. p.P.mae;
          total_hard := !total_hard +. h.P.mae;
          if not (Tomo.Health.is_rejected h.P.health) then
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s: hardened %.4f <= plain %.4f" name p.P.proc
                 h.P.mae p.P.mae)
              true
              (h.P.mae <= p.P.mae +. 0.02))
        plain hard)
    (Lazy.force faulted_runs);
  Alcotest.(check bool)
    (Printf.sprintf "aggregate: hardened %.4f < plain %.4f" !total_hard !total_plain)
    true
    (!total_hard < !total_plain)

let test_sample_floor_rejects () =
  (* An absurd floor rejects every procedure — with a typed verdict and
     the uniform fallback, not an exception. *)
  let run = run_of "filter" in
  let ests = P.estimate ~min_samples:max_int run in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s rejected" e.P.proc)
        true
        (Tomo.Health.is_rejected e.P.health))
    ests

let test_rejected_never_rewritten () =
  (* All-Rejected estimation ⇒ the tomography variant is flagged as a
     fallback and its binary behaves exactly like natural: no Rejected
     procedure was rewritten. *)
  let run = run_of "filter" in
  let variants = P.compare_layouts ~min_samples:max_int run in
  let tomo =
    List.find
      (fun v -> String.length v.P.label >= 10 && String.sub v.P.label 0 10 = "tomography")
      variants
  in
  let natural = List.find (fun v -> v.P.label = "natural") variants in
  Alcotest.(check bool)
    (Printf.sprintf "label %S flags the fallback" tomo.P.label)
    true
    (tomo.P.label <> "tomography");
  Alcotest.(check bool) "mentions fallback" true
    (String.length tomo.P.label > 10
    && String.sub tomo.P.label (String.length tomo.P.label - 9) 9 = "fallback]");
  Alcotest.(check int) "same taken transfers as natural" natural.P.taken_transfers
    tomo.P.taken_transfers;
  Alcotest.(check int) "same busy cycles as natural" natural.P.busy_cycles
    tomo.P.busy_cycles

let suite =
  [
    Alcotest.test_case "profile produces samples" `Slow test_profile_produces_samples;
    Alcotest.test_case "invocations = samples" `Slow test_invocations_match_samples;
    Alcotest.test_case "samples above lower bound" `Slow test_samples_at_least_lower_bound;
    Alcotest.test_case "EM accuracy" `Slow test_estimation_accuracy_em;
    Alcotest.test_case "EM vs naive" `Slow test_naive_is_worse_than_em;
    Alcotest.test_case "estimated freqs shape" `Slow test_estimated_freqs_shape;
    Alcotest.test_case "layout ordering" `Slow test_compare_layouts_ordering;
    Alcotest.test_case "layout cycles" `Slow test_compare_layouts_cycles;
    Alcotest.test_case "run_binary determinism" `Slow test_run_binary_determinism;
    Alcotest.test_case "noise sigma" `Quick test_noise_sigma;
    Alcotest.test_case "quantized profiling" `Slow test_quantized_profiling_still_estimates;
    Alcotest.test_case "faulted pipeline completes" `Slow test_faulted_pipeline_completes;
    Alcotest.test_case "sanitized beats unsanitized" `Slow test_sanitized_beats_unsanitized;
    Alcotest.test_case "sample floor rejects" `Slow test_sample_floor_rejects;
    Alcotest.test_case "rejected never rewritten" `Slow test_rejected_never_rewritten;
  ]
