(* The fuzz subsystem (lib/fuzz) and the directed edge-case coverage that
   rode along with it: corpus replay on every test run, generator and
   shrinker properties, campaign determinism across job counts, Mote_os
   Network/Energy edge cases, and Layout.Rewrite on degenerate
   placements. *)

module Gen = Fuzz.Gen
module Shrink = Fuzz.Shrink
module Runner = Fuzz.Runner
module Ast = Mote_lang.Ast
module Check = Mote_lang.Check
module Compile = Mote_lang.Compile
module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices
module Node = Mote_os.Node
module Network = Mote_os.Network
module Energy = Mote_os.Energy
module Cfg = Cfgir.Cfg
module Placement = Layout.Placement
module Rewrite = Layout.Rewrite

(* --- corpus replay: every committed finding stays fixed --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_corpus_replay () =
  (* cwd is test/ under `dune runtest`, the project root under
     `dune exec test/main.exe`. *)
  let dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus has entries" true (List.length files >= 5);
  List.iter
    (fun file ->
      let entry =
        try Runner.parse_corpus (read_file (Filename.concat dir file))
        with Runner.Corpus_error msg -> Alcotest.failf "%s: %s" file msg
      in
      match Runner.replay entry with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" file msg)
    files

(* --- generator: everything it emits must check and compile --- *)

let test_generator_always_checks () =
  for seed = 1 to 40 do
    let rng = Stats.Rng.stream ~seed ~index:0 in
    let p = Gen.program rng in
    (match Check.program p with
    | Ok () -> ()
    | Error msgs -> Alcotest.failf "seed %d: %s" seed (String.concat "; " msgs));
    ignore (Compile.compile p)
  done

let test_workloads_degenerate_configs () =
  (* Regression sweep for the Workloads.Generator fixes: zero-wide blocks
     used to crash Rng.int, negative loop bounds used to emit a
     sign-extended mask that defeated the loop bound. *)
  List.iter
    (fun (stmts_per_block, loop_bound) ->
      for seed = 1 to 10 do
        let config =
          { Workloads.Generator.seed; max_depth = 2; stmts_per_block; loop_bound }
        in
        let p = Workloads.Generator.generate ~config () in
        match Check.program p with
        | Ok () -> ignore (Compile.compile p)
        | Error msgs ->
            Alcotest.failf "sp=%d lb=%d seed %d: %s" stmts_per_block loop_bound
              seed (String.concat "; " msgs)
      done)
    [ (0, 4); (1, 0); (2, -7); (0, -1) ]

(* --- shrinker --- *)

open Ast.Dsl

let rec stmt_has_send = function
  | Ast.Radio_tx _ -> true
  | Ast.If (_, t, e) ->
      List.exists stmt_has_send t || List.exists stmt_has_send e
  | Ast.While (_, b) -> List.exists stmt_has_send b
  | _ -> false

let has_send (p : Ast.program) =
  List.exists (fun pr -> List.exists stmt_has_send pr.Ast.body) p.Ast.procs

let bulky_program =
  {
    Ast.globals = [ ("g", 3); ("h", 0) ];
    arrays = [ ("buf", 4) ];
    procs =
      [
        proc "helper" ~params:[ "x" ] ~locals:[] [ return (v "x" +: i 1) ];
        proc "fz_task" ~params:[] ~locals:[ "a" ]
          [
            set "a" (fn "helper" [ v "g" ]);
            if_ (v "a" >: i 2)
              [ set "g" (v "g" +: i 1); set_at "buf" (i 1) (v "a") ]
              [ set "h" (i 5) ];
            while_ (v "h" <: i 3) [ set "h" (v "h" +: i 1) ];
            send (v "g" +: v "h");
          ];
      ];
  }

let test_shrink_minimizes_to_send () =
  (match Check.program bulky_program with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "fixture: %s" (String.concat "; " msgs));
  let reduced, stats = Shrink.minimize ~still_fails:has_send bulky_program in
  Alcotest.(check bool) "reduced still has send" true (has_send reduced);
  (match Check.program reduced with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "reduced invalid: %s" (String.concat "; " msgs));
  Alcotest.(check int) "one proc left" 1 (List.length reduced.Ast.procs);
  Alcotest.(check int) "one statement left" 1 (Gen.stmt_count reduced);
  Alcotest.(check bool) "shrinking made progress" true (stats.Shrink.steps > 0)

let size_of (p : Ast.program) =
  (* Statements plus declarations: every one-step reduction must strictly
     reduce this measure or the statement count. *)
  Gen.stmt_count p
  + List.length p.Ast.globals
  + List.length p.Ast.arrays
  + List.length p.Ast.procs
  + List.fold_left (fun acc pr -> acc + List.length pr.Ast.locals) 0 p.Ast.procs

let test_shrink_candidates_strictly_smaller () =
  let rec expr_size = function
    | Ast.Int _ | Ast.Var _ | Ast.Read_sensor _ | Ast.Radio_rx | Ast.Timer_now
      ->
        1
    | Ast.Bin (_, a, b) | Ast.Rel (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
        1 + expr_size a + expr_size b
    | Ast.Not a -> 1 + expr_size a
    | Ast.Call_fn (_, args) -> 1 + List.fold_left (fun s e -> s + expr_size e) 0 args
    | Ast.Arr_get (_, e) -> 1 + expr_size e
  in
  let rec stmt_size = function
    | Ast.Assign (_, e) | Ast.Radio_tx e | Ast.Led e -> 1 + expr_size e
    | Ast.Arr_set (_, a, b) -> 1 + expr_size a + expr_size b
    | Ast.If (c, t, e) -> 1 + expr_size c + body_size t + body_size e
    | Ast.While (c, b) -> 1 + expr_size c + body_size b
    | Ast.Break -> 1
    | Ast.Call (_, args) -> 1 + List.fold_left (fun s e -> s + expr_size e) 0 args
    | Ast.Return None -> 1
    | Ast.Return (Some e) -> 1 + expr_size e
  and body_size b = List.fold_left (fun s st -> s + stmt_size st) 0 b in
  let ast_size p =
    size_of p
    + List.fold_left (fun acc pr -> acc + body_size pr.Ast.body) 0 p.Ast.procs
  in
  let base = ast_size bulky_program in
  let candidates = Shrink.shrink_program bulky_program in
  Alcotest.(check bool) "has candidates" true (candidates <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate strictly smaller" true (ast_size c < base))
    candidates

(* --- campaign determinism: the report is byte-identical at any -j --- *)

let report_string r = Format.asprintf "%a" Runner.pp_report r

let test_run_deterministic_across_jobs () =
  let r1 = Runner.run ~seed:5 ~cases:6 ~jobs:1 () in
  let r2 = Runner.run ~seed:5 ~cases:6 ~jobs:2 () in
  Alcotest.(check string) "-j 1 = -j 2" (report_string r1) (report_string r2);
  Alcotest.(check int) "no failures at seed 5" 0 (List.length r1.Runner.failures)

(* --- Mote_os.Network / Energy edge cases --- *)

let poller_program =
  {
    Ast.globals = [ ("got", 0); ("last", 0); ("polls", 0) ];
    arrays = [];
    procs =
      [
        proc "poll" ~params:[] ~locals:[ "p" ]
          [
            set "polls" (v "polls" +: i 1);
            set "p" radio_rx;
            if_ (v "p" <>: i 0)
              [ set "got" (v "got" +: i 1); set "last" (v "p") ]
              [];
          ];
      ];
  }

let sender_program =
  {
    Ast.globals = [ ("n", 0) ];
    arrays = [];
    procs =
      [ proc "beacon" ~params:[] ~locals:[] [ set "n" (v "n" +: i 1); send (v "n") ] ];
  }

let receiver_program =
  {
    Ast.globals = [ ("got", 0) ];
    arrays = [];
    procs =
      [
        proc "rx" ~params:[] ~locals:[ "p" ]
          [ set "p" radio_rx; set "got" (v "got" +: i 1) ];
      ];
  }

let make_node ?(tasks = []) program =
  let c = Compile.compile program in
  let devices = Devices.create () in
  let machine = Machine.create ~program:c.Compile.program ~devices () in
  let env = Env.create { Env.seed = 1; channels = []; radio = Env.Silent } in
  (c, Node.create ~machine ~env ~tasks ())

let read_global (c, node) ~proc name =
  Machine.read_mem (Node.machine node) (Compile.var_address c ~proc name)

let test_network_empty_radio_queue () =
  (* Reading the radio with nothing queued yields 0 and never faults: a
     lone polling node in a senderless network stays silent. *)
  let d = Devices.create () in
  Alcotest.(check int) "fresh queue is empty" 0 (Devices.radio_rx_pending d);
  Alcotest.(check int) "empty read yields 0" 0 (Devices.radio_rx d);
  let ((_, n) as poller) =
    make_node
      ~tasks:[ { Node.proc = "poll"; source = Node.Periodic { period = 700; offset = 0 } } ]
      poller_program
  in
  let net = Network.create ~nodes:[ n ] ~links:[] () in
  let stats = Network.run net ~until:50_000 in
  Alcotest.(check int) "nothing sent" 0 stats.Network.sent;
  Alcotest.(check int) "nothing delivered" 0 stats.Network.delivered;
  Alcotest.(check bool) "polled repeatedly" true
    (read_global poller ~proc:"poll" "polls" > 10);
  Alcotest.(check int) "no packet seen" 0 (read_global poller ~proc:"poll" "got");
  Alcotest.(check int) "empty reads returned 0" 0
    (read_global poller ~proc:"poll" "last")

let test_network_duplicate_delivery () =
  (* Two identical links between the same pair deliver every word twice:
     per-link copies are independent, and stats count each copy. *)
  let _, s =
    make_node
      ~tasks:
        [ { Node.proc = "beacon"; source = Node.Periodic { period = 5003; offset = 11 } } ]
      sender_program
  in
  let ((_, r) as rx) =
    make_node ~tasks:[ { Node.proc = "rx"; source = Node.On_radio_rx } ] receiver_program
  in
  let link = { Network.src = 0; dst = 1; loss = 0.0; delay = 50 } in
  let net = Network.create ~nodes:[ s; r ] ~links:[ link; link ] () in
  let stats = Network.run net ~until:200_000 in
  Alcotest.(check bool) "packets sent" true (stats.Network.sent > 10);
  Alcotest.(check int) "each word delivered twice" (2 * stats.Network.sent)
    stats.Network.delivered;
  Alcotest.(check int) "zero lost" 0 stats.Network.lost;
  Alcotest.(check (list (pair (pair int int) int)))
    "per-link count merges the copies"
    [ ((0, 1), stats.Network.delivered) ]
    stats.Network.per_link;
  Alcotest.(check int) "receiver ran once per copy" stats.Network.delivered
    (read_global rx ~proc:"rx" "got")

let test_energy_zero_node () =
  (* A node that never wakes: zero cycles, zero transmissions.  The
     report is all zeros and the lifetime projection diverges instead of
     faulting. *)
  let r = Energy.of_parts ~busy_cycles:0 ~idle_cycles:0 ~tx_words:0 () in
  Alcotest.(check (float 0.0)) "active" 0.0 r.Energy.active_mj;
  Alcotest.(check (float 0.0)) "sleep" 0.0 r.Energy.sleep_mj;
  Alcotest.(check (float 0.0)) "radio" 0.0 r.Energy.radio_mj;
  Alcotest.(check (float 0.0)) "total" 0.0 r.Energy.total_mj;
  let days =
    Energy.lifetime_days r ~horizon_cycles:1_000_000 ~cycles_per_second:1_000_000
  in
  Alcotest.(check bool) "zero power lives forever" true (days = infinity);
  Alcotest.(check bool) "degenerate horizon rejected" true
    (match Energy.lifetime_days r ~horizon_cycles:0 ~cycles_per_second:1_000_000 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Layout.Rewrite on degenerate placements --- *)

let straightline_program =
  {
    Ast.globals = [ ("acc", 0) ];
    arrays = [];
    procs =
      [
        proc "task" ~params:[] ~locals:[ "x" ]
          [ set "x" (v "acc" +: i 3); set "acc" (v "x" *: i 2); send (v "acc") ];
      ];
  }

let run_collect program ~proc ~times =
  let devices = Devices.create () in
  let m = Machine.create ~program ~devices () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  for _ = 1 to times do
    ignore (Machine.run_proc m proc)
  done;
  (Devices.tx_log devices, Machine.stats m)

let test_rewrite_single_block_proc () =
  (* A straight-line procedure has exactly one block, one legal placement,
     and rewriting with it is observationally a no-op. *)
  let c = Compile.compile straightline_program in
  let original = c.Compile.program in
  let cfg = Cfg.of_proc_name original "task" in
  Alcotest.(check int) "single block" 1 (Cfg.num_blocks cfg);
  let p = Placement.natural cfg in
  Alcotest.(check (array int)) "only placement is [|0|]" [| 0 |] p;
  let rewritten = Rewrite.program original ~placements:[ ("task", p) ] in
  let base_tx, base_stats = run_collect original ~proc:"task" ~times:25 in
  let tx, stats = run_collect rewritten ~proc:"task" ~times:25 in
  Alcotest.(check (list int)) "identical output" base_tx tx;
  Alcotest.(check int) "identical cycle count" base_stats.Machine.cycles
    stats.Machine.cycles

let branchy_program =
  {
    Ast.globals = [ ("a", 0); ("b", 0) ];
    arrays = [];
    procs =
      [
        proc "task" ~params:[] ~locals:[ "x" ]
          [
            set "x" (sensor 0);
            if_ (v "x" >: i 400)
              [ set "a" (v "a" +: v "x") ]
              [ set "b" (v "b" +: i 1) ];
            while_ (v "x" >: i 800) [ set "x" (v "x" -: i 300) ];
            send (v "a" +: v "b");
          ];
      ];
  }

let run_profiled program =
  let devices = Devices.create () in
  let seq = ref 0 in
  Devices.set_sensor devices (fun _ ->
      incr seq;
      !seq * 137 mod 1024);
  let m = Machine.create ~program ~devices () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  let oracle = Profilekit.Oracle.attach m in
  for _ = 1 to 100 do
    ignore (Machine.run_proc m "task")
  done;
  (Profilekit.Oracle.freq oracle ~proc:"task" ~invocations:100.0, Machine.stats m)

let test_rewrite_already_optimal_is_fixpoint () =
  (* Rewriting an already-optimized binary with its own natural placement
     changes nothing: same output, same taken transfers, same cycles. *)
  let c = Compile.compile branchy_program in
  let original = c.Compile.program in
  let freq, _ = run_profiled original in
  let placed =
    Rewrite.program original
      ~placements:[ ("task", Layout.Algorithms.pettis_hansen freq) ]
  in
  let cfg' = Cfg.of_proc_name placed "task" in
  let again =
    Rewrite.program placed ~placements:[ ("task", Placement.natural cfg') ]
  in
  let run p =
    let devices = Devices.create () in
    let seq = ref 0 in
    Devices.set_sensor devices (fun _ ->
        incr seq;
        !seq * 137 mod 1024);
    let m = Machine.create ~program:p ~devices () in
    ignore (Machine.run_proc m Compile.init_proc_name);
    for _ = 1 to 100 do
      ignore (Machine.run_proc m "task")
    done;
    (Devices.tx_log devices, Machine.stats m)
  in
  let tx1, s1 = run placed in
  let tx2, s2 = run again in
  Alcotest.(check (list int)) "identical output" tx1 tx2;
  Alcotest.(check int) "identical cycles" s1.Machine.cycles s2.Machine.cycles;
  Alcotest.(check int) "identical taken branches" s1.Machine.taken_cond_branches
    s2.Machine.taken_cond_branches;
  Alcotest.(check int) "identical jumps" s1.Machine.unconditional_transfers
    s2.Machine.unconditional_transfers

let jump_chain_program =
  (* Three blocks chained purely by unconditional jumps — no conditional
     branch anywhere, so every layout is behaviourally identical and the
     only layout-sensitive cost is the jumps themselves. *)
  Asm.assemble
    [
      Asm.Proc "f";
      Asm.movi 0 1;
      Asm.jmp "second";
      Asm.Label "last";
      Asm.movi 2 7;
      Asm.ret;
      Asm.Label "second";
      Asm.movi 1 3;
      Asm.jmp "last";
    ]

let run_chain program =
  let devices = Devices.create () in
  let m = Machine.create ~program ~devices () in
  ignore (Machine.run_proc m "f");
  ((Machine.reg m 0, Machine.reg m 1, Machine.reg m 2), Machine.stats m)

let test_rewrite_jump_chain () =
  let cfg = Cfg.of_proc_name jump_chain_program "f" in
  Alcotest.(check int) "three blocks" 3 (Cfg.num_blocks cfg);
  Array.iter
    (fun b ->
      match b.Cfg.term with
      | Cfg.T_branch _ -> Alcotest.fail "unexpected conditional branch"
      | _ -> ())
    cfg.Cfg.blocks;
  let regs_base, stats_base = run_chain jump_chain_program in
  Alcotest.(check (triple int int int)) "baseline registers" (1, 3, 7) regs_base;
  Alcotest.(check int) "natural order takes both jumps" 2
    stats_base.Machine.unconditional_transfers;
  List.iter
    (fun p ->
      let rewritten = Rewrite.program jump_chain_program ~placements:[ ("f", p) ] in
      let regs, _ = run_chain rewritten in
      Alcotest.(check (triple int int int)) "registers preserved" (1, 3, 7) regs)
    [ [| 0; 1; 2 |]; [| 0; 2; 1 |] ];
  (* Laying the chain out in execution order turns both jumps into
     fall-throughs and deletes them. *)
  let chained = Rewrite.program jump_chain_program ~placements:[ ("f", [| 0; 2; 1 |]) ] in
  let _, stats_opt = run_chain chained in
  Alcotest.(check int) "chain order deletes all jumps" 0
    stats_opt.Machine.unconditional_transfers;
  Alcotest.(check bool) "chain order is cheaper" true
    (stats_opt.Machine.cycles < stats_base.Machine.cycles)

let suite =
  [
    Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
    Alcotest.test_case "generator always checks" `Quick test_generator_always_checks;
    Alcotest.test_case "workloads degenerate configs" `Quick
      test_workloads_degenerate_configs;
    Alcotest.test_case "shrink minimizes to send" `Quick test_shrink_minimizes_to_send;
    Alcotest.test_case "shrink candidates strictly smaller" `Quick
      test_shrink_candidates_strictly_smaller;
    Alcotest.test_case "run deterministic across jobs" `Quick
      test_run_deterministic_across_jobs;
    Alcotest.test_case "network empty radio queue" `Quick test_network_empty_radio_queue;
    Alcotest.test_case "network duplicate delivery" `Quick
      test_network_duplicate_delivery;
    Alcotest.test_case "energy zero node" `Quick test_energy_zero_node;
    Alcotest.test_case "rewrite single-block proc" `Quick test_rewrite_single_block_proc;
    Alcotest.test_case "rewrite already-optimal fixpoint" `Quick
      test_rewrite_already_optimal_is_fixpoint;
    Alcotest.test_case "rewrite jump chain" `Quick test_rewrite_jump_chain;
  ]
