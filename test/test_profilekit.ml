(* Profilekit: probes, edge counters, oracle, flow reconstruction,
   overhead accounting. *)

open Mote_lang.Ast.Dsl
module Compile = Mote_lang.Compile
module Asm = Mote_isa.Asm
module Isa = Mote_isa.Isa
module Program = Mote_isa.Program
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices
module Cfg = Cfgir.Cfg
module Freq = Cfgir.Freq
module Probes = Profilekit.Probes
module Edges = Profilekit.Edges
module Oracle = Profilekit.Oracle

(* A procedure whose branch is steered by a sensor value we control. *)
let steered_program =
  {
    Mote_lang.Ast.globals = [ ("hits", 0); ("miss", 0) ];
    arrays = [];
    procs =
      [
        proc "task" ~params:[] ~locals:[ "x" ]
          [
            set "x" (sensor 0);
            if_ (v "x" >: i 100)
              [ set "hits" (v "hits" +: i 1); set "hits" (v "hits" +: i 0) ]
              [ set "miss" (v "miss" +: i 1) ];
          ];
      ];
  }

let caller_callee_program =
  {
    Mote_lang.Ast.globals = [ ("out", 0) ];
    arrays = [];
    procs =
      [
        proc "leaf" ~params:[ "x" ] ~locals:[] [ return (v "x" +: i 1) ];
        proc "top" ~params:[] ~locals:[] [ set "out" (fn "leaf" [ i 4 ]) ];
      ];
  }

let instrumented_machine ?(devices = Devices.create ()) program =
  let c = Compile.compile program in
  let inst = Asm.assemble (Probes.instrument c.Compile.items) in
  let m = Machine.create ~program:inst ~devices () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  (c, inst, m)

let test_instrument_adds_probes () =
  let c = Compile.compile steered_program in
  let inst = Asm.assemble (Probes.instrument c.Compile.items) in
  let count_probes p =
    Array.fold_left
      (fun acc ins -> match ins with Isa.Out (Isa.P_probe, _) -> acc + 1 | _ -> acc)
      0 (Program.code p)
  in
  Alcotest.(check int) "no probes originally" 0 (count_probes c.Compile.program);
  (* task has one entry + one (implicit) ret probe. *)
  Alcotest.(check int) "two probe sites" 2 (count_probes inst)

let test_init_not_instrumented () =
  let c = Compile.compile steered_program in
  let inst = Asm.assemble (Probes.instrument c.Compile.items) in
  let init = Option.get (Program.find_proc inst Compile.init_proc_name) in
  for addr = init.Program.entry to init.Program.finish - 1 do
    match Program.instr inst addr with
    | Isa.Out (Isa.P_probe, _) -> Alcotest.fail "__init must not carry probes"
    | _ -> ()
  done

let test_sample_counts_match_invocations () =
  let devices = Devices.create () in
  Devices.set_sensor devices (fun _ -> 500);
  let (_, inst, m) = instrumented_machine ~devices steered_program in
  for _ = 1 to 25 do
    ignore (Machine.run_proc m "task")
  done;
  let set = Probes.collect ~program:inst ~devices in
  Alcotest.(check int) "25 samples" 25 (Array.length (Probes.samples_for set "task"))

let test_window_matches_analytic_cost () =
  (* Golden check tying probes, CFG costs and the model constants together:
     the measured window must equal block costs + penalties - correction,
     exactly, for a deterministic run. *)
  let devices = Devices.create () in
  Devices.set_sensor devices (fun _ -> 500);
  let (_, inst, m) = instrumented_machine ~devices steered_program in
  ignore (Machine.run_proc m "task");
  let set = Probes.collect ~program:inst ~devices in
  let sample = (Probes.samples_for set "task").(0) in
  (* 500 > 100, so the fall path (then-arm) runs: blocks 0 (entry+cond),
     then-arm, join. *)
  let cfg = Cfg.of_proc_name inst "task" in
  let model = Tomo.Model.of_cfg cfg in
  let paths = Tomo.Paths.enumerate model in
  let matching =
    Array.exists (fun p -> p.Tomo.Paths.cost = sample) (Tomo.Paths.paths paths)
  in
  Alcotest.(check bool)
    (Printf.sprintf "sample %.0f equals an analytic path cost" sample)
    true matching

let test_exclusive_time_subtracts_callee () =
  let devices = Devices.create () in
  let (_, inst, m) = instrumented_machine ~devices caller_callee_program in
  for _ = 1 to 10 do
    ignore (Machine.run_proc m "top")
  done;
  let set = Probes.collect ~program:inst ~devices in
  let top = Probes.samples_for set "top" in
  let leaf = Probes.samples_for set "leaf" in
  Alcotest.(check int) "top samples" 10 (Array.length top);
  Alcotest.(check int) "leaf samples" 10 (Array.length leaf);
  (* Deterministic program: exclusive times are constant, and the model of
     `top` (which includes the call residual) must predict them exactly. *)
  Array.iter (fun s -> Alcotest.(check (float 0.0)) "top constant" top.(0) s) top;
  let model = Tomo.Model.of_cfg (Cfg.of_proc_name inst "top") in
  let predicted = Tomo.Model.mean_time model ~theta:[||] in
  Alcotest.(check (float 1e-6)) "exclusive time matches model" predicted top.(0)

let test_unbalanced_log () =
  let devices = Devices.create () in
  Devices.probe devices ~pc:0 ~cycles:0 ~value:0;
  let c = Compile.compile steered_program in
  let inst = Asm.assemble (Probes.instrument c.Compile.items) in
  Alcotest.(check bool) "stray probe detected" true
    (match Probes.collect ~program:inst ~devices with
    | _ -> false
    | exception Probes.Unbalanced _ -> true)

let test_probe_constants () =
  Alcotest.(check int) "per-invocation cycles" 8 Probes.probe_cycles_per_invocation;
  Alcotest.(check int) "window correction" 6 Probes.window_correction;
  Alcotest.(check int) "call residual" 10 Probes.call_residual

(* --- edge instrumentation --- *)

let run_with_edges ?(n = 200) program task sensor_value =
  let c = Compile.compile program in
  let inst = Asm.assemble (Edges.instrument c.Compile.items) in
  let devices = Devices.create () in
  Devices.set_sensor devices (fun _ -> sensor_value ());
  let m = Machine.create ~program:inst ~devices () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  for _ = 1 to n do
    ignore (Machine.run_proc m task)
  done;
  (c, devices, m)

let test_edge_counts_match_oracle () =
  (* Run the instrumented binary and, separately, an oracle-hooked original
     with the same inputs: branch outcome counts must agree exactly. *)
  let seq = ref 0 in
  let sensor () =
    incr seq;
    if !seq mod 3 = 0 then 500 else 50
  in
  let c, _, machine = run_with_edges steered_program "task" sensor in
  let counts = Edges.counts_of_memory ~original:c.Compile.program machine in
  (* Oracle on the original binary with the same deterministic input. *)
  let seq2 = ref 0 in
  let d2 = Devices.create () in
  Devices.set_sensor d2 (fun _ ->
      incr seq2;
      if !seq2 mod 3 = 0 then 500 else 50);
  let m2 = Machine.create ~program:c.Compile.program ~devices:d2 () in
  ignore (Machine.run_proc m2 Compile.init_proc_name);
  let oracle = Oracle.attach m2 in
  for _ = 1 to 200 do
    ignore (Machine.run_proc m2 "task")
  done;
  let oracle_counts = Oracle.counts oracle ~proc:"task" in
  let counter_counts = List.assoc "task" counts in
  List.iter2
    (fun (id_a, (tk_a, fl_a)) (id_b, (tk_b, fl_b)) ->
      Alcotest.(check int) "block id" id_a id_b;
      Alcotest.(check int) "taken" tk_a tk_b;
      Alcotest.(check int) "fall" fl_a fl_b)
    counter_counts oracle_counts

let test_edge_instrumentation_preserves_semantics () =
  let c = Compile.compile steered_program in
  let inst = Asm.assemble (Edges.instrument c.Compile.items) in
  let run p =
    let devices = Devices.create () in
    Devices.set_sensor devices (fun _ -> 500);
    let m = Machine.create ~program:p ~devices () in
    ignore (Machine.run_proc m Compile.init_proc_name);
    for _ = 1 to 7 do
      ignore (Machine.run_proc m "task")
    done;
    Machine.read_mem m (Compile.var_address c ~proc:"task" "hits")
  in
  Alcotest.(check int) "same result" (run c.Compile.program) (run inst)

let test_num_counters () =
  let c = Compile.compile steered_program in
  (* One conditional branch -> 2 counters. *)
  Alcotest.(check int) "counters" 2 (Edges.num_counters c.Compile.program)

let test_thetas_of_counters () =
  let seq = ref 0 in
  let sensor () =
    incr seq;
    if !seq mod 4 = 0 then 500 else 50
  in
  let c, _, machine = run_with_edges ~n:400 steered_program "task" sensor in
  let thetas = Edges.thetas_of_memory ~original:c.Compile.program machine in
  match List.assoc "task" thetas with
  | [ (_, p) ] ->
      (* Taken = else branch = (x <= 100) = 3/4 of runs. *)
      Alcotest.(check (float 0.01)) "theta" 0.75 p
  | _ -> Alcotest.fail "expected one branch"

(* --- oracle --- *)

let test_oracle_thetas () =
  let c = Compile.compile steered_program in
  let devices = Devices.create () in
  let seq = ref 0 in
  Devices.set_sensor devices (fun _ ->
      incr seq;
      if !seq mod 2 = 0 then 500 else 50);
  let m = Machine.create ~program:c.Compile.program ~devices () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  let oracle = Oracle.attach m in
  for _ = 1 to 100 do
    ignore (Machine.run_proc m "task")
  done;
  Alcotest.(check int) "total branches observed" 100 (Oracle.total_branches oracle);
  (match Oracle.thetas oracle ~proc:"task" with
  | [ (_, p) ] -> Alcotest.(check (float 1e-9)) "exact ratio" 0.5 p
  | _ -> Alcotest.fail "one branch expected");
  Oracle.detach oracle;
  ignore (Machine.run_proc m "task");
  Alcotest.(check int) "detached stops counting" 100 (Oracle.total_branches oracle)

let test_oracle_freq_conservation () =
  let c = Compile.compile steered_program in
  let devices = Devices.create () in
  Devices.set_sensor devices (fun _ -> 500);
  let m = Machine.create ~program:c.Compile.program ~devices () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  let oracle = Oracle.attach m in
  for _ = 1 to 50 do
    ignore (Machine.run_proc m "task")
  done;
  let freq = Oracle.freq oracle ~proc:"task" ~invocations:50.0 in
  let cfg = Freq.cfg freq in
  let visits = Freq.block_visits freq in
  (* Flow conservation: every block's visits = outflow. *)
  for id = 0 to Cfg.num_blocks cfg - 1 do
    let outflow =
      List.fold_left
        (fun acc (dst, kind) -> acc +. Freq.get freq ~src:id ~dst ~kind)
        0.0 (Cfg.successors cfg id)
    in
    match (Cfg.block cfg id).Cfg.term with
    | Cfg.T_ret | Cfg.T_halt -> ()
    | _ -> Alcotest.(check (float 1e-6)) (Printf.sprintf "conservation B%d" id) visits.(id) outflow
  done

(* --- flow reconstruction --- *)

let test_flowcount_known () =
  (* Diamond with branch counts 30 taken / 70 fall over 100 invocations. *)
  let p =
    Asm.assemble
      [
        Asm.Proc "f"; Asm.cmpi 0 0; Asm.br Isa.Eq "arm2"; Asm.movi 1 10; Asm.jmp "join";
        Asm.Label "arm2"; Asm.movi 1 20; Asm.Label "join"; Asm.ret;
      ]
  in
  let cfg = Cfg.of_proc_name p "f" in
  let freq =
    Profilekit.Flowcount.freq_of_branch_counts cfg ~invocations:100.0
      ~counts:[ (0, (30.0, 70.0)) ]
  in
  Alcotest.(check (float 1e-6)) "jump edge carries fall flow" 70.0
    (Freq.get freq ~src:1 ~dst:3 ~kind:Cfg.K_jump);
  Alcotest.(check (float 1e-6)) "fall edge carries taken flow" 30.0
    (Freq.get freq ~src:2 ~dst:3 ~kind:Cfg.K_fall);
  let visits = Freq.block_visits freq in
  Alcotest.(check (float 1e-6)) "join gets everything" 100.0 visits.(3)

(* --- overhead --- *)

let test_overhead_reports () =
  let c = Compile.compile steered_program in
  let base = c.Compile.program in
  let probes = Asm.assemble (Probes.instrument c.Compile.items) in
  let edges = Asm.assemble (Edges.instrument c.Compile.items) in
  let pr = Profilekit.Overhead.probes_report ~base ~instrumented:probes in
  let er = Profilekit.Overhead.edges_report ~base ~instrumented:edges in
  Alcotest.(check bool) "probes add flash" true (pr.Profilekit.Overhead.flash_overhead_words > 0);
  Alcotest.(check bool) "edges add more flash" true
    (er.Profilekit.Overhead.flash_overhead_words > pr.Profilekit.Overhead.flash_overhead_words);
  Alcotest.(check int) "edge ram = counters" (Edges.num_counters base)
    er.Profilekit.Overhead.ram_words;
  Alcotest.(check bool) "pct consistent" true (pr.Profilekit.Overhead.flash_overhead_pct > 0.0)

let suite =
  [
    Alcotest.test_case "instrument adds probes" `Quick test_instrument_adds_probes;
    Alcotest.test_case "init not instrumented" `Quick test_init_not_instrumented;
    Alcotest.test_case "sample counts" `Quick test_sample_counts_match_invocations;
    Alcotest.test_case "window matches analytic" `Quick test_window_matches_analytic_cost;
    Alcotest.test_case "exclusive time" `Quick test_exclusive_time_subtracts_callee;
    Alcotest.test_case "unbalanced log" `Quick test_unbalanced_log;
    Alcotest.test_case "probe constants" `Quick test_probe_constants;
    Alcotest.test_case "edge counts match oracle" `Quick test_edge_counts_match_oracle;
    Alcotest.test_case "edge semantics preserved" `Quick test_edge_instrumentation_preserves_semantics;
    Alcotest.test_case "num counters" `Quick test_num_counters;
    Alcotest.test_case "thetas of counters" `Quick test_thetas_of_counters;
    Alcotest.test_case "oracle thetas" `Quick test_oracle_thetas;
    Alcotest.test_case "oracle freq conservation" `Quick test_oracle_freq_conservation;
    Alcotest.test_case "flowcount known" `Quick test_flowcount_known;
    Alcotest.test_case "overhead reports" `Quick test_overhead_reports;
  ]

(* --- calibration --- *)

let test_calibration_matches_analytic () =
  let cal = Profilekit.Calibrate.run () in
  Alcotest.(check int) "window correction" Probes.window_correction
    cal.Profilekit.Calibrate.window_correction;
  Alcotest.(check int) "call residual" Probes.call_residual
    cal.Profilekit.Calibrate.call_residual;
  Alcotest.(check bool) "matches" true (Profilekit.Calibrate.matches_analytic cal)

let test_calibration_body_invariant () =
  (* The constants must not depend on the calibration body length. *)
  let a = Profilekit.Calibrate.run ~leaf_body_cycles:3 () in
  let b = Profilekit.Calibrate.run ~leaf_body_cycles:40 () in
  Alcotest.(check int) "same correction" a.Profilekit.Calibrate.window_correction
    b.Profilekit.Calibrate.window_correction;
  Alcotest.(check int) "same residual" a.Profilekit.Calibrate.call_residual
    b.Profilekit.Calibrate.call_residual

let suite =
  suite
  @ [
      Alcotest.test_case "calibration matches analytic" `Quick
        test_calibration_matches_analytic;
      Alcotest.test_case "calibration body invariant" `Quick
        test_calibration_body_invariant;
    ]

(* --- lossy collection and failure injection --- *)

let test_probe_capacity_drops () =
  (* Odd capacity: the log ends on a dangling entry record. *)
  let devices = Devices.create ~probe_capacity:11 () in
  Devices.set_sensor devices (fun _ -> 500);
  let (_, inst, m) = instrumented_machine ~devices steered_program in
  for _ = 1 to 20 do
    ignore (Machine.run_proc m "task")
  done;
  (* 20 invocations x 2 records = 40 attempted, 11 kept. *)
  Alcotest.(check int) "drops counted" 29 (Devices.probes_dropped devices);
  Alcotest.(check int) "log bounded" 11 (List.length (Devices.probe_log devices));
  (* Lossy collection recovers the complete windows and discards the
     dangling frame. *)
  let r = Probes.collect_lossy ~program:inst ~devices () in
  Alcotest.(check int) "five full windows" 5
    (Array.length (Probes.samples_for r.Probes.samples "task"));
  Alcotest.(check int) "dangling frame discarded" 1 r.Probes.discarded

let test_lossy_equals_strict_when_lossless () =
  let devices = Devices.create () in
  Devices.set_sensor devices (fun _ -> 500);
  let (_, inst, m) = instrumented_machine ~devices steered_program in
  for _ = 1 to 30 do
    ignore (Machine.run_proc m "task")
  done;
  let strict = Probes.collect ~program:inst ~devices in
  let lossy = Probes.collect_lossy ~program:inst ~devices () in
  Alcotest.(check int) "nothing discarded" 0 lossy.Probes.discarded;
  Alcotest.(check bool) "same samples" true (strict = lossy.Probes.samples)

let test_lossy_uplink_estimation_survives () =
  (* 15% record loss: surviving windows still estimate the branch well. *)
  let devices = Devices.create ~probe_loss:0.15 ~rng:(Stats.Rng.create 4) () in
  let seq = ref 0 in
  Devices.set_sensor devices (fun _ ->
      incr seq;
      if !seq mod 4 = 0 then 500 else 50);
  let (_, inst, m) = instrumented_machine ~devices steered_program in
  for _ = 1 to 2000 do
    ignore (Machine.run_proc m "task")
  done;
  let r = Probes.collect_lossy ~max_window:50 ~program:inst ~devices () in
  let samples = Probes.samples_for r.Probes.samples "task" in
  Alcotest.(check bool) "loss actually happened" true (Devices.probes_dropped devices > 100);
  Alcotest.(check bool) "majority of windows survive" true (Array.length samples > 1000);
  let model = Tomo.Model.of_cfg (Cfg.of_proc_name inst "task") in
  let paths = Tomo.Paths.enumerate model in
  let est = Tomo.Em.estimate paths ~samples in
  (* Taken direction is the else-branch: 3/4. *)
  Alcotest.(check bool)
    (Printf.sprintf "estimate near 0.75 (%f)" est.Tomo.Em.theta.(0))
    true
    (abs_float (est.Tomo.Em.theta.(0) -. 0.75) < 0.05)

let test_lossy_nested_poisoning () =
  (* Drop exactly the leaf's exit record: the caller's window must be
     discarded too (its exclusive time is unknowable). *)
  let devices = Devices.create () in
  let (_, inst, m) = instrumented_machine ~devices caller_callee_program in
  ignore (Machine.run_proc m "top");
  let log = Devices.probe_log devices in
  Alcotest.(check int) "four records" 4 (List.length log);
  (* Records: top-entry, leaf-entry, leaf-exit, top-exit.  Replay all but
     the leaf exit into a fresh device. *)
  let d2 = Devices.create () in
  List.iteri
    (fun i { Devices.pc; cycles; value } ->
      if i <> 2 then Devices.probe d2 ~pc ~cycles ~value)
    log;
  let r = Probes.collect_lossy ~program:inst ~devices:d2 () in
  Alcotest.(check int) "no samples survive" 0
    (List.fold_left (fun acc (_, s) -> acc + Array.length s) 0 r.Probes.samples);
  Alcotest.(check int) "both frames discarded" 2 r.Probes.discarded

let test_window_straddles_timer_wrap () =
  (* Push the cycle clock just below the 16-bit tick wrap, then time an
     invocation whose window crosses it: the modular difference must
     still be exact. *)
  let devices = Devices.create () in
  Devices.set_sensor devices (fun _ -> 500);
  let c = Compile.compile steered_program in
  let inst = Asm.assemble (Probes.instrument c.Compile.items) in
  let m = Machine.create ~program:inst ~devices () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  (* Reference window, far from the wrap. *)
  ignore (Machine.run_proc m "task");
  let reference = (Probes.samples_for (Probes.collect ~program:inst ~devices) "task").(0) in
  Mote_machine.Machine.idle m (65536 - (Mote_machine.Machine.cycles m mod 65536) - 10);
  ignore (Machine.run_proc m "task");
  let samples = Probes.samples_for (Probes.collect ~program:inst ~devices) "task" in
  Alcotest.(check (float 0.0)) "window across wrap is exact" reference
    samples.(Array.length samples - 1)

let suite =
  suite
  @ [
      Alcotest.test_case "probe capacity drops" `Quick test_probe_capacity_drops;
      Alcotest.test_case "lossy = strict when lossless" `Quick
        test_lossy_equals_strict_when_lossless;
      Alcotest.test_case "estimation under uplink loss" `Quick
        test_lossy_uplink_estimation_survives;
      Alcotest.test_case "lossy nested poisoning" `Quick test_lossy_nested_poisoning;
      Alcotest.test_case "window straddles timer wrap" `Quick
        test_window_straddles_timer_wrap;
    ]
