(* Par.Pool and the session engine: scheduling must never be
   observable.  Ordering, exception choice, nesting and memoization are
   all pinned down here; the Slow cases check the headline property —
   the pipeline's output is bit-identical at any domain count. *)

module P = Codetomo.Pipeline
module Pool = Par.Pool

let config = { P.default_config with P.horizon = Some 600_000 }

let test_map_preserves_order () =
  Pool.with_pool ~domains:4 (fun pool ->
      let input = Array.init 500 (fun i -> i) in
      let out = Pool.map pool (fun i -> i * i) input in
      Alcotest.(check (array int)) "squares in input order"
        (Array.map (fun i -> i * i) input)
        out)

let test_map_list_preserves_order () =
  Pool.with_pool ~domains:3 (fun pool ->
      let input = List.init 101 (fun i -> string_of_int i) in
      Alcotest.(check (list string)) "identity map keeps order" input
        (Pool.map_list pool (fun s -> s) input))

let test_empty_and_singleton () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map_list pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 9 ]
        (Pool.map_list pool (fun x -> x * x) [ 3 ]))

let test_lowest_index_exception () =
  (* Several tasks fail; the re-raised exception must be the one from
     the lowest index, independent of which domain hit it first. *)
  Pool.with_pool ~domains:4 (fun pool ->
      let attempt () =
        ignore
          (Pool.map_list pool
             (fun i -> if i mod 7 = 3 then failwith (Printf.sprintf "boom%d" i) else i)
             (List.init 64 (fun i -> i)))
      in
      Alcotest.check_raises "first failing index wins" (Failure "boom3") attempt;
      (* The pool must survive a failed round. *)
      Alcotest.(check (list int)) "pool usable after exception"
        [ 0; 2; 4 ]
        (Pool.map_list pool (fun i -> 2 * i) [ 0; 1; 2 ]))

let test_nested_maps () =
  (* An inner map issued from a worker task falls back to the serial
     path instead of deadlocking, and the numbers come out the same. *)
  Pool.with_pool ~domains:4 (fun pool ->
      let expected =
        List.init 10 (fun i -> List.init 10 (fun j -> (i * 10) + j))
      in
      let got =
        Pool.map_list pool
          (fun i -> Pool.map_list pool (fun j -> (i * 10) + j) (List.init 10 Fun.id))
          (List.init 10 Fun.id)
      in
      Alcotest.(check (list (list int))) "nested map matches serial" expected got)

let test_pool_reuse () =
  Pool.with_pool ~domains:2 (fun pool ->
      for round = 1 to 20 do
        let n = 17 * round in
        let out = Pool.map_list pool (fun i -> i + round) (List.init n Fun.id) in
        Alcotest.(check int)
          (Printf.sprintf "round %d sum" round)
          (n * (n - 1) / 2 + (n * round))
          (List.fold_left ( + ) 0 out)
      done)

let test_domains_env_sizing () =
  Unix.putenv "CODETOMO_DOMAINS" "3";
  Pool.with_pool (fun pool ->
      Alcotest.(check int) "CODETOMO_DOMAINS honoured" 3 (Pool.domains pool));
  Unix.putenv "CODETOMO_DOMAINS" "0";
  Pool.with_pool (fun pool ->
      Alcotest.(check bool) "invalid value falls back" true (Pool.domains pool >= 1));
  Unix.putenv "CODETOMO_DOMAINS" "";
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "explicit argument wins" 1 (Pool.domains pool))

(* --- determinism of the pipeline under parallelism --- *)

let run = lazy (P.profile ~config Workloads.filter)

let check_variants_equal msg a b =
  List.iter2
    (fun (x : P.variant) (y : P.variant) ->
      Alcotest.(check string) (msg ^ " label") x.P.label y.P.label;
      Alcotest.(check int) (msg ^ " taken") x.P.taken_transfers y.P.taken_transfers;
      Alcotest.(check int) (msg ^ " busy") x.P.busy_cycles y.P.busy_cycles;
      Alcotest.(check int) (msg ^ " flash") x.P.flash_words y.P.flash_words;
      Alcotest.(check (float 0.0)) (msg ^ " rate") x.P.taken_rate y.P.taken_rate)
    a b

let test_compare_layouts_domain_invariant () =
  let run = Lazy.force run in
  let serial =
    Pool.with_pool ~domains:1 (fun p -> P.compare_layouts ~ctx:(P.Ctx.of_pool p) run)
  in
  let parallel =
    Pool.with_pool ~domains:4 (fun p -> P.compare_layouts ~ctx:(P.Ctx.of_pool p) run)
  in
  check_variants_equal "domains=1 vs domains=4" serial parallel

let test_estimate_domain_invariant () =
  let run = Lazy.force run in
  let serial =
    Pool.with_pool ~domains:1 (fun p -> P.estimate ~ctx:(P.Ctx.of_pool p) run)
  in
  let parallel =
    Pool.with_pool ~domains:4 (fun p -> P.estimate ~ctx:(P.Ctx.of_pool p) run)
  in
  List.iter2
    (fun (a : P.estimation) (b : P.estimation) ->
      Alcotest.(check string) "proc" a.P.proc b.P.proc;
      Alcotest.(check (float 0.0)) "mae identical" a.P.mae b.P.mae;
      Alcotest.(check (array (float 0.0))) "theta identical"
        a.P.estimate.Tomo.Estimator.theta b.P.estimate.Tomo.Estimator.theta)
    serial parallel

let test_max_samples_prefix () =
  (* max_samples must behave exactly as if profiling had stopped after
     that many windows: estimating with [~max_samples:n] equals
     estimating a run whose sample arrays are the chronological first-n
     prefixes. *)
  let run = Lazy.force run in
  let n = 40 in
  let truncated =
    {
      run with
      P.samples =
        List.map
          (fun (proc, a) -> (proc, Array.sub a 0 (min n (Array.length a))))
          run.P.samples;
    }
  in
  List.iter2
    (fun (a : P.estimation) (b : P.estimation) ->
      Alcotest.(check int) "sample_count" b.P.sample_count a.P.sample_count;
      Alcotest.(check (array (float 0.0))) "theta from first-n prefix"
        b.P.estimate.Tomo.Estimator.theta a.P.estimate.Tomo.Estimator.theta)
    (P.estimate ~max_samples:n run)
    (P.estimate truncated)

(* --- session memoization --- *)

let test_session_memoizes () =
  let s = Codetomo.Session.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Codetomo.Session.close s)
    (fun () ->
      let w = Workloads.blink in
      let a = Codetomo.Session.profile s ~config w in
      let b = Codetomo.Session.profile s ~config w in
      Alcotest.(check bool) "profile cached (physical equality)" true (a == b);
      let e1 = Codetomo.Session.estimate s ~config w in
      let e2 = Codetomo.Session.estimate s ~config w in
      Alcotest.(check bool) "estimate cached" true (e1 == e2);
      let other = Codetomo.Session.profile s ~config:P.default_config w in
      Alcotest.(check bool) "different config is a different entry" true
        (other != a);
      Codetomo.Session.clear s;
      let c = Codetomo.Session.profile s ~config w in
      Alcotest.(check bool) "clear drops entries" true (c != a))

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "map_list preserves order" `Quick test_map_list_preserves_order;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "lowest-index exception" `Quick test_lowest_index_exception;
    Alcotest.test_case "nested maps" `Quick test_nested_maps;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    Alcotest.test_case "CODETOMO_DOMAINS sizing" `Quick test_domains_env_sizing;
    Alcotest.test_case "compare_layouts domain-invariant" `Slow
      test_compare_layouts_domain_invariant;
    Alcotest.test_case "estimate domain-invariant" `Slow test_estimate_domain_invariant;
    Alcotest.test_case "max_samples keeps the prefix" `Slow test_max_samples_prefix;
    Alcotest.test_case "session memoizes stages" `Slow test_session_memoizes;
  ]
