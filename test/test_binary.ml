(* Mote_isa.Encode and Mote_isa.Parse: flash images and textual assembly. *)

module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Program = Mote_isa.Program
module Encode = Mote_isa.Encode
module Parse = Mote_isa.Parse

let sample_instrs : int Isa.instr list =
  [
    Isa.Nop; Isa.Halt; Isa.Ret; Isa.Mov (3, 4); Isa.Cmp (1, 2); Isa.Push 7; Isa.Pop 8;
    Isa.In (2, Isa.P_timer); Isa.In (5, Isa.P_sensor 3); Isa.In (0, Isa.P_radio_rx);
    Isa.Out (Isa.P_radio_tx, 1); Isa.Out (Isa.P_leds, 2); Isa.Out (Isa.P_probe, 13);
    Isa.Out (Isa.P_counter, 13); Isa.Movi (9, -123); Isa.Movi (0, 32767);
    Isa.Alui (Isa.Add, 1, 2, 77); Isa.Alui (Isa.Shr, 3, 3, 2); Isa.Cmpi (5, -1);
    Isa.Ld (1, 2, 3); Isa.Ld (1, 2, -3); Isa.St (4, 0, 5); Isa.Br (Isa.Le, 12);
    Isa.Jmp 0; Isa.Call 7; Isa.Alu (Isa.Mul, 1, 2, 3); Isa.Alu (Isa.Xor, 15, 14, 13);
  ]

let test_encode_decode_roundtrip () =
  List.iter
    (fun instr ->
      let words = Encode.encode_instr instr in
      Alcotest.(check int)
        (Isa.to_string string_of_int instr ^ " size")
        (Isa.size instr) (List.length words);
      List.iter
        (fun w -> Alcotest.(check bool) "word range" true (w >= 0 && w <= 0xFFFF))
        words;
      match Encode.decode_instr words with
      | Some (decoded, []) ->
          Alcotest.(check bool) (Isa.to_string string_of_int instr) true (decoded = instr)
      | _ -> Alcotest.fail "decode failed")
    sample_instrs

let test_stream_roundtrip () =
  (* Concatenated stream decodes instruction-by-instruction. *)
  let words = List.concat_map Encode.encode_instr sample_instrs in
  let rec drain stream acc =
    match Encode.decode_instr stream with
    | None -> List.rev acc
    | Some (i, rest) -> drain rest (i :: acc)
  in
  Alcotest.(check bool) "stream roundtrip" true (drain words [] = sample_instrs)

let test_program_image () =
  let p =
    Asm.assemble
      [
        Asm.Proc "main"; Asm.movi 0 5; Asm.Label "loop"; Asm.subi 0 0 1; Asm.cmpi 0 0;
        Asm.br Isa.Gt "loop"; Asm.halt;
      ]
  in
  let image = Encode.encode p in
  Alcotest.(check int) "image length = flash words" (Program.flash_words p)
    (Array.length image);
  let p2 = Encode.decode ~words:image ~symbols:(Program.symbols p) ~procs:(Program.procs p) in
  Alcotest.(check int) "same instruction count" (Program.length p) (Program.length p2);
  for i = 0 to Program.length p - 1 do
    Alcotest.(check bool) (Printf.sprintf "instr %d" i) true
      (Program.instr p i = Program.instr p2 i)
  done

let test_decoded_image_runs () =
  let c = Workloads.compiled Workloads.filter in
  let p = c.Mote_lang.Compile.program in
  let image = Encode.encode p in
  let p2 = Encode.decode ~words:image ~symbols:(Program.symbols p) ~procs:(Program.procs p) in
  let run program =
    let devices = Mote_machine.Devices.create () in
    Mote_machine.Devices.set_sensor devices (fun _ -> 700);
    let m = Mote_machine.Machine.create ~program ~devices () in
    ignore (Mote_machine.Machine.run_proc m Mote_lang.Compile.init_proc_name);
    for _ = 1 to 20 do
      ignore (Mote_machine.Machine.run_proc m "filter_task")
    done;
    Mote_machine.Machine.cycles m
  in
  Alcotest.(check int) "identical execution" (run p) (run p2)

let test_encoding_errors () =
  Alcotest.(check bool) "oversized immediate" true
    (match Encode.encode_instr (Isa.Movi (0, 100_000)) with
    | _ -> false
    | exception Encode.Encoding_error _ -> true);
  Alcotest.(check bool) "sensor channel cap" true
    (match Encode.encode_instr (Isa.In (0, Isa.P_sensor 12)) with
    | _ -> false
    | exception Encode.Encoding_error _ -> true);
  Alcotest.(check bool) "truncated stream" true
    (match Encode.decode_instr [ 0x1000 ] with
    | _ -> false
    | exception Encode.Encoding_error _ -> true)

let test_hexdump () =
  let p = Asm.assemble [ Asm.Proc "f"; Asm.movi 0 5; Asm.ret ] in
  let dump = Encode.hexdump p in
  Alcotest.(check bool) "mentions movi" true
    (String.split_on_char '\n' dump
    |> List.exists (fun l -> String.length l > 10))

(* --- parser --- *)

let sample_text =
  {|
; a little program
.proc main
  movi  r0, 5
loop:
  subi  r0, r0, 1
  cmpi  r0, 0
  br.gt loop
  ld    r1, [r2+3]
  st    [r2+3], r1
  in    r3, sensor[2]
  in    r4, timer
  out   leds, r3
  call  helper
  ret
.proc helper
  add   r1, r2, r3
  ret
|}

let test_parse_sample () =
  let p = Parse.parse_program sample_text in
  Alcotest.(check int) "two procs" 2 (List.length (Program.procs p));
  Alcotest.(check (option int)) "loop label" (Some 1) (Program.find_symbol p "loop");
  match Program.instr p 3 with
  | Isa.Br (Isa.Gt, 1) -> ()
  | _ -> Alcotest.fail "branch not parsed"

let test_parse_print_roundtrip () =
  let items = Parse.parse sample_text in
  let again = Parse.parse (Parse.to_text items) in
  Alcotest.(check bool) "items roundtrip" true (items = again)

let test_print_parse_roundtrip_compiled () =
  (* Every compiled workload's assembly must survive print -> parse. *)
  List.iter
    (fun w ->
      let c = Workloads.compiled w in
      let items = c.Mote_lang.Compile.items in
      let reparsed = Parse.parse (Parse.to_text items) in
      Alcotest.(check bool) (w.Workloads.name ^ " roundtrips") true (items = reparsed))
    Workloads.all

let test_parse_errors () =
  let bad text =
    match Parse.parse text with
    | _ -> false
    | exception Parse.Parse_error _ -> true
  in
  Alcotest.(check bool) "unknown mnemonic" true (bad "frobnicate r1");
  Alcotest.(check bool) "bad register" true (bad "mov r99, r0");
  Alcotest.(check bool) "bad condition" true (bad "br.zz somewhere");
  Alcotest.(check bool) "bad operand count" true (bad "movi r0");
  Alcotest.(check bool) "bad port" true (bad "in r0, nonsense")

let test_parse_error_line_number () =
  match Parse.parse "nop\nnop\nbogus r1" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parse.Parse_error { line; _ } -> Alcotest.(check int) "line" 3 line

let test_parse_comments_and_blank () =
  let items = Parse.parse "; nothing\n\n  # also nothing\nnop ; trailing\n" in
  Alcotest.(check int) "one instruction" 1 (List.length items)

let suite =
  [
    Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
    Alcotest.test_case "stream roundtrip" `Quick test_stream_roundtrip;
    Alcotest.test_case "program image" `Quick test_program_image;
    Alcotest.test_case "decoded image runs" `Quick test_decoded_image_runs;
    Alcotest.test_case "encoding errors" `Quick test_encoding_errors;
    Alcotest.test_case "hexdump" `Quick test_hexdump;
    Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "parse/print roundtrip" `Quick test_parse_print_roundtrip;
    Alcotest.test_case "compiled roundtrip" `Quick test_print_parse_roundtrip_compiled;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error line number" `Quick test_parse_error_line_number;
    Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blank;
  ]

(* Property: encode/decode roundtrips for arbitrary well-formed
   instructions. *)

let arbitrary_instr =
  let open QCheck.Gen in
  let reg = int_range 0 (Isa.num_regs - 1) in
  let imm = int_range (-32768) 32767 in
  let addr = int_range 0 4095 in
  let alu = oneofl [ Isa.Add; Isa.Sub; Isa.Mul; Isa.And; Isa.Or; Isa.Xor; Isa.Shl; Isa.Shr ] in
  let cond = oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge; Isa.Le; Isa.Gt ] in
  let port =
    oneof
      [
        return Isa.P_timer; return Isa.P_radio_rx; return Isa.P_leds;
        map (fun ch -> Isa.P_sensor ch) (int_range 0 7);
      ]
  in
  oneof
    [
      return Isa.Nop; return Isa.Halt; return Isa.Ret;
      map2 (fun a b -> Isa.Mov (a, b)) reg reg;
      map2 (fun a b -> Isa.Cmp (a, b)) reg reg;
      map (fun r -> Isa.Push r) reg;
      map (fun r -> Isa.Pop r) reg;
      map2 (fun r v -> Isa.Movi (r, v)) reg imm;
      map2 (fun a v -> Isa.Cmpi (a, v)) reg imm;
      map3 (fun op d a -> Isa.Alu (op, d, a, 0)) alu reg reg;
      map3 (fun op d v -> Isa.Alui (op, d, d, v)) alu reg imm;
      map3 (fun d a o -> Isa.Ld (d, a, o)) reg reg imm;
      map3 (fun a o s -> Isa.St (a, o, s)) reg imm reg;
      map2 (fun c t -> Isa.Br (c, t)) cond addr;
      map (fun t -> Isa.Jmp t) addr;
      map (fun t -> Isa.Call t) addr;
      map2 (fun r p -> Isa.In (r, p)) reg port;
      map2 (fun r p -> Isa.Out (p, r)) reg port;
    ]

let qcheck_encode_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"encode/decode roundtrip (random instrs)" ~count:500
       (QCheck.make arbitrary_instr) (fun instr ->
         match Encode.decode_instr (Encode.encode_instr instr) with
         | Some (decoded, []) -> decoded = instr
         | _ -> false))

let suite = suite @ [ qcheck_encode_roundtrip ]
