(* Mote_isa.Isa and Asm/Program. *)

module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Program = Mote_isa.Program

let all_conds = [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge; Isa.Le; Isa.Gt ]

let test_negate_involution () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "double negation" true (Isa.negate_cond (Isa.negate_cond c) = c))
    all_conds

let test_negate_distinct () =
  List.iter
    (fun c -> Alcotest.(check bool) "negation differs" true (Isa.negate_cond c <> c))
    all_conds

let test_terminators () =
  Alcotest.(check bool) "br" true (Isa.is_terminator (Isa.Br (Isa.Eq, 0)));
  Alcotest.(check bool) "jmp" true (Isa.is_terminator (Isa.Jmp 0));
  Alcotest.(check bool) "ret" true (Isa.is_terminator Isa.Ret);
  Alcotest.(check bool) "halt" true (Isa.is_terminator Isa.Halt);
  Alcotest.(check bool) "call is not" false (Isa.is_terminator (Isa.Call 0));
  Alcotest.(check bool) "mov is not" false (Isa.is_terminator (Isa.Mov (0, 1)))

let test_costs_positive () =
  let instrs =
    [
      Isa.Nop; Isa.Halt; Isa.Movi (0, 1); Isa.Mov (0, 1);
      Isa.Alu (Isa.Add, 0, 1, 2); Isa.Alui (Isa.Mul, 0, 1, 3);
      Isa.Cmp (0, 1); Isa.Cmpi (0, 5); Isa.Ld (0, 1, 2); Isa.St (0, 1, 2);
      Isa.Push 0; Isa.Pop 0; Isa.Br (Isa.Eq, 0); Isa.Jmp 0; Isa.Call 0;
      Isa.Ret; Isa.In (0, Isa.P_timer); Isa.Out (Isa.P_leds, 0);
    ]
  in
  List.iter
    (fun i ->
      Alcotest.(check bool) "cost > 0" true (Isa.base_cost i > 0);
      Alcotest.(check bool) "size in {1,2}" true (Isa.size i = 1 || Isa.size i = 2))
    instrs

let test_mul_costs_more () =
  Alcotest.(check bool) "mul is slower" true
    (Isa.base_cost (Isa.Alu (Isa.Mul, 0, 1, 2)) > Isa.base_cost (Isa.Alu (Isa.Add, 0, 1, 2)))

let test_map_label () =
  let i = Isa.Br (Isa.Lt, "foo") in
  Alcotest.(check bool) "mapped" true (Isa.map_label String.length i = Isa.Br (Isa.Lt, 3));
  Alcotest.(check bool) "non-control unchanged" true
    (Isa.map_label String.length (Isa.Movi (1, 5)) = Isa.Movi (1, 5))

let test_label () =
  Alcotest.(check (option int)) "br" (Some 7) (Isa.label (Isa.Br (Isa.Eq, 7)));
  Alcotest.(check (option int)) "call" (Some 2) (Isa.label (Isa.Call 2));
  Alcotest.(check (option int)) "mov" None (Isa.label (Isa.Mov (0, 1)))

let test_to_string () =
  Alcotest.(check string) "movi" "movi  r3, 42" (Isa.to_string Fun.id (Isa.Movi (3, 42)));
  Alcotest.(check string) "br" "br.ne loop" (Isa.to_string Fun.id (Isa.Br (Isa.Ne, "loop")))

(* --- assembler --- *)

let simple_program =
  [
    Asm.Proc "main";
    Asm.movi 0 5;
    Asm.Label "loop";
    Asm.subi 0 0 1;
    Asm.cmpi 0 0;
    Asm.br Isa.Gt "loop";
    Asm.halt;
  ]

let test_assemble () =
  let p = Asm.assemble simple_program in
  Alcotest.(check int) "length" 5 (Program.length p);
  Alcotest.(check (option int)) "loop label" (Some 1) (Program.find_symbol p "loop");
  Alcotest.(check (option int)) "main" (Some 0) (Program.find_symbol p "main");
  (match Program.instr p 3 with
  | Isa.Br (Isa.Gt, 1) -> ()
  | _ -> Alcotest.fail "branch not resolved");
  match Program.procs p with
  | [ { Program.name = "main"; entry = 0; finish = 5 } ] -> ()
  | _ -> Alcotest.fail "procedure extent wrong"

let test_assemble_duplicate_label () =
  Alcotest.(check bool) "duplicate rejected" true
    (match Asm.assemble [ Asm.Proc "a"; Asm.Label "a"; Asm.halt ] with
    | _ -> false
    | exception Asm.Error _ -> true)

let test_assemble_unknown_label () =
  Alcotest.(check bool) "unknown rejected" true
    (match Asm.assemble [ Asm.Proc "a"; Asm.jmp "nowhere" ] with
    | _ -> false
    | exception Asm.Error _ -> true)

let test_assemble_empty_proc () =
  Alcotest.(check bool) "empty proc rejected" true
    (match Asm.assemble [ Asm.Proc "a"; Asm.Proc "b"; Asm.halt ] with
    | _ -> false
    | exception Asm.Error _ -> true)

let test_two_procs () =
  let p =
    Asm.assemble
      [ Asm.Proc "f"; Asm.call "g"; Asm.ret; Asm.Proc "g"; Asm.movi 0 1; Asm.ret ]
  in
  (match Program.find_proc p "g" with
  | Some { Program.entry = 2; finish = 4; _ } -> ()
  | _ -> Alcotest.fail "g extent");
  match Program.proc_at p 3 with
  | Some { Program.name = "g"; _ } -> ()
  | _ -> Alcotest.fail "proc_at"

let test_roundtrip () =
  let p = Asm.assemble simple_program in
  let p2 = Asm.assemble (Asm.disassemble p) in
  Alcotest.(check int) "same length" (Program.length p) (Program.length p2);
  for i = 0 to Program.length p - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "instr %d" i)
      true
      (Program.instr p i = Program.instr p2 i)
  done

let test_flash_words () =
  let p = Asm.assemble simple_program in
  (* movi(2) + subi(2) + cmpi(2) + br(2) + halt(1) *)
  Alcotest.(check int) "flash words" 9 (Program.flash_words p)

let test_program_validation () =
  Alcotest.(check bool) "out-of-range target rejected" true
    (match
       Program.make ~code:[| Isa.Jmp 5 |] ~symbols:[]
         ~procs:[ { Program.name = "x"; entry = 0; finish = 1 } ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_pp_disassembly () =
  let p = Asm.assemble simple_program in
  let text = Format.asprintf "%a" Program.pp p in
  Alcotest.(check bool) "mentions proc main" true (contains ~needle:"proc main" text);
  Alcotest.(check bool) "mentions loop label" true (contains ~needle:"loop" text);
  Alcotest.(check bool) "mentions halt" true (contains ~needle:"halt" text)

let suite =
  [
    Alcotest.test_case "negate involution" `Quick test_negate_involution;
    Alcotest.test_case "negate distinct" `Quick test_negate_distinct;
    Alcotest.test_case "terminators" `Quick test_terminators;
    Alcotest.test_case "costs positive" `Quick test_costs_positive;
    Alcotest.test_case "mul costs more" `Quick test_mul_costs_more;
    Alcotest.test_case "map_label" `Quick test_map_label;
    Alcotest.test_case "label" `Quick test_label;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "assemble" `Quick test_assemble;
    Alcotest.test_case "duplicate label" `Quick test_assemble_duplicate_label;
    Alcotest.test_case "unknown label" `Quick test_assemble_unknown_label;
    Alcotest.test_case "empty proc" `Quick test_assemble_empty_proc;
    Alcotest.test_case "two procs" `Quick test_two_procs;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "flash words" `Quick test_flash_words;
    Alcotest.test_case "program validation" `Quick test_program_validation;
    Alcotest.test_case "pp disassembly" `Quick test_pp_disassembly;
  ]
