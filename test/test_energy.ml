(* Mote_os.Energy and Layout.Algorithms.anneal, plus the static/dynamic
   consistency check that ties Eval's predictions to the machine. *)

module Energy = Mote_os.Energy
module Cfg = Cfgir.Cfg
module Freq = Cfgir.Freq

let feq ?(tol = 1e-9) name a b =
  Alcotest.(check bool) (Printf.sprintf "%s: %f vs %f" name a b) true (abs_float (a -. b) < tol)

let test_energy_arithmetic () =
  let r = Energy.of_parts ~busy_cycles:1_000_000 ~idle_cycles:0 ~tx_words:0 () in
  (* 1e6 cycles * 5.4 nJ = 5.4 mJ. *)
  feq "active" 5.4 r.Energy.active_mj;
  feq "total" 5.4 r.Energy.total_mj;
  let r2 = Energy.of_parts ~busy_cycles:0 ~idle_cycles:0 ~tx_words:500 () in
  feq "radio" 1.0 r2.Energy.radio_mj

let test_energy_sleep_is_cheap () =
  let active = Energy.of_parts ~busy_cycles:1000 ~idle_cycles:0 ~tx_words:0 () in
  let asleep = Energy.of_parts ~busy_cycles:0 ~idle_cycles:1000 ~tx_words:0 () in
  Alcotest.(check bool) "sleep ~350x cheaper" true
    (active.Energy.total_mj > 300.0 *. asleep.Energy.total_mj)

let test_energy_validation () =
  Alcotest.(check bool) "negative rejected" true
    (match Energy.of_parts ~busy_cycles:(-1) ~idle_cycles:0 ~tx_words:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_lifetime () =
  (* A node awake 10% of the time at 1 MHz. *)
  let r = Energy.of_parts ~busy_cycles:100_000 ~idle_cycles:900_000 ~tx_words:0 () in
  let days = Energy.lifetime_days r ~horizon_cycles:1_000_000 ~cycles_per_second:1_000_000 in
  (* Average power ~0.554 mW; 27000 J battery -> ~560 days. *)
  Alcotest.(check bool) (Printf.sprintf "plausible lifetime (%f)" days) true
    (days > 400.0 && days < 700.0);
  (* Lower duty cycle must live longer. *)
  let r2 = Energy.of_parts ~busy_cycles:10_000 ~idle_cycles:990_000 ~tx_words:0 () in
  let days2 = Energy.lifetime_days r2 ~horizon_cycles:1_000_000 ~cycles_per_second:1_000_000 in
  Alcotest.(check bool) "less duty, more life" true (days2 > days)

let test_energy_of_run () =
  let stats =
    {
      Mote_os.Node.tasks_run = []; tasks_dropped = 0; packets_delivered = 0;
      total_cycles = 2000; idle_cycles = 1500; busy_cycles = 500;
    }
  in
  let r = Energy.of_run stats ~tx_words:2 in
  feq ~tol:1e-12 "uses busy/idle split"
    (Energy.of_parts ~busy_cycles:500 ~idle_cycles:1500 ~tx_words:2 ()).Energy.total_mj
    r.Energy.total_mj

(* --- anneal --- *)

let big_branchy_freq () =
  (* ctp's rx task: 14+ blocks, too big for exhaustive search. *)
  let run = Codetomo.Pipeline.profile ~config:{ Codetomo.Pipeline.default_config with horizon = Some 400_000 } Workloads.ctp in
  List.assoc "ctp_rx_task" run.Codetomo.Pipeline.oracle_freqs

let test_anneal_validity_and_quality () =
  let freq = big_branchy_freq () in
  let annealed = Layout.Algorithms.anneal ~seed:5 freq in
  Layout.Placement.validate (Freq.cfg freq) annealed;
  let ph = Layout.Eval.taken_transfers freq (Layout.Algorithms.pettis_hansen freq) in
  let an = Layout.Eval.taken_transfers freq annealed in
  Alcotest.(check bool)
    (Printf.sprintf "anneal (%.0f) <= pettis-hansen (%.0f)" an ph)
    true (an <= ph +. 1e-9)

let test_anneal_deterministic () =
  let freq = big_branchy_freq () in
  let a = Layout.Algorithms.anneal ~seed:9 freq in
  let b = Layout.Algorithms.anneal ~seed:9 freq in
  Alcotest.(check bool) "same seed, same placement" true (a = b)

let test_anneal_matches_optimal_small () =
  (* On a tiny CFG annealing should find the optimum. *)
  let p =
    Mote_isa.Asm.assemble
      [
        Mote_isa.Asm.Proc "f"; Mote_isa.Asm.cmpi 0 0;
        Mote_isa.Asm.br Mote_isa.Isa.Eq "a2"; Mote_isa.Asm.movi 1 1;
        Mote_isa.Asm.jmp "j"; Mote_isa.Asm.Label "a2"; Mote_isa.Asm.movi 1 2;
        Mote_isa.Asm.Label "j"; Mote_isa.Asm.ret;
      ]
  in
  let cfg = Cfg.of_proc_name p "f" in
  let freq = Freq.create cfg ~invocations:100.0 in
  Freq.bump freq ~src:0 ~dst:2 ~kind:Cfg.K_taken 80.0;
  Freq.bump freq ~src:0 ~dst:1 ~kind:Cfg.K_fall 20.0;
  Freq.bump freq ~src:1 ~dst:3 ~kind:Cfg.K_jump 20.0;
  Freq.bump freq ~src:2 ~dst:3 ~kind:Cfg.K_fall 80.0;
  let best = Layout.Eval.taken_transfers freq (Layout.Algorithms.optimal freq) in
  let an = Layout.Eval.taken_transfers freq (Layout.Algorithms.anneal freq) in
  feq "matches optimum" best an

(* --- static prediction matches dynamic execution --- *)

let test_static_eval_matches_dynamic () =
  (* For a deterministic input sequence, Eval's predicted stall count on
     the oracle profile must equal the machine's measured count, for any
     placement.  This pins the whole cost model together. *)
  let open Mote_lang.Ast.Dsl in
  let program =
    {
      Mote_lang.Ast.globals = [ ("acc", 0) ];
      arrays = [];
      procs =
        [
          proc "task" ~params:[] ~locals:[ "x" ]
            [
              set "x" (sensor 0);
              if_ (v "x" >: i 500)
                [ set "acc" (v "acc" +: v "x") ]
                [ set "acc" (v "acc" +: i 1) ];
              while_ (v "x" >: i 700) [ set "x" (v "x" -: i 250) ];
            ];
        ];
    }
  in
  let c = Mote_lang.Compile.compile program in
  let original = c.Mote_lang.Compile.program in
  let invocations = 200 in
  let drive binary =
    let devices = Mote_machine.Devices.create () in
    let seq = ref 0 in
    Mote_machine.Devices.set_sensor devices (fun _ ->
        incr seq;
        !seq * 311 mod 1024);
    let m = Mote_machine.Machine.create ~program:binary ~devices () in
    ignore (Mote_machine.Machine.run_proc m Mote_lang.Compile.init_proc_name);
    m
  in
  (* Collect the oracle profile on the natural binary. *)
  let m = drive original in
  let oracle = Profilekit.Oracle.attach m in
  for _ = 1 to invocations do
    ignore (Mote_machine.Machine.run_proc m "task")
  done;
  let freq =
    Profilekit.Oracle.freq oracle ~proc:"task" ~invocations:(float_of_int invocations)
  in
  let cfg = Freq.cfg freq in
  let n = Cfg.num_blocks cfg in
  let rng = Stats.Rng.create 77 in
  for _ = 1 to 6 do
    let rest = Array.init (n - 1) (fun i -> i + 1) in
    Stats.Rng.shuffle rng rest;
    let placement = Array.append [| 0 |] rest in
    let predicted = Layout.Eval.taken_transfers freq placement in
    let rewritten = Layout.Rewrite.program original ~placements:[ ("task", placement) ] in
    let m2 = drive rewritten in
    for _ = 1 to invocations do
      ignore (Mote_machine.Machine.run_proc m2 "task")
    done;
    let s = Mote_machine.Machine.stats m2 in
    let measured = s.Mote_machine.Machine.taken_cond_branches + s.Mote_machine.Machine.unconditional_transfers in
    Alcotest.(check int)
      (Format.asprintf "exact static prediction for %a" Layout.Placement.pp placement)
      (int_of_float predicted) measured
  done

let suite =
  [
    Alcotest.test_case "energy arithmetic" `Quick test_energy_arithmetic;
    Alcotest.test_case "sleep is cheap" `Quick test_energy_sleep_is_cheap;
    Alcotest.test_case "energy validation" `Quick test_energy_validation;
    Alcotest.test_case "lifetime" `Quick test_lifetime;
    Alcotest.test_case "energy of run" `Quick test_energy_of_run;
    Alcotest.test_case "anneal validity" `Slow test_anneal_validity_and_quality;
    Alcotest.test_case "anneal deterministic" `Slow test_anneal_deterministic;
    Alcotest.test_case "anneal matches optimal" `Quick test_anneal_matches_optimal_small;
    Alcotest.test_case "static = dynamic" `Quick test_static_eval_matches_dynamic;
  ]
