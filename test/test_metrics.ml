(* Stats.Metrics. *)

let feq ?(tol = 1e-9) name a b =
  Alcotest.(check bool) (Printf.sprintf "%s: %f vs %f" name a b) true (abs_float (a -. b) < tol)

let test_mae () = feq "mae" 1.5 (Stats.Metrics.mae [| 1.0; 2.0 |] [| 2.0; 4.0 |])

let test_rmse () =
  feq "rmse" (sqrt 2.5) (Stats.Metrics.rmse [| 1.0; 2.0 |] [| 2.0; 4.0 |])

let test_max_abs () =
  feq "max abs" 2.0 (Stats.Metrics.max_abs_error [| 1.0; 2.0 |] [| 2.0; 4.0 |])

let test_kl_zero_iff_equal () =
  let p = [| 0.2; 0.3; 0.5 |] in
  feq "kl(p,p)=0" 0.0 (Stats.Metrics.kl_divergence p p);
  let q = [| 0.5; 0.3; 0.2 |] in
  Alcotest.(check bool) "kl > 0" true (Stats.Metrics.kl_divergence p q > 0.0)

let test_tv () =
  feq "tv" 0.3 (Stats.Metrics.total_variation [| 0.2; 0.8 |] [| 0.5; 0.5 |])

let test_relative_error () =
  feq "relative" 0.1 (Stats.Metrics.relative_error ~actual:110.0 ~expected:100.0);
  Alcotest.(check bool) "zero expected doesn't divide by zero" true
    (Float.is_finite (Stats.Metrics.relative_error ~actual:1.0 ~expected:0.0))

let test_bootstrap_ci () =
  let rng = Stats.Rng.create 99 in
  let data = Array.init 500 (fun _ -> Stats.Dist.gaussian rng ~mu:5.0 ~sigma:1.0) in
  let lo, hi = Stats.Metrics.bootstrap_ci rng data ~iterations:500 ~confidence:0.95 in
  Alcotest.(check bool) "ci contains true mean" true (lo < 5.0 && 5.0 < hi);
  Alcotest.(check bool) "ci is narrow" true (hi -. lo < 0.5)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"rmse >= mae" ~count:200
         QCheck.(
           pair
             (list_of_size (Gen.int_range 1 20) (float_range (-10.0) 10.0))
             (list_of_size (Gen.int_range 1 20) (float_range (-10.0) 10.0)))
         (fun (a, b) ->
           let n = min (List.length a) (List.length b) in
           QCheck.assume (n > 0);
           let a = Array.of_list (List.filteri (fun i _ -> i < n) a) in
           let b = Array.of_list (List.filteri (fun i _ -> i < n) b) in
           Stats.Metrics.rmse a b >= Stats.Metrics.mae a b -. 1e-9));
  ]

let test_mismatch_msg () =
  match Stats.Metrics.mae [| 1.0 |] [| 1.0; 2.0 |] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "mae" `Quick test_mae;
    Alcotest.test_case "rmse" `Quick test_rmse;
    Alcotest.test_case "max abs" `Quick test_max_abs;
    Alcotest.test_case "length mismatch" `Quick test_mismatch_msg;
    Alcotest.test_case "kl" `Quick test_kl_zero_iff_equal;
    Alcotest.test_case "total variation" `Quick test_tv;
    Alcotest.test_case "relative error" `Quick test_relative_error;
    Alcotest.test_case "bootstrap ci" `Quick test_bootstrap_ci;
  ]
  @ qcheck_tests
