(* Equivalence of the sparse/merged EM kernels with the dense per-path
   reference.

   Two layers of protection:
   - golden tests: full-precision (hex-float) θ/σ/log-likelihood/iteration
     values captured from the dense reference implementation on the bundled
     workloads, asserted bit-for-bit against the optimized kernels;
   - a reference implementation of the dense E/M-step kept here and run
     against the optimized [Tomo.Em.estimate] on machine-generated programs,
     also bit-for-bit.

   The optimized kernels are designed to be exactly equal, not merely
   close: expensive per-signature terms are bitwise equal to the per-path
   terms they replace, and the accumulator additions are replayed in raw
   enumeration order.  Any drift here is a bug, so the checks use [=] on
   floats deliberately. *)

module P = Codetomo.Pipeline

let check_float name expected actual =
  if not (Float.equal expected actual) then
    Alcotest.failf "%s: expected %h, got %h" name expected actual

let check_theta name expected actual =
  Alcotest.(check int) (name ^ " arity") (Array.length expected) (Array.length actual);
  Array.iteri (fun j e -> check_float (Printf.sprintf "%s theta[%d]" name j) e actual.(j)) expected

(* The dense reference now lives in the library ({!Tomo.Em.Dense}) so the
   differential fuzzer and these tests exercise the same implementation. *)

let reference_estimate ?max_iters paths ~samples =
  let r = Tomo.Em.Dense.estimate ?max_iters paths ~samples in
  (r.Tomo.Em.theta, r.Tomo.Em.sigma, r.Tomo.Em.iterations, r.Tomo.Em.log_likelihood,
   r.Tomo.Em.converged)

(* --- golden values captured from the dense reference --- *)

type golden = {
  name : string;
  np : int;
  theta : float array;
  sigma : float;
  iterations : int;
  log_likelihood : float;
  converged : bool;
}

let goldens =
  [
    { name = "sense/sense_task res1"; np = 2;
      theta = [| 0x1.9024e6a171025p-1 |];
      sigma = 0x1.999999999999ap-4; iterations = 2;
      log_likelihood = 0x1.dc91cd3db05b7p+11; converged = true };
    { name = "sense/report_task jit8"; np = 48;
      theta = [| 0x1.3026c5a7c3659p-3; 0x1.c22ff277106f2p-5; 0x1.c22ff277106f2p-5 |];
      sigma = 0x1.d49e992c37bc8p+3; iterations = 100;
      log_likelihood = -0x1.b383a86156b16p+10; converged = false };
    { name = "filter/filter_task res4"; np = 8;
      theta = [| 0x1.d47ba46532b9ep-1; 0x1.e8f62f4ad95e2p-3; 0x1.61551cbec8511p-1;
                 0x1.7f74ba451863fp-3 |];
      sigma = 0x1.4209878986e28p+0; iterations = 29;
      log_likelihood = -0x1.c142ad0fd80ebp+13; converged = true };
    { name = "ctp/ctp_rx_task res8"; np = 4096;
      theta = [| 0x1.7ef5fba179c62p-1; 0x1.99ef4455e4adp-3; 0x1.fff2e48e8a71ep-1;
                 0x1.ff58f309e4344p-1; 0x1.f74b744957ed9p-3; 0x1.598d94e45881dp-1 |];
      sigma = 0x1.c53f76303fc66p+1; iterations = 100;
      log_likelihood = -0x1.94cfdf1edeedcp+13; converged = false };
    { name = "ctp/ctp_rx_task jit2"; np = 4096;
      theta = [| 0x1.7eeb7cd8b5081p-1; 0x1.99f1cc298f364p-3; 0x1.fff2e48e8a71ep-1;
                 0x1.fe8902db98b92p-1; 0x1.0c297bbc9a2b3p-2; 0x1.57971e6e3b266p-1 |];
      sigma = 0x1.71655d22a20acp+1; iterations = 100;
      log_likelihood = -0x1.84d6dfb6c425fp+13; converged = false };
    { name = "ctp/ctp_beacon_task res1"; np = 12;
      theta = [| 0x1.8ad06af62b41bp-2 |];
      sigma = 0x1.999999999999ap-4; iterations = 2;
      log_likelihood = -0x1.5af5be5dfa9a8p+6; converged = true };
  ]

let golden_case g config w proc () =
  let run = P.profile ~config w in
  let samples = List.assoc proc run.P.samples in
  let model = P.model_of run proc in
  let paths = Tomo.Paths.enumerate model in
  Alcotest.(check int) "raw path count unchanged" g.np
    (Array.length (Tomo.Paths.paths paths));
  let r = Tomo.Em.estimate ~sigma:(P.noise_sigma config) paths ~samples in
  check_theta g.name g.theta r.Tomo.Em.theta;
  check_float (g.name ^ " sigma") g.sigma r.Tomo.Em.sigma;
  Alcotest.(check int) (g.name ^ " iterations") g.iterations r.Tomo.Em.iterations;
  check_float (g.name ^ " log_likelihood") g.log_likelihood r.Tomo.Em.log_likelihood;
  Alcotest.(check bool) (g.name ^ " converged") g.converged r.Tomo.Em.converged

let golden_tests =
  let d = P.default_config in
  let cases =
    [
      (d, Workloads.sense, "sense_task");
      ({ d with P.timer_jitter = 8.0 }, Workloads.sense, "report_task");
      ({ d with P.timer_resolution = 4 }, Workloads.filter, "filter_task");
      ({ d with P.timer_resolution = 8 }, Workloads.ctp, "ctp_rx_task");
      ({ d with P.timer_jitter = 2.0 }, Workloads.ctp, "ctp_rx_task");
      (d, Workloads.ctp, "ctp_beacon_task");
    ]
  in
  List.map2
    (fun g (config, w, proc) ->
      Alcotest.test_case ("golden: " ^ g.name) `Slow (golden_case g config w proc))
    goldens cases

(* --- generated-program equivalence: optimized vs dense reference --- *)

let generated_case seed depth stmts =
  let config =
    { Workloads.Generator.default_config with seed; max_depth = depth; stmts_per_block = stmts }
  in
  let program = Workloads.Generator.generate ~config () in
  let c = Mote_lang.Compile.compile program in
  let instrumented =
    Mote_isa.Asm.assemble (Profilekit.Probes.instrument c.Mote_lang.Compile.items)
  in
  let devices = Mote_machine.Devices.create () in
  let env = Env.create (Workloads.Generator.env_config ~seed) in
  Env.attach env devices;
  let m = Mote_machine.Machine.create ~program:instrumented ~devices () in
  ignore (Mote_machine.Machine.run_proc m Mote_lang.Compile.init_proc_name);
  for _ = 1 to 300 do
    ignore (Mote_machine.Machine.run_proc m "gen_task")
  done;
  let samples =
    Profilekit.Probes.(samples_for (collect ~program:instrumented ~devices)) "gen_task"
  in
  let cfg = Cfgir.Cfg.of_proc_name instrumented "gen_task" in
  let model = Tomo.Model.of_cfg cfg in
  let paths = Tomo.Paths.enumerate ~max_paths:4000 ~max_visits:8 model in
  (paths, samples)

let test_generated_equivalence () =
  List.iter
    (fun (seed, depth, stmts) ->
      let paths, samples = generated_case seed depth stmts in
      let name = Printf.sprintf "gen seed=%d depth=%d stmts=%d" seed depth stmts in
      let r = Tomo.Em.estimate ~max_iters:25 paths ~samples in
      let ref_theta, ref_sigma, ref_iters, ref_ll, ref_conv =
        reference_estimate ~max_iters:25 paths ~samples
      in
      check_theta name ref_theta r.Tomo.Em.theta;
      check_float (name ^ " sigma") ref_sigma r.Tomo.Em.sigma;
      Alcotest.(check int) (name ^ " iterations") ref_iters r.Tomo.Em.iterations;
      check_float (name ^ " log_likelihood") ref_ll r.Tomo.Em.log_likelihood;
      Alcotest.(check bool) (name ^ " converged") ref_conv r.Tomo.Em.converged)
    [ (1, 3, 2); (2, 4, 4); (5, 2, 2); (7, 4, 3) ]

(* --- signature-merge invariants on generated path sets --- *)

let test_signature_merge_properties () =
  List.iter
    (fun (seed, depth, stmts) ->
      let paths, samples = generated_case seed depth stmts in
      let pth = Tomo.Paths.paths paths in
      let sigs = Tomo.Paths.signatures paths in
      let sig_of = Tomo.Paths.signature_of_path paths in
      let name = Printf.sprintf "gen seed=%d" seed in
      (* Weights partition the raw set. *)
      Alcotest.(check int) (name ^ " weights sum to np")
        (Array.length pth)
        (Array.fold_left (fun acc s -> acc + s.Tomo.Paths.s_weight) 0 sigs);
      (* Every raw path matches its signature exactly. *)
      Array.iteri
        (fun p s ->
          let path = pth.(p) and entry = sigs.(s) in
          if path.Tomo.Paths.cost <> entry.Tomo.Paths.s_cost then
            Alcotest.failf "%s: path %d cost mismatch" name p;
          let dense_of_sparse idx cnt =
            let out = Array.make (Array.length path.Tomo.Paths.taken) 0 in
            Array.iteri (fun i j -> out.(j) <- int_of_float cnt.(i)) idx;
            out
          in
          if
            path.Tomo.Paths.taken
            <> dense_of_sparse entry.Tomo.Paths.s_taken_idx entry.Tomo.Paths.s_taken_cnt
          then Alcotest.failf "%s: path %d taken counts mismatch" name p;
          if
            path.Tomo.Paths.nottaken
            <> dense_of_sparse entry.Tomo.Paths.s_nottaken_idx
                 entry.Tomo.Paths.s_nottaken_cnt
          then Alcotest.failf "%s: path %d nottaken counts mismatch" name p)
        sig_of;
      (* Distinct signatures really are distinct. *)
      let keys = Hashtbl.create 64 in
      Array.iter
        (fun s ->
          let key =
            ( s.Tomo.Paths.s_cost,
              s.Tomo.Paths.s_taken_idx, s.Tomo.Paths.s_taken_cnt,
              s.Tomo.Paths.s_nottaken_idx, s.Tomo.Paths.s_nottaken_cnt )
          in
          if Hashtbl.mem keys key then Alcotest.failf "%s: duplicate signature" name;
          Hashtbl.add keys key ())
        sigs;
      (* Merged prior mass equals the raw prior mass (weights are exact
         integer multiplicities of bit-identical terms). *)
      let theta =
        Array.map (fun _ -> 0.3) (Tomo.Model.uniform_theta (Tomo.Paths.model paths))
      in
      let raw_mass = Tomo.Paths.prior_mass paths ~theta in
      let lp = Tomo.Paths.log_prior paths ~theta in
      let merged_mass = ref 0.0 in
      Array.iteri
        (fun s entry ->
          (* Representative raw-path log prior for this signature. *)
          let rep = ref (-1) in
          Array.iteri (fun p s' -> if s' = s && !rep < 0 then rep := p) sig_of;
          merged_mass :=
            !merged_mass +. (float_of_int entry.Tomo.Paths.s_weight *. exp lp.(!rep)))
        sigs;
      if abs_float (raw_mass -. !merged_mass) > 1e-12 *. (1.0 +. abs_float raw_mass)
      then Alcotest.failf "%s: prior mass %h <> merged %h" name raw_mass !merged_mass;
      ignore samples)
    [ (1, 3, 2); (3, 4, 2); (2, 4, 4) ]

(* --- trajectory recording switch --- *)

let test_record_trajectory () =
  let paths, samples = generated_case 5 2 2 in
  let on = Tomo.Em.estimate ~max_iters:10 paths ~samples in
  let off = Tomo.Em.estimate ~max_iters:10 ~record_trajectory:false paths ~samples in
  Alcotest.(check int) "trajectory length when on" on.Tomo.Em.iterations
    (List.length on.Tomo.Em.trajectory);
  Alcotest.(check (list (pair (list (float 0.0)) (float 0.0))))
    "trajectory empty when off" []
    (List.map (fun (t, ll) -> (Array.to_list t, ll)) off.Tomo.Em.trajectory);
  check_theta "same theta with trajectory off" on.Tomo.Em.theta off.Tomo.Em.theta;
  check_float "same ll" on.Tomo.Em.log_likelihood off.Tomo.Em.log_likelihood

(* --- exactness of the default log-threshold --- *)

let test_log_threshold_default_exact () =
  let paths, samples = generated_case 2 4 4 in
  let dflt = Tomo.Em.estimate ~max_iters:15 paths ~samples in
  let inf_thresh =
    Tomo.Em.estimate ~max_iters:15 ~log_threshold:infinity paths ~samples
  in
  check_theta "default threshold is exact" inf_thresh.Tomo.Em.theta dflt.Tomo.Em.theta;
  check_float "sigma" inf_thresh.Tomo.Em.sigma dflt.Tomo.Em.sigma;
  check_float "ll" inf_thresh.Tomo.Em.log_likelihood dflt.Tomo.Em.log_likelihood;
  (* An aggressive threshold is allowed to drift — it must still converge
     to something sane. *)
  let rough = Tomo.Em.estimate ~max_iters:15 ~log_threshold:30.0 paths ~samples in
  Array.iter
    (fun t ->
      if not (t >= 0.0 && t <= 1.0) then Alcotest.failf "rough theta out of range")
    rough.Tomo.Em.theta

let suite =
  golden_tests
  @ [
      Alcotest.test_case "generated programs: optimized = dense reference" `Slow
        test_generated_equivalence;
      Alcotest.test_case "signature merge invariants" `Quick
        test_signature_merge_properties;
      Alcotest.test_case "record_trajectory switch" `Quick test_record_trajectory;
      Alcotest.test_case "default log threshold is exact" `Quick
        test_log_threshold_default_exact;
    ]
