(* Mote_os.Network: multi-node simulation over lossy links. *)

open Mote_lang.Ast.Dsl
module Node = Mote_os.Node
module Network = Mote_os.Network
module Compile = Mote_lang.Compile
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices

let sender_program =
  {
    Mote_lang.Ast.globals = [ ("n", 0) ];
    arrays = [];
    procs =
      [
        proc "beacon" ~params:[] ~locals:[]
          [ set "n" (v "n" +: i 1); send (v "n") ];
      ];
  }

let receiver_program =
  {
    Mote_lang.Ast.globals = [ ("got", 0); ("last", 0) ];
    arrays = [];
    procs =
      [
        proc "rx" ~params:[] ~locals:[ "p" ]
          [
            set "p" radio_rx;
            set "got" (v "got" +: i 1);
            set "last" (v "p");
          ];
      ];
  }

let relay_program =
  {
    Mote_lang.Ast.globals = [ ("fwd", 0) ];
    arrays = [];
    procs =
      [
        proc "rx" ~params:[] ~locals:[ "p" ]
          [ set "p" radio_rx; send (v "p" +: i 100); set "fwd" (v "fwd" +: i 1) ];
      ];
  }

let make_node ?(tasks = []) program =
  let c = Compile.compile program in
  let devices = Devices.create () in
  let machine = Machine.create ~program:c.Compile.program ~devices () in
  let env = Env.create { Env.seed = 1; channels = []; radio = Env.Silent } in
  (c, Node.create ~machine ~env ~tasks ())

let read_global (c, node) ~proc name =
  Machine.read_mem (Node.machine node) (Compile.var_address c ~proc name)

let sender () =
  make_node
    ~tasks:[ { Node.proc = "beacon"; source = Node.Periodic { period = 5003; offset = 11 } } ]
    sender_program

let receiver () =
  make_node ~tasks:[ { Node.proc = "rx"; source = Node.On_radio_rx } ] receiver_program

let relay () =
  make_node ~tasks:[ { Node.proc = "rx"; source = Node.On_radio_rx } ] relay_program

let test_lossless_delivery () =
  let _, s = sender () in
  let ((_, r) as rx) = receiver () in
  let net =
    Network.create ~nodes:[ s; r ]
      ~links:[ { Network.src = 0; dst = 1; loss = 0.0; delay = 50 } ]
      ()
  in
  let stats = Network.run net ~until:200_000 in
  Alcotest.(check bool) "packets sent" true (stats.Network.sent > 30);
  Alcotest.(check int) "all delivered" stats.Network.sent stats.Network.delivered;
  Alcotest.(check int) "zero lost" 0 stats.Network.lost;
  Alcotest.(check int) "receiver counted them" stats.Network.delivered
    (read_global rx ~proc:"rx" "got");
  ignore r

let test_lossy_link () =
  let _, s = sender () in
  let _, r = receiver () in
  let net =
    Network.create ~seed:3 ~nodes:[ s; r ]
      ~links:[ { Network.src = 0; dst = 1; loss = 0.5; delay = 10 } ]
      ()
  in
  let stats = Network.run net ~until:600_000 in
  let ratio = float_of_int stats.Network.delivered /. float_of_int stats.Network.sent in
  Alcotest.(check bool)
    (Printf.sprintf "about half delivered (%.2f)" ratio)
    true
    (ratio > 0.3 && ratio < 0.7);
  Alcotest.(check int) "lost + delivered = sent" stats.Network.sent
    (stats.Network.delivered + stats.Network.lost)

let test_multihop_relay () =
  let _, s = sender () in
  let ((_, rl) as relay_node) = relay () in
  let ((_, r) as rx) = receiver () in
  let net =
    Network.create ~nodes:[ s; rl; r ]
      ~links:
        [
          { Network.src = 0; dst = 1; loss = 0.0; delay = 20 };
          { Network.src = 1; dst = 2; loss = 0.0; delay = 20 };
        ]
      ()
  in
  ignore (Network.run net ~until:300_000);
  let forwarded = read_global relay_node ~proc:"rx" "fwd" in
  let got = read_global rx ~proc:"rx" "got" in
  Alcotest.(check bool) "relay forwarded" true (forwarded > 30);
  Alcotest.(check int) "sink got everything the relay sent" forwarded got;
  (* Payload transformation survives the two hops. *)
  Alcotest.(check bool) "payload offset applied" true
    (read_global rx ~proc:"rx" "last" > 100);
  ignore r

let test_broadcast () =
  let _, s = sender () in
  let ((_, r1) as rx1) = receiver () in
  let ((_, r2) as rx2) = receiver () in
  let net =
    Network.create ~nodes:[ s; r1; r2 ]
      ~links:
        [
          { Network.src = 0; dst = 1; loss = 0.0; delay = 5 };
          { Network.src = 0; dst = 2; loss = 0.0; delay = 5 };
        ]
      ()
  in
  let stats = Network.run net ~until:100_000 in
  Alcotest.(check int) "both receivers" (2 * stats.Network.sent) stats.Network.delivered;
  Alcotest.(check int) "r1 = r2"
    (read_global rx1 ~proc:"rx" "got")
    (read_global rx2 ~proc:"rx" "got")

let test_link_validation () =
  let _, s = sender () in
  let bad links =
    match Network.create ~nodes:[ s ] ~links () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "dangling endpoint" true
    (bad [ { Network.src = 0; dst = 3; loss = 0.0; delay = 0 } ]);
  Alcotest.(check bool) "bad loss" true
    (bad [ { Network.src = 0; dst = 0; loss = 1.5; delay = 0 } ]);
  Alcotest.(check bool) "self link" true
    (bad [ { Network.src = 0; dst = 0; loss = 0.0; delay = 0 } ])

let test_run_determinism () =
  let run_once () =
    let _, s = sender () in
    let ((_, r) as rx) = receiver () in
    let net =
      Network.create ~seed:9 ~nodes:[ s; r ]
        ~links:[ { Network.src = 0; dst = 1; loss = 0.3; delay = 40 } ]
        ()
    in
    ignore (Network.run net ~until:300_000);
    read_global rx ~proc:"rx" "got"
  in
  Alcotest.(check int) "deterministic" (run_once ()) (run_once ())

let suite =
  [
    Alcotest.test_case "lossless delivery" `Quick test_lossless_delivery;
    Alcotest.test_case "lossy link" `Quick test_lossy_link;
    Alcotest.test_case "multihop relay" `Quick test_multihop_relay;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "link validation" `Quick test_link_validation;
    Alcotest.test_case "determinism" `Quick test_run_determinism;
  ]

let test_delay_honored () =
  (* With a huge delay, nothing can be delivered before the deadline. *)
  let _, s = sender () in
  let ((_, r) as rx) = receiver () in
  let net =
    Network.create ~nodes:[ s; r ]
      ~links:[ { Network.src = 0; dst = 1; loss = 0.0; delay = 1_000_000 } ]
      ()
  in
  let stats = Network.run net ~until:100_000 in
  Alcotest.(check bool) "sent" true (stats.Network.sent > 0);
  Alcotest.(check int) "nothing received yet" 0 (read_global rx ~proc:"rx" "got");
  (* Extending past the delay delivers them. *)
  ignore (Network.run net ~until:1_200_000);
  Alcotest.(check bool) "delivered after delay" true
    (read_global rx ~proc:"rx" "got" > 0)

let suite = suite @ [ Alcotest.test_case "delay honored" `Quick test_delay_honored ]
