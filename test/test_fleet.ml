(* Fleet: the multi-node streaming-estimation service.

   The load-bearing claim is incrementality: because the lossy collector
   is sequential, feeding a node's record stream batch-by-batch leaves
   the online estimator in bit-for-bit the state it reaches on the
   concatenated stream.  Everything else — health-gated fusion, decay
   under drift, -j invariance, and the fleet-vs-single-node anchor — is
   asserted on top of that. *)

module P = Codetomo.Pipeline
module Session = Codetomo.Session
module Compile = Mote_lang.Compile
module Asm = Mote_isa.Asm
module Cfg = Cfgir.Cfg
module Probes = Profilekit.Probes
module Transport = Profilekit.Transport
module Wire = Profilekit.Wire

let exact = Alcotest.(array (float 0.0))

(* A small campaign: the filter workload at a reduced horizon, so each
   node still closes a few hundred probe windows. *)
let short_config = { P.default_config with P.horizon = Some 400_000 }

let setup =
  lazy
    (let w = Workloads.find "filter" in
     let compiled = Workloads.compiled w in
     let instrumented = Asm.assemble (Probes.instrument compiled.Compile.items) in
     let proc = List.hd w.Workloads.profiled in
     let paths =
       Tomo.Paths.enumerate (Tomo.Model.of_cfg (Cfg.of_proc_name instrumented proc))
     in
     (w, instrumented, proc, paths))

let make_ingest ?(decay = 0.999) node =
  let _, instrumented, proc, paths = Lazy.force setup in
  Fleet.Ingest.create ~node ~program:instrumented
    ~resolution:short_config.P.timer_resolution
    ~sigma:(P.noise_sigma short_config) ~decay ~procs:[ (proc, paths) ]

let node_runs ~faults ~nodes =
  let w, instrumented, _, _ = Lazy.force setup in
  let roster = Fleet.Sim.plan ~seed:7 ~nodes ~faults ~vary_faults:true in
  List.map (Fleet.Sim.run_node ~workload:w ~instrumented ~config:short_config) roster

(* Batch-by-batch ingest must equal one-shot ingest of the concatenated
   stream — exactly, not approximately. *)
let incremental_equals_concatenated () =
  let _, _, proc, _ = Lazy.force setup in
  let rounds = 5 in
  List.iter
    (fun (nr : Fleet.Sim.node_run) ->
      let batch = Fleet.Sim.default_batch nr ~rounds in
      let batches =
        List.init rounds (fun round -> fst (Fleet.Sim.batch nr ~batch ~round))
      in
      let incremental = make_ingest nr.Fleet.Sim.node in
      List.iter (Fleet.Ingest.ingest incremental) batches;
      let one_shot = make_ingest nr.Fleet.Sim.node in
      Fleet.Ingest.ingest one_shot
        (Wire.encode (List.concat_map Wire.decode_exn batches));
      Alcotest.(check int)
        "fed" (Fleet.Ingest.fed one_shot proc)
        (Fleet.Ingest.fed incremental proc);
      Alcotest.(check int)
        "discarded" (Fleet.Ingest.discarded one_shot)
        (Fleet.Ingest.discarded incremental);
      Alcotest.check exact "theta"
        (Fleet.Ingest.theta one_shot proc)
        (Fleet.Ingest.theta incremental proc);
      Alcotest.(check (float 0.0))
        "weight"
        (Fleet.Ingest.weight one_shot proc)
        (Fleet.Ingest.weight incremental proc);
      Alcotest.check exact "samples"
        (Fleet.Ingest.samples one_shot proc)
        (Fleet.Ingest.samples incremental proc))
    (node_runs ~faults:(Transport.field ()) ~nodes:2)

(* Through the same ingest path, the online estimate must land near the
   offline EM on the very samples it was fed. *)
let online_matches_batch_em () =
  let _, _, proc, paths = Lazy.force setup in
  let nr = List.hd (node_runs ~faults:Transport.default ~nodes:1) in
  let ing = make_ingest nr.Fleet.Sim.node in
  let rounds = 4 in
  let batch = Fleet.Sim.default_batch nr ~rounds in
  for round = 0 to rounds - 1 do
    Fleet.Ingest.ingest ing (fst (Fleet.Sim.batch nr ~batch ~round))
  done;
  let samples = Fleet.Ingest.samples ing proc in
  Alcotest.(check bool) "enough samples" true (Array.length samples > 100);
  let em =
    Tomo.Em.estimate ~sigma:(P.noise_sigma short_config) paths ~samples
  in
  let mae = Stats.Metrics.mae (Fleet.Ingest.theta ing proc) em.Tomo.Em.theta in
  if mae > 0.05 then
    Alcotest.failf "online diverged from batch EM: MAE %.4f" mae

(* With decay, old evidence fades: after a theta flip, the estimate must
   track the new regime, not the (larger) stale prefix. *)
let decay_forgets_drift () =
  let _, _, _, paths = Lazy.force setup in
  let sigma = P.noise_sigma short_config in
  let k = Tomo.Model.num_params (Tomo.Paths.model paths) in
  let before = Array.make k 0.9 and after = Array.make k 0.1 in
  let rng = Stats.Rng.create 11 in
  let online = Tomo.Online.create ~decay:0.99 ~sigma paths in
  Array.iter (Tomo.Online.observe online)
    (Tomo.Paths.sample_costs rng paths ~theta:before ~n:600);
  Array.iter (Tomo.Online.observe online)
    (Tomo.Paths.sample_costs rng paths ~theta:after ~n:600);
  let theta = Tomo.Online.theta online in
  let d_after = Stats.Metrics.mae theta after
  and d_before = Stats.Metrics.mae theta before in
  if d_after >= d_before then
    Alcotest.failf "estimate still remembers the old regime: %.3f vs %.3f"
      d_after d_before;
  if d_after > 0.25 then
    Alcotest.failf "estimate did not converge to the new regime: MAE %.3f" d_after

(* A node whose link delivered nothing is Rejected by the sample floor
   and must not move the fused estimate at all. *)
let rejected_node_excluded () =
  let _, _, proc, _ = Lazy.force setup in
  match node_runs ~faults:Transport.default ~nodes:2 with
  | [ nr0; nr1 ] ->
      let fed = make_ingest nr0.Fleet.Sim.node in
      Fleet.Ingest.ingest fed
        (fst
           (Fleet.Sim.batch nr0 ~batch:(Array.length nr0.Fleet.Sim.log) ~round:0));
      let starved = make_ingest nr1.Fleet.Sim.node in
      let min_samples = Tomo.Health.default_min_samples in
      let input_of ing = Fleet.Ingest.fusion_input ing ~min_samples proc in
      Alcotest.(check bool)
        "starved node is rejected" true
        (Tomo.Health.is_rejected (input_of starved).Fleet.Fusion.health);
      let r = Fleet.Fusion.fuse [ input_of fed; input_of starved ] in
      Alcotest.(check int) "admitted" 1 r.Fleet.Fusion.admitted;
      Alcotest.(check int) "rejected" 1 r.Fleet.Fusion.rejected;
      (match r.Fleet.Fusion.fused with
      | None -> Alcotest.fail "no fused estimate despite a healthy node"
      | Some fused ->
          (* (w·θ)/w costs one rounding, hence not `exact` *)
          Alcotest.(check (array (float 1e-12)))
            "fused = healthy node's theta"
            (Fleet.Ingest.theta fed proc) fused);
      (* Nothing admissible at all: placement must get None, not 0.5s. *)
      let empty = Fleet.Fusion.fuse [ input_of starved ] in
      Alcotest.(check bool) "all-rejected fuses to None" true
        (empty.Fleet.Fusion.fused = None)
  | _ -> assert false

let fusion_arity_mismatch () =
  let input theta =
    { Fleet.Fusion.theta; weight = 1.0; health = Tomo.Health.Healthy }
  in
  match Fleet.Fusion.fuse [ input [| 0.5 |]; input [| 0.5; 0.5 |] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched theta arities fused"

(* The acceptance bar: an 8-node fleet on field-grade links must land
   within 5% of the single-node clean-link reduction, and the whole
   report must be identical at -j 1 and -j 4. *)
let fleet_anchor_and_determinism () =
  let w = Workloads.find "filter" in
  let config =
    {
      (Fleet.Service.default_config w) with
      Fleet.Service.faults = Transport.field ();
    }
  in
  let s1 = Session.create ~domains:1 () in
  let r1 = Fleet.Service.run ~session:s1 config in
  let s4 = Session.create ~domains:4 () in
  let r4 = Fleet.Service.run ~session:s4 config in
  Alcotest.(check int)
    "natural taken (-j)" r1.Fleet.Service.final.Fleet.Service.natural_taken
    r4.Fleet.Service.final.Fleet.Service.natural_taken;
  Alcotest.(check int)
    "placed taken (-j)" r1.Fleet.Service.final.Fleet.Service.placed_taken
    r4.Fleet.Service.final.Fleet.Service.placed_taken;
  List.iter2
    (fun (a : Fleet.Service.round_report) (b : Fleet.Service.round_report) ->
      Alcotest.(check int) "round delivered (-j)" a.Fleet.Service.delivered
        b.Fleet.Service.delivered;
      Alcotest.(check (float 0.0))
        "round MAE (-j)" a.Fleet.Service.fused_mae b.Fleet.Service.fused_mae)
    r1.Fleet.Service.round_reports r4.Fleet.Service.round_reports;
  List.iter2
    (fun (pa, ta) (pb, tb) ->
      Alcotest.(check string) "proc (-j)" pa pb;
      match (ta, tb) with
      | Some ta, Some tb -> Alcotest.check exact "fused theta (-j)" ta tb
      | None, None -> ()
      | _ -> Alcotest.fail "fused presence differs across -j")
    r1.Fleet.Service.fused r4.Fleet.Service.fused;
  (* Single-node clean-link anchor, via the public pipeline API. *)
  let run = P.profile ~config:P.default_config w in
  let variants = P.compare_layouts ~ctx:(Session.ctx s1 w) run in
  let anchor = Fleet.Service.reduction_of variants in
  let fleet = r1.Fleet.Service.final.Fleet.Service.reduction in
  Alcotest.(check bool) "fleet actually reduces" true (fleet > 0.2);
  if Float.abs (fleet -. anchor) > 0.05 then
    Alcotest.failf "fleet reduction %.3f vs single-node anchor %.3f" fleet anchor

let suite =
  [
    Alcotest.test_case "incremental = concatenated" `Quick incremental_equals_concatenated;
    Alcotest.test_case "online matches batch EM" `Quick online_matches_batch_em;
    Alcotest.test_case "decay forgets drift" `Quick decay_forgets_drift;
    Alcotest.test_case "rejected node excluded" `Quick rejected_node_excluded;
    Alcotest.test_case "fusion arity mismatch" `Quick fusion_arity_mismatch;
    Alcotest.test_case "anchor + -j determinism" `Slow fleet_anchor_and_determinism;
  ]
