(* Stats.Rng: determinism, ranges, stream independence. *)

let test_determinism () =
  let a = Stats.Rng.create 123 and b = Stats.Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)
  done

let test_different_seeds () =
  let a = Stats.Rng.create 1 and b = Stats.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Stats.Rng.bits64 a = Stats.Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Stats.Rng.create 9 in
  ignore (Stats.Rng.bits64 a);
  let b = Stats.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Stats.Rng.bits64 a)
    (Stats.Rng.bits64 b)

let test_split_independent () =
  let parent = Stats.Rng.create 5 in
  let child = Stats.Rng.split parent in
  let xs = Array.init 32 (fun _ -> Stats.Rng.bits64 parent) in
  let ys = Array.init 32 (fun _ -> Stats.Rng.bits64 child) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_split_n_matches_split () =
  let a = Stats.Rng.create 5 and b = Stats.Rng.create 5 in
  let children = Stats.Rng.split_n a 4 in
  Array.iter
    (fun child ->
      let expected = Stats.Rng.split b in
      Alcotest.(check int64) "split_n = repeated split" (Stats.Rng.bits64 expected)
        (Stats.Rng.bits64 child))
    children;
  (* Parents advanced identically. *)
  Alcotest.(check int64) "parent state" (Stats.Rng.bits64 b) (Stats.Rng.bits64 a)

let test_stream_deterministic () =
  let a = Stats.Rng.stream ~seed:42 ~index:3 in
  let b = Stats.Rng.stream ~seed:42 ~index:3 in
  for _ = 1 to 32 do
    Alcotest.(check int64) "same (seed, index) stream" (Stats.Rng.bits64 a)
      (Stats.Rng.bits64 b)
  done

let test_stream_decorrelated () =
  let draws index =
    let rng = Stats.Rng.stream ~seed:42 ~index in
    Array.init 16 (fun _ -> Stats.Rng.bits64 rng)
  in
  Alcotest.(check bool) "index 0 <> index 1" true (draws 0 <> draws 1);
  Alcotest.(check bool) "index 1 <> index 2" true (draws 1 <> draws 2);
  let base = Stats.Rng.create 42 in
  let base_draws = Array.init 16 (fun _ -> Stats.Rng.bits64 base) in
  Alcotest.(check bool) "stream 0 <> create seed" true (draws 0 <> base_draws)

let test_int_bounds () =
  let rng = Stats.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Stats.Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done

let test_int_bad_bound () =
  let rng = Stats.Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Stats.Rng.int rng 0))

let test_int_covers_all () =
  let rng = Stats.Rng.create 11 in
  let seen = Array.make 6 false in
  for _ = 1 to 1000 do
    seen.(Stats.Rng.int rng 6) <- true
  done;
  Alcotest.(check bool) "all values appear" true (Array.for_all Fun.id seen)

let test_unit_float_range () =
  let rng = Stats.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Stats.Rng.unit_float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_bernoulli_frequency () =
  let rng = Stats.Rng.create 17 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Stats.Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p near 0.3" true (abs_float (p -. 0.3) < 0.02)

let test_shuffle_is_permutation () =
  let rng = Stats.Rng.create 21 in
  let a = Array.init 20 Fun.id in
  Stats.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_choose_member () =
  let rng = Stats.Rng.create 2 in
  let a = [| 5; 6; 7 |] in
  for _ = 1 to 50 do
    let v = Stats.Rng.choose rng a in
    Alcotest.(check bool) "member" true (Array.exists (( = ) v) a)
  done

let test_categorical_weights () =
  let rng = Stats.Rng.create 33 in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let i = Stats.Rng.categorical rng [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "w0 ~ 0.1" true (abs_float (frac 0 -. 0.1) < 0.02);
  Alcotest.(check bool) "w2 ~ 0.7" true (abs_float (frac 2 -. 0.7) < 0.02)

let test_categorical_zero_weights () =
  let rng = Stats.Rng.create 1 in
  Alcotest.check_raises "all-zero weights"
    (Invalid_argument "Rng.categorical: weights sum to zero") (fun () ->
      ignore (Stats.Rng.categorical rng [| 0.0; 0.0 |]))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"int always within bound" ~count:500
         QCheck.(pair small_int (int_range 1 1000))
         (fun (seed, bound) ->
           let rng = Stats.Rng.create seed in
           let v = Stats.Rng.int rng bound in
           v >= 0 && v < bound));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"categorical picks positive-weight index" ~count:200
         QCheck.(pair small_int (list_of_size (Gen.int_range 1 8) (float_range 0.0 10.0)))
         (fun (seed, ws) ->
           QCheck.assume (List.exists (fun w -> w > 0.0) ws);
           let rng = Stats.Rng.create seed in
           let w = Array.of_list ws in
           let i = Stats.Rng.categorical rng w in
           i >= 0 && i < Array.length w && w.(i) >= 0.0));
  ]

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds" `Quick test_different_seeds;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "split" `Quick test_split_independent;
    Alcotest.test_case "split_n" `Quick test_split_n_matches_split;
    Alcotest.test_case "stream determinism" `Quick test_stream_deterministic;
    Alcotest.test_case "stream decorrelation" `Quick test_stream_decorrelated;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int bad bound" `Quick test_int_bad_bound;
    Alcotest.test_case "int covers all" `Quick test_int_covers_all;
    Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
    Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "choose member" `Quick test_choose_member;
    Alcotest.test_case "categorical weights" `Quick test_categorical_weights;
    Alcotest.test_case "categorical zero weights" `Quick test_categorical_zero_weights;
  ]
  @ qcheck_tests
