(* Stats.Dist: sampler moments and density identities. *)

let rng () = Stats.Rng.create 2024

let moments n f =
  let r = rng () in
  let s = Stats.Summary.create () in
  for _ = 1 to n do
    Stats.Summary.add s (f r)
  done;
  (Stats.Summary.mean s, Stats.Summary.stddev s)

let close ?(tol = 0.05) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%f - %f| < %f" name actual expected tol)
    true
    (abs_float (actual -. expected) < tol)

let test_uniform () =
  let mean, _ = moments 50_000 (fun r -> Stats.Dist.uniform r ~lo:2.0 ~hi:4.0) in
  close "uniform mean" 3.0 mean;
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Stats.Dist.uniform r ~lo:2.0 ~hi:4.0 in
    Alcotest.(check bool) "uniform range" true (v >= 2.0 && v < 4.0)
  done

let test_gaussian () =
  let mean, std = moments 50_000 (fun r -> Stats.Dist.gaussian r ~mu:10.0 ~sigma:3.0) in
  close "gaussian mean" 10.0 mean;
  close "gaussian std" 3.0 std

let test_gaussian_negative_sigma () =
  Alcotest.check_raises "negative sigma" (Invalid_argument "Dist.gaussian: negative sigma")
    (fun () -> ignore (Stats.Dist.gaussian (rng ()) ~mu:0.0 ~sigma:(-1.0)))

let test_exponential () =
  let mean, std = moments 50_000 (fun r -> Stats.Dist.exponential r ~rate:2.0) in
  close ~tol:0.02 "exponential mean" 0.5 mean;
  close ~tol:0.02 "exponential std" 0.5 std

let test_poisson_small () =
  let mean, _ = moments 50_000 (fun r -> float_of_int (Stats.Dist.poisson r ~lambda:3.5)) in
  close "poisson mean" 3.5 mean

let test_poisson_large () =
  let mean, std =
    moments 20_000 (fun r -> float_of_int (Stats.Dist.poisson r ~lambda:100.0))
  in
  close ~tol:0.5 "poisson mean (normal approx)" 100.0 mean;
  close ~tol:0.5 "poisson std (normal approx)" 10.0 std

let test_poisson_zero () =
  Alcotest.(check int) "lambda 0" 0 (Stats.Dist.poisson (rng ()) ~lambda:0.0)

let test_geometric () =
  (* Mean of failures-before-success is (1-p)/p. *)
  let p = 0.25 in
  let mean, _ = moments 50_000 (fun r -> float_of_int (Stats.Dist.geometric r ~p)) in
  close ~tol:0.1 "geometric mean" 3.0 mean

let test_geometric_one () =
  Alcotest.(check int) "p=1 is always 0" 0 (Stats.Dist.geometric (rng ()) ~p:1.0)

let test_dirichlet_pair () =
  let mean, _ = moments 20_000 (fun r -> Stats.Dist.dirichlet_pair r ~alpha:2.0) in
  close "beta(2,2) mean" 0.5 mean;
  let r = rng () in
  for _ = 1 to 500 do
    let v = Stats.Dist.dirichlet_pair r ~alpha:0.5 in
    Alcotest.(check bool) "in (0,1)" true (v > 0.0 && v < 1.0)
  done

let test_gaussian_pdf_integrates () =
  (* Trapezoid over +-6 sigma. *)
  let mu = 1.0 and sigma = 2.0 in
  let steps = 4000 in
  let lo = mu -. (6.0 *. sigma) and hi = mu +. (6.0 *. sigma) in
  let h = (hi -. lo) /. float_of_int steps in
  let total = ref 0.0 in
  for i = 0 to steps - 1 do
    let x = lo +. (h *. (float_of_int i +. 0.5)) in
    total := !total +. (h *. Stats.Dist.gaussian_pdf ~mu ~sigma x)
  done;
  close ~tol:1e-3 "pdf mass" 1.0 !total

let test_log_pdf_consistent () =
  let xs = [ -3.0; 0.0; 0.7; 5.0 ] in
  List.iter
    (fun x ->
      let p = Stats.Dist.gaussian_pdf ~mu:0.5 ~sigma:1.5 x in
      let lp = Stats.Dist.gaussian_log_pdf ~mu:0.5 ~sigma:1.5 x in
      close ~tol:1e-9 "log pdf" (log p) lp)
    xs

let test_geometric_pmf_sums () =
  let p = 0.3 in
  let total = ref 0.0 in
  for k = 0 to 200 do
    total := !total +. Stats.Dist.geometric_pmf ~p k
  done;
  close ~tol:1e-9 "pmf sums to 1" 1.0 !total

let test_geometric_tail () =
  let p = 0.4 in
  (* tail(k) = sum_{j>=k} pmf(j) *)
  let tail_direct k =
    let acc = ref 0.0 in
    for j = k to 300 do
      acc := !acc +. Stats.Dist.geometric_pmf ~p j
    done;
    !acc
  in
  List.iter
    (fun k -> close ~tol:1e-9 "tail identity" (tail_direct k) (Stats.Dist.geometric_tail ~p k))
    [ 0; 1; 3; 10 ]

let suite =
  [
    Alcotest.test_case "uniform" `Quick test_uniform;
    Alcotest.test_case "gaussian" `Quick test_gaussian;
    Alcotest.test_case "gaussian negative sigma" `Quick test_gaussian_negative_sigma;
    Alcotest.test_case "exponential" `Quick test_exponential;
    Alcotest.test_case "poisson small" `Quick test_poisson_small;
    Alcotest.test_case "poisson large" `Quick test_poisson_large;
    Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
    Alcotest.test_case "geometric" `Quick test_geometric;
    Alcotest.test_case "geometric p=1" `Quick test_geometric_one;
    Alcotest.test_case "dirichlet pair" `Quick test_dirichlet_pair;
    Alcotest.test_case "gaussian pdf integrates" `Quick test_gaussian_pdf_integrates;
    Alcotest.test_case "log pdf consistent" `Quick test_log_pdf_consistent;
    Alcotest.test_case "geometric pmf sums" `Quick test_geometric_pmf_sums;
    Alcotest.test_case "geometric tail" `Quick test_geometric_tail;
  ]
