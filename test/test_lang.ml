(* Mote_lang: Check and Compile, executed on the machine. *)

open Mote_lang.Ast.Dsl
module Ast = Mote_lang.Ast
module Check = Mote_lang.Check
module Compile = Mote_lang.Compile
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices

let compile_and_run ?(devices = Devices.create ()) program proc =
  let c = Compile.compile program in
  let m = Machine.create ~program:c.Compile.program ~devices () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  ignore (Machine.run_proc m proc);
  (c, m)

let read_var (c, m) ~proc name = Machine.read_mem m (Compile.var_address c ~proc name)

let prog ?(globals = []) ?(arrays = []) procs = { Ast.globals; arrays; procs }

(* --- semantic checks --- *)

let errors_of p = match Check.program p with Ok () -> [] | Error es -> es

let test_unknown_variable () =
  let p = prog [ proc "f" ~params:[] ~locals:[] [ set "x" (i 1) ] ] in
  Alcotest.(check bool) "reported" true (errors_of p <> [])

let test_unknown_procedure () =
  let p = prog [ proc "f" ~params:[] ~locals:[] [ callp "nope" [] ] ] in
  Alcotest.(check bool) "reported" true (errors_of p <> [])

let test_arity_mismatch () =
  let p =
    prog
      [
        proc "g" ~params:[ "a"; "b" ] ~locals:[] [ return (v "a") ];
        proc "f" ~params:[] ~locals:[] [ callp "g" [ i 1 ] ];
      ]
  in
  Alcotest.(check bool) "reported" true (errors_of p <> [])

let test_recursion_rejected () =
  let p = prog [ proc "f" ~params:[] ~locals:[] [ callp "f" [] ] ] in
  Alcotest.(check bool) "self recursion" true (errors_of p <> []);
  let p2 =
    prog
      [
        proc "f" ~params:[] ~locals:[] [ callp "g" [] ];
        proc "g" ~params:[] ~locals:[] [ callp "f" [] ];
      ]
  in
  Alcotest.(check bool) "mutual recursion" true (errors_of p2 <> [])

let test_duplicates_rejected () =
  let p =
    prog ~globals:[ ("x", 0); ("x", 1) ] [ proc "f" ~params:[] ~locals:[] [] ]
  in
  Alcotest.(check bool) "duplicate global" true (errors_of p <> []);
  let p2 = prog [ proc "f" ~params:[ "a" ] ~locals:[ "a" ] [] ] in
  Alcotest.(check bool) "param/local clash" true (errors_of p2 <> [])

let test_valid_program_accepted () =
  let p =
    prog ~globals:[ ("g", 3) ]
      [
        proc "helper" ~params:[ "x" ] ~locals:[] [ return (v "x" +: v "g") ];
        proc "f" ~params:[] ~locals:[ "y" ] [ set "y" (fn "helper" [ i 2 ]) ];
      ]
  in
  Alcotest.(check bool) "accepted" true (errors_of p = [])

(* --- compilation and execution --- *)

let test_globals_initialized () =
  let p = prog ~globals:[ ("a", 42); ("b", -7) ] [ proc "f" ~params:[] ~locals:[] [] ] in
  let r = compile_and_run p "f" in
  Alcotest.(check int) "a" 42 (read_var r ~proc:"f" "a");
  Alcotest.(check int) "b" (-7) (read_var r ~proc:"f" "b")

let test_arithmetic_expressions () =
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "f" ~params:[] ~locals:[ "t" ]
          [
            set "t" (((i 3 +: i 4) *: i 5) -: (i 20 >>: i 2));
            set "out" (v "t");
          ];
      ]
  in
  Alcotest.(check int) "35 - 5" 30 (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_relational_values () =
  let p =
    prog ~globals:[ ("a", 0); ("b", 0); ("c", 0) ]
      [
        proc "f" ~params:[] ~locals:[]
          [
            set "a" (i 3 <: i 5);
            set "b" (i 5 <: i 3);
            set "c" ((i 2 =: i 2) +: (i 1 <>: i 1));
          ];
      ]
  in
  let r = compile_and_run p "f" in
  Alcotest.(check int) "3<5" 1 (read_var r ~proc:"f" "a");
  Alcotest.(check int) "5<3" 0 (read_var r ~proc:"f" "b");
  Alcotest.(check int) "1+0" 1 (read_var r ~proc:"f" "c")

let test_if_else () =
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "f" ~params:[ "x" ] ~locals:[]
          [ if_ (v "x" >: i 10) [ set "out" (i 1) ] [ set "out" (i 2) ] ];
      ]
  in
  let c = Compile.compile p in
  let m = Machine.create ~program:c.Compile.program ~devices:(Devices.create ()) () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  let run_with x =
    Machine.write_mem m (Compile.var_address c ~proc:"f" "x") x;
    ignore (Machine.run_proc m "f");
    Machine.read_mem m (Compile.var_address c ~proc:"f" "out")
  in
  Alcotest.(check int) "then" 1 (run_with 11);
  Alcotest.(check int) "else" 2 (run_with 10)

let test_while_loop () =
  (* Sum 1..10 = 55. *)
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "f" ~params:[] ~locals:[ "k"; "acc" ]
          [
            set "k" (i 1);
            set "acc" (i 0);
            while_ (v "k" <=: i 10)
              [ set "acc" (v "acc" +: v "k"); set "k" (v "k" +: i 1) ];
            set "out" (v "acc");
          ];
      ]
  in
  Alcotest.(check int) "sum" 55 (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_nested_loops () =
  (* 4 * 3 iterations. *)
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "f" ~params:[] ~locals:[ "a"; "b" ]
          [
            set "a" (i 0);
            while_ (v "a" <: i 4)
              [
                set "b" (i 0);
                while_ (v "b" <: i 3)
                  [ set "out" (v "out" +: i 1); set "b" (v "b" +: i 1) ];
                set "a" (v "a" +: i 1);
              ];
          ];
      ]
  in
  Alcotest.(check int) "12 iterations" 12 (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_function_call_with_args () =
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "add3" ~params:[ "a"; "b"; "c" ] ~locals:[] [ return ((v "a" +: v "b") +: v "c") ];
        proc "f" ~params:[] ~locals:[] [ set "out" (fn "add3" [ i 10; i 20; i 30 ]) ];
      ]
  in
  Alcotest.(check int) "sum of args" 60 (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_nested_calls_in_expression () =
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "double" ~params:[ "x" ] ~locals:[] [ return (v "x" +: v "x") ];
        proc "f" ~params:[] ~locals:[]
          [ set "out" (fn "double" [ fn "double" [ i 3 ] ] +: fn "double" [ i 1 ]) ];
      ]
  in
  Alcotest.(check int) "12 + 2" 14 (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_early_return () =
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "sign" ~params:[ "x" ] ~locals:[]
          [
            when_ (v "x" <: i 0) [ return (i (-1)) ];
            when_ (v "x" >: i 0) [ return (i 1) ];
            return (i 0);
          ];
        proc "f" ~params:[] ~locals:[]
          [ set "out" ((fn "sign" [ i (-5) ] *: i 100) +: (fn "sign" [ i 7 ] *: i 10) +: fn "sign" [ i 0 ]) ];
      ]
  in
  Alcotest.(check int) "-100 + 10 + 0" (-90) (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_short_circuit_and_or () =
  (* g bumps a counter; short-circuit must avoid the second call. *)
  let p =
    prog ~globals:[ ("calls", 0); ("out", 0) ]
      [
        proc "bump" ~params:[] ~locals:[]
          [ set "calls" (v "calls" +: i 1); return (i 1) ];
        proc "f" ~params:[] ~locals:[]
          [
            if_ ((i 0 <>: i 0) &&: (fn "bump" [] =: i 1)) [ set "out" (i 1) ] [];
            if_ ((i 1 =: i 1) ||: (fn "bump" [] =: i 1)) [ set "out" (v "out" +: i 2) ] [];
          ];
      ]
  in
  let r = compile_and_run p "f" in
  Alcotest.(check int) "no calls happened" 0 (read_var r ~proc:"f" "calls");
  Alcotest.(check int) "or branch ran" 2 (read_var r ~proc:"f" "out")

let test_not_and_bool_materialization () =
  let p =
    prog ~globals:[ ("a", 0); ("b", 0) ]
      [
        proc "f" ~params:[] ~locals:[]
          [
            set "a" (not_ (i 0));
            set "b" ((i 1 =: i 1) &&: (i 2 <: i 3));
          ];
      ]
  in
  let r = compile_and_run p "f" in
  Alcotest.(check int) "not 0" 1 (read_var r ~proc:"f" "a");
  Alcotest.(check int) "true && true" 1 (read_var r ~proc:"f" "b")

let test_sensor_and_devices () =
  let devices = Devices.create () in
  Devices.set_sensor devices (fun ch -> 500 + ch);
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "f" ~params:[] ~locals:[]
          [ set "out" (sensor 2); send (v "out"); led (i 5) ];
      ]
  in
  let r = compile_and_run ~devices p "f" in
  Alcotest.(check int) "sensor value" 502 (read_var r ~proc:"f" "out");
  Alcotest.(check (list int)) "transmitted" [ 502 ] (Devices.tx_log devices);
  Alcotest.(check int) "led" 5 (Devices.leds devices)

let test_radio_rx_expression () =
  let devices = Devices.create () in
  Devices.radio_push_rx devices 99;
  let p =
    prog ~globals:[ ("out", 0) ]
      [ proc "f" ~params:[] ~locals:[] [ set "out" radio_rx ] ]
  in
  Alcotest.(check int) "rx" 99 (read_var (compile_and_run ~devices p "f") ~proc:"f" "out")

let test_globals_shared_between_procs () =
  let p =
    prog ~globals:[ ("g", 0) ]
      [
        proc "writer" ~params:[] ~locals:[] [ set "g" (i 5) ];
        proc "f" ~params:[] ~locals:[] [ callp "writer" []; set "g" (v "g" +: i 1) ];
      ]
  in
  Alcotest.(check int) "shared" 6 (read_var (compile_and_run p "f") ~proc:"f" "g")

let test_branch_polarity_convention () =
  (* The hot arm of an if must be the fall-through in natural layout:
     compile `if c then A else B` and check the entry's taken target is B
     (the else arm). *)
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "f" ~params:[] ~locals:[]
          [ if_ (i 1 =: i 1) [ set "out" (i 1) ] [ set "out" (i 2) ] ];
      ]
  in
  let c = Compile.compile p in
  let cfg = Cfgir.Cfg.of_proc_name c.Compile.program "f" in
  match (Cfgir.Cfg.block cfg 0).Cfgir.Cfg.term with
  | Cfgir.Cfg.T_branch (Mote_isa.Isa.Ne, _, fall) ->
      (* Fall block is the then-arm: it assigns 1. *)
      Alcotest.(check int) "fall is next block" 1 fall
  | _ -> Alcotest.fail "expected negated-condition branch"

let test_deep_expression_rejected () =
  let rec deep n = if n = 0 then i 1 else Ast.Bin (Ast.Add, deep (n - 1), deep (n - 1)) in
  let p = prog [ proc "f" ~params:[] ~locals:[] [ set "x" (deep 14) ] ] in
  ignore p;
  (* Unknown var x AND register overflow are both possible: build valid one. *)
  let p2 =
    prog ~globals:[ ("x", 0) ] [ proc "f" ~params:[] ~locals:[] [ set "x" (deep 14) ] ]
  in
  Alcotest.(check bool) "register overflow rejected" true
    (match Compile.compile p2 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_var_address_lookup () =
  let p =
    prog ~globals:[ ("g", 1) ]
      [ proc "f" ~params:[ "p" ] ~locals:[ "l" ] [ set "l" (v "p" +: v "g") ] ]
  in
  let c = Compile.compile p in
  let addr_g = Compile.var_address c ~proc:"f" "g" in
  let addr_p = Compile.var_address c ~proc:"f" "p" in
  Alcotest.(check bool) "distinct addresses" true (addr_g <> addr_p);
  Alcotest.(check bool) "missing raises" true
    (match Compile.var_address c ~proc:"f" "zzz" with
    | _ -> false
    | exception Not_found -> true)

let test_array_read_write () =
  let p =
    prog ~globals:[ ("out", 0) ] ~arrays:[ ("buf", 4) ]
      [
        proc "f" ~params:[] ~locals:[ "k" ]
          [
            set "k" (i 0);
            while_ (v "k" <: i 4)
              [ set_at "buf" (v "k") (v "k" *: i 10); set "k" (v "k" +: i 1) ];
            set "out" (at "buf" (i 2) +: at "buf" (i 3));
          ];
      ]
  in
  Alcotest.(check int) "20 + 30" 50 (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_array_zeroed_at_boot () =
  let p =
    prog ~globals:[ ("out", 0) ] ~arrays:[ ("buf", 8) ]
      [ proc "f" ~params:[] ~locals:[] [ set "out" (at "buf" (i 5) +: i 7) ] ]
  in
  Alcotest.(check int) "reads zero" 7 (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_array_checks () =
  let unknown =
    prog [ proc "f" ~params:[] ~locals:[ "x" ] [ set "x" (at "nope" (i 0)) ] ]
  in
  Alcotest.(check bool) "unknown array" true (errors_of unknown <> []);
  let bad_size =
    prog ~arrays:[ ("b", 0) ] [ proc "f" ~params:[] ~locals:[] [] ]
  in
  Alcotest.(check bool) "zero size" true (errors_of bad_size <> []);
  let clash =
    prog ~globals:[ ("b", 0) ] ~arrays:[ ("b", 4) ] [ proc "f" ~params:[] ~locals:[] [] ]
  in
  Alcotest.(check bool) "global/array clash" true (errors_of clash <> [])

let test_array_address () =
  let p =
    prog ~globals:[ ("g", 0) ] ~arrays:[ ("b", 4); ("c", 2) ]
      [ proc "f" ~params:[] ~locals:[] [ set_at "c" (i 1) (i 5) ] ]
  in
  let c = Compile.compile p in
  let b = Compile.array_address c "b" in
  let cc = Compile.array_address c "c" in
  Alcotest.(check int) "arrays are adjacent" (b + 4) cc;
  let m = Machine.create ~program:c.Compile.program ~devices:(Devices.create ()) () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  ignore (Machine.run_proc m "f");
  Alcotest.(check int) "write landed" 5 (Machine.read_mem m (cc + 1))

let test_pp_program () =
  let text = Format.asprintf "%a" Ast.pp_program Workloads.sense.Workloads.program in
  Alcotest.(check bool) "renders" true (String.length text > 100)

let suite =
  [
    Alcotest.test_case "unknown variable" `Quick test_unknown_variable;
    Alcotest.test_case "unknown procedure" `Quick test_unknown_procedure;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "recursion rejected" `Quick test_recursion_rejected;
    Alcotest.test_case "duplicates rejected" `Quick test_duplicates_rejected;
    Alcotest.test_case "valid accepted" `Quick test_valid_program_accepted;
    Alcotest.test_case "globals initialized" `Quick test_globals_initialized;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic_expressions;
    Alcotest.test_case "relational values" `Quick test_relational_values;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "while loop" `Quick test_while_loop;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "function call" `Quick test_function_call_with_args;
    Alcotest.test_case "nested calls" `Quick test_nested_calls_in_expression;
    Alcotest.test_case "early return" `Quick test_early_return;
    Alcotest.test_case "short circuit" `Quick test_short_circuit_and_or;
    Alcotest.test_case "not/materialization" `Quick test_not_and_bool_materialization;
    Alcotest.test_case "sensor and devices" `Quick test_sensor_and_devices;
    Alcotest.test_case "radio rx" `Quick test_radio_rx_expression;
    Alcotest.test_case "globals shared" `Quick test_globals_shared_between_procs;
    Alcotest.test_case "branch polarity" `Quick test_branch_polarity_convention;
    Alcotest.test_case "deep expression" `Quick test_deep_expression_rejected;
    Alcotest.test_case "var address" `Quick test_var_address_lookup;
    Alcotest.test_case "array read/write" `Quick test_array_read_write;
    Alcotest.test_case "array zeroed" `Quick test_array_zeroed_at_boot;
    Alcotest.test_case "array checks" `Quick test_array_checks;
    Alcotest.test_case "array address" `Quick test_array_address;
    Alcotest.test_case "pp program" `Quick test_pp_program;
  ]

(* --- compiler hardening: nesting, boolean algebra, boundary cases --- *)

let test_deep_if_chain () =
  (* Classify into 5 buckets with a chain of else-ifs. *)
  let p =
    prog ~globals:[ ("out", 0) ]
      [ proc "f" ~params:[ "x" ] ~locals:[]
          [ if_ (v "x" <: i 100) [ set "out" (i 1) ]
              [ if_ (v "x" <: i 200) [ set "out" (i 2) ]
                  [ if_ (v "x" <: i 300) [ set "out" (i 3) ]
                      [ if_ (v "x" <: i 400) [ set "out" (i 4) ] [ set "out" (i 5) ] ] ] ] ] ]
  in
  let c = Compile.compile p in
  let m = Machine.create ~program:c.Compile.program ~devices:(Devices.create ()) () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  let bucket x =
    Machine.write_mem m (Compile.var_address c ~proc:"f" "x") x;
    ignore (Machine.run_proc m "f");
    Machine.read_mem m (Compile.var_address c ~proc:"f" "out")
  in
  List.iter2
    (fun x expected -> Alcotest.(check int) (Printf.sprintf "x=%d" x) expected (bucket x))
    [ 50; 150; 250; 350; 450 ] [ 1; 2; 3; 4; 5 ]

let test_de_morgan () =
  (* !(a && b) must equal (!a || !b) for all four truth combinations. *)
  let p =
    prog ~globals:[ ("lhs", 0); ("rhs", 0) ]
      [
        proc "f" ~params:[ "a"; "b" ] ~locals:[]
          [
            set "lhs" (not_ ((v "a" =: i 1) &&: (v "b" =: i 1)));
            set "rhs" (not_ (v "a" =: i 1) ||: not_ (v "b" =: i 1));
          ];
      ]
  in
  let c = Compile.compile p in
  let m = Machine.create ~program:c.Compile.program ~devices:(Devices.create ()) () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  List.iter
    (fun (a, b) ->
      Machine.write_mem m (Compile.var_address c ~proc:"f" "a") a;
      Machine.write_mem m (Compile.var_address c ~proc:"f" "b") b;
      ignore (Machine.run_proc m "f");
      Alcotest.(check int)
        (Printf.sprintf "a=%d b=%d" a b)
        (Machine.read_mem m (Compile.var_address c ~proc:"f" "lhs"))
        (Machine.read_mem m (Compile.var_address c ~proc:"f" "rhs")))
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

let test_while_with_compound_condition () =
  (* while (k < 10 && acc < 30): stops when acc reaches 30 at k=... *)
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "f" ~params:[] ~locals:[ "k"; "acc" ]
          [
            set "k" (i 0);
            set "acc" (i 0);
            while_ ((v "k" <: i 10) &&: (v "acc" <: i 30))
              [ set "acc" (v "acc" +: i 7); set "k" (v "k" +: i 1) ];
            set "out" (v "acc");
          ];
      ]
  in
  (* 7,14,21,28,35: the 5th iteration runs because 28 < 30. *)
  Alcotest.(check int) "compound loop" 35 (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_while_zero_iterations () =
  let p =
    prog ~globals:[ ("out", 5) ]
      [
        proc "f" ~params:[] ~locals:[]
          [ while_ (i 0 =: i 1) [ set "out" (i 99) ] ];
      ]
  in
  Alcotest.(check int) "body never runs" 5 (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_condition_with_call () =
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "limit" ~params:[ "x" ] ~locals:[]
          [ when_ (v "x" >: i 9) [ return (i 9) ]; return (v "x") ];
        proc "f" ~params:[] ~locals:[ "k" ]
          [
            set "k" (i 0);
            while_ (fn "limit" [ v "k" ] <: i 9)
              [ set "k" (v "k" +: i 2) ];
            set "out" (v "k");
          ];
      ]
  in
  (* k: 0,2,4,6,8,10 -> limit(10)=9, not < 9, stop. *)
  Alcotest.(check int) "call inside condition" 10
    (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_expression_at_register_boundary () =
  (* A right-leaning chain 11 deep: uses exactly the register budget. *)
  let rec chain n = if n = 0 then i 1 else Ast.Bin (Ast.Add, i 1, chain (n - 1)) in
  let p =
    prog ~globals:[ ("out", 0) ]
      [ proc "f" ~params:[] ~locals:[] [ set "out" (chain 11) ] ]
  in
  Alcotest.(check int) "depth-11 expression" 12
    (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_negative_arithmetic () =
  let p =
    prog ~globals:[ ("a", 0); ("b", 0) ]
      [
        proc "f" ~params:[] ~locals:[]
          [
            set "a" (i (-5) *: i 3);
            set "b" ((i 0 -: i 1) >: i (-2));
          ];
      ]
  in
  let r = compile_and_run p "f" in
  Alcotest.(check int) "negative multiply" (-15) (read_var r ~proc:"f" "a");
  Alcotest.(check int) "-1 > -2" 1 (read_var r ~proc:"f" "b")

let test_params_are_frame_local () =
  (* Two procedures with identically-named params must not alias. *)
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "g" ~params:[ "x" ] ~locals:[] [ return (v "x" *: i 2) ];
        proc "h" ~params:[ "x" ] ~locals:[] [ return (fn "g" [ i 5 ] +: v "x") ];
        proc "f" ~params:[] ~locals:[] [ set "out" (fn "h" [ i 100 ]) ];
      ]
  in
  (* h's x=100 must survive g's x=5: 10 + 100. *)
  Alcotest.(check int) "frames don't alias" 110
    (read_var (compile_and_run p "f") ~proc:"f" "out")

let suite =
  suite
  @ [
      Alcotest.test_case "deep if chain" `Quick test_deep_if_chain;
      Alcotest.test_case "de morgan" `Quick test_de_morgan;
      Alcotest.test_case "compound while" `Quick test_while_with_compound_condition;
      Alcotest.test_case "zero-iteration while" `Quick test_while_zero_iterations;
      Alcotest.test_case "call in condition" `Quick test_condition_with_call;
      Alcotest.test_case "register boundary" `Quick test_expression_at_register_boundary;
      Alcotest.test_case "negative arithmetic" `Quick test_negative_arithmetic;
      Alcotest.test_case "frame locality" `Quick test_params_are_frame_local;
    ]

(* --- Optimize: constant folding and branch pruning --- *)

module Opt = Mote_lang.Optimize

let test_fold_arithmetic () =
  Alcotest.(check bool) "folds" true (Opt.expr ((i 3 +: i 4) *: i 5) = i 35);
  Alcotest.(check bool) "wraps like the machine" true
    (Opt.expr (i 32767 +: i 1) = i (-32768));
  Alcotest.(check bool) "identity add" true (Opt.expr (v "x" +: i 0) = v "x");
  Alcotest.(check bool) "identity mul" true (Opt.expr (i 1 *: v "x") = v "x");
  Alcotest.(check bool) "folds relations" true (Opt.expr (i 3 <: i 5) = i 1)

let test_fold_short_circuit_safety () =
  (* 0 && sensor() legitimately drops the read (never evaluated)... *)
  Alcotest.(check bool) "false && effect drops" true
    (Opt.expr (Ast.And (i 0, sensor 0)) = i 0);
  (* ...but effect && 0 must keep the effect. *)
  Alcotest.(check bool) "effect && false kept" true
    (Opt.has_effects (Opt.expr (Ast.And (sensor 0, i 0))))

let test_no_double_negation_rule () =
  (* !!5 is 1, not 5. *)
  let folded = Opt.expr (not_ (not_ (i 5))) in
  Alcotest.(check bool) "normalizes to 1" true (folded = i 1);
  let open_form = Opt.expr (not_ (not_ (v "x"))) in
  Alcotest.(check bool) "kept symbolic" true (open_form = not_ (not_ (v "x")))

let test_prune_branches () =
  let pruned = Opt.stmt (if_ (i 1 =: i 1) [ set "a" (i 1) ] [ set "a" (i 2) ]) in
  Alcotest.(check bool) "then arm inlined" true (pruned = [ set "a" (i 1) ]);
  let gone = Opt.stmt (while_ (i 0 >: i 1) [ set "a" (i 9) ]) in
  Alcotest.(check bool) "dead loop removed" true (gone = [])

let test_optimize_shrinks_and_preserves () =
  (* A program with constant-foldable control flow: optimized and
     unoptimized binaries must behave identically, and the optimized CFG
     must have fewer branches. *)
  let source =
    prog ~globals:[ ("out", 0) ]
      [
        proc "f" ~params:[] ~locals:[ "x" ]
          [
            set "x" (sensor 0);
            if_ (i 2 >: i 1)
              [ set "out" (v "out" +: (v "x" *: (i 2 +: i 2))) ]
              [ set "out" (i 999) ];
            while_ (i 0 <>: i 0) [ set "out" (i 777) ];
            when_ (v "x" >: i 500) [ send (v "x") ];
          ];
      ]
  in
  let optimized = Opt.program source in
  let run p =
    let devices = Devices.create () in
    let seq = ref 0 in
    Devices.set_sensor devices (fun _ -> incr seq; !seq * 211 mod 1024);
    let c = Compile.compile p in
    let m = Machine.create ~program:c.Compile.program ~devices () in
    ignore (Machine.run_proc m Compile.init_proc_name);
    for _ = 1 to 50 do
      ignore (Machine.run_proc m "f")
    done;
    ( Machine.read_mem m (Compile.var_address c ~proc:"f" "out"),
      Devices.tx_log devices,
      Cfgir.Cfg.static_cond_branches (Cfgir.Cfg.of_proc_name c.Compile.program "f") )
  in
  let out_a, tx_a, branches_a = run source in
  let out_b, tx_b, branches_b = run optimized in
  Alcotest.(check int) "same result" out_a out_b;
  Alcotest.(check bool) "same transmissions" true (tx_a = tx_b);
  Alcotest.(check bool)
    (Printf.sprintf "fewer branches (%d -> %d)" branches_a branches_b)
    true (branches_b < branches_a)

let test_optimize_generated_programs_preserved () =
  (* Property over random programs: optimization never changes behaviour. *)
  List.iter
    (fun seed ->
      let config = { Workloads.Generator.default_config with Workloads.Generator.seed } in
      let source = Workloads.Generator.generate ~config () in
      let optimized = Opt.program source in
      let run p =
        let devices = Devices.create () in
        let env = Env.create (Workloads.Generator.env_config ~seed) in
        Env.attach env devices;
        let c = Compile.compile p in
        let m = Machine.create ~program:c.Compile.program ~devices () in
        ignore (Machine.run_proc m Compile.init_proc_name);
        for _ = 1 to 80 do
          ignore (Machine.run_proc m "gen_task")
        done;
        ( Machine.read_mem m (Compile.var_address c ~proc:"gen_task" "out"),
          Devices.tx_log devices )
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d preserved" seed)
        true
        (run source = run optimized))
    [ 1; 2; 3; 4; 5; 6 ]

let suite =
  suite
  @ [
      Alcotest.test_case "fold arithmetic" `Quick test_fold_arithmetic;
      Alcotest.test_case "short-circuit safety" `Quick test_fold_short_circuit_safety;
      Alcotest.test_case "no double negation" `Quick test_no_double_negation_rule;
      Alcotest.test_case "prune branches" `Quick test_prune_branches;
      Alcotest.test_case "optimize shrinks+preserves" `Quick test_optimize_shrinks_and_preserves;
      Alcotest.test_case "optimize random programs" `Quick
        test_optimize_generated_programs_preserved;
    ]

(* --- break --- *)

let test_break_exits_loop () =
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "f" ~params:[] ~locals:[ "k" ]
          [
            set "k" (i 0);
            while_ (v "k" <: i 100)
              [
                when_ (v "k" =: i 7) [ break_ ];
                set "k" (v "k" +: i 1);
              ];
            set "out" (v "k");
          ];
      ]
  in
  Alcotest.(check int) "stopped at 7" 7 (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_break_innermost_only () =
  let p =
    prog ~globals:[ ("out", 0) ]
      [
        proc "f" ~params:[] ~locals:[ "a"; "b" ]
          [
            set "a" (i 0);
            while_ (v "a" <: i 3)
              [
                set "b" (i 0);
                while_ (v "b" <: i 100)
                  [ when_ (v "b" =: i 2) [ break_ ]; set "b" (v "b" +: i 1) ];
                set "out" (v "out" +: v "b");
                set "a" (v "a" +: i 1);
              ];
          ];
      ]
  in
  (* Inner loop always breaks at b=2; outer runs 3 times: 6. *)
  Alcotest.(check int) "outer loop survives" 6
    (read_var (compile_and_run p "f") ~proc:"f" "out")

let test_break_outside_loop_rejected () =
  let p = prog [ proc "f" ~params:[] ~locals:[] [ break_ ] ] in
  Alcotest.(check bool) "rejected" true (errors_of p <> []);
  let p2 =
    prog [ proc "f" ~params:[] ~locals:[] [ when_ (i 1 =: i 1) [ break_ ] ] ]
  in
  Alcotest.(check bool) "rejected inside if" true (errors_of p2 <> [])

let test_break_search_idiom () =
  (* Linear search over an array with early exit — the dup-cache idiom. *)
  let p =
    prog ~globals:[ ("found", 0) ] ~arrays:[ ("t", 8) ]
      [
        proc "f" ~params:[ "needle" ] ~locals:[ "k" ]
          [
            set_at "t" (i 3) (i 42);
            set "found" (i (-1));
            set "k" (i 0);
            while_ (v "k" <: i 8)
              [
                when_ (at "t" (v "k") =: v "needle") [ set "found" (v "k"); break_ ];
                set "k" (v "k" +: i 1);
              ];
          ];
      ]
  in
  let c = Compile.compile p in
  let m = Machine.create ~program:c.Compile.program ~devices:(Devices.create ()) () in
  ignore (Machine.run_proc m Compile.init_proc_name);
  let search needle =
    Machine.write_mem m (Compile.var_address c ~proc:"f" "needle") needle;
    ignore (Machine.run_proc m "f");
    Machine.read_mem m (Compile.var_address c ~proc:"f" "found")
  in
  Alcotest.(check int) "hit" 3 (search 42);
  Alcotest.(check int) "miss" (-1) (search 99)

let suite =
  suite
  @ [
      Alcotest.test_case "break exits loop" `Quick test_break_exits_loop;
      Alcotest.test_case "break innermost only" `Quick test_break_innermost_only;
      Alcotest.test_case "break outside loop" `Quick test_break_outside_loop_rejected;
      Alcotest.test_case "break search idiom" `Quick test_break_search_idiom;
    ]
