(* Mote_os.Node: scheduling, events, queue behaviour. *)

open Mote_lang.Ast.Dsl
module Node = Mote_os.Node
module Compile = Mote_lang.Compile
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices

let simple_program =
  {
    Mote_lang.Ast.globals = [ ("ticks", 0); ("rx_count", 0) ];
    arrays = [];
    procs =
      [
        proc "tick_task" ~params:[] ~locals:[] [ set "ticks" (v "ticks" +: i 1) ];
        proc "rx_task" ~params:[] ~locals:[ "p" ]
          [ set "p" radio_rx; set "rx_count" (v "rx_count" +: i 1) ];
        proc "boot_task" ~params:[] ~locals:[] [ led (i 1) ];
      ];
  }

let make_node ?(env_cfg = { Env.seed = 3; channels = []; radio = Env.Silent }) tasks =
  let c = Compile.compile simple_program in
  let devices = Devices.create () in
  let machine = Machine.create ~program:c.Compile.program ~devices () in
  let env = Env.create env_cfg in
  (c, machine, Node.create ~machine ~env ~tasks ())

let read_global (c, machine, _) name =
  Machine.read_mem machine (Compile.var_address c ~proc:"tick_task" name)

let test_unknown_task_rejected () =
  Alcotest.(check bool) "rejected" true
    (match make_node [ { Node.proc = "missing"; source = Node.Boot } ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_boot_task_runs_once () =
  let ((_, machine, node) as t) = make_node [ { Node.proc = "boot_task"; source = Node.Boot } ] in
  let stats = Node.run node ~until:10_000 in
  Alcotest.(check int) "one run" 1 (Node.invocations stats "boot_task");
  Alcotest.(check int) "led set" 1 (Devices.leds (Machine.devices machine));
  ignore (read_global t "ticks")

let test_periodic_count () =
  let ((_, _, node) as t) =
    make_node [ { Node.proc = "tick_task"; source = Node.Periodic { period = 1000; offset = 0 } } ]
  in
  let stats = Node.run node ~until:100_000 in
  let n = Node.invocations stats "tick_task" in
  (* Fires at 0, 1000, ..., 99000 -> at least 100 (plus boundary effects). *)
  Alcotest.(check bool) (Printf.sprintf "about 100 runs (%d)" n) true (n >= 100 && n <= 101);
  Alcotest.(check int) "global matches" n (read_global t "ticks")

let test_radio_task_runs_per_packet () =
  let env_cfg =
    { Env.seed = 5; channels = []; radio = Env.Poisson { per_kilocycle = 0.5; payload_lo = 1; payload_hi = 5 } }
  in
  let ((_, _, node) as t) = make_node ~env_cfg [ { Node.proc = "rx_task"; source = Node.On_radio_rx } ] in
  let stats = Node.run node ~until:200_000 in
  let runs = Node.invocations stats "rx_task" in
  Alcotest.(check int) "one run per packet" stats.Node.packets_delivered runs;
  Alcotest.(check bool) (Printf.sprintf "packets arrived (%d)" runs) true (runs > 50);
  Alcotest.(check int) "rx_count global" runs (read_global t "rx_count")

let test_queue_overflow_drops () =
  (* Period far smaller than the task duration is impossible here (tasks are
     quick), so instead use a tiny horizon with many timers posting at once. *)
  let tasks =
    List.init 40 (fun i ->
        { Node.proc = "tick_task"; source = Node.Periodic { period = 100_000; offset = i } })
  in
  let c = Compile.compile simple_program in
  let devices = Devices.create () in
  let machine = Machine.create ~program:c.Compile.program ~devices () in
  let env = Env.create { Env.seed = 1; channels = []; radio = Env.Silent } in
  let node = Node.create ~machine ~env ~tasks ~queue_capacity:8 () in
  let stats = Node.run node ~until:50_000 in
  Alcotest.(check bool)
    (Printf.sprintf "drops counted (%d)" stats.Node.tasks_dropped)
    true
    (stats.Node.tasks_dropped > 0)

let test_idle_accounting () =
  let (_, _, node) =
    make_node [ { Node.proc = "tick_task"; source = Node.Periodic { period = 10_000; offset = 0 } } ]
  in
  let stats = Node.run node ~until:100_000 in
  Alcotest.(check bool) "mostly idle" true
    (stats.Node.idle_cycles > (8 * stats.Node.total_cycles / 10));
  Alcotest.(check int) "busy + idle = total" stats.Node.total_cycles
    (stats.Node.busy_cycles + stats.Node.idle_cycles)

let test_run_extends () =
  let (_, _, node) =
    make_node [ { Node.proc = "tick_task"; source = Node.Periodic { period = 1000; offset = 0 } } ]
  in
  let s1 = Node.run node ~until:10_000 in
  let s2 = Node.run node ~until:20_000 in
  Alcotest.(check bool) "cumulative" true
    (Node.invocations s2 "tick_task" > Node.invocations s1 "tick_task")

let test_globals_initialized_by_node () =
  (* Node.create must run __init: check a nonzero-initialized global. *)
  let program =
    { Mote_lang.Ast.globals = [ ("g", 1234) ]; arrays = []; procs = [ proc "t" ~params:[] ~locals:[] [] ] }
  in
  let c = Compile.compile program in
  let devices = Devices.create () in
  let machine = Machine.create ~program:c.Compile.program ~devices () in
  let env = Env.create { Env.seed = 1; channels = []; radio = Env.Silent } in
  let _node = Node.create ~machine ~env ~tasks:[ { Node.proc = "t"; source = Node.Boot } ] () in
  Alcotest.(check int) "initialized" 1234
    (Machine.read_mem machine (Compile.var_address c ~proc:"t" "g"))

let suite =
  [
    Alcotest.test_case "unknown task" `Quick test_unknown_task_rejected;
    Alcotest.test_case "boot task" `Quick test_boot_task_runs_once;
    Alcotest.test_case "periodic count" `Quick test_periodic_count;
    Alcotest.test_case "radio task per packet" `Quick test_radio_task_runs_per_packet;
    Alcotest.test_case "queue overflow" `Quick test_queue_overflow_drops;
    Alcotest.test_case "idle accounting" `Quick test_idle_accounting;
    Alcotest.test_case "run extends" `Quick test_run_extends;
    Alcotest.test_case "node runs init" `Quick test_globals_initialized_by_node;
  ]
