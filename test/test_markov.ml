(* Markov: Chain, Absorbing, Walk. *)

module M = Linalg.Matrix
module Chain = Markov.Chain
module Absorbing = Markov.Absorbing
module Walk = Markov.Walk

let feq ?(tol = 1e-9) name a b =
  Alcotest.(check bool) (Printf.sprintf "%s: %f vs %f" name a b) true (abs_float (a -. b) < tol)

(* Two transient states: 0 -> 1 w.p. p, exits w.p. 1-p; 1 always exits. *)
let two_state p = Chain.of_edges ~size:2 [ (0, 1, p) ]

let test_create_validates () =
  Alcotest.check_raises "row sum > 1" (Invalid_argument "Chain.create: row sum exceeds 1")
    (fun () -> ignore (Chain.of_edges ~size:2 [ (0, 1, 0.7); (0, 0, 0.5) ]));
  Alcotest.check_raises "negative" (Invalid_argument "Chain.create: negative probability")
    (fun () -> ignore (Chain.create (M.of_rows [| [| -0.1 |] |])))

let test_accessors () =
  let c = two_state 0.25 in
  Alcotest.(check int) "size" 2 (Chain.size c);
  feq "prob" 0.25 (Chain.prob c 0 1);
  feq "leak 0" 0.75 (Chain.leak c 0);
  feq "leak 1" 1.0 (Chain.leak c 1);
  Alcotest.(check bool) "not stochastic" false (Chain.is_stochastic c);
  Alcotest.(check (list (pair int (float 1e-9)))) "successors" [ (1, 0.25) ]
    (Chain.successors c 0)

let test_step_distribution () =
  let rng = Stats.Rng.create 5 in
  let c = two_state 0.3 in
  let go = ref 0 and absorb = ref 0 in
  for _ = 1 to 20_000 do
    match Chain.step rng c 0 with Some 1 -> incr go | None -> incr absorb | Some _ -> ()
  done;
  let p = float_of_int !go /. 20_000.0 in
  Alcotest.(check bool) "step matches prob" true (abs_float (p -. 0.3) < 0.02)

let test_stationary () =
  (* Classic 2-state stochastic chain: stationary = (b, a)/(a+b) for flip
     probabilities a (0->1) and b (1->0). *)
  let c = Chain.create (M.of_rows [| [| 0.9; 0.1 |]; [| 0.3; 0.7 |] |]) in
  let pi = Chain.stationary c in
  feq ~tol:1e-6 "pi0" 0.75 pi.(0);
  feq ~tol:1e-6 "pi1" 0.25 pi.(1)

let test_n_step () =
  let c = Chain.create (M.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |]) in
  let p2 = Chain.n_step c 2 in
  Alcotest.(check bool) "period-2 returns" true (M.equal p2 (M.identity 2))

let test_absorbing_expected_visits () =
  (* Geometric loop: state 0 self-loops w.p. q, exits w.p. 1-q.
     Expected visits = 1/(1-q). *)
  let q = 0.75 in
  let c = Chain.of_edges ~size:1 [ (0, 0, q) ] in
  let a = Absorbing.analyze c in
  feq ~tol:1e-9 "geometric visits" 4.0 (Absorbing.expected_visits a ~start:0).(0);
  feq ~tol:1e-9 "absorption probability" 1.0 (Absorbing.absorption_probability a ~start:0)

let test_absorbing_mean_reward () =
  (* 0 -> 1 w.p. 0.5 (then exit), exit directly otherwise.
     Rewards 3 and 5: E = 3 + 0.5*5 = 5.5. *)
  let c = two_state 0.5 in
  let a = Absorbing.analyze c in
  feq "mean reward" 5.5 (Absorbing.mean_reward a ~rewards:[| 3.0; 5.0 |] ~start:0)

let test_absorbing_variance_analytic () =
  (* Same chain: T = 3 + 5*B with B~Bernoulli(1/2); Var = 25/4. *)
  let c = two_state 0.5 in
  let a = Absorbing.analyze c in
  feq "variance" 6.25 (Absorbing.variance_reward a ~rewards:[| 3.0; 5.0 |] ~start:0)

let test_variance_vs_monte_carlo () =
  (* Loop chain: verify second-moment recursion against simulation. *)
  let c = Chain.of_edges ~size:2 [ (0, 1, 0.8); (1, 0, 0.4) ] in
  let rewards = [| 2.0; 7.0 |] in
  let a = Absorbing.analyze c in
  let mean = Absorbing.mean_reward a ~rewards ~start:0 in
  let var = Absorbing.variance_reward a ~rewards ~start:0 in
  let rng = Stats.Rng.create 77 in
  let samples = Walk.sample_rewards rng c ~rewards ~start:0 ~samples:60_000 ~max_steps:10_000 in
  let s = Stats.Summary.of_array samples in
  Alcotest.(check bool) "mean close" true
    (abs_float (Stats.Summary.mean s -. mean) < 0.05 *. mean);
  Alcotest.(check bool) "variance close" true
    (abs_float (Stats.Summary.variance s -. var) < 0.05 *. var)

let test_expected_steps () =
  let c = two_state 0.5 in
  let a = Absorbing.analyze c in
  feq "steps" 1.5 (Absorbing.expected_steps a ~start:0)

let test_visit_variance_geometric () =
  (* Geometric(1-q) visit count: Var = q/(1-q)^2. *)
  let q = 0.5 in
  let c = Chain.of_edges ~size:1 [ (0, 0, q) ] in
  let a = Absorbing.analyze c in
  feq "visit variance" 2.0 (Absorbing.visit_variance a ~start:0).(0)

let test_walk_records () =
  let rng = Stats.Rng.create 3 in
  let c = two_state 1.0 in
  let r = Walk.run rng c ~rewards:[| 1.0; 10.0 |] ~start:0 ~max_steps:100 in
  Alcotest.(check (list int)) "visits both" [ 0; 1 ] r.Walk.states;
  feq "reward" 11.0 r.Walk.reward

let test_walk_max_steps () =
  let rng = Stats.Rng.create 3 in
  (* Never absorbs. *)
  let c = Chain.create (M.of_rows [| [| 1.0 |] |]) in
  Alcotest.(check bool) "raises on cap" true
    (match Walk.run rng c ~rewards:[| 0.0 |] ~start:0 ~max_steps:50 with
    | _ -> false
    | exception Failure _ -> true)

let test_edge_counts () =
  let rng = Stats.Rng.create 13 in
  let c = two_state 0.5 in
  let counts = Walk.edge_counts rng c ~start:0 ~samples:10_000 ~max_steps:100 in
  let p = float_of_int counts.(0).(1) /. 10_000.0 in
  Alcotest.(check bool) "edge frequency" true (abs_float (p -. 0.5) < 0.02)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"absorbing mean equals visits dot rewards" ~count:100
         QCheck.(triple (float_range 0.05 0.9) (float_range 0.05 0.9) (float_range 0.0 10.0))
         (fun (p, q, r) ->
           let c = Chain.of_edges ~size:2 [ (0, 1, p); (1, 0, q) ] in
           let a = Absorbing.analyze c in
           let visits = Absorbing.expected_visits a ~start:0 in
           let mean = Absorbing.mean_reward a ~rewards:[| r; 2.0 |] ~start:0 in
           abs_float (mean -. ((visits.(0) *. r) +. (visits.(1) *. 2.0))) < 1e-6));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"variance is non-negative" ~count:100
         QCheck.(pair (float_range 0.0 0.95) (float_range 0.0 0.95))
         (fun (p, q) ->
           let c = Chain.of_edges ~size:2 [ (0, 1, p); (1, 0, q) ] in
           let a = Absorbing.analyze c in
           Absorbing.variance_reward a ~rewards:[| 1.0; 3.0 |] ~start:0 >= 0.0));
  ]

let suite =
  [
    Alcotest.test_case "create validates" `Quick test_create_validates;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "step distribution" `Quick test_step_distribution;
    Alcotest.test_case "stationary" `Quick test_stationary;
    Alcotest.test_case "n-step" `Quick test_n_step;
    Alcotest.test_case "expected visits" `Quick test_absorbing_expected_visits;
    Alcotest.test_case "mean reward" `Quick test_absorbing_mean_reward;
    Alcotest.test_case "variance analytic" `Quick test_absorbing_variance_analytic;
    Alcotest.test_case "variance vs monte carlo" `Slow test_variance_vs_monte_carlo;
    Alcotest.test_case "expected steps" `Quick test_expected_steps;
    Alcotest.test_case "visit variance" `Quick test_visit_variance_geometric;
    Alcotest.test_case "walk records" `Quick test_walk_records;
    Alcotest.test_case "walk max steps" `Quick test_walk_max_steps;
    Alcotest.test_case "edge counts" `Quick test_edge_counts;
  ]
  @ qcheck_tests
