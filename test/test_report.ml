(* Report: Table, Chart, Csv. *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_table_renders () =
  let t =
    Report.Table.render ~headers:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "beta"; "22" ] ]
  in
  Alcotest.(check bool) "has header" true (contains ~needle:"name" t);
  Alcotest.(check bool) "has row" true (contains ~needle:"alpha" t);
  Alcotest.(check bool) "aligned right" true (contains ~needle:" 22 " t)

let test_table_ragged () =
  Alcotest.(check bool) "ragged rejected" true
    (match Report.Table.render ~headers:[ "a"; "b" ] [ [ "only one" ] ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_table_aligns_mismatch () =
  Alcotest.(check bool) "aligns mismatch rejected" true
    (match
       Report.Table.render ~headers:[ "a"; "b" ] ~aligns:[ Report.Table.Left ] []
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_fmt_helpers () =
  Alcotest.(check string) "float" "3.14" (Report.Table.fmt_float ~decimals:2 3.14159);
  Alcotest.(check string) "pct" "12.3%" (Report.Table.fmt_pct 0.1234)

let test_chart_renders () =
  let c =
    Report.Chart.line ~title:"test"
      [
        ("a", [| (1.0, 1.0); (2.0, 4.0); (3.0, 9.0) |]);
        ("b", [| (1.0, 2.0); (2.0, 2.0) |]);
      ]
  in
  Alcotest.(check bool) "title" true (contains ~needle:"test" c);
  Alcotest.(check bool) "glyph a" true (contains ~needle:"*" c);
  Alcotest.(check bool) "glyph b" true (contains ~needle:"o" c);
  Alcotest.(check bool) "legend" true (contains ~needle:"* = a" c)

let test_chart_empty () =
  let c = Report.Chart.line ~title:"empty" [ ("a", [||]) ] in
  Alcotest.(check bool) "just title" true (contains ~needle:"empty" c)

let test_chart_log_x () =
  let c =
    Report.Chart.line ~log_x:true ~title:"log"
      [ ("s", [| (10.0, 1.0); (100.0, 2.0); (1000.0, 3.0) |]) ]
  in
  Alcotest.(check bool) "log annotation" true (contains ~needle:"log scale" c)

let test_csv () =
  let s = Report.Csv.to_string ~headers:[ "a"; "b" ] [ [ "1"; "hello, world" ]; [ "2"; "q\"q" ] ] in
  Alcotest.(check bool) "quoted comma" true (contains ~needle:"\"hello, world\"" s);
  Alcotest.(check bool) "escaped quote" true (contains ~needle:"\"q\"\"q\"" s);
  Alcotest.(check bool) "header row" true (contains ~needle:"a,b" s)

let test_csv_file () =
  let path = Filename.temp_file "codetomo" ".csv" in
  Report.Csv.write_file ~path ~headers:[ "x" ] [ [ "1" ] ];
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "first line" "x" line

let suite =
  [
    Alcotest.test_case "table renders" `Quick test_table_renders;
    Alcotest.test_case "table ragged" `Quick test_table_ragged;
    Alcotest.test_case "table aligns mismatch" `Quick test_table_aligns_mismatch;
    Alcotest.test_case "fmt helpers" `Quick test_fmt_helpers;
    Alcotest.test_case "chart renders" `Quick test_chart_renders;
    Alcotest.test_case "chart empty" `Quick test_chart_empty;
    Alcotest.test_case "chart log x" `Quick test_chart_log_x;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "csv file" `Quick test_csv_file;
  ]
