(* Mote_machine: Devices and Machine. *)

module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Devices = Mote_machine.Devices
module Machine = Mote_machine.Machine

let build items = Asm.assemble items

let machine ?devices items =
  let devices = match devices with Some d -> d | None -> Devices.create () in
  Machine.create ~program:(build items) ~devices ()

let run items =
  let m = machine items in
  ignore (Machine.run_proc m "main");
  m

let test_arithmetic () =
  let m =
    run
      [
        Asm.Proc "main"; Asm.movi 0 6; Asm.movi 1 7; Asm.mul 2 0 1; Asm.addi 3 2 8;
        Asm.sub 4 3 0; Asm.ret;
      ]
  in
  Alcotest.(check int) "mul" 42 (Machine.reg m 2);
  Alcotest.(check int) "addi" 50 (Machine.reg m 3);
  Alcotest.(check int) "sub" 44 (Machine.reg m 4)

let test_wraparound () =
  let m = run [ Asm.Proc "main"; Asm.movi 0 32767; Asm.addi 0 0 1; Asm.ret ] in
  Alcotest.(check int) "16-bit signed wrap" (-32768) (Machine.reg m 0)

let test_shift_ops () =
  let m =
    run
      [
        Asm.Proc "main"; Asm.movi 0 5; Asm.shli 1 0 2; Asm.movi 2 40; Asm.shri 3 2 3;
        Asm.andi 4 2 12; Asm.ret;
      ]
  in
  Alcotest.(check int) "shl" 20 (Machine.reg m 1);
  Alcotest.(check int) "shr" 5 (Machine.reg m 3);
  Alcotest.(check int) "and" 8 (Machine.reg m 4)

let test_branch_taken () =
  let m =
    run
      [
        Asm.Proc "main"; Asm.movi 0 5; Asm.cmpi 0 5; Asm.br Isa.Eq "yes"; Asm.movi 1 111;
        Asm.ret; Asm.Label "yes"; Asm.movi 1 222; Asm.ret;
      ]
  in
  Alcotest.(check int) "took branch" 222 (Machine.reg m 1);
  let s = Machine.stats m in
  Alcotest.(check int) "one cond branch" 1 s.Machine.cond_branches;
  Alcotest.(check int) "one taken" 1 s.Machine.taken_cond_branches

let test_branch_not_taken () =
  let m =
    run
      [
        Asm.Proc "main"; Asm.movi 0 4; Asm.cmpi 0 5; Asm.br Isa.Eq "yes"; Asm.movi 1 111;
        Asm.ret; Asm.Label "yes"; Asm.movi 1 222; Asm.ret;
      ]
  in
  Alcotest.(check int) "fell through" 111 (Machine.reg m 1);
  let s = Machine.stats m in
  Alcotest.(check int) "none taken" 0 s.Machine.taken_cond_branches

let test_all_conditions () =
  (* For (a, b) check each condition's truth. *)
  let check_cond cond a b expected =
    let m =
      run
        [
          Asm.Proc "main"; Asm.movi 0 a; Asm.movi 1 b; Asm.cmp 0 1; Asm.br cond "t";
          Asm.movi 2 0; Asm.ret; Asm.Label "t"; Asm.movi 2 1; Asm.ret;
        ]
    in
    Alcotest.(check int)
      (Printf.sprintf "%d vs %d" a b)
      (if expected then 1 else 0)
      (Machine.reg m 2)
  in
  check_cond Isa.Eq 3 3 true;
  check_cond Isa.Eq 3 4 false;
  check_cond Isa.Ne 3 4 true;
  check_cond Isa.Lt (-1) 0 true;
  check_cond Isa.Lt 0 0 false;
  check_cond Isa.Ge 0 0 true;
  check_cond Isa.Le 0 0 true;
  check_cond Isa.Le 1 0 false;
  check_cond Isa.Gt 1 0 true;
  check_cond Isa.Gt 0 1 false

let test_memory () =
  let m =
    run
      [
        Asm.Proc "main"; Asm.movi 0 100; Asm.movi 1 77; Asm.st 0 3 1; Asm.ld 2 0 3; Asm.ret;
      ]
  in
  Alcotest.(check int) "store/load" 77 (Machine.reg m 2);
  Alcotest.(check int) "memory content" 77 (Machine.read_mem m 103)

let test_memory_fault () =
  Alcotest.(check bool) "load out of range faults" true
    (match run [ Asm.Proc "main"; Asm.movi 0 (-5); Asm.ld 1 0 0; Asm.ret ] with
    | _ -> false
    | exception Machine.Fault _ -> true)

let test_stack () =
  let m =
    run
      [
        Asm.Proc "main"; Asm.movi 0 1; Asm.movi 1 2; Asm.push 0; Asm.push 1; Asm.pop 2;
        Asm.pop 3; Asm.ret;
      ]
  in
  Alcotest.(check int) "lifo pop 1" 2 (Machine.reg m 2);
  Alcotest.(check int) "lifo pop 2" 1 (Machine.reg m 3)

let test_call_ret () =
  let m =
    run
      [
        Asm.Proc "main"; Asm.movi 0 10; Asm.call "double"; Asm.mov 1 15; Asm.ret;
        Asm.Proc "double"; Asm.add 15 0 0; Asm.ret;
      ]
  in
  Alcotest.(check int) "result via r15" 20 (Machine.reg m 1);
  let s = Machine.stats m in
  Alcotest.(check int) "calls" 1 s.Machine.calls;
  Alcotest.(check int) "returns" 2 s.Machine.returns

let test_fuel () =
  Alcotest.(check bool) "infinite loop exhausts fuel" true
    (match
       let m = machine [ Asm.Proc "main"; Asm.Label "spin"; Asm.jmp "spin" ] in
       Machine.run_proc ~fuel:1000 m "main"
     with
    | _ -> false
    | exception Machine.Fault _ -> true)

let test_cycle_accounting () =
  (* movi(1) + movi(1) + add(1) + ret(2+2 penalty) = 7. *)
  let m = machine [ Asm.Proc "main"; Asm.movi 0 1; Asm.movi 1 2; Asm.add 2 0 1; Asm.ret ] in
  let cycles = Machine.run_proc m "main" in
  Alcotest.(check int) "cycle count" 7 cycles

let test_taken_penalty_charged () =
  (* Taken branch costs 2 more than non-taken. *)
  let prog flag =
    [
      Asm.Proc "main"; Asm.movi 0 flag; Asm.cmpi 0 1; Asm.br Isa.Eq "t"; Asm.Label "t";
      Asm.ret;
    ]
  in
  let taken = Machine.run_proc (machine (prog 1)) "main" in
  let fell = Machine.run_proc (machine (prog 0)) "main" in
  Alcotest.(check int) "penalty" Isa.taken_penalty (taken - fell)

let test_taken_transfer_rate () =
  let s =
    {
      Machine.instructions = 0; cycles = 0; cond_branches = 10; taken_cond_branches = 4;
      mispredicted_branches = 4; unconditional_transfers = 5; calls = 2; returns = 2;
    }
  in
  Alcotest.(check (float 1e-9)) "rate" 0.6 (Machine.taken_transfer_rate s)

let test_btfn_prediction () =
  (* A backward taken branch (loop) is free under BTFN; a forward taken
     branch still pays. *)
  let loop_prog =
    [
      Asm.Proc "main"; Asm.movi 0 5; Asm.Label "head"; Asm.subi 0 0 1; Asm.cmpi 0 0;
      Asm.br Isa.Gt "head"; Asm.ret;
    ]
  in
  let run prediction =
    let devices = Devices.create () in
    let m = Machine.create ~prediction ~program:(build loop_prog) ~devices () in
    ignore (Machine.run_proc m "main");
    Machine.stats m
  in
  let nt = run Machine.Predict_not_taken in
  let btfn = run Machine.Predict_btfn in
  Alcotest.(check int) "same taken count" nt.Machine.taken_cond_branches
    btfn.Machine.taken_cond_branches;
  (* Not-taken policy: 4 taken (loop back) mispredicted, final fall-through fine.
     BTFN: backward predicted taken -> 4 loop-backs correct, final exit
     mispredicted. *)
  Alcotest.(check int) "not-taken mispredicts" 4 nt.Machine.mispredicted_branches;
  Alcotest.(check int) "btfn mispredicts once" 1 btfn.Machine.mispredicted_branches;
  Alcotest.(check bool) "btfn is faster" true (btfn.Machine.cycles < nt.Machine.cycles)

let test_run_from_symbol_halt () =
  let m = machine [ Asm.Proc "main"; Asm.movi 0 9; Asm.halt ] in
  Machine.run_from_symbol m "main";
  Alcotest.(check bool) "halted" true (Machine.halted m);
  Alcotest.(check int) "ran" 9 (Machine.reg m 0)

let test_globals_persist () =
  let m = machine [ Asm.Proc "main"; Asm.movi 0 50; Asm.ld 1 0 0; Asm.addi 1 1 1; Asm.st 0 0 1; Asm.ret ] in
  ignore (Machine.run_proc m "main");
  ignore (Machine.run_proc m "main");
  ignore (Machine.run_proc m "main");
  Alcotest.(check int) "memory persists across invocations" 3 (Machine.read_mem m 50)

let test_reset () =
  let m = machine [ Asm.Proc "main"; Asm.movi 0 50; Asm.st 0 0 0; Asm.ret ] in
  ignore (Machine.run_proc m "main");
  Machine.reset m;
  Alcotest.(check int) "cycles zero" 0 (Machine.cycles m);
  Alcotest.(check int) "memory zero" 0 (Machine.read_mem m 50)

(* --- devices --- *)

let test_timer_quantization () =
  let d = Devices.create ~timer_resolution:8 () in
  Alcotest.(check int) "floor" 2 (Devices.read_timer d ~cycles:17);
  Alcotest.(check int) "exact" 2 (Devices.read_timer d ~cycles:16);
  Alcotest.(check int) "zero" 0 (Devices.read_timer d ~cycles:7)

let test_timer_jitter_statistics () =
  let d = Devices.create ~timer_jitter:4.0 ~rng:(Stats.Rng.create 1) () in
  let s = Stats.Summary.create () in
  for _ = 1 to 5000 do
    Stats.Summary.add s (float_of_int (Devices.read_timer d ~cycles:1000))
  done;
  Alcotest.(check bool) "mean near 1000" true
    (abs_float (Stats.Summary.mean s -. 1000.0) < 1.0);
  Alcotest.(check bool) "spread present" true (Stats.Summary.stddev s > 2.0)

let test_sensor_hookup () =
  let d = Devices.create () in
  Devices.set_sensor d (fun ch -> 100 + ch);
  Alcotest.(check int) "channel 3" 103 (Devices.read_sensor d ~channel:3)

let test_radio_queue () =
  let d = Devices.create () in
  Alcotest.(check int) "empty reads 0" 0 (Devices.radio_rx d);
  Devices.radio_push_rx d 11;
  Devices.radio_push_rx d 22;
  Alcotest.(check int) "pending" 2 (Devices.radio_rx_pending d);
  Alcotest.(check int) "fifo 1" 11 (Devices.radio_rx d);
  Alcotest.(check int) "fifo 2" 22 (Devices.radio_rx d)

let test_tx_log () =
  let d = Devices.create () in
  Devices.radio_tx d 5;
  Devices.radio_tx d 6;
  Alcotest.(check (list int)) "tx order" [ 5; 6 ] (Devices.tx_log d)

let test_counters () =
  let d = Devices.create () in
  Devices.bump_counter d 3;
  Devices.bump_counter d 3;
  Devices.bump_counter d 8;
  Alcotest.(check int) "counter 3" 2 (Devices.counter d 3);
  Alcotest.(check int) "counter unset" 0 (Devices.counter d 99);
  Alcotest.(check (list (pair int int))) "all" [ (3, 2); (8, 1) ] (Devices.counters d)

let test_probe_log () =
  let d = Devices.create () in
  Devices.probe d ~pc:10 ~cycles:100 ~value:42;
  Devices.probe d ~pc:20 ~cycles:200 ~value:43;
  match Devices.probe_log d with
  | [ a; b ] ->
      Alcotest.(check int) "first pc" 10 a.Devices.pc;
      Alcotest.(check int) "second value" 43 b.Devices.value
  | _ -> Alcotest.fail "log length"

let test_device_ports_via_machine () =
  let d = Devices.create ~timer_resolution:4 () in
  Devices.set_sensor d (fun _ -> 777);
  let m =
    machine ~devices:d
      [
        Asm.Proc "main";
        Asm.input 0 (Isa.P_sensor 0);
        Asm.input 1 Isa.P_timer;
        Asm.output Isa.P_radio_tx 0;
        Asm.movi 2 7;
        Asm.output Isa.P_leds 2;
        Asm.output Isa.P_counter 2;
        Asm.ret;
      ]
  in
  ignore (Machine.run_proc m "main");
  Alcotest.(check int) "sensor read" 777 (Machine.reg m 0);
  Alcotest.(check (list int)) "tx" [ 777 ] (Devices.tx_log d);
  Alcotest.(check int) "leds" 7 (Devices.leds d);
  Alcotest.(check int) "counter 7" 1 (Devices.counter d 7)

let test_write_to_input_port_faults () =
  Alcotest.(check bool) "out to timer faults" true
    (match run [ Asm.Proc "main"; Asm.output Isa.P_timer 0; Asm.ret ] with
    | _ -> false
    | exception Machine.Fault _ -> true)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "wraparound" `Quick test_wraparound;
    Alcotest.test_case "shifts" `Quick test_shift_ops;
    Alcotest.test_case "branch taken" `Quick test_branch_taken;
    Alcotest.test_case "branch not taken" `Quick test_branch_not_taken;
    Alcotest.test_case "all conditions" `Quick test_all_conditions;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "memory fault" `Quick test_memory_fault;
    Alcotest.test_case "stack" `Quick test_stack;
    Alcotest.test_case "call/ret" `Quick test_call_ret;
    Alcotest.test_case "fuel" `Quick test_fuel;
    Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
    Alcotest.test_case "taken penalty" `Quick test_taken_penalty_charged;
    Alcotest.test_case "taken transfer rate" `Quick test_taken_transfer_rate;
    Alcotest.test_case "btfn prediction" `Quick test_btfn_prediction;
    Alcotest.test_case "run from symbol" `Quick test_run_from_symbol_halt;
    Alcotest.test_case "globals persist" `Quick test_globals_persist;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "timer quantization" `Quick test_timer_quantization;
    Alcotest.test_case "timer jitter" `Quick test_timer_jitter_statistics;
    Alcotest.test_case "sensor hookup" `Quick test_sensor_hookup;
    Alcotest.test_case "radio queue" `Quick test_radio_queue;
    Alcotest.test_case "tx log" `Quick test_tx_log;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "probe log" `Quick test_probe_log;
    Alcotest.test_case "ports via machine" `Quick test_device_ports_via_machine;
    Alcotest.test_case "write to input port" `Quick test_write_to_input_port_faults;
  ]

let test_trace_hook () =
  let m =
    machine [ Asm.Proc "main"; Asm.movi 0 1; Asm.movi 1 2; Asm.add 2 0 1; Asm.ret ]
  in
  let seen = ref [] in
  Machine.set_trace_hook m (Some (fun ~pc ~instr:_ ~cycles:_ -> seen := pc :: !seen));
  ignore (Machine.run_proc m "main");
  Alcotest.(check (list int)) "every pc traced in order" [ 0; 1; 2; 3 ] (List.rev !seen);
  Machine.set_trace_hook m None;
  seen := [];
  ignore (Machine.run_proc m "main");
  Alcotest.(check (list int)) "hook removable" [] !seen

let suite = suite @ [ Alcotest.test_case "trace hook" `Quick test_trace_hook ]
