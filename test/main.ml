let () =
  Alcotest.run "codetomo"
    [
      ("rng", Test_rng.suite);
      ("dist", Test_dist.suite);
      ("summary", Test_summary.suite);
      ("metrics", Test_metrics.suite);
      ("linalg", Test_linalg.suite);
      ("markov", Test_markov.suite);
      ("isa", Test_isa.suite);
      ("machine", Test_machine.suite);
      ("cfg", Test_cfg.suite);
      ("lang", Test_lang.suite);
      ("env", Test_env.suite);
      ("node", Test_node.suite);
      ("profilekit", Test_profilekit.suite);
      ("transport", Test_transport.suite);
      ("tomo", Test_tomo.suite);
      ("sanitize", Test_sanitize.suite);
      ("em_kernels", Test_em_kernels.suite);
      ("layout", Test_layout.suite);
      ("workloads", Test_workloads.suite);
      ("report", Test_report.suite);
      ("pipeline", Test_pipeline.suite);
      ("par", Test_par.suite);
      ("extensions", Test_extensions.suite);
      ("network", Test_network.suite);
      ("binary", Test_binary.suite);
      ("energy", Test_energy.suite);
      ("fuzz", Test_fuzz.suite);
      ("wire", Test_wire.suite);
      ("fleet", Test_fleet.suite);
    ]
