(* Profilekit.Transport: the fault-injecting probe link.  Everything here
   is deterministic — the transport draws only from its own per-stage
   Stats.Rng streams — so every assertion is on exact values. *)

open Mote_lang.Ast.Dsl
module Compile = Mote_lang.Compile
module Asm = Mote_isa.Asm
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices
module Probes = Profilekit.Probes
module Transport = Profilekit.Transport

(* A task with a branch and a callee, so the log holds nested windows. *)
let program =
  {
    Mote_lang.Ast.globals = [ ("acc", 0) ];
    arrays = [];
    procs =
      [
        proc "leaf" ~params:[ "x" ] ~locals:[] [ return (v "x" +: i 1) ];
        proc "task" ~params:[] ~locals:[ "x" ]
          [
            set "x" (sensor 0);
            if_ (v "x" >: i 100)
              [ set "acc" (v "acc" +: fn "leaf" [ v "x" ]) ]
              [ set "acc" (v "acc" +: i 1) ];
          ];
      ];
  }

let probe_log =
  lazy
    (let c = Compile.compile program in
     let inst = Asm.assemble (Probes.instrument c.Compile.items) in
     let devices = Devices.create () in
     let m = Machine.create ~program:inst ~devices () in
     ignore (Machine.run_proc m Compile.init_proc_name);
     for _ = 1 to 200 do
       ignore (Machine.run_proc m "task")
     done;
     Devices.probe_log devices)

(* Every fault stage switched on at once. *)
let stormy =
  {
    Transport.skew = 0.01;
    drift = 0.05;
    reboot = 0.01;
    reboot_flush = 4;
    burst_enter = 0.05;
    burst_exit = 0.3;
    burst_drop = 0.9;
    drop = 0.1;
    corrupt = 0.05;
    corrupt_bits = 2;
    duplicate = 0.05;
    reorder = 0.1;
    reorder_span = 4;
  }

let test_identity () =
  let log = Lazy.force probe_log in
  Alcotest.(check bool) "default is identity" true (Transport.is_identity Transport.default);
  Alcotest.(check bool) "stormy is not" false (Transport.is_identity stormy);
  let out, stats = Transport.perturb ~seed:99 Transport.default log in
  Alcotest.(check bool) "log unchanged" true (out = log);
  Alcotest.(check int) "sent" (List.length log) stats.Transport.sent;
  Alcotest.(check int) "delivered" (List.length log) stats.Transport.delivered;
  Alcotest.(check int) "no drops" 0
    (stats.Transport.dropped_drop + stats.Transport.dropped_burst
   + stats.Transport.dropped_reboot);
  Alcotest.(check int) "nothing corrupted" 0 stats.Transport.corrupted;
  Alcotest.(check int) "nothing duplicated" 0 stats.Transport.duplicated;
  Alcotest.(check int) "nothing reordered" 0 stats.Transport.reordered

let test_determinism () =
  let log = Lazy.force probe_log in
  let a = Transport.perturb ~seed:7 stormy log in
  let b = Transport.perturb ~seed:7 stormy log in
  Alcotest.(check bool) "same seed, same output" true (a = b);
  let c, _ = Transport.perturb ~seed:8 stormy log in
  Alcotest.(check bool) "different seed, different log" false (fst a = c)

let test_accounting () =
  let log = Lazy.force probe_log in
  let out, s = Transport.perturb ~seed:7 stormy log in
  Alcotest.(check int) "sent is the input" (List.length log) s.Transport.sent;
  Alcotest.(check int) "delivered is the output" (List.length out) s.Transport.delivered;
  Alcotest.(check int) "conservation" s.Transport.delivered
    (s.Transport.sent + s.Transport.duplicated - s.Transport.dropped_drop
   - s.Transport.dropped_burst - s.Transport.dropped_reboot)

(* A stage whose rate is zero must not fire, whatever the others do. *)
let test_stage_isolation () =
  let log = Lazy.force probe_log in
  let _, s =
    Transport.perturb ~seed:7 { Transport.default with Transport.drop = 0.2 } log
  in
  Alcotest.(check bool) "drop fired" true (s.Transport.dropped_drop > 0);
  Alcotest.(check int) "no bursts" 0 s.Transport.dropped_burst;
  Alcotest.(check int) "no reboots" 0 s.Transport.reboots;
  Alcotest.(check int) "no corruption" 0 s.Transport.corrupted;
  Alcotest.(check int) "no duplicates" 0 s.Transport.duplicated;
  Alcotest.(check int) "no reorders" 0 s.Transport.reordered;
  let out, s =
    Transport.perturb ~seed:7 { Transport.default with Transport.corrupt = 0.2 } log
  in
  Alcotest.(check bool) "corruption fired" true (s.Transport.corrupted > 0);
  Alcotest.(check int) "corruption loses nothing" (List.length log) (List.length out)

(* The drop stage draws from its own stream: changing the corruption rate
   must not move which records are lost. *)
let test_stream_independence () =
  let log = Lazy.force probe_log in
  let drops config =
    let _, s = Transport.perturb ~seed:7 config log in
    s.Transport.dropped_drop
  in
  let base = { Transport.default with Transport.drop = 0.1 } in
  Alcotest.(check int) "same drop pattern"
    (drops base)
    (drops { base with Transport.corrupt = 0.3; Transport.duplicate = 0.2 })

(* The full faulted pipeline is byte-identical at any domain count. *)
let test_pipeline_determinism_across_domains () =
  let module P = Codetomo.Pipeline in
  let config =
    {
      P.default_config with
      P.horizon = Some 300_000;
      P.faults = Some (Transport.field ());
    }
  in
  let estimate domains =
    let s = Codetomo.Session.create ~domains () in
    let est =
      Codetomo.Session.estimate s ~sanitize:Tomo.Sanitize.default
        ~outlier:Tomo.Em.default_outlier ~min_samples:8 ~config Workloads.filter
    in
    Codetomo.Session.close s;
    est
  in
  Alcotest.(check bool) "serial = 4 domains" true (estimate 1 = estimate 4)

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "accounting" `Quick test_accounting;
    Alcotest.test_case "stage isolation" `Quick test_stage_isolation;
    Alcotest.test_case "stream independence" `Quick test_stream_independence;
    Alcotest.test_case "faulted pipeline across domains" `Slow
      test_pipeline_determinism_across_domains;
  ]
