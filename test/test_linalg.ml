(* Linalg: Matrix, Solve, Simplex. *)

module M = Linalg.Matrix

let feq ?(tol = 1e-9) name a b =
  Alcotest.(check bool) (Printf.sprintf "%s: %f vs %f" name a b) true (abs_float (a -. b) < tol)

let test_identity_mul () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "I*a = a" true (M.equal (M.mul (M.identity 2) a) a);
  Alcotest.(check bool) "a*I = a" true (M.equal (M.mul a (M.identity 2)) a)

let test_mul_known () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = M.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let expected = M.of_rows [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |] in
  Alcotest.(check bool) "known product" true (M.equal (M.mul a b) expected)

let test_transpose () =
  let a = M.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = M.transpose a in
  Alcotest.(check int) "rows" 3 (M.rows t);
  Alcotest.(check int) "cols" 2 (M.cols t);
  feq "entry" 6.0 (M.get t 2 1);
  Alcotest.(check bool) "double transpose" true (M.equal (M.transpose t) a)

let test_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_rows: ragged rows") (fun () ->
      ignore (M.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_mat_vec () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 1e-9))) "mat_vec" [| 5.0; 11.0 |] (M.mat_vec a [| 1.0; 2.0 |]);
  Alcotest.(check (array (float 1e-9))) "vec_mat" [| 7.0; 10.0 |] (M.vec_mat [| 1.0; 2.0 |] a)

let test_lu_solve () =
  let a = M.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Linalg.Solve.lu_solve a [| 5.0; 10.0 |] in
  Alcotest.(check (array (float 1e-9))) "solution" [| 1.0; 3.0 |] x

let test_lu_solve_pivoting () =
  (* First pivot is zero: requires row exchange. *)
  let a = M.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Linalg.Solve.lu_solve a [| 2.0; 3.0 |] in
  Alcotest.(check (array (float 1e-9))) "swap solution" [| 3.0; 2.0 |] x

let test_singular () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" Linalg.Solve.Singular (fun () ->
      ignore (Linalg.Solve.lu_solve a [| 1.0; 1.0 |]))

let test_inverse () =
  let a = M.of_rows [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Linalg.Solve.inverse a in
  Alcotest.(check bool) "a * a^-1 = I" true (M.equal ~eps:1e-9 (M.mul a inv) (M.identity 2))

let test_determinant () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  feq "det" (-2.0) (Linalg.Solve.determinant a);
  let s = M.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  feq "singular det" 0.0 (Linalg.Solve.determinant s)

let test_least_squares () =
  (* Fit y = 2x + 1 through exact points: residual 0. *)
  let a = M.of_rows [| [| 1.0; 1.0 |]; [| 2.0; 1.0 |]; [| 3.0; 1.0 |] |] in
  let b = [| 3.0; 5.0; 7.0 |] in
  let x = Linalg.Solve.least_squares a b in
  feq ~tol:1e-4 "slope" 2.0 x.(0);
  feq ~tol:1e-4 "intercept" 1.0 x.(1)

let test_simplex_project () =
  let p = Linalg.Simplex.project [| 0.5; 0.5 |] in
  Alcotest.(check (array (float 1e-9))) "already on simplex" [| 0.5; 0.5 |] p;
  let q = Linalg.Simplex.project [| 2.0; 0.0 |] in
  Alcotest.(check (array (float 1e-9))) "projected" [| 1.0; 0.0 |] q

let test_simplex_properties () =
  let v = [| -1.0; 3.0; 0.2; 0.4 |] in
  let p = Linalg.Simplex.project v in
  let sum = Array.fold_left ( +. ) 0.0 p in
  feq ~tol:1e-9 "sums to 1" 1.0 sum;
  Array.iter (fun x -> Alcotest.(check bool) "nonneg" true (x >= 0.0)) p

let test_normalize () =
  Alcotest.(check (array (float 1e-9))) "normalize" [| 0.25; 0.75 |]
    (Linalg.Simplex.normalize [| 1.0; 3.0 |]);
  Alcotest.(check (array (float 1e-9))) "all zero -> uniform" [| 0.5; 0.5 |]
    (Linalg.Simplex.normalize [| 0.0; 0.0 |])

let test_clamp () =
  feq "low" 1e-6 (Linalg.Simplex.clamp (-0.5));
  feq "high" (1.0 -. 1e-6) (Linalg.Simplex.clamp 2.0);
  feq "mid" 0.4 (Linalg.Simplex.clamp 0.4)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"simplex projection valid" ~count:300
         QCheck.(list_of_size (Gen.int_range 1 10) (float_range (-5.0) 5.0))
         (fun xs ->
           let p = Linalg.Simplex.project (Array.of_list xs) in
           let sum = Array.fold_left ( +. ) 0.0 p in
           abs_float (sum -. 1.0) < 1e-6 && Array.for_all (fun x -> x >= -1e-12) p));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"solve then multiply recovers rhs" ~count:100
         QCheck.(list_of_size (Gen.return 4) (float_range (-3.0) 3.0))
         (fun xs ->
           let a =
             M.of_rows
               [|
                 [| 4.0 +. List.nth xs 0; List.nth xs 1 |];
                 [| List.nth xs 2; 4.0 +. List.nth xs 3 |];
               |]
           in
           let b = [| 1.0; 2.0 |] in
           match Linalg.Solve.lu_solve a b with
           | x ->
               let back = M.mat_vec a x in
               abs_float (back.(0) -. 1.0) < 1e-6 && abs_float (back.(1) -. 2.0) < 1e-6
           | exception Linalg.Solve.Singular -> true));
  ]

let suite =
  [
    Alcotest.test_case "identity mul" `Quick test_identity_mul;
    Alcotest.test_case "mul known" `Quick test_mul_known;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "ragged rejected" `Quick test_ragged_rejected;
    Alcotest.test_case "mat_vec" `Quick test_mat_vec;
    Alcotest.test_case "lu solve" `Quick test_lu_solve;
    Alcotest.test_case "lu pivoting" `Quick test_lu_solve_pivoting;
    Alcotest.test_case "singular" `Quick test_singular;
    Alcotest.test_case "inverse" `Quick test_inverse;
    Alcotest.test_case "determinant" `Quick test_determinant;
    Alcotest.test_case "least squares" `Quick test_least_squares;
    Alcotest.test_case "simplex project" `Quick test_simplex_project;
    Alcotest.test_case "simplex properties" `Quick test_simplex_properties;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "clamp" `Quick test_clamp;
  ]
  @ qcheck_tests
