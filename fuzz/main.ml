(* Differential fuzzing CLI.

     fuzz/main.exe --cases 500 --seed 1 -j 4

   runs 500 cases of the five-oracle differential harness; the report is
   byte-identical at any -j.  Exit status 1 when any oracle failed.
   [--only I] replays a single case (as printed in a failure's repro
   line), shrinking any failure it reproduces. *)

let () =
  let cases = ref 200 in
  let seed = ref 1 in
  let jobs = ref 1 in
  let only = ref None in
  let specs =
    [
      ("--cases", Arg.Set_int cases, "N number of cases to run (default 200)");
      ("--seed", Arg.Set_int seed, "S campaign seed (default 1)");
      ("-j", Arg.Set_int jobs, "D worker domains (default 1)");
      ( "--only",
        Arg.Int (fun i -> only := Some i),
        "I replay a single case index and shrink its failures" );
    ]
  in
  let usage = "fuzz/main.exe [--cases N] [--seed S] [-j D] [--only I]" in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    usage;
  match !only with
  | Some index ->
      let r = Fuzz.Runner.run_case ~seed:!seed index in
      Format.printf "fuzz: seed=%d case=%d@." !seed index;
      List.iter
        (fun (o, v) ->
          Format.printf "  %-12s %s@."
            (Fuzz.Runner.oracle_name o)
            (match v with
            | Fuzz.Oracles.Pass -> "pass"
            | Fuzz.Oracles.Skip m -> "skip: " ^ m
            | Fuzz.Oracles.Fail _ -> "FAIL"))
        r.Fuzz.Runner.verdicts;
      let failures =
        List.filter_map
          (function
            | o, Fuzz.Oracles.Fail msg ->
                Some
                  (Fuzz.Runner.shrink_failure ~seed:!seed ~index o msg
                     r.Fuzz.Runner.program)
            | _ -> None)
          r.Fuzz.Runner.verdicts
      in
      List.iter (fun f -> Format.printf "%a@." Fuzz.Runner.pp_failure f) failures;
      exit (if failures = [] then 0 else 1)
  | None ->
      let report = Fuzz.Runner.run ~seed:!seed ~cases:!cases ~jobs:!jobs () in
      Format.printf "%a@." Fuzz.Runner.pp_report report;
      exit (if report.Fuzz.Runner.failures = [] then 0 else 1)
