(* Nonstationary inputs: when the phenomenon drifts, so do the branch
   probabilities, and a placement optimized for last week's profile goes
   stale.  Because Code Tomography's probes are cheap enough to leave in
   the deployed binary, the node can keep estimating: this example feeds
   the timing stream through windowed EM, watches theta move as the
   environment transitions from quiet to active, and shows the drift
   detector firing — the signal to regenerate the placement.

   Run with:  dune exec examples/drifting_phenomenon.exe *)

module P = Codetomo.Pipeline
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices

(* A two-phase environment: the first half of the run is quiet, then the
   phenomenon wakes up — e.g. a road sensor at rush hour. *)
let make_sensor () =
  let rng = Stats.Rng.create 99 in
  let reads = ref 0 in
  fun _channel ->
    incr reads;
    let mu = if !reads < 2500 then 450.0 else 840.0 in
    let v = Stats.Dist.gaussian rng ~mu ~sigma:70.0 in
    Stdlib.max 0 (Stdlib.min 1023 (int_of_float v))

let () =
  let workload = Workloads.sense in
  let compiled = Workloads.compiled workload in
  let instrumented =
    Mote_isa.Asm.assemble
      (Profilekit.Probes.instrument compiled.Mote_lang.Compile.items)
  in
  let devices = Devices.create () in
  Devices.set_sensor devices (make_sensor ());
  let machine = Machine.create ~program:instrumented ~devices () in
  ignore (Machine.run_proc machine Mote_lang.Compile.init_proc_name);
  (* Drive sense_task directly: 5000 invocations spanning the phase
     change. *)
  for _ = 1 to 5000 do
    ignore (Machine.run_proc machine "sense_task")
  done;
  let samples =
    Profilekit.Probes.(samples_for (collect ~program:instrumented ~devices)) "sense_task"
  in
  Printf.printf "collected %d timing samples across the phase change\n\n"
    (Array.length samples);
  let model = Tomo.Model.of_cfg (Cfgir.Cfg.of_proc_name instrumented "sense_task") in
  let paths = Tomo.Paths.enumerate model in
  let windowed = Tomo.Windowed.estimate ~window_size:500 paths ~samples in
  Printf.printf "%-8s %-14s %-22s %s\n" "window" "samples from" "theta (P quiet-branch)" "drift";
  List.iter
    (fun w ->
      Printf.printf "%-8d %-14d %-22s %.3f%s\n" w.Tomo.Windowed.index
        w.Tomo.Windowed.first_sample
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.3f") w.Tomo.Windowed.theta)))
        w.Tomo.Windowed.drift
        (if w.Tomo.Windowed.drift > 0.15 then "   <-- drift detected" else ""))
    windowed.Tomo.Windowed.windows;
  Printf.printf "\nmax drift %.3f; placement stale: %b\n" windowed.Tomo.Windowed.max_drift
    (Tomo.Windowed.drifted windowed);
  (* What re-placement buys: compare placements derived from the early
     profile vs the late profile, both statically evaluated on the late
     distribution. *)
  let theta_of window = window.Tomo.Windowed.theta in
  let windows = Array.of_list windowed.Tomo.Windowed.windows in
  let early = theta_of windows.(0) and late = theta_of windows.(Array.length windows - 1) in
  let original_cfg =
    Cfgir.Cfg.of_proc_name compiled.Mote_lang.Compile.program "sense_task"
  in
  let omodel = Tomo.Model.of_cfg ~call_residual:0 ~window_correction:0 original_cfg in
  let freq_late = Tomo.Model.freq_of_theta omodel ~theta:late ~invocations:1000.0 in
  let freq_early = Tomo.Model.freq_of_theta omodel ~theta:early ~invocations:1000.0 in
  let score placement = Layout.Eval.taken_transfers freq_late placement in
  let stale = Layout.Algorithms.pettis_hansen freq_early in
  let fresh = Layout.Algorithms.pettis_hansen freq_late in
  Printf.printf
    "\nunder the late distribution (per 1000 invocations):\n\
    \  placement from early profile: %.0f taken transfers\n\
    \  placement from late profile:  %.0f taken transfers\n"
    (score stale) (score fresh)
