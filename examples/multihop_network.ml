(* Multi-hop collection tree: two leaf sensors stream packets through a
   CTP-style relay to a sink, over lossy links.  The relay is the node
   whose code placement matters (it handles every packet), so we:

     1. run the network with a probe-instrumented relay and estimate the
        relay's branch probabilities from its end-to-end timings under
        *real* multi-hop traffic (not a synthetic arrival model);
     2. rewrite the relay's binary with the estimated profile;
     3. re-run the same network and measure the relay's taken transfers.

   Run with:  dune exec examples/multihop_network.exe *)

open Mote_lang.Ast.Dsl
module Node = Mote_os.Node
module Network = Mote_os.Network
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices
module Compile = Mote_lang.Compile
module P = Codetomo.Pipeline

(* Leaves emit CTP data packets: kind bits 0, hop count in bits 2..5,
   reading above.  One leaf also gossips beacons (kind 1). *)
let leaf_program ~beacons =
  {
    Mote_lang.Ast.globals = [ ("seq", 0) ];
    arrays = [];
    procs =
      [
        proc "sample" ~params:[] ~locals:[ "valu" ]
          ([
             set "seq" (v "seq" +: i 1);
             set "valu" (sensor 0);
             (* data packet: reading in high bits, hops start at 1 *)
             send (((v "valu" &: i 255) <<: i 6) |: (i 1 <<: i 2));
           ]
          @
          if beacons then
            [ when_ ((v "seq" &: i 7) =: i 0) [ send ((i 12 <<: i 2) |: i 1) ] ]
          else []);
      ];
  }

let sink_program =
  {
    Mote_lang.Ast.globals = [ ("collected", 0) ];
    arrays = [];
    procs =
      [
        proc "rx" ~params:[] ~locals:[ "p" ]
          [ set "p" radio_rx; set "collected" (v "collected" +: i 1) ];
      ];
  }

let make_node ?(seed = 1) ?(channels = []) program tasks =
  let c = Compile.compile program in
  let devices = Devices.create () in
  let machine = Machine.create ~program:c.Compile.program ~devices () in
  let env = Env.create { Env.seed; channels; radio = Env.Silent } in
  (c, Node.create ~machine ~env ~tasks ())

let make_relay binary =
  let devices = Devices.create () in
  let machine = Machine.create ~program:binary ~devices () in
  let env = Env.create { Env.seed = 5; channels = []; radio = Env.Silent } in
  let tasks =
    [
      { Node.proc = "ctp_rx_task"; source = Node.On_radio_rx };
      { Node.proc = "ctp_beacon_task"; source = Node.Periodic { period = 19997; offset = 513 } };
    ]
  in
  (machine, Node.create ~machine ~env ~tasks ())

let build_network ~relay_binary ~net_seed =
  let gauss = [ (0, Env.Gaussian { mu = 520.0; sigma = 130.0 }) ] in
  let _, leaf_a =
    make_node ~seed:21 ~channels:gauss (leaf_program ~beacons:false)
      [ { Node.proc = "sample"; source = Node.Periodic { period = 1733; offset = 3 } } ]
  in
  let _, leaf_b =
    make_node ~seed:22 ~channels:gauss (leaf_program ~beacons:true)
      [ { Node.proc = "sample"; source = Node.Periodic { period = 2389; offset = 101 } } ]
  in
  let relay_machine, relay = make_relay relay_binary in
  let sink_c, sink = make_node ~seed:23 sink_program [ { Node.proc = "rx"; source = Node.On_radio_rx } ] in
  let net =
    Network.create ~seed:net_seed
      ~nodes:[ leaf_a; leaf_b; relay; sink ]
      ~links:
        [
          { Network.src = 0; dst = 2; loss = 0.05; delay = 120 };
          { Network.src = 1; dst = 2; loss = 0.10; delay = 140 };
          { Network.src = 2; dst = 3; loss = 0.02; delay = 90 };
        ]
      ()
  in
  (net, relay_machine, (sink_c, sink))

let horizon = 3_000_000

let () =
  let ctp = Workloads.ctp in
  let compiled = Workloads.compiled ctp in

  (* Phase 1: profile the relay in situ. *)
  let instrumented =
    Mote_isa.Asm.assemble (Profilekit.Probes.instrument compiled.Compile.items)
  in
  let net, relay_machine, _ = build_network ~relay_binary:instrumented ~net_seed:77 in
  let oracle = Profilekit.Oracle.attach relay_machine in
  let net_stats = Network.run net ~until:horizon in
  Printf.printf "profiling run: %d packets sent, %d delivered, %d lost on air\n"
    net_stats.Network.sent net_stats.Network.delivered net_stats.Network.lost;
  let samples =
    Profilekit.Probes.(
      samples_for (collect ~program:instrumented ~devices:(Machine.devices relay_machine)))
      "ctp_rx_task"
  in
  Printf.printf "relay rx task: %d timing samples\n" (Array.length samples);
  let model = Tomo.Model.of_cfg (Cfgir.Cfg.of_proc_name instrumented "ctp_rx_task") in
  let paths = Tomo.Paths.enumerate ~max_paths:20000 model in
  let est = Tomo.Em.estimate paths ~samples in
  let truth = Profilekit.Oracle.theta_vector oracle ~proc:"ctp_rx_task" in
  Printf.printf "estimated theta: [%s]\noracle theta:    [%s]\nMAE %.4f\n\n"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") est.Tomo.Em.theta)))
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") truth)))
    (Stats.Metrics.mae est.Tomo.Em.theta truth);

  (* Phase 2: rewrite the relay with the estimated profile and re-run. *)
  let original = compiled.Compile.program in
  let cfg = Cfgir.Cfg.of_proc_name original "ctp_rx_task" in
  let omodel = Tomo.Model.of_cfg ~call_residual:0 ~window_correction:0 cfg in
  let freq =
    Tomo.Model.freq_of_theta omodel ~theta:est.Tomo.Em.theta
      ~invocations:(float_of_int (Array.length samples))
  in
  let placed =
    Layout.Rewrite.program original
      ~placements:[ ("ctp_rx_task", Layout.Algorithms.pettis_hansen freq) ]
  in
  let evaluate label binary =
    let net, relay_machine, (sink_c, sink) = build_network ~relay_binary:binary ~net_seed:78 in
    ignore (Network.run net ~until:horizon);
    let stats = Machine.stats relay_machine in
    let collected =
      Machine.read_mem (Node.machine sink)
        (Compile.var_address sink_c ~proc:"rx" "collected")
    in
    Printf.printf
      "%-12s relay taken transfers %5d (of %5d branch executions)   sink collected %d\n"
      label
      (stats.Machine.taken_cond_branches + stats.Machine.unconditional_transfers)
      stats.Machine.cond_branches collected
  in
  (* Note: two of the relay's branch parameters are cost-aliased (their
     arms compile to identical cycle counts), so the estimate above can
     diverge from the oracle on those coordinates while still ranking the
     hot edges correctly — which is all the placement pass needs. *)
  evaluate "natural" original;
  evaluate "tomography" placed
