(* Quickstart: the whole Code Tomography pipeline in a dozen lines.

   We take the bundled `sense` workload (a threshold sense-and-send
   application under a bursty phenomenon), run it on the simulated mote
   with only entry/exit timing probes, estimate the Markov branch
   probabilities from that timing stream, feed the estimated profile to the
   Pettis–Hansen placement pass, and measure what the re-laid-out binary
   actually does on fresh inputs.

   Run with:  dune exec examples/quickstart.exe *)

module P = Codetomo.Pipeline

let () =
  let workload = Workloads.sense in

  (* 1. Profile: run the probe-instrumented binary under the workload's
     stochastic environment.  The only measurements taken are end-to-end
     timestamps at procedure entry/exit. *)
  let run = P.profile workload in
  Printf.printf "profiled %s for %d busy cycles\n" workload.Workloads.name
    run.P.node_stats.Mote_os.Node.busy_cycles;

  (* 2. Estimate: EM over the program-path mixture recovers each
     conditional branch's taken-probability from timing alone.  The
     simulation oracle gives us ground truth to compare against — a real
     deployment would not have it. *)
  let estimations = P.estimate run in
  List.iter
    (fun e ->
      Printf.printf "%-12s %4d samples  theta=%s  (oracle %s, MAE %.4f)\n" e.P.proc
        e.P.sample_count
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.2f") e.P.estimate.Tomo.Estimator.theta)))
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.2f") e.P.truth)))
        e.P.mae)
    estimations;

  (* 3. Place and evaluate: rewrite the binary so hot successors fall
     through, then run natural vs tomography-guided vs perfect-profile
     layouts on fresh inputs. *)
  let variants = P.compare_layouts run in
  print_newline ();
  List.iter
    (fun v ->
      Printf.printf "%-12s taken transfers %6d   taken rate %5.1f%%   cycles %d\n"
        v.P.label v.P.taken_transfers (100.0 *. v.P.taken_rate) v.P.busy_cycles)
    variants;

  let get l = List.find (fun v -> v.P.label = l) variants in
  let nat = get "natural" and tomo = get "tomography" in
  Printf.printf
    "\nCode Tomography removed %.1f%% of taken transfers and %.1f%% of cycles\n"
    (100.0
    *. (1.0 -. (float_of_int tomo.P.taken_transfers /. float_of_int nat.P.taken_transfers)))
    (100.0 *. (1.0 -. (float_of_int tomo.P.busy_cycles /. float_of_int nat.P.busy_cycles)))
