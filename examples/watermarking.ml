(* The identifiability limit, and how to engineer around it.

   `sense`'s report task ends with two guards whose bodies compile to the
   same number of cycles:

       if (events > 10) { threshold = threshold + 4; }
       if (events == 0) { threshold = threshold - 2; }

   End-to-end timing cannot tell which one fired — an `addi` costs exactly
   what a `subi` costs — so EM can only split the probability mass evenly
   between them.  `Tomo.Identify` proves this statically (it finds paths
   with equal cost but different branch outcomes), and
   `Profilekit.Watermark` fixes it by routing each ambiguous branch's taken
   edge through a small delay stub with a distinct (power-of-two) nop
   count, in the PROFILING build only.  The shipped binary never changes.

   Run with:  dune exec examples/watermarking.exe *)

module P = Codetomo.Pipeline

let theta_str t =
  "[" ^ String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") t)) ^ "]"

let () =
  let run = P.profile Workloads.sense in

  (* 1. Static diagnosis: which branches can timing not determine? *)
  let sites = P.ambiguous_sites run in
  Printf.printf "ambiguous branches: %s\n\n"
    (String.concat ", "
       (List.map (fun (proc, b) -> Printf.sprintf "%s:B%d" proc b) sites));

  (* 2. Plain estimation hits the wall on exactly those parameters. *)
  let show label estimations =
    Printf.printf "%s:\n" label;
    List.iter
      (fun e ->
        Printf.printf "  %-12s est %s  truth %s  (MAE %.4f)\n" e.P.proc
          (theta_str e.P.estimate.Tomo.Estimator.theta)
          (theta_str e.P.truth) e.P.mae)
      estimations;
    print_newline ()
  in
  show "plain estimation" (P.estimate run);

  (* 3. Watermarked estimation: same environment, same horizon, but the
     profiling image carries delay stubs on the flagged branches. *)
  let watermarked, used = P.estimate_watermarked run in
  Printf.printf "(re-profiled with %d watermark stubs)\n" (List.length used);
  show "watermarked estimation" watermarked
