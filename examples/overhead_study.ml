(* Why estimate from timing at all?  Because the alternative — counting
   every branch edge — costs real flash, RAM and cycles on a mote.  This
   example quantifies the trade on every bundled workload, and uses the
   profiling-duration planner and bootstrap confidence intervals to show
   what the cheap probes buy and what they give up.

   Run with:  dune exec examples/overhead_study.exe *)

module P = Codetomo.Pipeline
module Program = Mote_isa.Program

let () =
  (* 1. Static + dynamic overhead of the two instrumentation schemes. *)
  Printf.printf "%-9s %-7s %9s %8s %8s %10s\n" "workload" "scheme" "flash(w)" "+flash%"
    "ram(w)" "+cycles%";
  List.iter
    (fun w ->
      let c = Workloads.compiled w in
      let base = c.Mote_lang.Compile.program in
      let probes =
        Mote_isa.Asm.assemble (Profilekit.Probes.instrument c.Mote_lang.Compile.items)
      in
      let edges =
        Mote_isa.Asm.assemble (Profilekit.Edges.instrument c.Mote_lang.Compile.items)
      in
      let busy binary = (P.run_binary w binary ~label:"x").P.busy_cycles in
      let base_busy = busy base in
      let report name r binary =
        Printf.printf "%-9s %-7s %9d %7.1f%% %8d %9.1f%%\n" w.Workloads.name name
          r.Profilekit.Overhead.flash_words r.Profilekit.Overhead.flash_overhead_pct
          r.Profilekit.Overhead.ram_words
          (100.0 *. float_of_int (busy binary - base_busy) /. float_of_int base_busy)
      in
      report "probes" (Profilekit.Overhead.probes_report ~base ~instrumented:probes) probes;
      report "edges" (Profilekit.Overhead.edges_report ~base ~instrumented:edges) edges)
    Workloads.all;

  (* 2. What the probes give up: estimates carry uncertainty.  Quantify it
     with bootstrap confidence intervals and ask the planner how long to
     profile for a target precision. *)
  let w = Workloads.ctp in
  let run = P.profile w in
  let proc = "ctp_rx_task" in
  let samples = List.assoc proc run.P.samples in
  let model = P.model_of run proc in
  let paths = Tomo.Paths.enumerate model in
  let point = (Tomo.Em.estimate paths ~samples).Tomo.Em.theta in
  let rng = Stats.Rng.create 7 in
  let ci = Tomo.Confidence.bootstrap rng paths ~samples ~point in
  Printf.printf "\n%s estimates with 90%% bootstrap intervals (%d samples):\n%s\n" proc
    (Array.length samples)
    (Format.asprintf "%a" Tomo.Confidence.pp ci);
  let plan = Tomo.Planner.plan rng paths ~samples ~target_se:0.01 in
  Printf.printf "planner: %s\n" (Format.asprintf "%a" Tomo.Planner.pp plan)
