(* Bring your own application: write a mote program in the embedded
   mini-language, define its environment and task schedule, and push it
   through the same pipeline the bundled workloads use.

   The program below is a little fence-monitoring node: it reads a
   vibration sensor, classifies the reading into three intensity bands,
   debounces alarms, and periodically reports a decaying activity score.

   Run with:  dune exec examples/custom_workload.exe *)

open Mote_lang.Ast.Dsl
module P = Codetomo.Pipeline
module Node = Mote_os.Node

let program =
  {
    Mote_lang.Ast.globals = [ ("activity", 0); ("alarm_streak", 0) ];
    arrays = [];
    procs =
      [
        proc "vibration_task" ~params:[] ~locals:[ "val" ]
          [
            set "val" (sensor 0);
            if_ (v "val" >: i 850)
              [
                (* Strong hit: alarm after two in a row (debounce). *)
                set "alarm_streak" (v "alarm_streak" +: i 1);
                when_ (v "alarm_streak" >=: i 2)
                  [ send (v "val"); led (i 7); set "alarm_streak" (i 0) ];
                set "activity" (v "activity" +: i 8);
              ]
              [
                set "alarm_streak" (i 0);
                when_ (v "val" >: i 600) [ set "activity" (v "activity" +: i 2) ];
              ];
          ];
        proc "report_task" ~params:[] ~locals:[]
          [
            send (v "activity");
            set "activity" (v "activity" -: (v "activity" >>: i 2));
            led (i 0);
          ];
      ];
  }

let workload =
  {
    Workloads.name = "fence";
    description = "fence vibration monitor (custom example)";
    program;
    tasks =
      [
        { Node.proc = "vibration_task"; source = Node.Periodic { period = 1103; offset = 5 } };
        { Node.proc = "report_task"; source = Node.Periodic { period = 16411; offset = 907 } };
      ];
    env_config =
      {
        Env.seed = 11;
        channels =
          [
            ( 0,
              Env.Bursty
                {
                  quiet = Env.Gaussian { mu = 400.0; sigma = 120.0 };
                  active = Env.Gaussian { mu = 870.0; sigma = 60.0 };
                  p_enter = 0.04;
                  p_exit = 0.2;
                } );
          ];
        radio = Env.Silent;
      };
    profiled = [ "vibration_task"; "report_task" ];
    horizon = 4_000_000;
  }

let () =
  Printf.printf "custom workload source:\n\n%s\n"
    (Format.asprintf "%a" Mote_lang.Ast.pp_program program);
  let run = P.profile workload in
  let estimations = P.estimate run in
  List.iter
    (fun e ->
      Printf.printf "%-15s theta=%s (oracle %s)\n" e.P.proc
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.2f") e.P.estimate.Tomo.Estimator.theta)))
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.2f") e.P.truth))))
    estimations;
  print_newline ();
  let variants = P.compare_layouts run in
  List.iter
    (fun v ->
      Printf.printf "%-12s taken %6d  cycles %d\n" v.P.label v.P.taken_transfers
        v.P.busy_cycles)
    variants
