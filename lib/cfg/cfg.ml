open Mote_isa

type edge_kind = K_taken | K_fall | K_jump

type terminator =
  | T_branch of Isa.cond * int * int
  | T_jump of int
  | T_fall of int
  | T_ret
  | T_halt

type block = {
  id : int;
  first : int;
  last : int;
  base_cost : int;
  size_words : int;
  callees : string list;
  term : terminator;
}

type t = {
  proc : Program.proc_info;
  blocks : block array;
  preds : int list array;
}

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let of_proc program (info : Program.proc_info) =
  let { Program.name; entry; finish } = info in
  let in_range a = a >= entry && a < finish in
  (* Leaders: entry, every branch/jump target, and every address following a
     terminator (so all instructions are partitioned into blocks). *)
  let leaders = Hashtbl.create 16 in
  Hashtbl.replace leaders entry ();
  for addr = entry to finish - 1 do
    let ins = Program.instr program addr in
    (match ins with
    | Isa.Br (_, target) | Isa.Jmp target ->
        if not (in_range target) then
          malformed "procedure %s: branch at %d escapes to %d" name addr target;
        Hashtbl.replace leaders target ()
    | _ -> ());
    if Isa.is_terminator ins && addr + 1 < finish then Hashtbl.replace leaders (addr + 1) ()
  done;
  let leader_list =
    Hashtbl.fold (fun a () acc -> a :: acc) leaders [] |> List.sort compare
  in
  let leader_arr = Array.of_list leader_list in
  let n = Array.length leader_arr in
  let block_of_addr = Hashtbl.create 16 in
  Array.iteri (fun id a -> Hashtbl.replace block_of_addr a id) leader_arr;
  let target_block a =
    match Hashtbl.find_opt block_of_addr a with
    | Some id -> id
    | None -> malformed "procedure %s: target %d is not a leader" name a
  in
  let blocks =
    Array.init n (fun id ->
        let first = leader_arr.(id) in
        let last = (if id + 1 < n then leader_arr.(id + 1) else finish) - 1 in
        let base_cost = ref 0 and size_words = ref 0 and callees = ref [] in
        for addr = first to last do
          let ins = Program.instr program addr in
          base_cost := !base_cost + Isa.base_cost ins;
          size_words := !size_words + Isa.size ins;
          match ins with
          | Isa.Call target -> (
              match Program.proc_at program target with
              | Some p -> callees := p.Program.name :: !callees
              | None -> malformed "procedure %s: call to unknown address %d" name target)
          | _ -> ()
        done;
        let term =
          match Program.instr program last with
          | Isa.Br (cond, target) ->
              if last + 1 >= finish then
                malformed "procedure %s: branch at %d has no fall-through" name last;
              T_branch (cond, target_block target, target_block (last + 1))
          | Isa.Jmp target -> T_jump (target_block target)
          | Isa.Ret -> T_ret
          | Isa.Halt -> T_halt
          | _ ->
              if last + 1 >= finish then
                malformed "procedure %s: control falls off the end" name
              else T_fall (target_block (last + 1))
        in
        { id; first; last; base_cost = !base_cost; size_words = !size_words;
          callees = List.rev !callees; term })
  in
  let preds = Array.make n [] in
  Array.iter
    (fun b ->
      let link dst = preds.(dst) <- b.id :: preds.(dst) in
      match b.term with
      | T_branch (_, taken, fall) ->
          link taken;
          link fall
      | T_jump dst | T_fall dst -> link dst
      | T_ret | T_halt -> ())
    blocks;
  Array.iteri (fun i l -> preds.(i) <- List.sort_uniq compare l) preds;
  { proc = info; blocks; preds }

let of_program program = List.map (of_proc program) (Program.procs program)

let of_proc_name program name =
  match Program.find_proc program name with
  | Some info -> of_proc program info
  | None -> raise Not_found

let num_blocks t = Array.length t.blocks
let block t id = t.blocks.(id)
let entry t = t.blocks.(0)

let successors t id =
  match t.blocks.(id).term with
  | T_branch (_, taken, fall) -> [ (taken, K_taken); (fall, K_fall) ]
  | T_jump dst -> [ (dst, K_jump) ]
  | T_fall dst -> [ (dst, K_fall) ]
  | T_ret | T_halt -> []

let edges t =
  Array.to_list t.blocks
  |> List.concat_map (fun b -> List.map (fun (dst, k) -> (b.id, dst, k)) (successors t b.id))

let branch_blocks t =
  Array.to_list t.blocks
  |> List.filter_map (fun b -> match b.term with T_branch _ -> Some b.id | _ -> None)

let exit_blocks t =
  Array.to_list t.blocks
  |> List.filter_map (fun b ->
         match b.term with T_ret | T_halt -> Some b.id | _ -> None)

let reachable t =
  let n = num_blocks t in
  let seen = Array.make n false in
  let rec visit id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter (fun (dst, _) -> visit dst) (successors t id)
    end
  in
  if n > 0 then visit 0;
  seen

let dominators t =
  let n = num_blocks t in
  let reach = reachable t in
  (* Bitset per block: dom.(b).(d) = d dominates b.  Start from "everything
     dominates everything" and shrink. *)
  let dom = Array.init n (fun _ -> Array.make n true) in
  for i = 0 to n - 1 do
    if i = 0 then begin
      Array.fill dom.(0) 0 n false;
      dom.(0).(0) <- true
    end
    else if not reach.(i) then Array.fill dom.(i) 0 n false
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to n - 1 do
      if reach.(b) then begin
        let inter = Array.make n true in
        let has_pred = ref false in
        List.iter
          (fun p ->
            if reach.(p) then begin
              has_pred := true;
              for d = 0 to n - 1 do
                if not dom.(p).(d) then inter.(d) <- false
              done
            end)
          t.preds.(b);
        if not !has_pred then Array.fill inter 0 n false;
        inter.(b) <- true;
        if inter <> dom.(b) then begin
          dom.(b) <- inter;
          changed := true
        end
      end
    done
  done;
  Array.mapi
    (fun b bits ->
      if not reach.(b) then []
      else
        let out = ref [] in
        for d = n - 1 downto 0 do
          if bits.(d) then out := d :: !out
        done;
        !out)
    dom

let back_edges t =
  let dom = dominators t in
  let reach = reachable t in
  edges t
  |> List.filter_map (fun (src, dst, _) ->
         if reach.(src) && List.mem dst dom.(src) then Some (src, dst) else None)

let loop_headers t = back_edges t |> List.map snd |> List.sort_uniq compare

let is_dag t = back_edges t = []

let static_cond_branches t = List.length (branch_blocks t)

let total_cost_lower_bound t =
  let n = num_blocks t in
  let dist = Array.make n max_int in
  dist.(0) <- t.blocks.(0).base_cost;
  (* Bellman-Ford style relaxation; n iterations suffice on n nodes. *)
  for _ = 1 to n do
    Array.iter
      (fun b ->
        if dist.(b.id) < max_int then
          List.iter
            (fun (dst, kind) ->
              let edge_cost =
                match kind with K_taken | K_jump -> Isa.taken_penalty | K_fall -> 0
              in
              let d = dist.(b.id) + edge_cost + t.blocks.(dst).base_cost in
              if d < dist.(dst) then dist.(dst) <- d)
            (successors t b.id))
      t.blocks
  done;
  exit_blocks t
  |> List.fold_left
       (fun acc id ->
         if dist.(id) = max_int then acc
         else
           let exit_cost =
             match t.blocks.(id).term with
             | T_ret -> dist.(id) + Isa.taken_penalty
             | _ -> dist.(id)
           in
           Stdlib.min acc exit_cost)
       max_int

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" t.proc.Program.name);
  Array.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "  b%d [shape=box,label=\"B%d [%d..%d] cost=%d\"];\n" b.id b.id
           b.first b.last b.base_cost))
    t.blocks;
  List.iter
    (fun (src, dst, kind) ->
      let style =
        match kind with
        | K_taken -> " [label=\"T\",color=red]"
        | K_fall -> " [label=\"F\"]"
        | K_jump -> " [label=\"J\",style=dashed]"
      in
      Buffer.add_string buf (Printf.sprintf "  b%d -> b%d%s;\n" src dst style))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "@[<v>proc %s: %d blocks@," t.proc.Program.name (num_blocks t);
  Array.iter
    (fun b ->
      let term =
        match b.term with
        | T_branch (c, tk, fl) ->
            Printf.sprintf "br.%s -> B%d | B%d" (Format.asprintf "%a" Isa.pp_cond c) tk fl
        | T_jump d -> Printf.sprintf "jmp -> B%d" d
        | T_fall d -> Printf.sprintf "fall -> B%d" d
        | T_ret -> "ret"
        | T_halt -> "halt"
      in
      Format.fprintf fmt "  B%d [%d..%d] cost=%d %s@," b.id b.first b.last b.base_cost term)
    t.blocks;
  Format.fprintf fmt "@]"
