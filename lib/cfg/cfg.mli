(** Per-procedure control-flow graphs recovered from assembled binaries.

    This is the structure everything downstream shares: the Markov model
    (blocks = states, branch probabilities = parameters), the estimator
    (block costs weight the timing model) and the placement pass (blocks
    are the units being reordered).

    Block 0 is always the procedure entry.  Branches may only target
    addresses inside their own procedure — the mini-compiler guarantees
    this, and {!of_proc} enforces it. *)

open Mote_isa

type edge_kind =
  | K_taken  (** Conditional branch, condition true. *)
  | K_fall  (** Fall-through: condition false, or straight-line split. *)
  | K_jump  (** Unconditional jump. *)

type terminator =
  | T_branch of Isa.cond * int * int
      (** [(cond, taken_block, fall_block)] — the two successor blocks. *)
  | T_jump of int
  | T_fall of int  (** Implicit fall into the next leader. *)
  | T_ret
  | T_halt

type block = {
  id : int;
  first : int;  (** Address of the first instruction. *)
  last : int;  (** Address of the terminating/last instruction (inclusive). *)
  base_cost : int;
      (** Σ base cycle costs of the block's instructions (no taken
          penalties — those belong to edges). *)
  size_words : int;
  callees : string list;  (** Procedures called from this block, in order. *)
  term : terminator;
}

type t = {
  proc : Program.proc_info;
  blocks : block array;
  preds : int list array;  (** Predecessor block ids, per block. *)
}

exception Malformed of string

val of_proc : Program.t -> Program.proc_info -> t
(** @raise Malformed if a branch escapes the procedure. *)

val of_program : Program.t -> t list
val of_proc_name : Program.t -> string -> t
(** @raise Not_found when no such procedure. *)

val num_blocks : t -> int
val block : t -> int -> block
val entry : t -> block

val successors : t -> int -> (int * edge_kind) list
(** Intra-procedural successor blocks with the kind of edge reaching them. *)

val edges : t -> (int * int * edge_kind) list
(** All [(src, dst, kind)] edges, in block order. *)

val branch_blocks : t -> int list
(** Ids of blocks ending in a conditional branch — one Markov parameter
    each. *)

val exit_blocks : t -> int list
(** Blocks terminating with [Ret]/[Halt]. *)

val reachable : t -> bool array
(** Blocks reachable from the entry. *)

val dominators : t -> int list array
(** [dominators t].(b) = sorted dominators of [b] (including itself);
    unreachable blocks dominate nothing and get []. *)

val back_edges : t -> (int * int) list
(** Natural-loop back edges [(tail, header)]: edges whose destination
    dominates their source. *)

val loop_headers : t -> int list

val is_dag : t -> bool
(** No back edges among reachable blocks. *)

val static_cond_branches : t -> int
val total_cost_lower_bound : t -> int
(** Cost of the cheapest entry→exit path ignoring probabilities (used for
    sanity checks on measured timings). *)

val to_dot : t -> string
(** Graphviz rendering for debugging and documentation. *)

val pp : Format.formatter -> t -> unit
