(** Persisting edge-frequency profiles.

    Profile-guided workflows separate measurement from compilation: the
    profile is collected on the device fleet today and fed to the placement
    pass in next week's build.  This module gives {!Freq} a stable,
    human-readable text form, keyed by procedure name and block structure
    so a stale profile is detected rather than silently misapplied.

    Format (line-oriented, ['#'] comments):
    {v
    codetomo-profile 1
    proc <name> blocks <n> invocations <float>
    edge <src> <dst> taken|fall|jump <weight>
    ...
    v} *)

exception Format_error of string

val to_string : (string * Freq.t) list -> string

val of_string : lookup:(string -> Cfg.t option) -> string -> (string * Freq.t) list
(** Re-attach each saved profile to its CFG via [lookup].  Procedures the
    lookup does not know are skipped.
    @raise Format_error on syntax errors or when a profile's block count
    does not match the CFG it is being attached to (stale profile). *)

val save : path:string -> (string * Freq.t) list -> unit
val load : path:string -> lookup:(string -> Cfg.t option) -> (string * Freq.t) list
