exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

let magic = "codetomo-profile 1"

let kind_to_string = function
  | Cfg.K_taken -> "taken"
  | Cfg.K_fall -> "fall"
  | Cfg.K_jump -> "jump"

let kind_of_string = function
  | "taken" -> Cfg.K_taken
  | "fall" -> Cfg.K_fall
  | "jump" -> Cfg.K_jump
  | s -> fail "unknown edge kind %S" s

let to_string profiles =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (magic ^ "\n");
  List.iter
    (fun (name, freq) ->
      Buffer.add_string buf
        (Printf.sprintf "proc %s blocks %d invocations %.6f\n" name
           (Cfg.num_blocks (Freq.cfg freq))
           (Freq.invocations freq));
      List.iter
        (fun ((src, dst, kind), w) ->
          Buffer.add_string buf
            (Printf.sprintf "edge %d %d %s %.6f\n" src dst (kind_to_string kind) w))
        (Freq.weights freq))
    profiles;
  Buffer.contents buf

let of_string ~lookup text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  (match lines with
  | first :: _ when first = magic -> ()
  | _ -> fail "missing %S header" magic);
  let profiles = ref [] in
  let current : (string * Freq.t option) option ref = ref None in
  let flush () =
    match !current with
    | Some (name, Some freq) -> profiles := (name, freq) :: !profiles
    | Some (_, None) | None -> ()
  in
  List.iteri
    (fun i line ->
      if i > 0 then
        match String.split_on_char ' ' line with
        | [ "proc"; name; "blocks"; blocks; "invocations"; inv ] ->
            flush ();
            let blocks =
              match int_of_string_opt blocks with
              | Some b -> b
              | None -> fail "bad block count %S" blocks
            in
            let inv =
              match float_of_string_opt inv with
              | Some v -> v
              | None -> fail "bad invocation count %S" inv
            in
            (match lookup name with
            | None -> current := Some (name, None) (* unknown: skip its edges *)
            | Some cfg ->
                if Cfg.num_blocks cfg <> blocks then
                  fail "stale profile for %s: %d blocks saved, CFG has %d" name blocks
                    (Cfg.num_blocks cfg);
                current := Some (name, Some (Freq.create cfg ~invocations:inv)))
        | [ "edge"; src; dst; kind; w ] -> (
            match !current with
            | None -> fail "edge line before any proc line"
            | Some (_, None) -> ()
            | Some (name, Some freq) -> (
                let int_of s =
                  match int_of_string_opt s with
                  | Some v -> v
                  | None -> fail "bad block id %S" s
                in
                let weight =
                  match float_of_string_opt w with
                  | Some v -> v
                  | None -> fail "bad weight %S" w
                in
                try
                  Freq.bump freq ~src:(int_of src) ~dst:(int_of dst)
                    ~kind:(kind_of_string kind) weight
                with Invalid_argument _ ->
                  fail "stale profile for %s: edge %s->%s not in CFG" name src dst))
        | _ -> fail "unparseable line %S" line)
    lines;
  flush ();
  List.rev !profiles

let save ~path profiles =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string profiles))

let load ~path ~lookup =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ~lookup (really_input_string ic (in_channel_length ic)))
