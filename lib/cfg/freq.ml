type key = int * int * Cfg.edge_kind

type t = {
  cfg : Cfg.t;
  mutable invocations : float;
  weights : (key, float) Hashtbl.t;
}

let create cfg ~invocations =
  if invocations < 0.0 then invalid_arg "Freq.create: negative invocations";
  let weights = Hashtbl.create 32 in
  List.iter (fun e -> Hashtbl.replace weights e 0.0) (Cfg.edges cfg);
  { cfg; invocations; weights }

let cfg t = t.cfg
let invocations t = t.invocations

let key_exists t key = Hashtbl.mem t.weights key

let bump t ~src ~dst ~kind w =
  let key = (src, dst, kind) in
  if not (key_exists t key) then
    invalid_arg (Printf.sprintf "Freq.bump: edge B%d->B%d not in CFG" src dst);
  Hashtbl.replace t.weights key (Hashtbl.find t.weights key +. w)

let get t ~src ~dst ~kind =
  match Hashtbl.find_opt t.weights (src, dst, kind) with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Freq.get: edge B%d->B%d not in CFG" src dst)

let weights t = List.map (fun e -> (e, Hashtbl.find t.weights e)) (Cfg.edges t.cfg)

let block_visits t =
  let n = Cfg.num_blocks t.cfg in
  let visits = Array.make n 0.0 in
  visits.(0) <- t.invocations;
  Hashtbl.iter (fun (_, dst, _) w -> visits.(dst) <- visits.(dst) +. w) t.weights;
  visits

let taken_probability t id =
  match (Cfg.block t.cfg id).Cfg.term with
  | Cfg.T_branch (_, taken, fall) ->
      let wt = get t ~src:id ~dst:taken ~kind:Cfg.K_taken in
      let wf = get t ~src:id ~dst:fall ~kind:Cfg.K_fall in
      let total = wt +. wf in
      if total <= 0.0 then 0.5 else wt /. total
  | _ -> invalid_arg (Printf.sprintf "Freq.taken_probability: B%d is not a branch" id)

let thetas t = List.map (fun id -> (id, taken_probability t id)) (Cfg.branch_blocks t.cfg)

let theta_vector t = Array.of_list (List.map snd (thetas t))

let scale t k =
  let out = create t.cfg ~invocations:(t.invocations *. k) in
  Hashtbl.iter (fun key w -> Hashtbl.replace out.weights key (w *. k)) t.weights;
  out

let per_invocation t = if t.invocations = 0.0 then t else scale t (1.0 /. t.invocations)

let pp fmt t =
  Format.fprintf fmt "@[<v>profile %s (%.0f invocations)@,"
    t.cfg.Cfg.proc.Mote_isa.Program.name t.invocations;
  List.iter
    (fun ((src, dst, kind), w) ->
      let k =
        match kind with Cfg.K_taken -> "T" | Cfg.K_fall -> "F" | Cfg.K_jump -> "J"
      in
      Format.fprintf fmt "  B%d -%s-> B%d : %.2f@," src k dst w)
    (weights t);
  Format.fprintf fmt "@]"
