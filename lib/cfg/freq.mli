(** Edge-frequency profiles over a procedure CFG.

    A profile records how many times each edge was traversed across some
    number of procedure invocations.  Every profiling back end produces one
    of these — the oracle hook, the edge-counter instrumentation, and the
    Code Tomography estimator (whose expected frequencies are real-valued,
    hence floats) — and the placement pass consumes them, which is what
    makes the back ends interchangeable in the experiments. *)

type t

val create : Cfg.t -> invocations:float -> t
(** All-zero profile for [invocations] observed entries into the
    procedure. *)

val cfg : t -> Cfg.t
val invocations : t -> float

val bump : t -> src:int -> dst:int -> kind:Cfg.edge_kind -> float -> unit
(** Add traversals to an edge.  The edge must exist in the CFG. *)

val get : t -> src:int -> dst:int -> kind:Cfg.edge_kind -> float

val weights : t -> ((int * int * Cfg.edge_kind) * float) list
(** All CFG edges with their weights, in CFG edge order. *)

val block_visits : t -> float array
(** Per-block visit counts implied by the profile: entry gets the
    invocation count, other blocks the sum of inbound edge weights. *)

val taken_probability : t -> int -> float
(** For a block ending in a conditional branch: estimated P(taken);
    0.5 when the block was never reached.
    @raise Invalid_argument on non-branch blocks. *)

val thetas : t -> (int * float) list
(** [(branch_block, taken probability)] for every conditional branch. *)

val theta_vector : t -> float array
(** Taken probabilities in {!Cfg.branch_blocks} order — the canonical
    parameter vector compared across estimators. *)

val scale : t -> float -> t
(** Multiply all weights and the invocation count. *)

val per_invocation : t -> t
(** Normalize so that invocations = 1. *)

val pp : Format.formatter -> t -> unit
