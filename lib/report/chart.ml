let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let line ?(width = 64) ?(height = 16) ?(x_label = "x") ?(y_label = "y") ?(log_x = false)
    ~title series =
  let series = List.filter (fun (_, pts) -> Array.length pts > 0) series in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  if series = [] then Buffer.contents buf
  else begin
    let tx x = if log_x then log10 (Stdlib.max 1e-12 x) else x in
    let all_pts = List.concat_map (fun (_, pts) -> Array.to_list pts) series in
    let xs = List.map (fun (x, _) -> tx x) all_pts in
    let ys = List.map snd all_pts in
    let x_min = List.fold_left Stdlib.min infinity xs in
    let x_max = List.fold_left Stdlib.max neg_infinity xs in
    let y_min = List.fold_left Stdlib.min infinity ys in
    let y_max = List.fold_left Stdlib.max neg_infinity ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        Array.iter
          (fun (x, y) ->
            let cx =
              int_of_float (Float.round ((tx x -. x_min) /. x_span *. float_of_int (width - 1)))
            in
            let cy =
              int_of_float (Float.round ((y -. y_min) /. y_span *. float_of_int (height - 1)))
            in
            let row = height - 1 - cy in
            if row >= 0 && row < height && cx >= 0 && cx < width then
              grid.(row).(cx) <- glyph)
          pts)
      series;
    Buffer.add_string buf (Printf.sprintf "%s (top=%.4g bottom=%.4g)\n" y_label y_max y_min);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "   %s: %.4g .. %.4g%s\n" x_label
         (if log_x then 10.0 ** x_min else x_min)
         (if log_x then 10.0 ** x_max else x_max)
         (if log_x then " (log scale)" else ""));
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "   %c = %s\n" glyphs.(si mod Array.length glyphs) name))
      series;
    Buffer.contents buf
  end
