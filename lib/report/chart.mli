(** ASCII line charts — every "Figure N" in the evaluation is rendered
    through this.  Each series is a set of (x, y) points; points are
    plotted on a character grid with per-series glyphs and a legend. *)

val line :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?log_x:bool ->
  title:string ->
  (string * (float * float) array) list ->
  string
(** Defaults: 64×16 plot area, linear x.  Empty series are skipped; an
    entirely empty chart renders just the title. *)
