(** Minimal CSV output so experiment data can be re-plotted elsewhere. *)

val to_string : headers:string list -> string list list -> string
(** RFC-4180-style quoting of cells containing commas, quotes or
    newlines. *)

val write_file : path:string -> headers:string list -> string list list -> unit
