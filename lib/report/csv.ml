let escape cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell
  in
  if needs_quoting then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let row_to_string row = String.concat "," (List.map escape row)

let to_string ~headers rows =
  String.concat "\n" (row_to_string headers :: List.map row_to_string rows) ^ "\n"

let write_file ~path ~headers rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~headers rows))
