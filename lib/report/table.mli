(** Aligned plain-text tables — every "Table N" in the evaluation is
    rendered through this. *)

type align = Left | Right

val render : headers:string list -> ?aligns:align list -> string list list -> string
(** Box-drawn table.  [aligns] defaults to left for the first column and
    right for the rest (the usual name-then-numbers shape).
    @raise Invalid_argument on ragged rows. *)

val fmt_float : ?decimals:int -> float -> string
val fmt_pct : ?decimals:int -> float -> string
(** [fmt_pct 0.123] is ["12.3%"]. *)
