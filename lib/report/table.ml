type align = Left | Right

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let fmt_pct ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (v *. 100.0)

let render ~headers ?aligns rows =
  let cols = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> cols then
        invalid_arg (Printf.sprintf "Table.render: row %d has %d cells, expected %d" i
                       (List.length row) cols))
    rows;
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> cols then invalid_arg "Table.render: aligns length mismatch";
        a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    rows;
  let pad align width s =
    let gap = width - String.length s in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let line ch junction =
    junction
    ^ String.concat junction
        (Array.to_list (Array.map (fun w -> String.make (w + 2) ch) widths))
    ^ junction
  in
  let render_row cells =
    "|"
    ^ String.concat "|"
        (List.mapi (fun i cell -> " " ^ pad (List.nth aligns i) widths.(i) cell ^ " ") cells)
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line '-' "+");
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=' "+");
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-' "+");
  Buffer.contents buf
