(** Deterministic multi-node deployment simulation — the mote side of the
    fleet.

    A fleet is N copies of one workload deployed under {e different}
    inputs: each node draws its environment seed, its link-fault model
    and its transport noise from its own member of a split RNG family
    ({!Stats.Rng.stream}[ ~seed ~index:node_id]), so the whole fleet is
    reproducible from one integer and any node can be re-simulated in
    isolation.  Per-node fault variation models what "Modeling the Input
    History of Programs" observes across deployments: no two radio links
    degrade identically.

    A simulated node runs the probe-instrumented binary once for the
    full horizon and keeps its {e pristine} probe log; {!batch} then
    replays that log as the base station would receive it — sliced into
    uplink batches, each batch independently perturbed by the node's
    fault model on a per-(node, round) stream and serialized in the
    versioned {!Profilekit.Wire} format.  Slicing before perturbation
    means a record lost in round [r] is lost forever, exactly like a
    real uplink; and because every batch is keyed by (node, round), the
    ingest order across nodes cannot change a byte of any batch — the
    aggregation service can shard nodes over domains freely. *)

type node = {
  id : int;
  env_seed : int;  (** Per-node environment seed (phenomenon inputs). *)
  transport_seed : int;  (** Base seed of the node's uplink noise. *)
  faults : Profilekit.Transport.config;
      (** The node's own link pathology — the fleet base model, with
          rates scaled per node when variation is on. *)
}

val plan :
  seed:int ->
  nodes:int ->
  faults:Profilekit.Transport.config ->
  vary_faults:bool ->
  node list
(** Draw the fleet roster.  [vary_faults] scales each node's nonzero
    drop/corrupt/duplicate/reorder rates by a uniform factor in
    [0.5, 1.5) from the node's fault stream (clamped to 0.9). *)

type node_run = {
  node : node;
  log : Mote_machine.Devices.probe_record array;
      (** Pristine on-mote probe log, oldest first. *)
  oracle_thetas : (string * float array) list;
      (** Ground truth under this node's inputs. *)
  clean_samples : (string * int) list;
      (** Windows per procedure in the pristine log — what a lossless
          link would have delivered. *)
}

val run_node :
  workload:Workloads.t ->
  instrumented:Mote_isa.Program.t ->
  config:Codetomo.Pipeline.config ->
  node ->
  node_run
(** Simulate one node for the configured horizon with the oracle
    attached.  [config]'s seed is ignored — the node's [env_seed] rules,
    so a node_run depends only on (workload, instrumented binary, timing
    config, node). *)

val default_batch : node_run -> rounds:int -> int
(** The batch size that spreads this node's log evenly over [rounds]
    uplink rounds (at least 1). *)

val batch :
  node_run -> batch:int -> round:int -> string * Profilekit.Transport.stats
(** The Wire-serialized uplink batch for [round] (0-based): records
    [round*batch, (round+1)*batch) of the pristine log, perturbed by the
    node's fault model under seed [transport_seed + round].  Rounds past
    the end of the log yield an empty (but well-formed, versioned)
    batch. *)
