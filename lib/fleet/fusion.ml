type input = { theta : float array; weight : float; health : Tomo.Health.t }

type result = {
  fused : float array option;
  mass : float;
  admitted : int;
  rejected : int;
}

let fuse inputs =
  let admissible, excluded =
    List.partition
      (fun i -> (not (Tomo.Health.is_rejected i.health)) && i.weight > 0.0)
      inputs
  in
  match admissible with
  | [] -> { fused = None; mass = 0.0; admitted = 0; rejected = List.length excluded }
  | first :: _ ->
      let k = Array.length first.theta in
      let acc = Array.make k 0.0 in
      let mass =
        List.fold_left
          (fun mass i ->
            if Array.length i.theta <> k then
              invalid_arg "Fleet.Fusion.fuse: mismatched theta arities";
            Array.iteri (fun j v -> acc.(j) <- acc.(j) +. (i.weight *. v)) i.theta;
            mass +. i.weight)
          0.0 admissible
      in
      {
        fused = Some (Array.map (fun s -> s /. mass) acc);
        mass;
        admitted = List.length admissible;
        rejected = List.length excluded;
      }
