type proc_state = {
  online : Tomo.Online.t;
  mutable fed : int;
  mutable samples_rev : float list;
}

type t = {
  node : Sim.node;
  program : Mote_isa.Program.t;
  resolution : int;
  procs : (string * proc_state) list;
  mutable records_rev : Mote_machine.Devices.probe_record list;
  mutable delivered : int;
  mutable discarded : int;
}

let create ~node ~program ~resolution ~sigma ~decay ~procs =
  {
    node;
    program;
    resolution;
    procs =
      List.map
        (fun (proc, paths) ->
          (proc, { online = Tomo.Online.create ~decay ~sigma paths; fed = 0; samples_rev = [] }))
        procs;
    records_rev = [];
    delivered = 0;
    discarded = 0;
  }

let node t = t.node

let ingest t batch =
  let records = Profilekit.Wire.decode_exn batch in
  t.records_rev <- List.rev_append records t.records_rev;
  t.delivered <- t.delivered + List.length records;
  (* Re-pair the full history: the collector is sequential, so windows
     closed by earlier rounds re-emerge identically and only the suffix
     is new.  Feed exactly that suffix. *)
  let r =
    Profilekit.Probes.collect_lossy_records ~program:t.program ~resolution:t.resolution
      (List.rev t.records_rev)
  in
  t.discarded <- r.Profilekit.Probes.discarded;
  List.iter
    (fun (proc, st) ->
      let all = Profilekit.Probes.samples_for r.Profilekit.Probes.samples proc in
      let n = Array.length all in
      if n > st.fed then begin
        for i = st.fed to n - 1 do
          Tomo.Online.observe st.online all.(i);
          st.samples_rev <- all.(i) :: st.samples_rev
        done;
        st.fed <- n
      end)
    t.procs

let state t proc =
  match List.assoc_opt proc t.procs with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Fleet.Ingest: unknown procedure %S" proc)

let delivered t = t.delivered
let discarded t = t.discarded
let fed t proc = (state t proc).fed
let total_fed t = List.fold_left (fun acc (_, st) -> acc + st.fed) 0 t.procs
let theta t proc = Tomo.Online.theta (state t proc).online
let weight t proc = Tomo.Online.effective_weight (state t proc).online

let samples t proc = Array.of_list (List.rev (state t proc).samples_rev)

let fusion_input t ~min_samples proc =
  let st = state t proc in
  {
    Fusion.theta = Tomo.Online.theta st.online;
    weight = Tomo.Online.effective_weight st.online;
    health =
      Tomo.Health.judge ~min_samples ~converged:true ~sample_count:st.fed ();
  }
