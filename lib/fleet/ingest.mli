(** Per-node incremental ingest — the base station's state for one node.

    Batches arrive in rounds; each is decoded from the versioned
    {!Profilekit.Wire} format (unknown versions raise the typed
    {!Profilekit.Wire.Error} — a fleet never guesses at firmware it does
    not speak), appended to the node's record history, and re-paired by
    the resynchronizing lossy collector.  The collector is sequential,
    so windows it closed in earlier rounds never change when new records
    arrive — only {e new} windows appear, and exactly those are fed to
    the per-procedure {!Tomo.Online} estimators.  Feeding batch by batch
    therefore leaves the estimator in {e precisely} the state it would
    reach on the concatenated stream (the fleet test suite asserts this
    to the last bit).

    Estimator memory is O(paths + parameters) per procedure; the record
    history is kept only because the collector needs the full stream to
    resynchronize across batch-spanning windows. *)

type t

val create :
  node:Sim.node ->
  program:Mote_isa.Program.t ->
  resolution:int ->
  sigma:float ->
  decay:float ->
  procs:(string * Tomo.Paths.t) list ->
  t
(** One estimator per profiled procedure, all sharing the node's link.
    [procs] supplies each procedure's (typically session-cached) path
    set; [sigma] and [decay] configure the online estimators. *)

val node : t -> Sim.node

val ingest : t -> string -> unit
(** Decode one Wire batch, resynchronize, feed the new windows.
    @raise Profilekit.Wire.Error on an unreadable or wrong-version
    batch. *)

val delivered : t -> int
(** Records received so far (across all batches, duplicates included). *)

val discarded : t -> int
(** Windows the collector abandoned in the current history. *)

val fed : t -> string -> int
(** Samples fed to [proc]'s estimator so far. *)

val total_fed : t -> int

val theta : t -> string -> float array
val weight : t -> string -> float
(** Decayed evidence mass of [proc]'s estimator. *)

val samples : t -> string -> float array
(** Every sample fed to [proc], in feed order — the windowed-drift
    analysis reads these back. *)

val fusion_input : t -> min_samples:int -> string -> Fusion.input
(** The node's vote for [proc]: current θ, decayed evidence mass, and a
    health verdict from the sample floor — [Rejected] below
    [min_samples], so a dead link excludes itself from fusion. *)
