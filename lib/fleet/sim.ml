module P = Codetomo.Pipeline
module Devices = Mote_machine.Devices
module Machine = Mote_machine.Machine
module Node_os = Mote_os.Node

type node = {
  id : int;
  env_seed : int;
  transport_seed : int;
  faults : Profilekit.Transport.config;
}

(* Per-node streams, split in fixed order: environment, fault variation,
   transport.  Adding a purpose at the END keeps existing fleets
   reproducible. *)
let node_streams ~seed id = Stats.Rng.split_n (Stats.Rng.stream ~seed ~index:id) 3

let vary rng (c : Profilekit.Transport.config) =
  let scale v =
    if v = 0.0 then 0.0
    else Stdlib.min 0.9 (v *. (0.5 +. Stats.Rng.unit_float rng))
  in
  {
    c with
    Profilekit.Transport.drop = scale c.Profilekit.Transport.drop;
    corrupt = scale c.corrupt;
    duplicate = scale c.duplicate;
    reorder = scale c.reorder;
  }

let plan ~seed ~nodes ~faults ~vary_faults =
  if nodes < 1 then invalid_arg "Fleet.Sim.plan: need at least one node";
  List.init nodes (fun id ->
      let s = node_streams ~seed id in
      let env_seed = Stats.Rng.int s.(0) 1_000_000 in
      let faults = if vary_faults then vary s.(1) faults else faults in
      let transport_seed = Stats.Rng.int s.(2) 1_000_000 in
      { id; env_seed; transport_seed; faults })

type node_run = {
  node : node;
  log : Devices.probe_record array;
  oracle_thetas : (string * float array) list;
  clean_samples : (string * int) list;
}

(* Mirrors Pipeline.profile's node construction (same device RNG offset,
   same env override) so a 1-node clean-link fleet sees exactly the
   telemetry a Pipeline.profile run at that seed would. *)
let run_node ~(workload : Workloads.t) ~instrumented ~(config : P.config) node =
  let devices =
    Devices.create ~timer_resolution:config.P.timer_resolution
      ~timer_jitter:config.P.timer_jitter
      ~rng:(Stats.Rng.create (node.env_seed + 7919))
      ()
  in
  let machine =
    Machine.create ~prediction:config.P.prediction ~program:instrumented ~devices ()
  in
  let env = Env.create { workload.Workloads.env_config with Env.seed = node.env_seed } in
  let os_node = Node_os.create ~machine ~env ~tasks:workload.Workloads.tasks () in
  let oracle = Profilekit.Oracle.attach machine in
  let horizon = Option.value ~default:workload.Workloads.horizon config.P.horizon in
  ignore (Node_os.run os_node ~until:horizon);
  let log = Array.of_list (Devices.probe_log devices) in
  let clean = Profilekit.Probes.collect ~program:instrumented ~devices in
  let oracle_thetas =
    List.map
      (fun proc -> (proc, Profilekit.Oracle.theta_vector oracle ~proc))
      workload.Workloads.profiled
  in
  let clean_samples =
    List.map
      (fun proc ->
        (proc, Array.length (Profilekit.Probes.samples_for clean proc)))
      workload.Workloads.profiled
  in
  Profilekit.Oracle.detach oracle;
  { node; log; oracle_thetas; clean_samples }

let default_batch run ~rounds =
  if rounds < 1 then invalid_arg "Fleet.Sim.default_batch: need at least one round";
  Stdlib.max 1 ((Array.length run.log + rounds - 1) / rounds)

let batch run ~batch ~round =
  if batch < 1 then invalid_arg "Fleet.Sim.batch: batch size must be positive";
  let len = Array.length run.log in
  let lo = Stdlib.min len (round * batch) in
  let hi = Stdlib.min len (lo + batch) in
  let slice = Array.to_list (Array.sub run.log lo (hi - lo)) in
  let records, stats =
    Profilekit.Transport.perturb
      ~seed:(run.node.transport_seed + round)
      run.node.faults slice
  in
  (Profilekit.Wire.encode records, stats)
