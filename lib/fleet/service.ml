module P = Codetomo.Pipeline
module Session = Codetomo.Session
module Cfg = Cfgir.Cfg

type config = {
  workload : Workloads.t;
  nodes : int;
  rounds : int;
  batch : int option;
  seed : int;
  faults : Profilekit.Transport.config;
  vary_faults : bool;
  pipeline : P.config;
  decay : float;
  min_samples : int;
  replace_every : int;
}

let default_config workload =
  {
    workload;
    nodes = 8;
    rounds = 10;
    batch = None;
    seed = 42;
    faults = Profilekit.Transport.default;
    vary_faults = true;
    pipeline = P.default_config;
    decay = 0.999;
    min_samples = Tomo.Health.default_min_samples;
    replace_every = 0;
  }

type placement = {
  at_round : int;
  label : string;
  natural_taken : int;
  placed_taken : int;
  reduction : float;
  fallbacks : int;
}

type round_report = {
  round : int;
  delivered : int;
  fed : int;
  discarded : int;
  admitted : int;
  rejected : int;
  fused_mae : float;
  placement : placement option;
}

type report = {
  roster : Sim.node list;
  round_reports : round_report list;
  final : placement;
  fused : (string * float array option) list;
  pooled_oracle : (string * float array) list;
  health : (int * (string * Tomo.Health.t) list) list;
  drift : (string * float) list;
}

let validate config =
  if config.nodes < 1 then invalid_arg "Fleet.Service: need at least one node";
  if config.rounds < 1 then invalid_arg "Fleet.Service: need at least one round";
  (match config.batch with
  | Some b when b < 1 -> invalid_arg "Fleet.Service: batch size must be positive"
  | _ -> ());
  if config.decay <= 0.0 || config.decay > 1.0 then
    invalid_arg "Fleet.Service: decay outside (0,1]";
  if config.replace_every < 0 then
    invalid_arg "Fleet.Service: replace_every must be non-negative"

(* The fleet's ground truth: each node sees its own inputs, so per-node
   oracle thetas differ; the fleet target is their clean-sample-weighted
   mean — what a lossless, infinitely patient base station would call
   the deployment's branch behaviour. *)
let pooled_oracle procs node_runs =
  List.map
    (fun proc ->
      let votes =
        List.map
          (fun (nr : Sim.node_run) ->
            ( List.assoc proc nr.Sim.oracle_thetas,
              float_of_int (List.assoc proc nr.Sim.clean_samples) ))
          node_runs
      in
      let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 votes in
      let k =
        match votes with (theta, _) :: _ -> Array.length theta | [] -> 0
      in
      let acc = Array.make k 0.0 in
      if total > 0.0 then
        List.iter
          (fun (theta, w) ->
            Array.iteri (fun j v -> acc.(j) <- acc.(j) +. (w *. v /. total)) theta)
          votes
      else begin
        let n = float_of_int (Stdlib.max 1 (List.length votes)) in
        List.iter
          (fun (theta, _) ->
            Array.iteri (fun j v -> acc.(j) <- acc.(j) +. (v /. n)) theta)
          votes
      end;
      (proc, acc))
    procs

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let reduction_of variants =
  let taken label_matches =
    match List.find_opt (fun (v : P.variant) -> label_matches v.P.label) variants with
    | Some v -> float_of_int v.P.taken_transfers
    | None -> invalid_arg "Fleet.Service.reduction_of: missing variant"
  in
  let natural = taken (String.equal "natural") in
  let tomo =
    taken (fun l -> String.length l >= 10 && String.equal (String.sub l 0 10) "tomography")
  in
  if natural = 0.0 then 0.0 else 1.0 -. (tomo /. natural)

let run ?session config =
  validate config;
  let w = config.workload in
  let procs = w.Workloads.profiled in
  let pmap f xs =
    match session with Some s -> Session.map_list s f xs | None -> List.map f xs
  in
  let compiled =
    match session with Some s -> Session.compiled s w | None -> Workloads.compiled w
  in
  let instrumented =
    Mote_isa.Asm.assemble (Profilekit.Probes.instrument compiled.Mote_lang.Compile.items)
  in
  let original = compiled.Mote_lang.Compile.program in
  (* One path set per procedure for the whole fleet: the session memo
     returns the same enumeration every node's estimator shares. *)
  let paths =
    List.map
      (fun proc ->
        let enumerate () =
          Tomo.Paths.enumerate (Tomo.Model.of_cfg (Cfg.of_proc_name instrumented proc))
        in
        let p =
          match session with
          | Some s -> Session.paths_cache s w proc enumerate
          | None -> enumerate ()
        in
        (proc, p))
      procs
  in
  let sigma = P.noise_sigma config.pipeline in
  let roster =
    Sim.plan ~seed:config.seed ~nodes:config.nodes ~faults:config.faults
      ~vary_faults:config.vary_faults
  in
  (* Stage 1: simulate every node for the full horizon (sharded). *)
  let node_runs =
    pmap (Sim.run_node ~workload:w ~instrumented ~config:config.pipeline) roster
  in
  let oracle = pooled_oracle procs node_runs in
  let states =
    List.map
      (fun (nr : Sim.node_run) ->
        let batch =
          match config.batch with
          | Some b -> b
          | None -> Sim.default_batch nr ~rounds:config.rounds
        in
        ( nr,
          batch,
          Ingest.create ~node:nr.Sim.node ~program:instrumented
            ~resolution:config.pipeline.P.timer_resolution ~sigma ~decay:config.decay
            ~procs:paths ))
      node_runs
  in
  let min_samples = Stdlib.max 1 config.min_samples in
  let fuse_all () =
    List.map
      (fun proc ->
        ( proc,
          Fusion.fuse
            (List.map (fun (_, _, ing) -> Ingest.fusion_input ing ~min_samples proc) states)
        ))
      procs
  in
  let fused_mae fusions =
    mean
      (List.map
         (fun (proc, (fu : Fusion.result)) ->
           let truth = List.assoc proc oracle in
           if Array.length truth = 0 then 0.0
           else
             let theta =
               match fu.Fusion.fused with
               | Some t -> t
               | None -> Array.make (Array.length truth) 0.5
             in
             Stats.Metrics.mae theta truth)
         fusions)
  in
  (* Natural-layout evaluations don't change across placements — one run
     per node, on that node's own evaluation inputs. *)
  let natural_evals = ref None in
  let eval_fleet binary ~label =
    let evals =
      pmap
        (fun (nr : Sim.node_run) ->
          let cfg =
            { config.pipeline with P.seed = nr.Sim.node.Sim.env_seed + 1000; faults = None }
          in
          P.run_binary ~config:cfg w binary ~label)
        node_runs
    in
    List.fold_left (fun acc (v : P.variant) -> acc + v.P.taken_transfers) 0 evals
  in
  let place ~at_round fusions =
    let profiles, fallbacks =
      List.fold_left
        (fun (profiles, fallbacks) (proc, (fu : Fusion.result)) ->
          match fu.Fusion.fused with
          | None -> (profiles, fallbacks + 1)
          | Some theta ->
              let model =
                Tomo.Model.of_cfg ~call_residual:0 ~window_correction:0
                  (Cfg.of_proc_name original proc)
              in
              let invocations =
                float_of_int
                  (List.fold_left (fun acc (_, _, ing) -> acc + Ingest.fed ing proc) 0 states)
              in
              ((proc, Tomo.Model.freq_of_theta model ~theta ~invocations) :: profiles, fallbacks))
        ([], 0) fusions
    in
    let profiles = List.rev profiles in
    let label =
      if fallbacks = 0 then "fleet-tomography"
      else Printf.sprintf "fleet-tomography[%d fallback]" fallbacks
    in
    let placed_binary =
      Layout.Rewrite.apply_all original ~algorithm:Layout.Algorithms.pettis_hansen
        ~profiles
    in
    let natural_taken =
      match !natural_evals with
      | Some n -> n
      | None ->
          let n = eval_fleet original ~label:"natural" in
          natural_evals := Some n;
          n
    in
    let placed_taken = eval_fleet placed_binary ~label in
    {
      at_round;
      label;
      natural_taken;
      placed_taken;
      reduction =
        (if natural_taken = 0 then 0.0
         else 1.0 -. (float_of_int placed_taken /. float_of_int natural_taken));
      fallbacks;
    }
  in
  (* Stage 2: the round loop.  Each round is a barrier: every node
     ingests its (node, round)-keyed batch — sharded, each task mutating
     only its own state — then fusion folds the states in roster order. *)
  let round_reports = ref [] in
  let final = ref None in
  for r = 1 to config.rounds do
    ignore
      (pmap
         (fun (nr, batch, ing) ->
           let b, _stats = Sim.batch nr ~batch ~round:(r - 1) in
           Ingest.ingest ing b)
         states);
    let fusions = fuse_all () in
    let placement =
      if (config.replace_every > 0 && r mod config.replace_every = 0) || r = config.rounds
      then begin
        let p = place ~at_round:r fusions in
        final := Some p;
        Some p
      end
      else None
    in
    let admitted, rejected =
      List.fold_left
        (fun (a, x) (_, (fu : Fusion.result)) -> (a + fu.Fusion.admitted, x + fu.Fusion.rejected))
        (0, 0) fusions
    in
    round_reports :=
      {
        round = r;
        delivered = List.fold_left (fun acc (_, _, ing) -> acc + Ingest.delivered ing) 0 states;
        fed = List.fold_left (fun acc (_, _, ing) -> acc + Ingest.total_fed ing) 0 states;
        discarded = List.fold_left (fun acc (_, _, ing) -> acc + Ingest.discarded ing) 0 states;
        admitted;
        rejected;
        fused_mae = fused_mae fusions;
        placement;
      }
      :: !round_reports
  done;
  let fusions = fuse_all () in
  (* Windowed drift per procedure: does any node's stream say the
     placement is going stale?  Adaptive window so short campaigns still
     yield a trajectory. *)
  let drift =
    List.map
      (fun proc ->
        let p = List.assoc proc paths in
        let per_node =
          pmap
            (fun (_, _, ing) ->
              let samples = Ingest.samples ing proc in
              let n = Array.length samples in
              let window_size = Stdlib.max 20 (n / 4) in
              if n < Stdlib.max 1 (window_size / 2) then 0.0
              else (Tomo.Windowed.estimate ~window_size ~sigma p ~samples).Tomo.Windowed.max_drift)
            states
        in
        (proc, List.fold_left Stdlib.max 0.0 per_node))
      procs
  in
  {
    roster;
    round_reports = List.rev !round_reports;
    final = Option.get !final;
    fused = List.map (fun (proc, (fu : Fusion.result)) -> (proc, fu.Fusion.fused)) fusions;
    pooled_oracle = oracle;
    health =
      List.map
        (fun (_, _, ing) ->
          ( (Ingest.node ing).Sim.id,
            List.map
              (fun proc -> (proc, (Ingest.fusion_input ing ~min_samples proc).Fusion.health))
              procs ))
        states;
    drift;
  }
