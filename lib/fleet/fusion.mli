(** Evidence pooling across fleet nodes — the base station's fusion rule.

    Every node estimates the same procedure's θ from its own lossy
    timing stream, with its own sample mass and its own health verdict.
    The fleet profile for that procedure is the {e evidence-weighted
    mean} of the admissible estimates:

    {v θ_fleet = Σ_n w_n·θ_n / Σ_n w_n   over non-Rejected nodes v}

    where [w_n] is the node's decayed evidence mass
    ({!Tomo.Online.effective_weight}) — so a node that has seen 900
    windows outvotes one that has seen 12, and a node whose link just
    rebooted (decay washed its mass out) fades instead of anchoring the
    fleet to stale inputs.

    {!Tomo.Health.Rejected} inputs are excluded {e before} weighting:
    a dead link shows up as a near-zero-sample estimator whose θ is the
    uniform prior, and averaging priors into the fleet estimate would
    bias every parameter toward 0.5.  When nothing is admissible the
    result carries no θ at all — downstream placement then keeps the
    procedure's natural layout, exactly like the single-node
    {!Codetomo.Pipeline.compare_layouts} fallback. *)

type input = {
  theta : float array;
  weight : float;  (** Evidence mass; non-negative.  Zero never admits. *)
  health : Tomo.Health.t;
}

type result = {
  fused : float array option;
      (** [None] when no input was admissible — fall back to natural
          layout, never to an average of priors. *)
  mass : float;  (** Total admitted evidence weight. *)
  admitted : int;
  rejected : int;  (** Inputs excluded (Rejected health or zero mass). *)
}

val fuse : input list -> result
(** All admitted thetas must share one arity.
    @raise Invalid_argument on mismatched theta lengths. *)
