(** The fleet aggregation service — many lossy nodes in, one placement
    out.

    The paper profiles one mote; a deployment has hundreds.  This
    service closes that gap in simulation: N nodes ({!Sim}) stream
    probe-record batches over their faulty uplinks in rounds; the base
    station ingests each node's batches incrementally ({!Ingest}), keeps
    a bounded-memory {!Tomo.Online} estimator per (node, procedure),
    pools the per-node estimates with health gating ({!Fusion}), and
    periodically turns the fused fleet profile into a code placement
    whose fleet-wide taken-branch reduction it measures across every
    node's own inputs.

    Determinism: node simulation, batch perturbation and ingest are all
    keyed by (seed, node, round), rounds are barriers, and fusion folds
    node states in roster order — so the report is byte-identical at any
    domain count.  Node work (simulation, ingest, placement evaluation)
    shards across the session's pool; the session's compiled/paths
    caches are reused, so the fleet enumerates each procedure's path set
    exactly once no matter how many nodes vote on it. *)

type config = {
  workload : Workloads.t;
  nodes : int;
  rounds : int;
  batch : int option;
      (** Records per uplink batch; [None] spreads each node's log
          evenly over the rounds. *)
  seed : int;  (** Fleet seed — every node stream splits off this. *)
  faults : Profilekit.Transport.config;
      (** Base link-fault model ({!Profilekit.Transport.default} for
          clean links, [field ()] for the canonical deployment). *)
  vary_faults : bool;  (** Scale fault rates per node (see {!Sim.plan}). *)
  pipeline : Codetomo.Pipeline.config;
      (** Timing config (resolution, jitter, horizon, prediction) shared
          by all nodes; its seed and faults fields are ignored — the
          fleet draws per-node seeds and owns the fault model. *)
  decay : float;  (** Forgetting factor of the online estimators. *)
  min_samples : int;
      (** Sample floor below which a (node, procedure) estimate is
          Rejected and excluded from fusion. *)
  replace_every : int;
      (** Re-run placement every k rounds (0 = final round only; the
          final round always places). *)
}

val default_config : Workloads.t -> config
(** 8 nodes, 10 rounds, even batches, seed 42, clean links, fault
    variation on, default pipeline timing, decay 0.999, the
    {!Tomo.Health.default_min_samples} floor, placement at the end. *)

type placement = {
  at_round : int;
  label : string;
      (** ["fleet-tomography"], with ["[k fallback]"] appended when k
          procedures had no admissible evidence and kept their natural
          layout. *)
  natural_taken : int;
      (** Stalling transfers summed over every node's evaluation run of
          the natural binary. *)
  placed_taken : int;  (** Same, for the fleet-placed binary. *)
  reduction : float;  (** [1 - placed/natural]. *)
  fallbacks : int;
}

type round_report = {
  round : int;  (** 1-based. *)
  delivered : int;  (** Cumulative records received, fleet-wide. *)
  fed : int;  (** Cumulative samples fed to estimators, fleet-wide. *)
  discarded : int;  (** Windows currently abandoned, fleet-wide. *)
  admitted : int;  (** (node, proc) estimates admitted to fusion. *)
  rejected : int;  (** (node, proc) estimates health-excluded. *)
  fused_mae : float;
      (** Mean abs error of the fused thetas against the pooled oracle
          (procedures with no admissible evidence count their uniform
          fallback) — the convergence curve. *)
  placement : placement option;
}

type report = {
  roster : Sim.node list;
  round_reports : round_report list;  (** Oldest first. *)
  final : placement;
  fused : (string * float array option) list;
      (** Final fused θ per procedure ([None] = no admissible node). *)
  pooled_oracle : (string * float array) list;
      (** Clean-sample-weighted mean of the node oracles — the fleet's
          ground truth. *)
  health : (int * (string * Tomo.Health.t) list) list;
      (** Final verdict per (node id, procedure). *)
  drift : (string * float) list;
      (** Max {!Tomo.Windowed} window-to-window drift per procedure
          across nodes (0 where no node fed enough samples) — the
          re-placement signal. *)
}

val run : ?session:Codetomo.Session.t -> config -> report
(** Run the whole campaign.  With [?session], node work fans out over
    the session's pool and compiled/paths artifacts come from its memo
    tables; without, everything runs serially and privately.  Output is
    identical either way.
    @raise Invalid_argument on a non-positive node, round or batch
    count, or a decay outside (0,1]. *)

val reduction_of : Codetomo.Pipeline.variant list -> float
(** Taken-transfer reduction of the tomography variant against the
    natural one in a {!Codetomo.Pipeline.compare_layouts} result — the
    single-node anchor the fleet acceptance test compares against. *)
