type t = { p : Linalg.Matrix.t }

let validate m =
  let n = Linalg.Matrix.rows m in
  if Linalg.Matrix.cols m <> n then invalid_arg "Chain.create: matrix must be square";
  for i = 0 to n - 1 do
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      let v = m.(i).(j) in
      if v < -1e-12 then invalid_arg "Chain.create: negative probability";
      sum := !sum +. v
    done;
    if !sum > 1.0 +. 1e-9 then invalid_arg "Chain.create: row sum exceeds 1"
  done

let create m =
  validate m;
  { p = Linalg.Matrix.copy m }

let of_edges ~size edges =
  let m = Linalg.Matrix.make size size 0.0 in
  List.iter
    (fun (src, dst, prob) ->
      if src < 0 || src >= size || dst < 0 || dst >= size then
        invalid_arg "Chain.of_edges: state out of range";
      m.(src).(dst) <- m.(src).(dst) +. prob)
    edges;
  create m

let size t = Linalg.Matrix.rows t.p
let prob t i j = t.p.(i).(j)
let matrix t = Linalg.Matrix.copy t.p
let row t i = Array.copy t.p.(i)

let leak t i =
  let sum = Array.fold_left ( +. ) 0.0 t.p.(i) in
  Stdlib.max 0.0 (1.0 -. sum)

let successors t i =
  let out = ref [] in
  Array.iteri (fun j v -> if v > 0.0 then out := (j, v) :: !out) t.p.(i);
  List.rev !out

let is_stochastic ?(eps = 1e-9) t =
  let ok = ref true in
  for i = 0 to size t - 1 do
    if leak t i > eps then ok := false
  done;
  !ok

let step rng t i =
  let u = Stats.Rng.unit_float rng in
  let n = size t in
  let rec scan j acc =
    if j >= n then None
    else
      let acc = acc +. t.p.(i).(j) in
      if u < acc then Some j else scan (j + 1) acc
  in
  scan 0 0.0

let stationary ?(iterations = 10_000) ?(eps = 1e-12) t =
  let n = size t in
  if n = 0 then [||]
  else begin
    let v = ref (Array.make n (1.0 /. float_of_int n)) in
    let continue = ref true in
    let iter = ref 0 in
    while !continue && !iter < iterations do
      let next = Linalg.Matrix.vec_mat !v t.p in
      (* Damping makes periodic chains converge to their average cycle
         occupancy instead of oscillating. *)
      let damped = Array.mapi (fun i x -> (0.5 *. x) +. (0.5 *. !v.(i))) next in
      let delta =
        Array.mapi (fun i x -> abs_float (x -. !v.(i))) damped
        |> Array.fold_left Stdlib.max 0.0
      in
      v := damped;
      incr iter;
      if delta < eps then continue := false
    done;
    Linalg.Simplex.normalize !v
  end

let n_step t k =
  if k < 0 then invalid_arg "Chain.n_step: negative step count";
  let rec go acc k = if k = 0 then acc else go (Linalg.Matrix.mul acc t.p) (k - 1) in
  go (Linalg.Matrix.identity (size t)) k
