type record = { states : int list; reward : float; steps : int }

let run rng chain ~rewards ~start ~max_steps =
  if Array.length rewards <> Chain.size chain then
    invalid_arg "Walk.run: reward size mismatch";
  let rec go state acc_states acc_reward steps =
    if steps > max_steps then failwith "Walk.run: walk exceeded max_steps without absorbing";
    let acc_states = state :: acc_states in
    let acc_reward = acc_reward +. rewards.(state) in
    match Chain.step rng chain state with
    | None -> { states = List.rev acc_states; reward = acc_reward; steps }
    | Some next -> go next acc_states acc_reward (steps + 1)
  in
  go start [] 0.0 0

let sample_rewards rng chain ~rewards ~start ~samples ~max_steps =
  Array.init samples (fun _ -> (run rng chain ~rewards ~start ~max_steps).reward)

let edge_counts rng chain ~start ~samples ~max_steps =
  let n = Chain.size chain in
  let counts = Array.make_matrix n n 0 in
  let rewards = Array.make n 0.0 in
  for _ = 1 to samples do
    let { states; _ } = run rng chain ~rewards ~start ~max_steps in
    let rec pairs = function
      | a :: (b :: _ as rest) ->
          counts.(a).(b) <- counts.(a).(b) + 1;
          pairs rest
      | [ _ ] | [] -> ()
    in
    pairs states
  done;
  counts
