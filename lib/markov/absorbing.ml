type t = {
  chain : Chain.t;
  fundamental : Linalg.Matrix.t; (* N = (I - Q)^-1 *)
}

let analyze chain =
  let n = Chain.size chain in
  let q = Chain.matrix chain in
  let i_minus_q = Linalg.Matrix.sub (Linalg.Matrix.identity n) q in
  let fundamental = Linalg.Solve.inverse i_minus_q in
  { chain; fundamental }

let chain t = t.chain

let check_start t start =
  if start < 0 || start >= Chain.size t.chain then
    invalid_arg "Absorbing: start state out of range"

let expected_visits t ~start =
  check_start t start;
  Array.copy t.fundamental.(start)

let expected_steps t ~start =
  check_start t start;
  Array.fold_left ( +. ) 0.0 t.fundamental.(start)

let absorption_probability t ~start =
  check_start t start;
  (* P(absorbed) = Σ_j N(start,j) * leak(j). *)
  let acc = ref 0.0 in
  Array.iteri
    (fun j nij -> acc := !acc +. (nij *. Chain.leak t.chain j))
    t.fundamental.(start);
  !acc

let mean_reward_vector t ~rewards =
  if Array.length rewards <> Chain.size t.chain then
    invalid_arg "Absorbing.mean_reward: reward size mismatch";
  Linalg.Matrix.mat_vec t.fundamental rewards

let mean_reward t ~rewards ~start =
  check_start t start;
  (mean_reward_vector t ~rewards).(start)

let variance_reward t ~rewards ~start =
  check_start t start;
  let n = Chain.size t.chain in
  if Array.length rewards <> n then
    invalid_arg "Absorbing.variance_reward: reward size mismatch";
  let q = Chain.matrix t.chain in
  let m = mean_reward_vector t ~rewards in
  let qm = Linalg.Matrix.mat_vec q m in
  (* Second moment s solves (I - Q) s = c² + 2 c∘(Q m). *)
  let rhs = Array.mapi (fun i c -> (c *. c) +. (2.0 *. c *. qm.(i))) rewards in
  let s = Linalg.Matrix.mat_vec t.fundamental rhs in
  Stdlib.max 0.0 (s.(start) -. (m.(start) *. m.(start)))

let visit_variance t ~start =
  check_start t start;
  let n = Chain.size t.chain in
  (* Var(visits to j from i) = N_ij (2 N_jj - 1) - N_ij². *)
  Array.init n (fun j ->
      let nij = t.fundamental.(start).(j) in
      Stdlib.max 0.0 ((nij *. ((2.0 *. t.fundamental.(j).(j)) -. 1.0)) -. (nij *. nij)))
