(** Finite discrete-time Markov chains.

    States are integers [0 .. size-1].  A chain stores its (row-stochastic)
    transition matrix; rows that sum to less than one implicitly leak the
    remainder to an external absorbing sink (used by {!Absorbing}). *)

type t

val create : Linalg.Matrix.t -> t
(** Validates that the matrix is square with non-negative entries and row
    sums at most 1 + 1e-9. *)

val of_edges : size:int -> (int * int * float) list -> t
(** Build from a sparse edge list [(src, dst, prob)]. *)

val size : t -> int
val prob : t -> int -> int -> float
val matrix : t -> Linalg.Matrix.t
(** A defensive copy of the transition matrix. *)

val row : t -> int -> float array
val leak : t -> int -> float
(** Probability mass leaving the chain from a state (1 − row sum). *)

val successors : t -> int -> (int * float) list
(** Positive-probability transitions out of a state. *)

val is_stochastic : ?eps:float -> t -> bool
(** All row sums equal to 1 (no leak anywhere). *)

val step : Stats.Rng.t -> t -> int -> int option
(** Sample the next state; [None] when the leak mass fires (absorption). *)

val stationary : ?iterations:int -> ?eps:float -> t -> float array
(** Power-iteration stationary distribution of a stochastic chain starting
    from uniform.  For periodic chains this returns the Cesàro-style damped
    average (damping 0.5 per step). *)

val n_step : t -> int -> Linalg.Matrix.t
(** [n_step t k] is the k-step transition matrix. *)
