(** Absorbing-chain analysis over the transient part of a chain.

    A procedure CFG is modelled as transient block states whose leak mass
    (see {!Chain.leak}) represents returning from the procedure.  This
    module computes the classic fundamental-matrix quantities, plus the
    mean and variance of an accumulated per-state reward (block cycle
    cost), which are the analytic moments the moment-matching estimator
    fits against. *)

type t

val analyze : Chain.t -> t
(** Computes the fundamental matrix N = (I − Q)⁻¹.
    @raise Linalg.Solve.Singular if some state never reaches absorption. *)

val chain : t -> Chain.t

val expected_visits : t -> start:int -> float array
(** Row of N: expected number of visits to each transient state before
    absorption when starting from [start]. *)

val expected_steps : t -> start:int -> float
(** Expected number of transitions before absorption. *)

val absorption_probability : t -> start:int -> float
(** Always 1 for a well-formed absorbing chain; exposed as a sanity
    check. *)

val mean_reward : t -> rewards:float array -> start:int -> float
(** E[Σ visits·reward] — the analytic mean end-to-end time. *)

val variance_reward : t -> rewards:float array -> start:int -> float
(** Var[Σ visits·reward], from the first-step second-moment recursion
    (I − Q) s = c² + 2 c ∘ (Q m). *)

val visit_variance : t -> start:int -> float array
(** Variance of the per-state visit counts (diagonal formula
    N(2 N_dg − I) − N∘N applied from [start]). *)
