(** Sampling random walks through a chain until absorption.

    Used by the synthetic-model tests: walk the ground-truth chain, record
    rewards, and check that the tomography estimator recovers the
    parameters from those observations alone. *)

type record = {
  states : int list;  (** Visited transient states, in order. *)
  reward : float;  (** Accumulated per-state reward. *)
  steps : int;
}

val run :
  Stats.Rng.t -> Chain.t -> rewards:float array -> start:int -> max_steps:int -> record
(** Walk from [start] until absorption (leak fires) or [max_steps] is hit.
    Hitting the cap raises [Failure] — chains in this codebase must
    absorb. *)

val sample_rewards :
  Stats.Rng.t ->
  Chain.t ->
  rewards:float array ->
  start:int ->
  samples:int ->
  max_steps:int ->
  float array
(** [samples] independent accumulated-reward draws. *)

val edge_counts :
  Stats.Rng.t ->
  Chain.t ->
  start:int ->
  samples:int ->
  max_steps:int ->
  int array array
(** Total traversal counts per (src, dst) edge over all walks — the exact
    profile a full edge instrumentation would observe. *)
