(** Random structured mote programs.

    Exercises the full stack on shapes no one hand-wrote: nested
    conditionals and bounded sensor-driven loops with stochastic branch
    outcomes.  Every generated program has a single task procedure named
    ["gen_task"] and a global ["out"].  Generation is deterministic in the
    config seed. *)

type config = {
  seed : int;
  max_depth : int;
  stmts_per_block : int;
  loop_bound : int;
}

val default_config : config

val generate : ?config:config -> unit -> Mote_lang.Ast.program

val env_config : seed:int -> Env.config
(** Gaussian channel 0, uniform channel 1 — the inputs the generated
    conditions read. *)
