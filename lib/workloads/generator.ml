(* Random mote-program generator: structured programs over the sensor
   builtins, for property-based testing of the whole stack (compiler →
   simulator → probes → estimator → placement) and for scalability
   benchmarks beyond the five hand-written workloads. *)

open Mote_lang.Ast

type config = {
  seed : int;
  max_depth : int;  (* nesting depth of if/while *)
  stmts_per_block : int;
  loop_bound : int;  (* static cap on generated while trip counts *)
}

let default_config = { seed = 1; max_depth = 3; stmts_per_block = 3; loop_bound = 5 }

let arith_ops = [| Add; Sub; BAnd; BOr; BXor |]
let rel_ops = [| Req; Rne; Rlt; Rle; Rgt; Rge |]

(* Expressions stay shallow: the register budget is 12 and conditions need
   a couple of temporaries. *)
let rec gen_expr rng vars depth =
  let leaf () =
    match Stats.Rng.int rng 3 with
    | 0 -> Int (Stats.Rng.int rng 64)
    | 1 -> Var (Stats.Rng.choose rng vars)
    | _ -> Read_sensor (Stats.Rng.int rng 2)
  in
  if depth = 0 then leaf ()
  else
    match Stats.Rng.int rng 4 with
    | 0 | 1 -> leaf ()
    | 2 ->
        Bin
          ( Stats.Rng.choose rng arith_ops,
            gen_expr rng vars (depth - 1),
            gen_expr rng vars (depth - 1) )
    | _ -> Bin (Shr, gen_expr rng vars (depth - 1), Int (1 + Stats.Rng.int rng 3))

let gen_cond rng vars =
  (* Sensor-driven comparisons make the branch stochastic; thresholds sit
     inside the ADC range so both outcomes occur. *)
  Rel
    ( Stats.Rng.choose rng rel_ops,
      (if Stats.Rng.bool rng then Read_sensor (Stats.Rng.int rng 2)
       else Var (Stats.Rng.choose rng vars)),
      Int (200 + Stats.Rng.int rng 600) )

let rec gen_stmt cfg rng vars depth =
  let assign () =
    Assign (Stats.Rng.choose rng vars, gen_expr rng vars 2)
  in
  if depth = 0 then assign ()
  else
    match Stats.Rng.int rng 6 with
    | 0 | 1 -> assign ()
    | 2 -> If (gen_cond rng vars, gen_block cfg rng vars (depth - 1), [])
    | 3 ->
        If
          ( gen_cond rng vars,
            gen_block cfg rng vars (depth - 1),
            gen_block cfg rng vars (depth - 1) )
    | 4 ->
        (* Bounded counting loop with a data-dependent early exit flavour:
           trip count from a sensor read masked to the loop bound.  The
           bound is clamped at 0 so a pathological config cannot produce a
           negative mask (16-bit BAnd with a negative would let the loop
           run for up to 32767 iterations). *)
        While
          ( Rel
              (Rlt, Var "loop_k", Bin (BAnd, Read_sensor 0, Int (max 0 cfg.loop_bound))),
            gen_block cfg rng vars (depth - 1)
            @ [ Assign ("loop_k", Bin (Add, Var "loop_k", Int 1)) ] )
    | _ -> Radio_tx (gen_expr rng vars 1)

and gen_block cfg rng vars depth =
  (* [max 1] keeps [stmts_per_block = 0] configs generating (one statement
     per block) instead of crashing on a non-positive Rng bound; for every
     valid config it is the identity, so the random stream — and with it
     every golden that consumes generated programs — is unchanged. *)
  List.init (1 + Stats.Rng.int rng (max 1 cfg.stmts_per_block)) (fun _ ->
      gen_stmt cfg rng vars depth)

let generate ?(config = default_config) () =
  let rng = Stats.Rng.create config.seed in
  let vars = [| "a"; "b"; "c" |] in
  (* Always open with a conditional so no generated program is branch-free
     (a straight-line "task" would have nothing to estimate or place).
     Its arms stay shallow; size comes from the main block. *)
  let forced =
    If (gen_cond rng vars, gen_block config rng vars 0, gen_block config rng vars 0)
  in
  let body =
    (Assign ("loop_k", Int 0) :: forced :: gen_block config rng vars config.max_depth)
    @ [ Assign ("out", Var "a") ]
  in
  let task =
    {
      name = "gen_task";
      params = [];
      locals = [ "a"; "b"; "c"; "loop_k" ];
      body;
    }
  in
  { globals = [ ("out", 0) ]; arrays = []; procs = [ task ] }

let env_config ~seed =
  {
    Env.seed;
    channels =
      [
        (0, Env.Gaussian { mu = 512.0; sigma = 150.0 });
        (1, Env.Uniform (0, 1023));
      ];
    radio = Env.Silent;
  }
