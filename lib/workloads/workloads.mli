(** The benchmark suite: five sensor-network applications in the
    mini-language, with the stochastic environment and task schedule each
    runs under.

    They span the behaviours the paper's evaluation needs: counter-driven
    periodic blinking (deterministic branch ratios), threshold detection
    under bursty phenomena (skewed, environment-dependent branches), EWMA
    filtering with nested rare paths, CTP-style packet forwarding driven by
    radio arrivals (data-dependent branch and loop behaviour), and a
    multi-procedure health monitor (exercises call handling in the timing
    probes). *)

type t = {
  name : string;
  description : string;
  program : Mote_lang.Ast.program;
  tasks : Mote_os.Node.task list;
  env_config : Env.config;
  profiled : string list;
      (** Procedures whose profiles are estimated and whose placement is
          optimized. *)
  horizon : int;  (** Default simulated cycles per run. *)
}

val blink : t
val sense : t
val filter : t
val ctp : t
val monitor : t

val all : t list

val find : string -> t
(** @raise Not_found on unknown names. *)

val compiled : t -> Mote_lang.Compile.t
(** Compile the workload's program (checked; raises on semantic errors —
    the test suite compiles all of them). *)

(** Random structured mote programs for property tests and scalability
    studies — see {!module:Generator}. *)
module Generator = Generator
