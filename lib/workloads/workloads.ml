open Mote_lang.Ast.Dsl
module Node = Mote_os.Node

type t = {
  name : string;
  description : string;
  program : Mote_lang.Ast.program;
  tasks : Node.task list;
  env_config : Env.config;
  profiled : string list;
  horizon : int;
}

(* ------------------------------------------------------------------ *)
(* blink: the TinyOS hello-world.  Branch ratios are counter-driven    *)
(* (1/8 duty) plus one rare sensor-triggered alarm.                    *)
(* ------------------------------------------------------------------ *)

let blink =
  let blink_task =
    proc "blink_task" ~params:[] ~locals:[ "v" ]
      [
        set "counter" (v "counter" +: i 1);
        if_ ((v "counter" &: i 7) =: i 0) [ led (i 1) ] [ led (i 0) ];
        set "v" (sensor 0);
        when_ (v "v" >: i 960) [ led (i 3); set "alarms" (v "alarms" +: i 1) ];
      ]
  in
  {
    name = "blink";
    description = "LED blinker with a rare over-range alarm";
    program = { globals = [ ("counter", 0); ("alarms", 0) ]; arrays = []; procs = [ blink_task ] };
    tasks = [ { Node.proc = "blink_task"; source = Node.Periodic { period = 601; offset = 17 } } ];
    env_config =
      { Env.seed = 42; channels = [ (0, Env.Gaussian { mu = 512.0; sigma = 120.0 }) ]; radio = Env.Silent };
    profiled = [ "blink_task" ];
    horizon = 3_000_000;
  }

(* ------------------------------------------------------------------ *)
(* sense: threshold reporting under a bursty phenomenon; the hot path  *)
(* is the quiet one, so natural layout leaves the common case on the   *)
(* fall-through only by luck.  A slow aggregation task adds a loop.    *)
(* ------------------------------------------------------------------ *)

let sense =
  let sense_task =
    proc "sense_task" ~params:[] ~locals:[ "val" ]
      [
        set "val" (sensor 0);
        if_
          (v "val" >: v "threshold")
          [ send (v "val"); set "events" (v "events" +: i 1); led (i 1) ]
          [ set "acc" (v "acc" +: (v "val" >>: i 4)); led (i 0) ];
      ]
  in
  let report_task =
    proc "report_task" ~params:[] ~locals:[ "k" ]
      [
        set "k" (i 0);
        while_ (v "k" <: i 6)
          [ set "acc" (v "acc" -: (v "acc" >>: i 3)); set "k" (v "k" +: i 1) ];
        send (v "acc");
        when_ (v "events" >: i 10) [ set "threshold" (v "threshold" +: i 4) ];
        when_ (v "events" =: i 0) [ set "threshold" (v "threshold" -: i 2) ];
        set "events" (i 0);
      ]
  in
  {
    name = "sense";
    description = "threshold sense-and-send with adaptive reporting";
    program =
      {
        globals = [ ("threshold", 780); ("acc", 0); ("events", 0) ];
        arrays = [];
        procs = [ sense_task; report_task ];
      };
    tasks =
      [
        { Node.proc = "sense_task"; source = Node.Periodic { period = 901; offset = 31 } };
        { Node.proc = "report_task"; source = Node.Periodic { period = 13999; offset = 4001 } };
      ];
    env_config =
      {
        Env.seed = 42;
        channels =
          [
            ( 0,
              Env.Bursty
                {
                  quiet = Env.Gaussian { mu = 500.0; sigma = 70.0 };
                  active = Env.Gaussian { mu = 860.0; sigma = 50.0 };
                  p_enter = 0.03;
                  p_exit = 0.12;
                } );
          ];
        radio = Env.Silent;
      };
    profiled = [ "sense_task"; "report_task" ];
    horizon = 4_000_000;
  }

(* ------------------------------------------------------------------ *)
(* filter: EWMA smoothing with a nested rare-path spike detector.      *)
(* ------------------------------------------------------------------ *)

let filter =
  let filter_task =
    proc "filter_task" ~params:[] ~locals:[ "val"; "diff" ]
      [
        set "val" (sensor 0);
        set "ewma" (v "ewma" +: ((v "val" -: v "ewma") >>: i 3));
        set "diff" (v "val" -: v "ewma");
        when_ (v "diff" <: i 0) [ set "diff" (i 0 -: v "diff") ];
        if_
          (v "diff" >: i 90)
          [
            set "spikes" (v "spikes" +: i 1);
            when_ (v "spikes" >: i 3) [ send (v "ewma"); set "spikes" (i 0); led (i 2) ];
          ]
          [ when_ (v "spikes" >: i 0) [ set "spikes" (v "spikes" -: i 1) ] ];
      ]
  in
  {
    name = "filter";
    description = "EWMA filter with spike confirmation before reporting";
    program = { globals = [ ("ewma", 512); ("spikes", 0) ]; arrays = []; procs = [ filter_task ] };
    tasks =
      [ { Node.proc = "filter_task"; source = Node.Periodic { period = 801; offset = 13 } } ];
    env_config =
      {
        Env.seed = 42;
        channels =
          [
            ( 0,
              Env.Bursty
                {
                  quiet = Env.Gaussian { mu = 512.0; sigma = 40.0 };
                  active = Env.Gaussian { mu = 740.0; sigma = 90.0 };
                  p_enter = 0.05;
                  p_exit = 0.25;
                } );
          ];
        radio = Env.Silent;
      };
    profiled = [ "filter_task" ];
    horizon = 4_000_000;
  }

(* ------------------------------------------------------------------ *)
(* ctp: a collection-tree forwarding node.  Packet kind and hop count  *)
(* come from the payload, so branch probabilities mirror the traffic   *)
(* mix; the beacon task has a data-dependent backoff loop.             *)
(* ------------------------------------------------------------------ *)

let ctp =
  let rx_task =
    (* Data packets pass a small duplicate-suppression cache (linear scan
       over recently seen payloads, CTP-style) before being forwarded. *)
    proc "ctp_rx_task" ~params:[] ~locals:[ "pkt"; "kind"; "hops"; "k"; "dup" ]
      [
        set "pkt" radio_rx;
        set "kind" (v "pkt" &: i 3);
        if_
          (v "kind" =: i 0)
          [
            set "dup" (i 0);
            set "k" (i 0);
            while_ (v "k" <: i 4)
              [
                when_ (at "seen" (v "k") =: v "pkt") [ set "dup" (i 1) ];
                set "k" (v "k" +: i 1);
              ];
            if_
              (v "dup" =: i 1)
              [ set "dropped" (v "dropped" +: i 1) ]
              [
                set_at "seen" (v "seen_next" &: i 3) (v "pkt");
                set "seen_next" (v "seen_next" +: i 1);
                set "hops" ((v "pkt" >>: i 2) &: i 15);
                if_
                  (v "hops" <: i 12)
                  [
                    send ((v "pkt" +: i 4) &: i 16383);
                    set "forwarded" (v "forwarded" +: i 1);
                  ]
                  [ set "dropped" (v "dropped" +: i 1) ];
              ];
          ]
          [
            if_
              (v "kind" =: i 1)
              [
                set "beacons" (v "beacons" +: i 1);
                set "etx" (v "etx" +: (((v "pkt" >>: i 2) &: i 63) -: (v "etx" >>: i 1)));
              ]
              [ set "dropped" (v "dropped" +: i 1) ];
          ];
      ]
  in
  let beacon_task =
    proc "ctp_beacon_task" ~params:[] ~locals:[ "k"; "backoff" ]
      [
        set "backoff" (v "etx" &: i 3);
        set "k" (i 0);
        while_ (v "k" <: v "backoff") [ set "k" (v "k" +: i 1) ];
        send ((v "etx" <<: i 2) |: i 1);
      ]
  in
  {
    name = "ctp";
    description = "collection-tree routing node: forwarding + beacons";
    program =
      {
        globals =
          [ ("etx", 10); ("forwarded", 0); ("dropped", 0); ("beacons", 0);
            ("seen_next", 0) ];
        arrays = [ ("seen", 4) ];
        procs = [ rx_task; beacon_task ];
      };
    tasks =
      [
        { Node.proc = "ctp_rx_task"; source = Node.On_radio_rx };
        {
          Node.proc = "ctp_beacon_task";
          source = Node.Periodic { period = 19997; offset = 513 };
        };
      ];
    env_config =
      {
        Env.seed = 42;
        channels = [];
        radio = Env.Poisson { per_kilocycle = 0.6; payload_lo = 0; payload_hi = 4095 };
      };
    profiled = [ "ctp_rx_task"; "ctp_beacon_task" ];
    horizon = 5_000_000;
  }

(* ------------------------------------------------------------------ *)
(* monitor: multi-procedure health monitor; helper calls exercise the  *)
(* exclusive-time accounting in the probes.                            *)
(* ------------------------------------------------------------------ *)

let monitor =
  let clamp_proc =
    proc "clamp" ~params:[ "x"; "lo"; "hi" ] ~locals:[]
      [
        when_ (v "x" <: v "lo") [ return (v "lo") ];
        when_ (v "x" >: v "hi") [ return (v "hi") ];
        return (v "x");
      ]
  in
  let score_proc =
    proc "score" ~params:[ "val" ] ~locals:[ "s" ]
      [
        set "s" (v "val" >>: i 2);
        when_ (v "s" >: i 200) [ set "s" (i 200 +: ((v "s" -: i 200) >>: i 1)) ];
        return (v "s");
      ]
  in
  let monitor_task =
    proc "monitor_task" ~params:[] ~locals:[ "val"; "s" ]
      [
        set "tick" (v "tick" +: i 1);
        set "val" (sensor 1);
        set "s" (fn "score" [ v "val" ]);
        set "s" (fn "clamp" [ v "s"; i 10; i 240 ]);
        when_ (v "s" >: v "worst") [ set "worst" (v "s") ];
        when_ ((v "tick" &: i 15) =: i 0) [ send (v "worst"); set "worst" (i 0) ];
      ]
  in
  {
    name = "monitor";
    description = "health monitor with helper procedures";
    program =
      {
        globals = [ ("tick", 0); ("worst", 0) ];
        arrays = [];
        procs = [ clamp_proc; score_proc; monitor_task ];
      };
    tasks =
      [
        { Node.proc = "monitor_task"; source = Node.Periodic { period = 1201; offset = 7 } };
      ];
    env_config =
      {
        Env.seed = 42;
        (* Stationary input so branch statistics carry across runs — the
           drifting-phenomenon case is studied separately in the examples. *)
        channels = [ (1, Env.Gaussian { mu = 780.0; sigma = 120.0 }) ];
        radio = Env.Silent;
      };
    profiled = [ "monitor_task"; "score"; "clamp" ];
    horizon = 4_000_000;
  }

let all = [ blink; sense; filter; ctp; monitor ]

let find name =
  match List.find_opt (fun w -> w.name = name) all with
  | Some w -> w
  | None -> raise Not_found

let compiled w = Mote_lang.Compile.compile w.program

module Generator = Generator
