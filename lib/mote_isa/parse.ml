exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let to_text items =
  let buf = Buffer.create 512 in
  List.iter
    (fun item ->
      match item with
      | Asm.Proc name -> Buffer.add_string buf (Printf.sprintf ".proc %s\n" name)
      | Asm.Label name -> Buffer.add_string buf (Printf.sprintf "%s:\n" name)
      | Asm.I instr -> Buffer.add_string buf ("  " ^ Isa.to_string Fun.id instr ^ "\n"))
    items;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Lexing helpers                                                      *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  let cut = ref (String.length line) in
  String.iteri (fun i c -> if (c = ';' || c = '#') && i < !cut then cut := i) line;
  String.sub line 0 !cut

let tokenize line =
  (* Commas and brackets separate; '[' / ']' / '+' inside memory operands
     are handled by normalizing them to spaces around a kept marker. *)
  let b = Buffer.create (String.length line) in
  String.iter
    (fun c ->
      match c with
      | ',' -> Buffer.add_char b ' '
      | '[' | ']' | '+' ->
          Buffer.add_char b ' ';
          Buffer.add_char b c;
          Buffer.add_char b ' '
      | c -> Buffer.add_char b c)
    line;
  Buffer.to_bytes b |> Bytes.to_string |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let parse_reg ln tok =
  let bad () = fail ln "expected register, got %S" tok in
  if String.length tok < 2 || tok.[0] <> 'r' then bad ();
  match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
  | Some r when r >= 0 && r < Isa.num_regs -> r
  | Some r -> fail ln "register r%d out of range" r
  | None -> bad ()

let parse_int ln tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> fail ln "expected integer, got %S" tok

let parse_port ln tok =
  match tok with
  | "timer" -> Isa.P_timer
  | "radio.rx" -> Isa.P_radio_rx
  | "radio.tx" -> Isa.P_radio_tx
  | "leds" -> Isa.P_leds
  | "probe" -> Isa.P_probe
  | "counter" -> Isa.P_counter
  | _ ->
      (* sensor[ch] arrives as "sensor" "[" ch "]" pre-split, but also
         accept the joined form. *)
      if String.length tok > 7 && String.sub tok 0 7 = "sensor[" && tok.[String.length tok - 1] = ']'
      then Isa.P_sensor (parse_int ln (String.sub tok 7 (String.length tok - 8)))
      else fail ln "unknown port %S" tok

let alu_by_name =
  [
    ("add", Isa.Add); ("sub", Isa.Sub); ("mul", Isa.Mul); ("and", Isa.And);
    ("or", Isa.Or); ("xor", Isa.Xor); ("shl", Isa.Shl); ("shr", Isa.Shr);
  ]

let cond_by_name =
  [
    ("eq", Isa.Eq); ("ne", Isa.Ne); ("lt", Isa.Lt); ("ge", Isa.Ge);
    ("le", Isa.Le); ("gt", Isa.Gt);
  ]

(* Memory operand: tokens "[", base, "+", off, "]" (off optional). *)
let parse_mem ln = function
  | "[" :: base :: "+" :: off :: "]" :: rest ->
      ((parse_reg ln base, parse_int ln off), rest)
  | "[" :: base :: "]" :: rest -> ((parse_reg ln base, 0), rest)
  | tok :: _ -> fail ln "expected memory operand, got %S" tok
  | [] -> fail ln "expected memory operand"

let parse_instr ln mnemonic operands =
  let reg1 () = match operands with [ a ] -> parse_reg ln a | _ -> fail ln "expected 1 register" in
  let reg2 () =
    match operands with
    | [ a; b ] -> (parse_reg ln a, parse_reg ln b)
    | _ -> fail ln "expected 2 registers"
  in
  let reg3 () =
    match operands with
    | [ a; b; c ] -> (parse_reg ln a, parse_reg ln b, parse_reg ln c)
    | _ -> fail ln "expected 3 registers"
  in
  let reg2imm () =
    match operands with
    | [ a; b; c ] -> (parse_reg ln a, parse_reg ln b, parse_int ln c)
    | _ -> fail ln "expected rd, ra, imm"
  in
  match mnemonic with
  | "nop" -> Isa.Nop
  | "halt" -> Isa.Halt
  | "ret" -> Isa.Ret
  | "movi" -> (
      match operands with
      | [ r; v ] -> Isa.Movi (parse_reg ln r, parse_int ln v)
      | _ -> fail ln "movi expects rd, imm")
  | "mov" ->
      let d, s = reg2 () in
      Isa.Mov (d, s)
  | "cmp" ->
      let a, b = reg2 () in
      Isa.Cmp (a, b)
  | "cmpi" -> (
      match operands with
      | [ r; v ] -> Isa.Cmpi (parse_reg ln r, parse_int ln v)
      | _ -> fail ln "cmpi expects ra, imm")
  | "push" -> Isa.Push (reg1 ())
  | "pop" -> Isa.Pop (reg1 ())
  | "ld" -> (
      match operands with
      | rd :: mem ->
          let (base, off), rest = parse_mem ln mem in
          if rest <> [] then fail ln "trailing tokens after ld";
          Isa.Ld (parse_reg ln rd, base, off)
      | [] -> fail ln "ld expects rd, [ra+off]")
  | "st" -> (
      let (base, off), rest = parse_mem ln operands in
      match rest with
      | [ rs ] -> Isa.St (base, off, parse_reg ln rs)
      | _ -> fail ln "st expects [ra+off], rs")
  | "jmp" -> (
      match operands with [ l ] -> Isa.Jmp l | _ -> fail ln "jmp expects a label")
  | "call" -> (
      match operands with [ l ] -> Isa.Call l | _ -> fail ln "call expects a label")
  | "in" -> (
      match operands with
      | r :: port -> (
          match port with
          | [ p ] -> Isa.In (parse_reg ln r, parse_port ln p)
          | [ "sensor"; "["; ch; "]" ] -> Isa.In (parse_reg ln r, Isa.P_sensor (parse_int ln ch))
          | _ -> fail ln "in expects rd, port")
      | [] -> fail ln "in expects rd, port")
  | "out" -> (
      match operands with
      | [ p; r ] -> Isa.Out (parse_port ln p, parse_reg ln r)
      | [ "sensor"; "["; ch; "]"; r ] ->
          Isa.Out (Isa.P_sensor (parse_int ln ch), parse_reg ln r)
      | _ -> fail ln "out expects port, rs")
  | m -> (
      (* br.<cond> / ALU reg form / ALU immediate form (suffix 'i'). *)
      match String.index_opt m '.' with
      | Some dot when String.sub m 0 dot = "br" -> (
          let cond_name = String.sub m (dot + 1) (String.length m - dot - 1) in
          match List.assoc_opt cond_name cond_by_name with
          | Some cond -> (
              match operands with
              | [ l ] -> Isa.Br (cond, l)
              | _ -> fail ln "br expects a label")
          | None -> fail ln "unknown condition %S" cond_name)
      | _ -> (
          match List.assoc_opt m alu_by_name with
          | Some op ->
              let d, a, b = reg3 () in
              Isa.Alu (op, d, a, b)
          | None ->
              if String.length m > 1 && m.[String.length m - 1] = 'i' then
                let base = String.sub m 0 (String.length m - 1) in
                match List.assoc_opt base alu_by_name with
                | Some op ->
                    let d, a, v = reg2imm () in
                    Isa.Alui (op, d, a, v)
                | None -> fail ln "unknown mnemonic %S" m
              else fail ln "unknown mnemonic %S" m))

let parse text =
  let items = ref [] in
  let push item = items := item :: !items in
  String.split_on_char '\n' text
  |> List.iteri (fun idx raw ->
         let ln = idx + 1 in
         let line = strip_comment raw in
         let tokens = tokenize line in
         let rec handle = function
           | [] -> ()
           | ".proc" :: name :: rest ->
               if rest <> [] then fail ln "trailing tokens after .proc";
               push (Asm.Proc name)
           | tok :: rest when String.length tok > 1 && tok.[String.length tok - 1] = ':' ->
               push (Asm.Label (String.sub tok 0 (String.length tok - 1)));
               handle rest
           | mnemonic :: operands -> push (Asm.I (parse_instr ln mnemonic operands))
         in
         handle tokens);
  List.rev !items

let parse_program text = Asm.assemble (parse text)
