(** Assembled CT16 programs: flat instruction array with resolved targets,
    a symbol table, and procedure extents.

    Addresses are instruction indices.  Flash occupancy in words (some
    instructions take two) is tracked separately for the code-size
    accounting in the overhead experiments. *)

type proc_info = {
  name : string;
  entry : int;  (** Address of the first instruction. *)
  finish : int;  (** One past the last instruction. *)
}

type t

val make : code:int Isa.instr array -> symbols:(string * int) list -> procs:proc_info list -> t
(** Validates: targets in range, procedure extents sane and non-overlapping,
    symbols within the code. *)

val code : t -> int Isa.instr array
(** The underlying array (not copied — treat as read-only). *)

val length : t -> int
val instr : t -> int -> int Isa.instr
val flash_words : t -> int
val symbols : t -> (string * int) list
val find_symbol : t -> string -> int option
val procs : t -> proc_info list
val find_proc : t -> string -> proc_info option
val proc_at : t -> int -> proc_info option
(** Procedure whose extent contains the address. *)

val entry_names : t -> string list
val pp : Format.formatter -> t -> unit
(** Disassembly listing with addresses and procedure headers. *)
