(** Binary encoding of CT16 instructions: the actual flash image.

    Each instruction occupies one or two 16-bit words, matching
    {!Isa.size}:

    {v
    word 0: [15:12] opcode | [11:8] rd/ra | [7:4] rb/ra2 | [3:0] minor
    word 1: 16-bit immediate / absolute address (when present)
    v}

    The encoding exists so the flash-occupancy numbers in the overhead
    experiments correspond to a concrete image, and so programs can be
    shipped to (simulated) motes as word streams.  [decode] is a strict
    inverse of [encode] for every well-formed program. *)

exception Encoding_error of string

val encode_instr : int Isa.instr -> int list
(** One or two words, each in [0, 0xFFFF].
    @raise Encoding_error when an immediate does not fit 16 bits. *)

val decode_instr : int list -> (int Isa.instr * int list) option
(** Decode one instruction from the word stream; [None] at end of input.
    @raise Encoding_error on malformed words or truncated immediates. *)

val encode : Program.t -> int array
(** Flash image of the whole program (length = {!Program.flash_words}). *)

val decode : words:int array -> symbols:(string * int) list -> procs:Program.proc_info list -> Program.t
(** Rebuild a program from its image.  Addresses in control transfers are
    instruction indices, recovered by re-walking the stream; the symbol
    table and procedure extents are metadata the image itself does not
    carry.
    @raise Encoding_error on malformed images. *)

val hexdump : Program.t -> string
(** Human-readable image listing (address, words, disassembly). *)
