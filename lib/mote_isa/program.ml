type proc_info = { name : string; entry : int; finish : int }

type t = {
  code : int Isa.instr array;
  symbols : (string * int) list;
  procs : proc_info list;
  flash_words : int;
}

let make ~code ~symbols ~procs =
  let n = Array.length code in
  Array.iteri
    (fun addr ins ->
      match Isa.label ins with
      | Some target when target < 0 || target >= n ->
          invalid_arg
            (Printf.sprintf "Program.make: instr %d targets out-of-range address %d" addr
               target)
      | Some _ | None -> ())
    code;
  List.iter
    (fun { name; entry; finish } ->
      if entry < 0 || finish > n || entry >= finish then
        invalid_arg (Printf.sprintf "Program.make: bad extent for procedure %s" name))
    procs;
  List.iter
    (fun (name, addr) ->
      if addr < 0 || addr >= n then
        invalid_arg (Printf.sprintf "Program.make: symbol %s out of range" name))
    symbols;
  let flash_words = Array.fold_left (fun acc i -> acc + Isa.size i) 0 code in
  { code; symbols; procs; flash_words }

let code t = t.code
let length t = Array.length t.code
let instr t addr = t.code.(addr)
let flash_words t = t.flash_words
let symbols t = t.symbols
let find_symbol t name = List.assoc_opt name t.symbols
let procs t = t.procs
let find_proc t name = List.find_opt (fun p -> p.name = name) t.procs
let proc_at t addr = List.find_opt (fun p -> addr >= p.entry && addr < p.finish) t.procs
let entry_names t = List.map (fun p -> p.name) t.procs

let pp fmt t =
  let label_of = Hashtbl.create 16 in
  List.iter (fun (name, addr) -> Hashtbl.replace label_of addr name) t.symbols;
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun addr ins ->
      (match List.find_opt (fun p -> p.entry = addr) t.procs with
      | Some p -> Format.fprintf fmt ";; --- proc %s ---@," p.name
      | None -> ());
      (match Hashtbl.find_opt label_of addr with
      | Some name -> Format.fprintf fmt "%s:@," name
      | None -> ());
      let target l =
        match Hashtbl.find_opt label_of l with
        | Some name -> Printf.sprintf "%s(%d)" name l
        | None -> string_of_int l
      in
      Format.fprintf fmt "  %4d: %s@," addr (Isa.to_string target ins))
    t.code;
  Format.fprintf fmt "@]"
