type item = Proc of string | Label of string | I of string Isa.instr

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let assemble items =
  (* Pass 1: assign each instruction an address; record labels and procedure
     starts. *)
  let labels = Hashtbl.create 64 in
  let add_label name addr =
    if Hashtbl.mem labels name then error "duplicate label %S" name;
    Hashtbl.replace labels name addr
  in
  let proc_starts = ref [] in
  let count = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Proc name ->
          add_label name !count;
          proc_starts := (name, !count) :: !proc_starts
      | Label name -> add_label name !count
      | I _ -> incr count)
    items;
  let total = !count in
  let proc_starts = List.rev !proc_starts in
  (* Pass 2: emit with resolved targets. *)
  let code = Array.make total Isa.Nop in
  let addr = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Proc _ | Label _ -> ()
      | I ins ->
          let resolved =
            Isa.map_label
              (fun name ->
                match Hashtbl.find_opt labels name with
                | Some a -> a
                | None -> error "unknown label %S" name)
              ins
          in
          code.(!addr) <- resolved;
          incr addr)
    items;
  let rec extents = function
    | [] -> []
    | [ (name, entry) ] -> [ { Program.name; entry; finish = total } ]
    | (name, entry) :: ((_, next) :: _ as rest) ->
        { Program.name; entry; finish = next } :: extents rest
  in
  let procs = extents proc_starts in
  List.iter
    (fun { Program.name; entry; finish } ->
      if entry = finish then error "procedure %S is empty" name)
    procs;
  let symbols = Hashtbl.fold (fun name a acc -> (name, a) :: acc) labels [] in
  let symbols = List.sort (fun (_, a) (_, b) -> compare a b) symbols in
  Program.make ~code ~symbols ~procs

let disassemble program =
  let code = Program.code program in
  let n = Array.length code in
  (* Collect every address that needs a label: explicit symbols plus any
     branch target. *)
  let names = Hashtbl.create 64 in
  List.iter (fun (name, addr) -> Hashtbl.replace names addr name) (Program.symbols program);
  Array.iter
    (fun ins ->
      match Isa.label ins with
      | Some target when not (Hashtbl.mem names target) ->
          Hashtbl.replace names target (Printf.sprintf ".La%d" target)
      | Some _ | None -> ())
    code;
  let proc_entries =
    List.map (fun p -> (p.Program.entry, p.Program.name)) (Program.procs program)
  in
  let items = ref [] in
  for addr = n - 1 downto 0 do
    let ins = Isa.map_label (fun a -> Hashtbl.find names a) code.(addr) in
    items := I ins :: !items;
    (match List.assoc_opt addr proc_entries with
    | Some name -> items := Proc name :: !items
    | None -> (
        match Hashtbl.find_opt names addr with
        | Some name -> items := Label name :: !items
        | None -> ()))
  done;
  !items

let nop = I Isa.Nop
let halt = I Isa.Halt
let movi r i = I (Isa.Movi (r, i))
let mov a b = I (Isa.Mov (a, b))
let add d a b = I (Isa.Alu (Isa.Add, d, a, b))
let sub d a b = I (Isa.Alu (Isa.Sub, d, a, b))
let mul d a b = I (Isa.Alu (Isa.Mul, d, a, b))
let addi d a i = I (Isa.Alui (Isa.Add, d, a, i))
let subi d a i = I (Isa.Alui (Isa.Sub, d, a, i))
let andi d a i = I (Isa.Alui (Isa.And, d, a, i))
let shri d a i = I (Isa.Alui (Isa.Shr, d, a, i))
let shli d a i = I (Isa.Alui (Isa.Shl, d, a, i))
let cmp a b = I (Isa.Cmp (a, b))
let cmpi a i = I (Isa.Cmpi (a, i))
let ld d a o = I (Isa.Ld (d, a, o))
let st a o s = I (Isa.St (a, o, s))
let push r = I (Isa.Push r)
let pop r = I (Isa.Pop r)
let br c l = I (Isa.Br (c, l))
let jmp l = I (Isa.Jmp l)
let call l = I (Isa.Call l)
let ret = I Isa.Ret
let input r p = I (Isa.In (r, p))
let output p r = I (Isa.Out (p, r))
