exception Encoding_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Encoding_error s)) fmt

(* Major opcodes.  0x8..0xF carry the eight ALU reg-reg operations so that
   three register fields fit in one word. *)
let op_misc = 0x0
let op_movi = 0x1
let op_alui = 0x2
let op_cmpi = 0x3
let op_ld = 0x4
let op_st = 0x5
let op_br = 0x6
let op_ctl = 0x7
let op_alu_base = 0x8

(* Minor codes under op_misc (in the low nibble). *)
let misc_nop = 0
let misc_halt = 1
let misc_ret = 2
let misc_mov = 3
let misc_cmp = 4
let misc_push = 5
let misc_pop = 6
let misc_in = 7
let misc_out = 8

let alu_code = function
  | Isa.Add -> 0
  | Isa.Sub -> 1
  | Isa.Mul -> 2
  | Isa.And -> 3
  | Isa.Or -> 4
  | Isa.Xor -> 5
  | Isa.Shl -> 6
  | Isa.Shr -> 7

let alu_of_code = function
  | 0 -> Isa.Add
  | 1 -> Isa.Sub
  | 2 -> Isa.Mul
  | 3 -> Isa.And
  | 4 -> Isa.Or
  | 5 -> Isa.Xor
  | 6 -> Isa.Shl
  | 7 -> Isa.Shr
  | c -> error "bad ALU code %d" c

let cond_code = function
  | Isa.Eq -> 0
  | Isa.Ne -> 1
  | Isa.Lt -> 2
  | Isa.Ge -> 3
  | Isa.Le -> 4
  | Isa.Gt -> 5

let cond_of_code = function
  | 0 -> Isa.Eq
  | 1 -> Isa.Ne
  | 2 -> Isa.Lt
  | 3 -> Isa.Ge
  | 4 -> Isa.Le
  | 5 -> Isa.Gt
  | c -> error "bad condition code %d" c

let port_code = function
  | Isa.P_timer -> 0
  | Isa.P_radio_rx -> 1
  | Isa.P_radio_tx -> 2
  | Isa.P_leds -> 3
  | Isa.P_probe -> 4
  | Isa.P_counter -> 5
  | Isa.P_sensor ch ->
      if ch < 0 || ch > 7 then error "sensor channel %d not encodable (0..7)" ch;
      8 + ch

let port_of_code = function
  | 0 -> Isa.P_timer
  | 1 -> Isa.P_radio_rx
  | 2 -> Isa.P_radio_tx
  | 3 -> Isa.P_leds
  | 4 -> Isa.P_probe
  | 5 -> Isa.P_counter
  | c when c >= 8 && c <= 15 -> Isa.P_sensor (c - 8)
  | c -> error "bad port code %d" c

let word ~op ~f1 ~f2 ~f3 =
  if op land 0xF <> op || f1 land 0xF <> f1 || f2 land 0xF <> f2 || f3 land 0xF <> f3 then
    error "field overflow (op=%d f1=%d f2=%d f3=%d)" op f1 f2 f3;
  (op lsl 12) lor (f1 lsl 8) lor (f2 lsl 4) lor f3

let imm_word v =
  if v < -32768 || v > 65535 then error "immediate %d does not fit 16 bits" v;
  v land 0xFFFF

(* Canonical immediates decode as signed; addresses as unsigned. *)
let signed v = if v > 32767 then v - 65536 else v

let encode_instr = function
  | Isa.Nop -> [ word ~op:op_misc ~f1:0 ~f2:0 ~f3:misc_nop ]
  | Isa.Halt -> [ word ~op:op_misc ~f1:0 ~f2:0 ~f3:misc_halt ]
  | Isa.Ret -> [ word ~op:op_misc ~f1:0 ~f2:0 ~f3:misc_ret ]
  | Isa.Mov (d, s) -> [ word ~op:op_misc ~f1:d ~f2:s ~f3:misc_mov ]
  | Isa.Cmp (a, b) -> [ word ~op:op_misc ~f1:a ~f2:b ~f3:misc_cmp ]
  | Isa.Push r -> [ word ~op:op_misc ~f1:r ~f2:0 ~f3:misc_push ]
  | Isa.Pop r -> [ word ~op:op_misc ~f1:r ~f2:0 ~f3:misc_pop ]
  | Isa.In (r, p) -> [ word ~op:op_misc ~f1:r ~f2:(port_code p) ~f3:misc_in ]
  | Isa.Out (p, r) -> [ word ~op:op_misc ~f1:r ~f2:(port_code p) ~f3:misc_out ]
  | Isa.Movi (r, v) -> [ word ~op:op_movi ~f1:r ~f2:0 ~f3:0; imm_word v ]
  | Isa.Alui (op, d, a, v) ->
      [ word ~op:op_alui ~f1:d ~f2:a ~f3:(alu_code op); imm_word v ]
  | Isa.Cmpi (a, v) -> [ word ~op:op_cmpi ~f1:a ~f2:0 ~f3:0; imm_word v ]
  | Isa.Ld (d, a, off) -> [ word ~op:op_ld ~f1:d ~f2:a ~f3:0; imm_word off ]
  | Isa.St (a, off, s) -> [ word ~op:op_st ~f1:a ~f2:s ~f3:0; imm_word off ]
  | Isa.Br (c, target) -> [ word ~op:op_br ~f1:(cond_code c) ~f2:0 ~f3:0; imm_word target ]
  | Isa.Jmp target -> [ word ~op:op_ctl ~f1:0 ~f2:0 ~f3:0; imm_word target ]
  | Isa.Call target -> [ word ~op:op_ctl ~f1:0 ~f2:0 ~f3:1; imm_word target ]
  | Isa.Alu (op, d, a, b) -> [ word ~op:(op_alu_base + alu_code op) ~f1:d ~f2:a ~f3:b ]

let decode_instr = function
  | [] -> None
  | w :: rest ->
      if w < 0 || w > 0xFFFF then error "word %d out of range" w;
      let op = (w lsr 12) land 0xF in
      let f1 = (w lsr 8) land 0xF in
      let f2 = (w lsr 4) land 0xF in
      let f3 = w land 0xF in
      let take_imm rest =
        match rest with
        | imm :: rest' ->
            if imm < 0 || imm > 0xFFFF then error "immediate word %d out of range" imm;
            (imm, rest')
        | [] -> error "truncated instruction (missing immediate)"
      in
      let one instr = Some (instr, rest) in
      if op >= op_alu_base then one (Isa.Alu (alu_of_code (op - op_alu_base), f1, f2, f3))
      else if op = op_misc then
        match f3 with
        | c when c = misc_nop -> one Isa.Nop
        | c when c = misc_halt -> one Isa.Halt
        | c when c = misc_ret -> one Isa.Ret
        | c when c = misc_mov -> one (Isa.Mov (f1, f2))
        | c when c = misc_cmp -> one (Isa.Cmp (f1, f2))
        | c when c = misc_push -> one (Isa.Push f1)
        | c when c = misc_pop -> one (Isa.Pop f1)
        | c when c = misc_in -> one (Isa.In (f1, port_of_code f2))
        | c when c = misc_out -> one (Isa.Out (port_of_code f2, f1))
        | c -> error "bad misc minor %d" c
      else begin
        let imm, rest' = take_imm rest in
        let instr =
          if op = op_movi then Isa.Movi (f1, signed imm)
          else if op = op_alui then Isa.Alui (alu_of_code f3, f1, f2, signed imm)
          else if op = op_cmpi then Isa.Cmpi (f1, signed imm)
          else if op = op_ld then Isa.Ld (f1, f2, signed imm)
          else if op = op_st then Isa.St (f1, signed imm, f2)
          else if op = op_br then Isa.Br (cond_of_code f1, imm)
          else if op = op_ctl then
            match f3 with
            | 0 -> Isa.Jmp imm
            | 1 -> Isa.Call imm
            | c -> error "bad control minor %d" c
          else error "bad opcode %d" op
        in
        Some (instr, rest')
      end

let encode program =
  let words =
    Array.to_list (Program.code program) |> List.concat_map encode_instr
  in
  Array.of_list words

let decode ~words ~symbols ~procs =
  let rec go stream acc =
    match decode_instr stream with
    | None -> List.rev acc
    | Some (instr, rest) -> go rest (instr :: acc)
  in
  let code = Array.of_list (go (Array.to_list words) []) in
  Program.make ~code ~symbols ~procs

let hexdump program =
  let buf = Buffer.create 512 in
  let word_addr = ref 0 in
  Array.iteri
    (fun idx instr ->
      let words = encode_instr instr in
      Buffer.add_string buf
        (Printf.sprintf "%04x  %-12s  %s\n" !word_addr
           (String.concat " " (List.map (Printf.sprintf "%04x") words))
           (Isa.to_string string_of_int instr));
      word_addr := !word_addr + List.length words;
      ignore idx)
    (Program.code program);
  Buffer.contents buf
