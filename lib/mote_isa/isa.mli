(** The CT16 instruction set: a 16-register RISC core in the spirit of the
    MSP430/AVR-class MCUs used on sensor motes.

    The property the whole reproduction turns on is the control-transfer
    cost model: the core fetches sequentially (static predict-not-taken),
    so every {e taken} control transfer pays {!taken_penalty} extra
    cycles.  Profile-guided code placement reduces how often branches are
    taken, and therefore both the "misprediction" count and total cycles.

    Instructions are parameterized by their label type: [string] while
    writing assembly, [int] (absolute flash address) once assembled. *)

type reg = int
(** Register index, 0..15.  By convention r13 is the instrumentation
    scratch register, r14 the frame pointer, r15 holds return values. *)

val num_regs : int

type cond = Eq | Ne | Lt | Ge | Le | Gt
(** Signed comparisons against the flags set by [Cmp]/[Cmpi]. *)

type alu_op = Add | Sub | Mul | And | Or | Xor | Shl | Shr

type port =
  | P_timer  (** Reading yields the (quantized, jittered) cycle clock. *)
  | P_sensor of int  (** ADC channel; value supplied by the environment. *)
  | P_radio_rx  (** Next received payload word; 0 when queue empty. *)
  | P_radio_tx  (** Writing transmits one payload word. *)
  | P_leds  (** Writing sets the LED bitmask. *)
  | P_probe  (** Instrumentation: writing logs (pc, value) host-side. *)
  | P_counter  (** Instrumentation: writing bumps counter[value]. *)

type 'label instr =
  | Nop
  | Halt
  | Movi of reg * int
  | Mov of reg * reg
  | Alu of alu_op * reg * reg * reg  (** [Alu (op, rd, ra, rb)]: rd ← ra op rb. *)
  | Alui of alu_op * reg * reg * int  (** rd ← ra op imm. *)
  | Cmp of reg * reg  (** Set Z/N flags from ra − rb. *)
  | Cmpi of reg * int
  | Ld of reg * reg * int  (** rd ← mem[ra + off]. *)
  | St of reg * int * reg  (** mem[ra + off] ← rs. *)
  | Push of reg
  | Pop of reg
  | Br of cond * 'label  (** Conditional branch; falls through when false. *)
  | Jmp of 'label
  | Call of 'label
  | Ret
  | In of reg * port
  | Out of port * reg

val taken_penalty : int
(** Extra cycles charged for every taken control transfer (branch taken,
    jump, call, return). *)

val base_cost : 'a instr -> int
(** Cycles for the instruction {e excluding} any taken penalty. *)

val size : 'a instr -> int
(** Flash words occupied (immediates take a second word). *)

val is_terminator : 'a instr -> bool
(** [Br]/[Jmp]/[Ret]/[Halt]: ends a basic block.  [Call] does not — control
    returns to the next instruction. *)

val negate_cond : cond -> cond

val map_label : ('a -> 'b) -> 'a instr -> 'b instr

val label : 'a instr -> 'a option
(** Target of a control-transfer instruction, if any. *)

val pp_cond : Format.formatter -> cond -> unit
val pp_port : Format.formatter -> port -> unit

val pp_instr :
  (Format.formatter -> 'label -> unit) -> Format.formatter -> 'label instr -> unit

val to_string : ('label -> string) -> 'label instr -> string
