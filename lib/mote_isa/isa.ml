type reg = int

let num_regs = 16

type cond = Eq | Ne | Lt | Ge | Le | Gt

type alu_op = Add | Sub | Mul | And | Or | Xor | Shl | Shr

type port =
  | P_timer
  | P_sensor of int
  | P_radio_rx
  | P_radio_tx
  | P_leds
  | P_probe
  | P_counter

type 'label instr =
  | Nop
  | Halt
  | Movi of reg * int
  | Mov of reg * reg
  | Alu of alu_op * reg * reg * reg
  | Alui of alu_op * reg * reg * int
  | Cmp of reg * reg
  | Cmpi of reg * int
  | Ld of reg * reg * int
  | St of reg * int * reg
  | Push of reg
  | Pop of reg
  | Br of cond * 'label
  | Jmp of 'label
  | Call of 'label
  | Ret
  | In of reg * port
  | Out of port * reg

let taken_penalty = 2

let base_cost = function
  | Nop | Halt -> 1
  | Movi _ | Mov _ -> 1
  | Alu (Mul, _, _, _) | Alui (Mul, _, _, _) -> 2
  | Alu _ | Alui _ -> 1
  | Cmp _ | Cmpi _ -> 1
  | Ld _ | St _ -> 2
  | Push _ | Pop _ -> 2
  | Br _ -> 1 (* +taken_penalty when taken *)
  | Jmp _ -> 1 (* always pays taken_penalty at execution *)
  | Call _ -> 2
  | Ret -> 2
  | In _ | Out _ -> 2

let size = function
  | Nop | Halt | Mov _ | Cmp _ | Push _ | Pop _ | Ret | In _ | Out _ -> 1
  | Alu _ -> 1
  | Movi _ | Alui _ | Cmpi _ | Ld _ | St _ | Br _ | Jmp _ | Call _ -> 2

let is_terminator = function
  | Br _ | Jmp _ | Ret | Halt -> true
  | Nop | Movi _ | Mov _ | Alu _ | Alui _ | Cmp _ | Cmpi _ | Ld _ | St _ | Push _
  | Pop _ | Call _ | In _ | Out _ ->
      false

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Le -> Gt
  | Gt -> Le

let map_label f = function
  | Br (c, l) -> Br (c, f l)
  | Jmp l -> Jmp (f l)
  | Call l -> Call (f l)
  | Nop -> Nop
  | Halt -> Halt
  | Movi (r, i) -> Movi (r, i)
  | Mov (a, b) -> Mov (a, b)
  | Alu (op, d, a, b) -> Alu (op, d, a, b)
  | Alui (op, d, a, i) -> Alui (op, d, a, i)
  | Cmp (a, b) -> Cmp (a, b)
  | Cmpi (a, i) -> Cmpi (a, i)
  | Ld (d, a, o) -> Ld (d, a, o)
  | St (a, o, s) -> St (a, o, s)
  | Push r -> Push r
  | Pop r -> Pop r
  | Ret -> Ret
  | In (r, p) -> In (r, p)
  | Out (p, r) -> Out (p, r)

let label = function
  | Br (_, l) | Jmp l | Call l -> Some l
  | Nop | Halt | Movi _ | Mov _ | Alu _ | Alui _ | Cmp _ | Cmpi _ | Ld _ | St _
  | Push _ | Pop _ | Ret | In _ | Out _ ->
      None

let cond_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Le -> "le"
  | Gt -> "gt"

let alu_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let port_to_string = function
  | P_timer -> "timer"
  | P_sensor ch -> Printf.sprintf "sensor[%d]" ch
  | P_radio_rx -> "radio.rx"
  | P_radio_tx -> "radio.tx"
  | P_leds -> "leds"
  | P_probe -> "probe"
  | P_counter -> "counter"

let pp_cond fmt c = Format.pp_print_string fmt (cond_to_string c)
let pp_port fmt p = Format.pp_print_string fmt (port_to_string p)

let to_string lbl = function
  | Nop -> "nop"
  | Halt -> "halt"
  | Movi (r, i) -> Printf.sprintf "movi  r%d, %d" r i
  | Mov (a, b) -> Printf.sprintf "mov   r%d, r%d" a b
  | Alu (op, d, a, b) -> Printf.sprintf "%-5s r%d, r%d, r%d" (alu_to_string op) d a b
  | Alui (op, d, a, i) -> Printf.sprintf "%si r%d, r%d, %d" (alu_to_string op) d a i
  | Cmp (a, b) -> Printf.sprintf "cmp   r%d, r%d" a b
  | Cmpi (a, i) -> Printf.sprintf "cmpi  r%d, %d" a i
  | Ld (d, a, o) -> Printf.sprintf "ld    r%d, [r%d+%d]" d a o
  | St (a, o, s) -> Printf.sprintf "st    [r%d+%d], r%d" a o s
  | Push r -> Printf.sprintf "push  r%d" r
  | Pop r -> Printf.sprintf "pop   r%d" r
  | Br (c, l) -> Printf.sprintf "br.%s %s" (cond_to_string c) (lbl l)
  | Jmp l -> Printf.sprintf "jmp   %s" (lbl l)
  | Call l -> Printf.sprintf "call  %s" (lbl l)
  | Ret -> "ret"
  | In (r, p) -> Printf.sprintf "in    r%d, %s" r (port_to_string p)
  | Out (p, r) -> Printf.sprintf "out   %s, r%d" (port_to_string p) r

let pp_instr pp_label fmt i =
  let lbl l = Format.asprintf "%a" pp_label l in
  Format.pp_print_string fmt (to_string lbl i)
