(** Symbolic assembly and the assembler.

    Programs are written as item lists; [assemble] resolves string labels to
    absolute addresses and derives procedure extents from [Proc] markers.
    A procedure extends until the next [Proc] marker (or end of program). *)

type item =
  | Proc of string  (** Start a procedure; also defines a label. *)
  | Label of string
  | I of string Isa.instr

exception Error of string
(** Duplicate labels, unknown targets, empty procedures. *)

val assemble : item list -> Program.t

val disassemble : Program.t -> item list
(** Inverse of {!assemble} up to generated label names ([".La<addr>"]). *)

(** Convenience constructors, so assembly reads like assembly. *)

val nop : item
val halt : item
val movi : Isa.reg -> int -> item
val mov : Isa.reg -> Isa.reg -> item
val add : Isa.reg -> Isa.reg -> Isa.reg -> item
val sub : Isa.reg -> Isa.reg -> Isa.reg -> item
val mul : Isa.reg -> Isa.reg -> Isa.reg -> item
val addi : Isa.reg -> Isa.reg -> int -> item
val subi : Isa.reg -> Isa.reg -> int -> item
val andi : Isa.reg -> Isa.reg -> int -> item
val shri : Isa.reg -> Isa.reg -> int -> item
val shli : Isa.reg -> Isa.reg -> int -> item
val cmp : Isa.reg -> Isa.reg -> item
val cmpi : Isa.reg -> int -> item
val ld : Isa.reg -> Isa.reg -> int -> item
val st : Isa.reg -> int -> Isa.reg -> item
val push : Isa.reg -> item
val pop : Isa.reg -> item
val br : Isa.cond -> string -> item
val jmp : string -> item
val call : string -> item
val ret : item
val input : Isa.reg -> Isa.port -> item
val output : Isa.port -> Isa.reg -> item
