(** Textual assembly: a parser and matching printer for CT16 source files.

    Syntax (one item per line; [';'] and ['#'] start comments):
    {v
    .proc blink
    loop:  movi  r0, 5
           subi  r0, r0, 1
           cmpi  r0, 0
           br.gt loop
           ld    r1, [r2+3]
           st    [r2+3], r1
           in    r0, sensor[2]
           out   leds, r0
           call  helper
           ret
    v}
    A label may share a line with an instruction.  [to_text] produces
    exactly this syntax, so [parse (to_text items) = items]. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Asm.item list
(** @raise Parse_error with a 1-based line number. *)

val parse_program : string -> Program.t
(** [parse] followed by {!Asm.assemble}.
    @raise Parse_error / {!Asm.Error}. *)

val to_text : Asm.item list -> string
