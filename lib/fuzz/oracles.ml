(* The five differential oracles.

   Each oracle takes one generated program (plus its own RNG stream where
   it needs randomness) and returns a verdict.  Failures carry a message
   precise enough to act on without re-running; skips name the structural
   reason a case carries no signal (no branch parameters, truncated path
   set, ...) so the runner can report skip rates — a quietly-skipping
   oracle is itself a bug. *)

module Ast = Mote_lang.Ast
module Check = Mote_lang.Check
module Compile = Mote_lang.Compile
module Optimize = Mote_lang.Optimize
module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Program = Mote_isa.Program
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices
module Cfg = Cfgir.Cfg
module Probes = Profilekit.Probes
module Transport = Profilekit.Transport

type verdict = Pass | Skip of string | Fail of string

type params = {
  invocations : int;
  placement_rounds : int;
  em_invocations : int;
  max_paths : int;
  max_visits : int;
  em_max_iters : int;
  walk_samples : int;
  conv_max_paths : int;
  conv_max_visits : int;
  enum_steps : int;
  conv_samples : int array;
  conv_tol : float;
  conv_slack : float;
}

let default_params =
  {
    invocations = 24;
    placement_rounds = 3;
    em_invocations = 48;
    max_paths = 512;
    max_visits = 6;
    em_max_iters = 12;
    walk_samples = 4000;
    conv_max_paths = 8192;
    conv_max_visits = 10;
    enum_steps = 2_000_000;
    conv_samples = [| 60; 240; 960 |];
    conv_tol = 0.12;
    conv_slack = 0.05;
  }

(* ------------------------------------------------------------------ *)
(* Observable machine state.                                          *)
(* ------------------------------------------------------------------ *)

(* Everything a mote program can externally affect, plus the persistent
   data state: globals, the task frame, arrays, the radio TX log and the
   LED port.  Cycle/instruction statistics are deliberately *not* part of
   the observation — optimization and relayout change them by design; the
   rewrite oracle checks its own layout-invariant combinations of them
   separately. *)
type observation = {
  vars : (string * int) list;  (** Globals, then the task frame. *)
  arrays : (string * int array) list;
  tx : int list;
  leds : int;
  led_writes : int;
  stats : Machine.stats;
}

let frame_vars (c : Compile.t) proc =
  match List.assoc_opt proc c.frames with
  | Some frame -> List.map fst frame
  | None -> []

(* Run [binary] against a fresh environment seeded with [env_seed]:
   [__init] once, then [invocations] invocations of the task.  [c] only
   supplies the symbol tables used to read state back — the binary may be
   an optimized, instrumented or rewritten variant, as long as it keeps
   the same data layout (none of the passes under test move data). *)
let observe ~env_seed ~invocations (c : Compile.t) binary =
  let devices = Devices.create () in
  let env = Env.create (Gen.env_config ~seed:env_seed) in
  Env.attach env devices;
  let m = Machine.create ~program:binary ~devices () in
  match
    ignore (Machine.run_proc m Compile.init_proc_name);
    for _ = 1 to invocations do
      ignore (Machine.run_proc m Gen.task_name)
    done
  with
  | exception Machine.Fault msg -> Error (Printf.sprintf "machine fault: %s" msg)
  | exception Not_found -> Error "task procedure missing from binary"
  | () ->
      let read_var proc name =
        (name, Machine.read_mem m (Compile.var_address c ~proc name))
      in
      let vars =
        List.map (fun (g, _) -> read_var Gen.task_name g) c.global_addrs
        @ List.map (read_var Gen.task_name) (frame_vars c Gen.task_name)
      in
      let arrays =
        List.map
          (fun (a, base) ->
            (a, Array.init Gen.array_size (fun i -> Machine.read_mem m (base + i))))
          c.array_addrs
      in
      Ok
        {
          vars;
          arrays;
          tx = Devices.tx_log devices;
          leds = Devices.leds devices;
          led_writes = Devices.led_writes devices;
          stats = Machine.stats m;
        }

let pp_ints l = "[" ^ String.concat ";" (List.map string_of_int l) ^ "]"

(* All observable differences between two runs, as human-readable lines.
   Compares by name so the two observations need not list state in the
   same order. *)
let diff_observations ~left ~right a b =
  let out = ref [] in
  let emit fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  List.iter
    (fun (name, va) ->
      match List.assoc_opt name b.vars with
      | None -> emit "var %s missing on %s side" name right
      | Some vb ->
          if va <> vb then emit "var %s: %s=%d %s=%d" name left va right vb)
    a.vars;
  List.iter
    (fun (name, va) ->
      match List.assoc_opt name b.arrays with
      | None -> emit "array %s missing on %s side" name right
      | Some vb ->
          if va <> vb then
            emit "array %s: %s=%s %s=%s" name left
              (pp_ints (Array.to_list va))
              right
              (pp_ints (Array.to_list vb)))
    a.arrays;
  if a.tx <> b.tx then
    emit "radio tx log: %s=%s %s=%s" left (pp_ints a.tx) right (pp_ints b.tx);
  if a.leds <> b.leds then emit "leds: %s=%d %s=%d" left a.leds right b.leds;
  if a.led_writes <> b.led_writes then
    emit "led writes: %s=%d %s=%d" left a.led_writes right b.led_writes;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Oracle 1: source-level optimization preserves observables.         *)
(* ------------------------------------------------------------------ *)

let optimize p ~env_seed (ast : Ast.program) (c_src : Compile.t) =
  let opt_ast = Optimize.program ast in
  match Compile.compile opt_ast with
  | exception Invalid_argument msg ->
      Fail (Printf.sprintf "optimized program no longer compiles: %s" msg)
  | c_opt -> (
      let run c = observe ~env_seed ~invocations:p.invocations c c.Compile.program in
      match (run c_src, run c_opt) with
      | Error msg, Error _ ->
          (* Both faulting means the generator emitted a faulting program —
             its own invariant violation, reported as such. *)
          Fail (Printf.sprintf "generated program faults: %s" msg)
      | Error msg, Ok _ -> Fail (Printf.sprintf "unoptimized run faults: %s" msg)
      | Ok _, Error msg -> Fail (Printf.sprintf "optimized run faults: %s" msg)
      | Ok a, Ok b -> (
          match diff_observations ~left:"plain" ~right:"optimized" a b with
          | [] -> Pass
          | diffs ->
              Fail
                ("optimize changed observable behaviour:\n  "
                ^ String.concat "\n  " diffs)))

(* ------------------------------------------------------------------ *)
(* Oracle 2: relayout preserves execution and timing semantics.       *)
(* ------------------------------------------------------------------ *)

(* What a placement change may NOT alter.  From the CT16 cost model,
   cycles = Σ base costs + taken_penalty · (taken conditional branches +
   jumps + calls + returns), and a rewrite only (a) reorders blocks,
   (b) flips branch polarity, (c) inserts/deletes bridging Jmps.  So the
   conditional-branch, call and return counts, the instruction count net
   of jumps, and the cycle count net of all penalties and jump base costs
   are placement-invariant. *)
type layout_invariant = {
  li_cond_branches : int;
  li_calls : int;
  li_returns : int;
  li_instructions_sans_jumps : int;
  li_cycles_sans_transfers : int;
}

let layout_invariant (s : Machine.stats) =
  {
    li_cond_branches = s.cond_branches;
    li_calls = s.calls;
    li_returns = s.returns;
    li_instructions_sans_jumps = s.instructions - s.unconditional_transfers;
    li_cycles_sans_transfers =
      s.cycles
      - (Isa.taken_penalty * (s.taken_cond_branches + s.unconditional_transfers))
      - (Isa.base_cost (Isa.Jmp 0) * s.unconditional_transfers);
  }

let diff_invariants a b =
  let out = ref [] in
  let emit fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let check name f =
    if f a <> f b then emit "%s: natural=%d rewritten=%d" name (f a) (f b)
  in
  check "conditional branches" (fun i -> i.li_cond_branches);
  check "calls" (fun i -> i.li_calls);
  check "returns" (fun i -> i.li_returns);
  check "instructions - jumps" (fun i -> i.li_instructions_sans_jumps);
  check "cycles - transfer penalties - jump costs" (fun i ->
      i.li_cycles_sans_transfers);
  List.rev !out

(* A random placement per procedure: entry pinned at position 0, the rest
   shuffled.  Procedures with fewer than three blocks admit only the
   identity and are left alone. *)
let random_placements rng binary =
  List.filter_map
    (fun (pi : Program.proc_info) ->
      let cfg = Cfg.of_proc binary pi in
      let n = Cfg.num_blocks cfg in
      if n < 3 then None
      else begin
        let rest = Array.init (n - 1) (fun i -> i + 1) in
        Stats.Rng.shuffle rng rest;
        Some (pi.Program.name, Array.append [| 0 |] rest)
      end)
    (Program.procs binary)

let probe_counts samples =
  List.map (fun (proc, arr) -> (proc, Array.length arr)) samples
  |> List.sort compare

(* Run an instrumented binary and hand back the devices themselves — the
   faults oracle needs the raw probe log, not just the collected samples. *)
let run_for_devices ~env_seed ~invocations instrumented =
  let devices = Devices.create () in
  let env = Env.create (Gen.env_config ~seed:env_seed) in
  Env.attach env devices;
  let m = Machine.create ~program:instrumented ~devices () in
  match
    ignore (Machine.run_proc m Compile.init_proc_name);
    for _ = 1 to invocations do
      ignore (Machine.run_proc m Gen.task_name)
    done
  with
  | exception Machine.Fault msg -> Error (Printf.sprintf "machine fault: %s" msg)
  | exception Not_found -> Error "task procedure missing from binary"
  | () -> Ok devices

let run_instrumented ~env_seed ~invocations instrumented =
  match run_for_devices ~env_seed ~invocations instrumented with
  | Error msg -> Error msg
  | Ok devices -> (
      match Probes.collect ~program:instrumented ~devices with
      | exception Probes.Unbalanced msg ->
          Error (Printf.sprintf "unbalanced probe log: %s" msg)
      | samples -> Ok (samples, Devices.tx_log devices))

let rewrite p rng ~env_seed (c : Compile.t) =
  let binary = c.Compile.program in
  let instrumented = Asm.assemble (Probes.instrument c.Compile.items) in
  match observe ~env_seed ~invocations:p.invocations c binary with
  | Error msg -> Fail (Printf.sprintf "natural-layout run faults: %s" msg)
  | Ok base -> (
      match run_instrumented ~env_seed ~invocations:p.invocations instrumented with
      | Error msg -> Fail (Printf.sprintf "instrumented natural run: %s" msg)
      | Ok (base_samples, base_tx) ->
          let base_inv = layout_invariant base.stats in
          let rec rounds round =
            if round > p.placement_rounds then Pass
            else begin
              let placements = random_placements rng binary in
              let instr_placements = random_placements rng instrumented in
              if placements = [] && instr_placements = [] then Pass
                (* every procedure is <3 blocks; nothing to vary *)
              else
                let rewritten = Layout.Rewrite.program binary ~placements in
                match observe ~env_seed ~invocations:p.invocations c rewritten with
                | Error msg ->
                    Fail
                      (Printf.sprintf "round %d: rewritten run faults: %s" round msg)
                | Ok rw -> (
                    match diff_observations ~left:"natural" ~right:"rewritten" base rw with
                    | _ :: _ as diffs ->
                        Fail
                          (Printf.sprintf
                             "round %d: rewrite changed observable behaviour:\n  %s"
                             round
                             (String.concat "\n  " diffs))
                    | [] -> (
                        match diff_invariants base_inv (layout_invariant rw.stats) with
                        | _ :: _ as diffs ->
                            Fail
                              (Printf.sprintf
                                 "round %d: rewrite broke a layout invariant:\n  %s"
                                 round
                                 (String.concat "\n  " diffs))
                        | [] -> (
                            let rw_instr =
                              Layout.Rewrite.program instrumented
                                ~placements:instr_placements
                            in
                            match
                              run_instrumented ~env_seed ~invocations:p.invocations
                                rw_instr
                            with
                            | Error msg ->
                                Fail
                                  (Printf.sprintf
                                     "round %d: instrumented rewritten run: %s" round
                                     msg)
                            | Ok (rw_samples, rw_tx) ->
                                if rw_tx <> base_tx then
                                  Fail
                                    (Printf.sprintf
                                       "round %d: instrumented rewrite changed tx \
                                        log: natural=%s rewritten=%s"
                                       round (pp_ints base_tx) (pp_ints rw_tx))
                                else if
                                  probe_counts rw_samples <> probe_counts base_samples
                                then
                                  Fail
                                    (Printf.sprintf
                                       "round %d: rewrite changed probe sample \
                                        counts: natural=%s rewritten=%s"
                                       round
                                       (String.concat ","
                                          (List.map
                                             (fun (p, n) -> Printf.sprintf "%s:%d" p n)
                                             (probe_counts base_samples)))
                                       (String.concat ","
                                          (List.map
                                             (fun (p, n) -> Printf.sprintf "%s:%d" p n)
                                             (probe_counts rw_samples))))
                                else rounds (round + 1))))
            end
          in
          rounds 1)

(* ------------------------------------------------------------------ *)
(* Oracle 3: sparse EM kernels agree with the dense reference.        *)
(* ------------------------------------------------------------------ *)

let hex = Printf.sprintf "%h"

let diff_results (a : Tomo.Em.result) (b : Tomo.Em.result) =
  let out = ref [] in
  let emit fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  if Array.length a.theta <> Array.length b.theta then
    emit "theta arity: sparse=%d dense=%d" (Array.length a.theta)
      (Array.length b.theta)
  else
    Array.iteri
      (fun j ta ->
        let tb = b.theta.(j) in
        if hex ta <> hex tb then
          emit "theta.(%d): sparse=%s dense=%s" j (hex ta) (hex tb))
      a.theta;
  if hex a.sigma <> hex b.sigma then
    emit "sigma: sparse=%s dense=%s" (hex a.sigma) (hex b.sigma);
  if a.iterations <> b.iterations then
    emit "iterations: sparse=%d dense=%d" a.iterations b.iterations;
  if hex a.log_likelihood <> hex b.log_likelihood then
    emit "log-likelihood: sparse=%s dense=%s" (hex a.log_likelihood)
      (hex b.log_likelihood);
  if a.converged <> b.converged then
    emit "converged: sparse=%b dense=%b" a.converged b.converged;
  if List.length a.trajectory <> List.length b.trajectory then
    emit "trajectory length: sparse=%d dense=%d" (List.length a.trajectory)
      (List.length b.trajectory)
  else
    List.iteri
      (fun i ((ta, la), (tb, lb)) ->
        let theta_eq =
          Array.length ta = Array.length tb
          && Array.for_all2 (fun x y -> hex x = hex y) ta tb
        in
        if (not theta_eq) || hex la <> hex lb then
          emit "trajectory step %d differs" i)
      (List.combine a.trajectory b.trajectory);
  List.rev !out

let em_agreement p ~env_seed (c : Compile.t) =
  let instrumented = Asm.assemble (Probes.instrument c.Compile.items) in
  match run_instrumented ~env_seed ~invocations:p.em_invocations instrumented with
  | Error msg -> Fail (Printf.sprintf "instrumented run: %s" msg)
  | Ok (sample_set, _) -> (
      let samples = Probes.samples_for sample_set Gen.task_name in
      if Array.length samples = 0 then Skip "no probe samples collected"
      else
        let cfg = Cfg.of_proc_name instrumented Gen.task_name in
        let model = Tomo.Model.of_cfg cfg in
        if Tomo.Model.num_params model = 0 then Skip "no branch parameters"
        else
          match
            Tomo.Paths.enumerate ~max_paths:p.max_paths ~max_visits:p.max_visits
              ~max_steps:p.enum_steps model
          with
          | exception Tomo.Paths.Too_complex msg ->
              Skip (Printf.sprintf "path enumeration: %s" msg)
          | paths -> (
              let sparse =
                Tomo.Em.estimate ~max_iters:p.em_max_iters ~record_trajectory:true
                  paths ~samples
              in
              let dense =
                Tomo.Em.Dense.estimate ~max_iters:p.em_max_iters
                  ~record_trajectory:true paths ~samples
              in
              match diff_results sparse dense with
              | [] -> Pass
              | diffs ->
                  Fail
                    ("sparse EM diverged from the dense reference:\n  "
                    ^ String.concat "\n  " diffs)))

(* ------------------------------------------------------------------ *)
(* Oracle 4: estimates converge to random-walk ground truth.          *)
(* ------------------------------------------------------------------ *)

(* The estimator needs a tractable path set; large tasks (20+ branch
   parameters under nested loops) structurally exceed any enumeration
   bound.  Try the task first, then each helper — a case only skips when
   no procedure of the program carries recoverable signal. *)
let convergence_candidates (c : Compile.t) p =
  List.filter_map
    (fun (pi : Program.proc_info) ->
      if pi.Program.name = Compile.init_proc_name then None
      else
        let cfg = Cfg.of_proc c.Compile.program pi in
        let model = Tomo.Model.of_cfg ~call_residual:0 ~window_correction:0 cfg in
        if Tomo.Model.num_params model = 0 then None
        else
          match
            Tomo.Paths.enumerate ~max_paths:p.conv_max_paths
              ~max_visits:p.conv_max_visits ~max_steps:p.enum_steps model
          with
          | exception Tomo.Paths.Too_complex _ -> None
          | paths -> Some (pi.Program.name, cfg, model, paths))
    (Program.procs c.Compile.program)
  |> List.sort (fun (a, _, _, _) (b, _, _, _) ->
         (* task first, then helpers in name order *)
         compare (a <> Gen.task_name, a) (b <> Gen.task_name, b))


let convergence p rng (c : Compile.t) =
  let theta_rng = Stats.Rng.split rng in
  let walk_rng = Stats.Rng.split rng in
  let sample_rng = Stats.Rng.split rng in
  (* Judge one candidate procedure; [None] means it carries no signal
     (truncated mass, every parameter ambiguous/unexercised) and the next
     candidate should be tried. *)
  let try_candidate (_name, cfg, model, paths) =
    let k = Tomo.Model.num_params model in
    let theta_true =
      Array.init k (fun _ -> 0.2 +. Stats.Rng.float theta_rng 0.6)
    in
    if
      Tomo.Paths.truncated paths
      && Tomo.Paths.prior_mass paths ~theta:theta_true < 0.995
    then None
    else
      let ambiguous = (Tomo.Identify.analyze paths).Tomo.Identify.ambiguous in
      let chain = Tomo.Model.chain model ~theta:theta_true in
      match
        Markov.Walk.edge_counts walk_rng chain ~start:0 ~samples:p.walk_samples
          ~max_steps:200_000
      with
      | exception Failure _ -> None
      | counts ->
          let param_blocks = Tomo.Model.param_blocks model in
          (* Ground-truth taken frequency per parameter, weighted by how
             often the walks exercised the branch.  Parameters whose branch
             is cost-ambiguous, never visited, or whose two targets
             coincide carry no signal and get weight 0. *)
          let freq = Array.make k 0.0 and weight = Array.make k 0.0 in
          Array.iteri
            (fun j b ->
              match (Cfg.block cfg b).Cfg.term with
              | Cfg.T_branch (_, tb, fb) when tb <> fb && not ambiguous.(j) ->
                  let t = float_of_int counts.(b).(tb)
                  and f = float_of_int counts.(b).(fb) in
                  if t +. f > 0.0 then begin
                    freq.(j) <- t /. (t +. f);
                    weight.(j) <- t +. f
                  end
              | _ -> ())
            param_blocks;
          let total_weight = Array.fold_left ( +. ) 0.0 weight in
          if total_weight = 0.0 then None
          else
            let error n =
              let samples =
                Tomo.Paths.sample_costs sample_rng paths ~theta:theta_true ~n
              in
              let r =
                Tomo.Em.estimate ~max_iters:80 ~record_trajectory:false paths
                  ~samples
              in
              let acc = ref 0.0 in
              Array.iteri
                (fun j w ->
                  acc := !acc +. (w *. Float.abs (r.theta.(j) -. freq.(j))))
                weight;
              !acc /. total_weight
            in
            let errors = Array.map error p.conv_samples in
            let last = errors.(Array.length errors - 1) in
            let first = errors.(0) in
            let pp_errors () =
              String.concat ", "
                (Array.to_list
                   (Array.mapi
                      (fun i n -> Printf.sprintf "n=%d err=%.4f" n errors.(i))
                      p.conv_samples))
            in
            if last > p.conv_tol then
              Some
                (Fail
                   (Printf.sprintf
                      "estimate did not converge to walk ground truth in %s: %s \
                       (tolerance %.3f)"
                      _name (pp_errors ()) p.conv_tol))
            else if last > first +. p.conv_slack then
              Some
                (Fail
                   (Printf.sprintf "error grew with sample size in %s: %s (slack %.3f)"
                      _name (pp_errors ()) p.conv_slack))
            else Some Pass
  in
  let rec first_usable = function
    | [] -> Skip "no procedure with identifiable, untruncated branch signal"
    | cand :: rest -> (
        match try_candidate cand with Some v -> v | None -> first_usable rest)
  in
  match convergence_candidates c p with
  | [] -> Skip "no procedure with a tractable branch-parameter path set"
  | candidates -> first_usable candidates

(* ------------------------------------------------------------------ *)
(* Oracle 5: lossy telemetry degrades gracefully, never fatally.      *)
(* ------------------------------------------------------------------ *)

(* A random but bounded fault mix: rates chosen so most cases keep some
   signal (exercising sanitize + robust EM) while a minority lose whole
   procedures (exercising the Rejected fallback).  Unbounded rates would
   make every case skip-equivalent — all data lost teaches nothing about
   the estimator. *)
let draw_fault_config rng =
  {
    Transport.default with
    drop = Stats.Rng.float rng 0.12;
    corrupt = Stats.Rng.float rng 0.04;
    duplicate = Stats.Rng.float rng 0.05;
    reorder = Stats.Rng.float rng 0.08;
    burst_enter = Stats.Rng.float rng 0.01;
    burst_exit = 0.25;
    burst_drop = 0.8;
    reboot = Stats.Rng.float rng 0.002;
  }

(* A procedure's code with addresses normalized: intra-procedure targets
   become entry-relative, external ones collapse to a sentinel.  Equal
   fingerprints mean the rewrite emitted the procedure's instructions in
   the same order with the same bridging jumps — i.e. left its layout
   alone (absolute targets legitimately shift when other procedures
   move). *)
let proc_fingerprint binary (pi : Program.proc_info) =
  List.init
    (pi.Program.finish - pi.Program.entry)
    (fun i ->
      Isa.map_label
        (fun t ->
          if t >= pi.Program.entry && t < pi.Program.finish then
            t - pi.Program.entry
          else -1)
        (Program.instr binary (pi.Program.entry + i)))

exception Degraded_badly of string

let faults p rng ~env_seed (c : Compile.t) =
  let fault_seed = Stats.Rng.int rng 1_000_000 in
  let fconfig = draw_fault_config rng in
  let instrumented = Asm.assemble (Probes.instrument c.Compile.items) in
  match run_for_devices ~env_seed ~invocations:p.em_invocations instrumented with
  | Error msg -> Fail (Printf.sprintf "instrumented run: %s" msg)
  | Ok devices -> (
      let log = Devices.probe_log devices in
      if log = [] then Skip "empty probe log"
      else
        let resolution = Devices.timer_resolution devices in
        let perturbed, stats = Transport.perturb ~seed:fault_seed fconfig log in
        let perturbed2, stats2 = Transport.perturb ~seed:fault_seed fconfig log in
        if perturbed <> perturbed2 || stats <> stats2 then
          Fail
            "transport is not deterministic: same (seed, config, log) produced \
             different outputs"
        else if fst (Transport.perturb ~seed:fault_seed Transport.default log) <> log
        then Fail "identity transport (all rates zero) changed the log"
        else if stats.Transport.delivered <> List.length perturbed then
          Fail
            (Printf.sprintf
               "transport accounting: delivered=%d but the perturbed log has %d \
                records"
               stats.Transport.delivered (List.length perturbed))
        else
          match
            Probes.collect_lossy_records ~program:instrumented ~resolution perturbed
          with
          | exception e ->
              Fail
                (Printf.sprintf "lossy collection raised %s" (Printexc.to_string e))
          | { Probes.samples = lossy; discarded = _ } -> (
              (* Mirror the pipeline's degradation contract per procedure:
                 sanitize, floor-check, robust-estimate; a Rejected
                 procedure contributes no profile and must come out of the
                 placement rewrite bit-identical (modulo relinking). *)
              let floor = Tomo.Health.default_min_samples in
              let natural = c.Compile.program in
              try
                let profiles, rejected =
                  List.fold_left
                    (fun (profiles, rejected) (pi : Program.proc_info) ->
                      let proc = pi.Program.name in
                      if proc = Compile.init_proc_name then (profiles, rejected)
                      else begin
                        let samples = Probes.samples_for lossy proc in
                        let model_i =
                          Tomo.Model.of_cfg (Cfg.of_proc_name instrumented proc)
                        in
                        let paths =
                          if Tomo.Model.num_params model_i = 0 then None
                          else
                            match
                              Tomo.Paths.enumerate ~max_paths:p.max_paths
                                ~max_visits:p.max_visits ~max_steps:p.enum_steps
                                model_i
                            with
                            | exception Tomo.Paths.Too_complex _ -> None
                            | paths -> Some paths
                        in
                        let min_cost, max_cost =
                          match paths with
                          | Some ps -> (Tomo.Paths.min_cost ps, Tomo.Paths.max_cost ps)
                          | None -> (Float.neg_infinity, Float.infinity)
                        in
                        let kept, report =
                          Tomo.Sanitize.run ~min_cost ~max_cost ~sigma:1.0 samples
                        in
                        let n = Array.length kept in
                        if
                          report.Tomo.Sanitize.total <> Array.length samples
                          || report.Tomo.Sanitize.kept <> n
                          || report.Tomo.Sanitize.total
                             <> report.Tomo.Sanitize.kept
                                + report.Tomo.Sanitize.envelope_dropped
                                + report.Tomo.Sanitize.mad_dropped
                        then
                          raise
                            (Degraded_badly
                               (Printf.sprintf
                                  "%s: sanitize report does not add up: total=%d \
                                   kept=%d envelope=%d mad=%d over %d samples in, \
                                   %d out"
                                  proc report.Tomo.Sanitize.total
                                  report.Tomo.Sanitize.kept
                                  report.Tomo.Sanitize.envelope_dropped
                                  report.Tomo.Sanitize.mad_dropped
                                  (Array.length samples) n));
                        if n < floor then begin
                          let verdict =
                            Tomo.Health.judge ~min_samples:floor ~converged:true
                              ~sample_count:n ()
                          in
                          if not (Tomo.Health.is_rejected verdict) then
                            raise
                              (Degraded_badly
                                 (Printf.sprintf
                                    "%s: %d samples under floor %d not rejected \
                                     (verdict: %s)"
                                    proc n floor (Tomo.Health.to_string verdict)));
                          (profiles, proc :: rejected)
                        end
                        else
                          match paths with
                          | None -> (profiles, rejected)
                          | Some paths ->
                              let r =
                                try
                                  Tomo.Em.estimate ~max_iters:p.em_max_iters
                                    ~outlier:Tomo.Em.default_outlier paths
                                    ~samples:kept
                                with e ->
                                  raise
                                    (Degraded_badly
                                       (Printf.sprintf
                                          "%s: robust EM raised %s on %d sanitized \
                                           samples"
                                          proc (Printexc.to_string e) n))
                              in
                              Array.iteri
                                (fun j th ->
                                  if
                                    (not (Float.is_finite th))
                                    || th < 0.0 || th > 1.0
                                  then
                                    raise
                                      (Degraded_badly
                                         (Printf.sprintf
                                            "%s: robust theta.(%d) = %h outside \
                                             [0,1]"
                                            proc j th)))
                                r.Tomo.Em.theta;
                              if
                                (not (Float.is_finite r.Tomo.Em.sigma))
                                || r.Tomo.Em.sigma < 0.0
                              then
                                raise
                                  (Degraded_badly
                                     (Printf.sprintf "%s: robust sigma = %h" proc
                                        r.Tomo.Em.sigma));
                              (match r.Tomo.Em.outlier_eps with
                              | None ->
                                  raise
                                    (Degraded_badly
                                       (proc
                                      ^ ": robust EM reported no outlier weight"))
                              | Some eps ->
                                  if
                                    (not (Float.is_finite eps))
                                    || eps < 0.0
                                    || eps
                                       > Tomo.Em.default_outlier.Tomo.Em.max_eps
                                  then
                                    raise
                                      (Degraded_badly
                                         (Printf.sprintf
                                            "%s: outlier eps = %h outside [0, \
                                             max_eps]"
                                            proc eps)));
                              let verdict =
                                Tomo.Health.judge ~min_samples:floor
                                  ~converged:r.Tomo.Em.converged ~sample_count:n ()
                              in
                              if Tomo.Health.is_rejected verdict then
                                (profiles, proc :: rejected)
                              else
                                let model_n =
                                  Tomo.Model.of_cfg ~call_residual:0
                                    ~window_correction:0 (Cfg.of_proc natural pi)
                                in
                                if
                                  Tomo.Model.num_params model_n
                                  <> Array.length r.Tomo.Em.theta
                                then (profiles, rejected)
                                else
                                  let freq =
                                    Tomo.Model.freq_of_theta model_n
                                      ~theta:r.Tomo.Em.theta
                                      ~invocations:(float_of_int n)
                                  in
                                  ((proc, freq) :: profiles, rejected)
                      end)
                    ([], []) (Program.procs natural)
                in
                let rewritten =
                  try
                    Layout.Rewrite.apply_all natural
                      ~algorithm:Layout.Algorithms.pettis_hansen ~profiles
                  with e ->
                    raise
                      (Degraded_badly
                         (Printf.sprintf "degraded placement raised %s"
                            (Printexc.to_string e)))
                in
                List.iter
                  (fun proc ->
                    match
                      (Program.find_proc natural proc, Program.find_proc rewritten proc)
                    with
                    | Some a, Some b ->
                        if proc_fingerprint natural a <> proc_fingerprint rewritten b
                        then
                          raise
                            (Degraded_badly
                               (Printf.sprintf
                                  "rejected procedure %s was rewritten by placement"
                                  proc))
                    | _ ->
                        raise
                          (Degraded_badly
                             (Printf.sprintf "procedure %s missing after rewrite"
                                proc)))
                  rejected;
                Pass
              with Degraded_badly msg -> Fail msg))
