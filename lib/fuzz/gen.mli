(** Sized random program generator over the checked {!Mote_lang} fragment.

    Programs are generated from an explicit {!Stats.Rng.t} so every case
    is replayable from a single seed (the runner derives one stream per
    case with {!Stats.Rng.stream}).  By construction the output always
    passes {!Mote_lang.Check}, terminates within the machine's fuel
    (loops own dedicated bounded counters), and never faults (array
    indices are masked) — so any check/compile/fault error on a generated
    program is a bug in the toolchain, not in the input.

    [Timer_now] is deliberately outside the generated fragment: it
    observes cycle counts, which optimization and relayout legitimately
    change, so it cannot appear in programs whose observable behaviour
    the oracles compare. *)

type config = {
  max_depth : int;  (** If/while nesting bound. *)
  stmts_per_block : int;
  max_helpers : int;  (** Callee procedures besides the task (acyclic). *)
  max_arrays : int;
  loop_mask : int;  (** Loop trip-count bound (use 2^k − 1). *)
  size : int;  (** Node budget — the "size" of sized generation. *)
}

val default_config : config

val task_name : string
(** Name of the entry procedure of every generated program
    (["fz_task"]). *)

val array_size : int
(** All generated arrays have this (power-of-two) size; indices are
    masked with [array_size - 1]. *)

val program : ?config:config -> Stats.Rng.t -> Mote_lang.Ast.program

val stmt_count : Mote_lang.Ast.program -> int
(** Statements in all procedure bodies, counted recursively — the
    size metric test-case shrinking minimizes. *)

val env_config : seed:int -> Env.config
(** Stochastic environment for executing generated programs: Gaussian
    channel 0, uniform channel 1, silent radio. *)
