(** The five differential oracles of the fuzzing harness.

    Every oracle runs one generated program through two pipelines that the
    design says must agree, and reports where they do not:

    + {!optimize}: {!Mote_lang.Optimize} on vs. off — identical observable
      machine state and device traces;
    + {!rewrite}: {!Layout.Rewrite} under random placements — identical
      observables, identical layout-invariant statistics (only taken
      counts and bridging jumps may change), identical per-procedure probe
      sample counts;
    + {!em_agreement}: sparse {!Tomo.Em.estimate} vs. the dense reference
      {!Tomo.Em.Dense.estimate} — hex-float equality on every field of the
      result, trajectory included;
    + {!convergence}: estimated branch probabilities approach
      {!Markov.Walk} ground-truth frequencies as the sample count grows;
    + {!faults}: under a random bounded fault mix on the probe link, the
      transport is deterministic and well-accounted, lossy collection and
      the sanitized robust estimator never raise, health verdicts obey the
      sample floor, and no [Rejected] procedure is touched by placement.

    Verdicts distinguish {!Skip} (the case structurally carries no signal
    for this oracle) from {!Fail} (a real disagreement, message included). *)

type verdict = Pass | Skip of string | Fail of string

type params = {
  invocations : int;  (** Task invocations per differential run. *)
  placement_rounds : int;  (** Random placements tried by {!rewrite}. *)
  em_invocations : int;  (** Task invocations feeding {!em_agreement}. *)
  max_paths : int;
  max_visits : int;  (** Path-enumeration bounds for oracles 3 and 4. *)
  em_max_iters : int;  (** EM iterations compared by {!em_agreement}. *)
  walk_samples : int;  (** Ground-truth walks drawn by {!convergence}. *)
  conv_max_paths : int;
  conv_max_visits : int;
      (** Enumeration bounds for {!convergence} — larger than the shared
          ones, since only the sparse estimator runs over them and
          truncation (renormalized estimates vs. untruncated walk ground
          truth) would otherwise force skips. *)
  enum_steps : int;
      (** Work cap ({!Tomo.Paths.enumerate} [max_steps]) for both path
          enumerations — fuzzed CFGs can make unbounded enumeration
          effectively diverge. *)
  conv_samples : int array;  (** Increasing sample sizes for {!convergence}. *)
  conv_tol : float;  (** Error bound at the largest sample size. *)
  conv_slack : float;  (** Allowed error growth between first and last. *)
}

val default_params : params

type observation = {
  vars : (string * int) list;
  arrays : (string * int array) list;
  tx : int list;
  leds : int;
  led_writes : int;
  stats : Mote_machine.Machine.stats;
}
(** Observable state after a run: globals and the task frame, array
    contents, radio TX log, LED port, and the raw statistics (the latter
    compared only through layout-invariant combinations). *)

val observe :
  env_seed:int ->
  invocations:int ->
  Mote_lang.Compile.t ->
  Mote_isa.Program.t ->
  (observation, string) result
(** Run [__init] then the task [invocations] times against a fresh
    environment and read the observable state back.  The compile result
    supplies the symbol tables; the binary may be any data-layout-
    preserving variant of it. *)

val optimize :
  params -> env_seed:int -> Mote_lang.Ast.program -> Mote_lang.Compile.t -> verdict

val rewrite : params -> Stats.Rng.t -> env_seed:int -> Mote_lang.Compile.t -> verdict

val em_agreement : params -> env_seed:int -> Mote_lang.Compile.t -> verdict

val convergence : params -> Stats.Rng.t -> Mote_lang.Compile.t -> verdict

val faults :
  params -> Stats.Rng.t -> env_seed:int -> Mote_lang.Compile.t -> verdict
(** The lossy-telemetry degradation oracle.  Draws a fault seed and a
    bounded random {!Profilekit.Transport.config} from its stream, runs
    the instrumented binary, perturbs the raw probe log, and asserts the
    graceful-degradation contract end to end: {!Profilekit.Transport}
    determinism and accounting, exception-free lossy collection,
    sanitizer report consistency, finite in-range robust-EM results, and
    a natural (bit-identical modulo relinking) layout for every
    procedure whose health verdict is [Rejected]. *)
