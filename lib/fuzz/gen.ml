(* Sized random program generator over the checked Mote_lang fragment.

   Every program this module emits must satisfy Mote_lang.Check by
   construction — the differential oracles treat a check or compile
   failure as a finding, not noise.  The invariants that make that true:

   - names: variables are drawn from the scope that is actually in force
     (params + locals + globals); arrays and callees from the program's
     own tables; helper i may only call helpers 0..i-1, so the call graph
     is acyclic by construction;
   - termination: every [While] owns a dedicated counter local ("k0",
     "k1", ... by loop-nesting level) that only the loop's own trailer
     increments and nothing else ever assigns, against a bound of at most
     [loop_mask], so trip counts are statically bounded (the machine's
     fuel can never run out);
   - memory safety: array indices are always masked with [size - 1]
     (sizes are powers of two), so no generated program can fault on a
     wild address;
   - [Break] is only emitted inside a loop body;
   - expressions are depth-bounded well inside the compiler's register
     budget, with call arguments kept shallow.

   Deliberately excluded from the fragment: [Timer_now].  The observable
   the oracles compare is architectural state + device traces, and the
   timer exposes cycle counts, which optimization and relayout both
   legitimately change. *)

open Mote_lang.Ast

type config = {
  max_depth : int;
  stmts_per_block : int;
  max_helpers : int;
  max_arrays : int;
  loop_mask : int;
  size : int;
}

let default_config =
  { max_depth = 3; stmts_per_block = 3; max_helpers = 2; max_arrays = 2;
    loop_mask = 7; size = 110 }

let task_name = "fz_task"

let array_size = 8 (* power of two: indices are masked with [size - 1] *)

type scope = {
  rvars : string array;  (* readable: params + data locals + counters + globals *)
  wvars : string array;  (* assignable: data locals + globals, never counters *)
  arrays : string array;
  callees : (string * int) array;  (* (name, arity), acyclic by construction *)
}

let counter_name level = "k" ^ string_of_int level

let arith_ops = [| Add; Sub; Mul; BAnd; BOr; BXor; Shl; Shr |]
let rel_ops = [| Req; Rne; Rlt; Rle; Rgt; Rge |]

(* The budget makes generation "sized": every node spends one unit, and an
   exhausted budget forces leaves/empty blocks, so program size is bounded
   by [config.size] per procedure regardless of how the depth dice fall. *)
let spend budget = decr budget

let rec gen_expr rng scope budget depth =
  spend budget;
  let leaf () =
    match Stats.Rng.int rng 8 with
    | 0 | 1 -> Int (Stats.Rng.int rng 256 - 128)
    | 2 -> Read_sensor (Stats.Rng.int rng 2)
    | 3 -> Radio_rx
    | _ -> Var (Stats.Rng.choose rng scope.rvars)
  in
  if depth <= 0 || !budget <= 0 then leaf ()
  else
    match Stats.Rng.int rng 10 with
    | 0 | 1 | 2 -> leaf ()
    | 3 | 4 | 5 ->
        Bin
          ( Stats.Rng.choose rng arith_ops,
            gen_expr rng scope budget (depth - 1),
            gen_expr rng scope budget (depth - 1) )
    | 6 ->
        Rel
          ( Stats.Rng.choose rng rel_ops,
            gen_expr rng scope budget (depth - 1),
            gen_expr rng scope budget (depth - 1) )
    | 7 when Array.length scope.arrays > 0 ->
        let a = Stats.Rng.choose rng scope.arrays in
        Arr_get (a, masked_index rng scope budget)
    | 8 when Array.length scope.callees > 0 ->
        let f, arity = Stats.Rng.choose rng scope.callees in
        Call_fn (f, List.init arity (fun _ -> gen_expr rng scope budget 1))
    | _ -> Not (gen_expr rng scope budget (depth - 1))

and masked_index rng scope budget =
  Bin (BAnd, gen_expr rng scope budget 1, Int (array_size - 1))

(* Conditions mix sensor-driven comparisons (stochastic branches — the
   estimator's subject) with short-circuit combinations over them. *)
let rec gen_cond rng scope budget depth =
  spend budget;
  let atom () =
    let lhs =
      if Stats.Rng.bool rng then Read_sensor (Stats.Rng.int rng 2)
      else gen_expr rng scope budget 1
    in
    let rhs =
      if Stats.Rng.bool rng then Int (200 + Stats.Rng.int rng 600)
      else gen_expr rng scope budget 1
    in
    Rel (Stats.Rng.choose rng rel_ops, lhs, rhs)
  in
  if depth <= 0 || !budget <= 0 then atom ()
  else
    match Stats.Rng.int rng 6 with
    | 0 -> And (gen_cond rng scope budget (depth - 1), gen_cond rng scope budget (depth - 1))
    | 1 -> Or (gen_cond rng scope budget (depth - 1), gen_cond rng scope budget (depth - 1))
    | 2 -> Not (gen_cond rng scope budget (depth - 1))
    | _ -> atom ()

let rec gen_stmt cfg rng scope budget ~depth ~loop_level ~in_loop =
  spend budget;
  let assign () =
    Assign (Stats.Rng.choose rng scope.wvars, gen_expr rng scope budget 2)
  in
  if depth <= 0 || !budget <= 0 then [ assign () ]
  else
    match Stats.Rng.int rng 12 with
    | 0 | 1 | 2 -> [ assign () ]
    | 3 ->
        [ If
            ( gen_cond rng scope budget 1,
              gen_block cfg rng scope budget ~depth:(depth - 1) ~loop_level ~in_loop,
              [] ) ]
    | 4 ->
        [ If
            ( gen_cond rng scope budget 1,
              gen_block cfg rng scope budget ~depth:(depth - 1) ~loop_level ~in_loop,
              gen_block cfg rng scope budget ~depth:(depth - 1) ~loop_level ~in_loop ) ]
    | 5 | 6 ->
        (* Bounded loop: the counter is reset just before, incremented only
           by the trailer, and assignable by nothing else (it is not in
           [wvars]), so the trip count is at most the bound. *)
        let k = counter_name loop_level in
        let mask = max 1 cfg.loop_mask in
        let bound =
          if Stats.Rng.bool rng then Int (1 + Stats.Rng.int rng mask)
          else Bin (BAnd, Read_sensor (Stats.Rng.int rng 2), Int mask)
        in
        let body =
          gen_block cfg rng scope budget ~depth:(depth - 1)
            ~loop_level:(loop_level + 1) ~in_loop:true
        in
        [ Assign (k, Int 0);
          While (Rel (Rlt, Var k, bound), body @ [ Assign (k, Bin (Add, Var k, Int 1)) ]) ]
    | 7 when Array.length scope.arrays > 0 ->
        let a = Stats.Rng.choose rng scope.arrays in
        [ Arr_set (a, masked_index rng scope budget, gen_expr rng scope budget 2) ]
    | 8 when Array.length scope.callees > 0 ->
        let f, arity = Stats.Rng.choose rng scope.callees in
        [ Call (f, List.init arity (fun _ -> gen_expr rng scope budget 1)) ]
    | 9 -> [ Radio_tx (gen_expr rng scope budget 1) ]
    | 10 when in_loop ->
        [ If (gen_cond rng scope budget 0, [ Break ], []) ]
    | _ -> [ Led (gen_expr rng scope budget 1) ]

and gen_block cfg rng scope budget ~depth ~loop_level ~in_loop =
  (* max 1: a zero stmts_per_block config still generates (cf. the same
     guard in Workloads.Generator, which a zero config used to crash). *)
  let n = 1 + Stats.Rng.int rng (max 1 cfg.stmts_per_block) in
  List.concat
    (List.init n (fun _ -> gen_stmt cfg rng scope budget ~depth ~loop_level ~in_loop))

let counters cfg = List.init (cfg.max_depth + 1) counter_name

let gen_helper cfg rng ~globals ~arrays ~callees index =
  let name = "helper" ^ string_of_int index in
  let arity = Stats.Rng.int rng 3 in
  let params = List.init arity (fun i -> "p" ^ string_of_int i) in
  let locals = [ "x"; "y" ] @ counters cfg in
  let scope =
    {
      rvars = Array.of_list (params @ [ "x"; "y" ] @ globals);
      wvars = Array.of_list ([ "x"; "y" ] @ globals);
      arrays = Array.of_list arrays;
      callees = Array.of_list callees;
    }
  in
  let budget = ref (cfg.size / 2) in
  let depth = Stdlib.min 2 cfg.max_depth in
  let body =
    gen_block cfg rng scope budget ~depth ~loop_level:0 ~in_loop:false
    @ [ Return (Some (gen_expr rng scope budget 2)) ]
  in
  ({ name; params; locals; body }, (name, arity))

let program ?(config = default_config) rng =
  let globals = [ "out"; "g0"; "g1" ] in
  let global_inits =
    List.map (fun g -> (g, Stats.Rng.int rng 100)) globals
  in
  let n_arrays = Stats.Rng.int rng (config.max_arrays + 1) in
  let arrays = List.init n_arrays (fun i -> ("arr" ^ string_of_int i, array_size)) in
  let array_names = List.map fst arrays in
  let n_helpers = Stats.Rng.int rng (config.max_helpers + 1) in
  let helpers, _ =
    List.fold_left
      (fun (procs, callees) i ->
        let p, sig_ =
          gen_helper config rng ~globals ~arrays:array_names ~callees i
        in
        (procs @ [ p ], callees @ [ sig_ ]))
      ([], [])
      (List.init n_helpers Fun.id)
  in
  let callees = List.map (fun p -> (p.name, List.length p.params)) helpers in
  let data_locals = [ "a"; "b"; "c" ] in
  let scope =
    {
      rvars = Array.of_list (data_locals @ globals);
      wvars = Array.of_list (data_locals @ globals);
      arrays = Array.of_list array_names;
      callees = Array.of_list callees;
    }
  in
  let budget = ref config.size in
  (* Open with a forced conditional so no generated task is branch-free —
     a straight-line task would leave the estimator nothing to do. *)
  let forced =
    If
      ( gen_cond rng scope budget 1,
        gen_block config rng scope budget ~depth:0 ~loop_level:0 ~in_loop:false,
        gen_block config rng scope budget ~depth:0 ~loop_level:0 ~in_loop:false )
  in
  let body =
    (forced
    :: gen_block config rng scope budget ~depth:config.max_depth ~loop_level:0
         ~in_loop:false)
    @ [ Assign ("out", Bin (Add, Var "out", Var "a")) ]
  in
  let task =
    { name = task_name; params = []; locals = data_locals @ counters config; body }
  in
  { globals = global_inits; arrays; procs = helpers @ [ task ] }

let stmt_count program =
  let rec stmts s =
    1
    + (match s with
      | If (_, a, b) -> List.fold_left (fun n s -> n + stmts s) 0 (a @ b)
      | While (_, b) -> List.fold_left (fun n s -> n + stmts s) 0 b
      | _ -> 0)
  in
  List.fold_left
    (fun n p -> n + List.fold_left (fun n s -> n + stmts s) 0 p.body)
    0 program.procs

let env_config ~seed =
  {
    Env.seed;
    channels =
      [ (0, Env.Gaussian { mu = 512.0; sigma = 150.0 }); (1, Env.Uniform (0, 1023)) ];
    radio = Env.Silent;
  }
