(* Greedy test-case minimization.

   [minimize] repeatedly tries one-step reductions of a failing program —
   dropping statements, splicing conditional arms and loop bodies in place
   of the construct, dropping whole procedures / globals / arrays /
   locals, and replacing expressions by constants or their own
   subexpressions — and commits the first reduction that still checks and
   still fails.  Every candidate has strictly fewer AST nodes than its
   parent, so the walk terminates; [max_evals] additionally bounds the
   predicate budget (each evaluation typically re-runs a machine-level
   oracle) and the best program so far is returned when it runs out.

   Validity is delegated to {!Mote_lang.Check}: reductions are generated
   syntactically without regard to scoping (dropping a called procedure,
   a referenced global, a loop around a [Break]...) and invalid ones are
   simply discarded.  That keeps the candidate generator honest — it can
   never "fix" a program into a different finding by reintroducing
   well-formedness by hand. *)

open Mote_lang.Ast

(* One-step reductions of an expression: collapse to a constant, promote a
   subexpression, or reduce inside one operand.  Atoms reduce to nothing. *)
let rec shrink_expr e =
  let sub1 f a = List.map f (shrink_expr a) in
  let sub2 f a b =
    List.map (fun a' -> f a' b) (shrink_expr a)
    @ List.map (fun b' -> f a b') (shrink_expr b)
  in
  match e with
  | Int _ | Var _ | Read_sensor _ | Radio_rx | Timer_now -> []
  | Bin (op, a, b) ->
      [ Int 0; a; b ] @ sub2 (fun a b -> Bin (op, a, b)) a b
  | Rel (op, a, b) ->
      [ Int 0; Int 1; a; b ] @ sub2 (fun a b -> Rel (op, a, b)) a b
  | And (a, b) -> [ Int 0; Int 1; a; b ] @ sub2 (fun a b -> And (a, b)) a b
  | Or (a, b) -> [ Int 0; Int 1; a; b ] @ sub2 (fun a b -> Or (a, b)) a b
  | Not a -> [ Int 0; Int 1; a ] @ sub1 (fun a -> Not a) a
  | Arr_get (arr, i) -> [ Int 0; i ] @ sub1 (fun i -> Arr_get (arr, i)) i
  | Call_fn (f, args) ->
      (Int 0 :: args)
      @ List.concat
          (List.mapi
             (fun i a ->
               List.map
                 (fun a' ->
                   Call_fn (f, List.mapi (fun j b -> if i = j then a' else b) args))
                 (shrink_expr a))
             args)

(* In-place replacements of one statement (always one-for-one; the
   splicing reductions that change list length live in [shrink_block]). *)
let rec shrink_stmt s =
  let e1 f a = List.map f (shrink_expr a) in
  match s with
  | Assign (x, e) -> e1 (fun e -> Assign (x, e)) e
  | Arr_set (a, i, v) ->
      e1 (fun i -> Arr_set (a, i, v)) i @ e1 (fun v -> Arr_set (a, i, v)) v
  | If (c, t, f) ->
      e1 (fun c -> If (c, t, f)) c
      @ List.map (fun t -> If (c, t, f)) (shrink_block t)
      @ List.map (fun f -> If (c, t, f)) (shrink_block f)
  | While (c, b) ->
      e1 (fun c -> While (c, b)) c
      @ List.map (fun b -> While (c, b)) (shrink_block b)
  | Break -> []
  | Call (f, args) ->
      List.concat
        (List.mapi
           (fun i a ->
             List.map
               (fun a' ->
                 Call (f, List.mapi (fun j b -> if i = j then a' else b) args))
               (shrink_expr a))
           args)
  | Radio_tx e -> e1 (fun e -> Radio_tx e) e
  | Led e -> e1 (fun e -> Led e) e
  | Return (Some e) -> Return None :: e1 (fun e -> Return (Some e)) e
  | Return None -> []

(* Reductions of a statement list, coarsest first: drop a statement,
   splice a construct's body in its place, then rewrite one statement. *)
and shrink_block block =
  let n = List.length block in
  let without i = List.filteri (fun j _ -> j <> i) block in
  let replace_with i repl =
    List.concat (List.mapi (fun j s -> if i = j then repl else [ s ]) block)
  in
  let drops = List.init n without in
  let splices =
    List.concat
      (List.mapi
         (fun i s ->
           match s with
           | If (_, t, f) ->
               let arms = if f = [] then [ t ] else [ t; f ] in
               List.map (replace_with i) arms
           | While (_, b) -> [ replace_with i b ]
           | _ -> [])
         block)
  in
  let rewrites =
    List.concat
      (List.mapi
         (fun i s -> List.map (fun s' -> replace_with i [ s' ]) (shrink_stmt s))
         block)
  in
  drops @ splices @ rewrites

let shrink_program (p : program) =
  let without l i = List.filteri (fun j _ -> j <> i) l in
  let drop_procs =
    List.init (List.length p.procs) (fun i -> { p with procs = without p.procs i })
  in
  let drop_globals =
    List.init (List.length p.globals) (fun i ->
        { p with globals = without p.globals i })
  in
  let drop_arrays =
    List.init (List.length p.arrays) (fun i ->
        { p with arrays = without p.arrays i })
  in
  let drop_locals =
    List.concat
      (List.mapi
         (fun i proc ->
           List.init (List.length proc.locals) (fun l ->
               let proc' = { proc with locals = without proc.locals l } in
               {
                 p with
                 procs = List.mapi (fun j q -> if i = j then proc' else q) p.procs;
               }))
         p.procs)
  in
  let body_shrinks =
    List.concat
      (List.mapi
         (fun i proc ->
           List.map
             (fun body ->
               {
                 p with
                 procs =
                   List.mapi
                     (fun j q -> if i = j then { proc with body } else q)
                     p.procs;
               })
             (shrink_block proc.body))
         p.procs)
  in
  drop_procs @ drop_arrays @ drop_globals @ drop_locals @ body_shrinks

type stats = { steps : int; evals : int }

let minimize ?(max_evals = 2000) ~still_fails program =
  let evals = ref 0 and steps = ref 0 in
  let ok q =
    match Mote_lang.Check.program q with
    | Error _ -> false (* invalid reductions are free to discard *)
    | Ok () ->
        incr evals;
        still_fails q
  in
  let rec go p =
    if !evals >= max_evals then p
    else
      match
        List.find_opt
          (fun q -> !evals < max_evals && ok q)
          (shrink_program p)
      with
      | Some q ->
          incr steps;
          go q
      | None -> p
  in
  let reduced = go program in
  (reduced, { steps = !steps; evals = !evals })
