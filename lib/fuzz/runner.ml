(* The fuzzing loop: deterministic case execution, parallel fan-out,
   shrinking of failures, and corpus replay.

   Determinism contract: every case derives its randomness from
   [Stats.Rng.stream ~seed ~index] split into fixed per-purpose streams,
   cases fan out over [Par.Pool] (input-order results, lowest-index
   exception), and all reporting happens after the map — so the report is
   byte-identical at any [-j], and any single case can be re-run in
   isolation from (seed, index) alone. *)

module Ast = Mote_lang.Ast
module Check = Mote_lang.Check
module Compile = Mote_lang.Compile

type oracle = Gen_check | Optimize | Rewrite | Em | Convergence | Faults

let oracle_name = function
  | Gen_check -> "gen-check"
  | Optimize -> "optimize"
  | Rewrite -> "rewrite"
  | Em -> "em"
  | Convergence -> "convergence"
  | Faults -> "faults"

let oracle_of_name = function
  | "gen-check" -> Some Gen_check
  | "optimize" -> Some Optimize
  | "rewrite" -> Some Rewrite
  | "em" -> Some Em
  | "convergence" -> Some Convergence
  | "faults" -> Some Faults
  | _ -> None

let all_oracles = [ Gen_check; Optimize; Rewrite; Em; Convergence; Faults ]

(* ------------------------------------------------------------------ *)
(* Case execution.                                                    *)
(* ------------------------------------------------------------------ *)

(* Streams per case, in fixed order: program generation, environment
   seeding, placement randomness (rewrite oracle), convergence oracle,
   fault injection (faults oracle).
   Adding a stream at the END keeps old (seed, case) repros valid. *)
let case_streams ~seed index =
  Stats.Rng.split_n (Stats.Rng.stream ~seed ~index) 5

let env_seed_of rng = Stats.Rng.int rng 1_000_000

type case_result = {
  index : int;
  program : Ast.program;
  verdicts : (oracle * Oracles.verdict) list;
}

let run_case ?(params = Oracles.default_params) ?(config = Gen.default_config)
    ~seed index =
  let s = case_streams ~seed index in
  let program = Gen.program ~config s.(0) in
  let env_seed = env_seed_of s.(1) in
  let verdicts =
    match Check.program program with
    | Error msgs ->
        [
          ( Gen_check,
            Oracles.Fail
              ("generated program fails Check: " ^ String.concat "; " msgs) );
        ]
    | Ok () -> (
        match Compile.compile program with
        | exception Invalid_argument msg ->
            [ (Gen_check, Oracles.Fail ("generated program fails compile: " ^ msg)) ]
        | c ->
            [
              (Gen_check, Oracles.Pass);
              (Optimize, Oracles.optimize params ~env_seed program c);
              (Rewrite, Oracles.rewrite params s.(2) ~env_seed c);
              (Em, Oracles.em_agreement params ~env_seed c);
              (Convergence, Oracles.convergence params s.(3) c);
              (Faults, Oracles.faults params s.(4) ~env_seed c);
            ])
  in
  { index; program; verdicts }

(* Re-run one oracle on a *candidate* program under case [index]'s exact
   streams — the shrinking predicate.  The generation stream is split but
   unused (the candidate replaces its output), so the remaining streams
   match the original case bit-for-bit. *)
let oracle_fails ?(params = Oracles.default_params) ~seed ~index oracle candidate =
  let s = case_streams ~seed index in
  let env_seed = env_seed_of s.(1) in
  let is_fail = function Oracles.Fail _ -> true | Oracles.Pass | Oracles.Skip _ -> false in
  (* A reduction may drop the task procedure itself; the case is then
     meaningless for every machine-level oracle. *)
  let has_task =
    List.exists
      (fun (pr : Ast.proc) -> pr.name = Gen.task_name && pr.params = [])
      candidate.Ast.procs
  in
  if not has_task then false
  else
  match Check.program candidate with
  | Error _ -> oracle = Gen_check
  | Ok () -> (
      match Compile.compile candidate with
      | exception Invalid_argument _ -> oracle = Gen_check
      | c -> (
          (* Reductions can escape the generator's termination and
             memory-safety invariants (e.g. dropping a loop counter's
             increment).  A candidate whose plain build faults would make
             every oracle "fail" for an unrelated reason, so reject it
             outright — shrinking must stay inside the invariant envelope
             the original failure lived in. *)
          match
            Oracles.observe ~env_seed ~invocations:params.Oracles.invocations c
              c.Compile.program
          with
          | Error _ -> false
          | Ok _ -> (
              match oracle with
              | Gen_check -> false
              | Optimize -> is_fail (Oracles.optimize params ~env_seed candidate c)
              | Rewrite -> is_fail (Oracles.rewrite params s.(2) ~env_seed c)
              | Em -> is_fail (Oracles.em_agreement params ~env_seed c)
              | Convergence -> is_fail (Oracles.convergence params s.(3) c)
              | Faults -> is_fail (Oracles.faults params s.(4) ~env_seed c))))

(* Gen_check findings fail Check or compile, which Shrink.minimize's
   validity filter would reject — minimize them with a hand-rolled greedy
   walk over the same reductions. *)
let shrink_gen_check ~max_evals program =
  let evals = ref 0 and steps = ref 0 in
  let fails q =
    incr evals;
    match Check.program q with
    | Error _ -> true
    | Ok () -> (
        match Compile.compile q with
        | exception Invalid_argument _ -> true
        | _ -> false)
  in
  let rec go p =
    if !evals >= max_evals then p
    else
      match
        List.find_opt (fun q -> !evals < max_evals && fails q) (Shrink.shrink_program p)
      with
      | Some q ->
          incr steps;
          go q
      | None -> p
  in
  let reduced = go program in
  (reduced, { Shrink.steps = !steps; evals = !evals })

type failure = {
  f_case : int;
  f_oracle : oracle;
  f_message : string;
  f_program : Ast.program;
  f_reduced : Ast.program;
  f_shrink : Shrink.stats;
}

let shrink_failure ?(params = Oracles.default_params) ?(max_evals = 2000) ~seed
    ~index oracle message program =
  let reduced, stats =
    match oracle with
    | Gen_check -> shrink_gen_check ~max_evals program
    | _ ->
        Shrink.minimize ~max_evals
          ~still_fails:(oracle_fails ~params ~seed ~index oracle)
          program
  in
  {
    f_case = index;
    f_oracle = oracle;
    f_message = message;
    f_program = program;
    f_reduced = reduced;
    f_shrink = stats;
  }

(* ------------------------------------------------------------------ *)
(* The campaign.                                                      *)
(* ------------------------------------------------------------------ *)

type report = {
  seed : int;
  cases : int;
  pass : (oracle * int) list;
  skip : (oracle * int) list;
  failures : failure list;
}

let count pred results o =
  List.fold_left
    (fun n r ->
      List.fold_left
        (fun n (o', v) -> if o' = o && pred v then n + 1 else n)
        n r.verdicts)
    0 results

(* How many failures get the (expensive) shrinking treatment; the rest
   are still reported with their full program. *)
let max_shrunk = 4

let run ?(params = Oracles.default_params) ?(config = Gen.default_config) ~seed
    ~cases ~jobs () =
  let results =
    Par.Pool.with_pool ~domains:jobs (fun pool ->
        Par.Pool.map pool
          (fun index -> run_case ~params ~config ~seed index)
          (Array.init cases Fun.id))
  in
  let results = Array.to_list results in
  let pass =
    List.map
      (fun o -> (o, count (function Oracles.Pass -> true | _ -> false) results o))
      all_oracles
  in
  let skip =
    List.map
      (fun o -> (o, count (function Oracles.Skip _ -> true | _ -> false) results o))
      all_oracles
  in
  let failing =
    List.concat_map
      (fun r ->
        List.filter_map
          (function
            | o, Oracles.Fail msg -> Some (r.index, o, msg, r.program)
            | _ -> None)
          r.verdicts)
      results
  in
  let failures =
    List.mapi
      (fun i (index, o, msg, program) ->
        if i < max_shrunk then shrink_failure ~params ~seed ~index o msg program
        else
          {
            f_case = index;
            f_oracle = o;
            f_message = msg;
            f_program = program;
            f_reduced = program;
            f_shrink = { Shrink.steps = 0; evals = 0 };
          })
      failing
  in
  { seed; cases; pass; skip; failures }

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>FAIL case %d oracle=%s@,%s@," f.f_case
    (oracle_name f.f_oracle) f.f_message;
  Format.fprintf ppf "shrunk %d -> %d statements (%d steps, %d evals)@,"
    (Gen.stmt_count f.f_program)
    (Gen.stmt_count f.f_reduced)
    f.f_shrink.Shrink.steps f.f_shrink.Shrink.evals;
  Format.fprintf ppf "reduced program:@,%a@]" Ast.pp_program f.f_reduced

let pp_report ppf r =
  Format.fprintf ppf "@[<v>fuzz: seed=%d cases=%d@," r.seed r.cases;
  List.iter
    (fun o ->
      Format.fprintf ppf "  %-12s %4d pass  %4d skip  %4d fail@," (oracle_name o)
        (List.assoc o r.pass) (List.assoc o r.skip)
        (List.length (List.filter (fun f -> f.f_oracle = o) r.failures)))
    all_oracles;
  List.iter
    (fun f ->
      Format.fprintf ppf "%a@,repro: --seed %d --only %d@," pp_failure f r.seed
        f.f_case)
    r.failures;
  Format.fprintf ppf "%s@]"
    (if r.failures = [] then "all oracles passed" else "FAILURES DETECTED")

(* ------------------------------------------------------------------ *)
(* Corpus: previously-shrunk findings replayed as regression tests.   *)
(* ------------------------------------------------------------------ *)

(* A corpus file is line-oriented: '#' comments, then 'key value' pairs.
   Two kinds:

     kind fuzz          — replay one fuzzer case end to end
     seed 123
     case 17
     oracle optimize    — optional; default: all oracles must not Fail

     kind workloads     — Workloads.Generator must produce a program that
     seed 123             checks and compiles under the given config
     max_depth 3
     stmts_per_block 2
     loop_bound 4
*)

type corpus_entry =
  | Fuzz_case of { seed : int; case : int; oracle : oracle option }
  | Workloads_case of Workloads.Generator.config

exception Corpus_error of string

let parse_corpus s =
  let fields =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None
           else
             match String.index_opt line ' ' with
             | None -> raise (Corpus_error ("malformed line: " ^ line))
             | Some i ->
                 Some
                   ( String.sub line 0 i,
                     String.trim (String.sub line i (String.length line - i)) ))
  in
  let lookup k = List.assoc_opt k fields in
  let int_field k =
    match lookup k with
    | None -> raise (Corpus_error ("missing field: " ^ k))
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> raise (Corpus_error ("field " ^ k ^ ": not an integer: " ^ v)))
  in
  match lookup "kind" with
  | Some "fuzz" ->
      let oracle =
        match lookup "oracle" with
        | None -> None
        | Some name -> (
            match oracle_of_name name with
            | Some o -> Some o
            | None -> raise (Corpus_error ("unknown oracle: " ^ name)))
      in
      Fuzz_case { seed = int_field "seed"; case = int_field "case"; oracle }
  | Some "workloads" ->
      Workloads_case
        {
          Workloads.Generator.seed = int_field "seed";
          max_depth = int_field "max_depth";
          stmts_per_block = int_field "stmts_per_block";
          loop_bound = int_field "loop_bound";
        }
  | Some k -> raise (Corpus_error ("unknown kind: " ^ k))
  | None -> raise (Corpus_error "missing field: kind")

let replay ?(params = Oracles.default_params) ?(config = Gen.default_config) entry =
  match entry with
  | Fuzz_case { seed; case; oracle } -> (
      let r = run_case ~params ~config ~seed case in
      let relevant =
        match oracle with
        | None -> r.verdicts
        | Some o -> List.filter (fun (o', _) -> o' = o) r.verdicts
      in
      match
        List.filter_map
          (function o, Oracles.Fail m -> Some (oracle_name o ^ ": " ^ m) | _ -> None)
          relevant
      with
      | [] -> Ok ()
      | msgs ->
          Error
            (Printf.sprintf "fuzz case seed=%d case=%d: %s" seed case
               (String.concat "; " msgs)))
  | Workloads_case wconfig -> (
      let program = Workloads.Generator.generate ~config:wconfig () in
      match Check.program program with
      | Error msgs ->
          Error
            (Printf.sprintf "workloads seed=%d: Check failed: %s"
               wconfig.Workloads.Generator.seed (String.concat "; " msgs))
      | Ok () -> (
          match Compile.compile program with
          | exception Invalid_argument msg ->
              Error
                (Printf.sprintf "workloads seed=%d: compile failed: %s"
                   wconfig.Workloads.Generator.seed msg)
          | _ -> Ok ()))
