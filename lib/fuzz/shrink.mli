(** Greedy minimization of failing programs.

    Tries one-step reductions (drop a statement, splice an arm or loop
    body in place of its construct, drop a procedure / global / array /
    local, replace an expression by a constant or one of its own
    subexpressions) and commits the first that still passes
    {!Mote_lang.Check} and still satisfies the failure predicate, until a
    fixpoint or the evaluation budget.  Every reduction strictly shrinks
    the AST, so termination needs no fuel. *)

type stats = {
  steps : int;  (** Committed reductions. *)
  evals : int;  (** Failure-predicate evaluations spent. *)
}

val minimize :
  ?max_evals:int ->
  still_fails:(Mote_lang.Ast.program -> bool) ->
  Mote_lang.Ast.program ->
  Mote_lang.Ast.program * stats
(** [minimize ~still_fails p] assumes [p] itself fails; the result is a
    (locally) minimal program that still fails.  [still_fails] is only
    ever called on programs that pass {!Mote_lang.Check}.  Default
    [max_evals] is 2000. *)

val shrink_program : Mote_lang.Ast.program -> Mote_lang.Ast.program list
(** All one-step reductions, coarsest first — exposed for tests. *)
