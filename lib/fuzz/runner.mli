(** The fuzzing loop: deterministic cases, parallel fan-out, shrinking,
    corpus replay.

    Each case is fully determined by [(seed, index)]: its RNG streams come
    from {!Stats.Rng.stream} split once per purpose, the fan-out uses
    {!Par.Pool} (input-order results), and reporting happens after the
    map — so {!run}'s report is byte-identical at any job count, and any
    case replays in isolation. *)

type oracle = Gen_check | Optimize | Rewrite | Em | Convergence | Faults
(** [Gen_check] is the implicit zeroth oracle: every generated program
    must pass {!Mote_lang.Check} and compile. *)

val oracle_name : oracle -> string
val oracle_of_name : string -> oracle option

type case_result = {
  index : int;
  program : Mote_lang.Ast.program;
  verdicts : (oracle * Oracles.verdict) list;
}

val run_case :
  ?params:Oracles.params ->
  ?config:Gen.config ->
  seed:int ->
  int ->
  case_result
(** Generate and judge case [index] under [seed]. *)

type failure = {
  f_case : int;
  f_oracle : oracle;
  f_message : string;
  f_program : Mote_lang.Ast.program;  (** As generated. *)
  f_reduced : Mote_lang.Ast.program;  (** After shrinking. *)
  f_shrink : Shrink.stats;
}

val shrink_failure :
  ?params:Oracles.params ->
  ?max_evals:int ->
  seed:int ->
  index:int ->
  oracle ->
  string ->
  Mote_lang.Ast.program ->
  failure
(** Minimize a failing program while the given oracle still fails under
    the case's exact streams. *)

type report = {
  seed : int;
  cases : int;
  pass : (oracle * int) list;
  skip : (oracle * int) list;
  failures : failure list;
}

val run :
  ?params:Oracles.params ->
  ?config:Gen.config ->
  seed:int ->
  cases:int ->
  jobs:int ->
  unit ->
  report
(** Run the campaign on a fresh {!Par.Pool} of [jobs] domains and shrink
    the first few failures.  The report does not depend on [jobs]. *)

val pp_failure : Format.formatter -> failure -> unit

val pp_report : Format.formatter -> report -> unit
(** Deterministic human-readable report: per-oracle tallies, then each
    failure with its message, shrink statistics, reduced source and a
    self-contained repro line. *)

(** {2 Corpus} *)

type corpus_entry =
  | Fuzz_case of { seed : int; case : int; oracle : oracle option }
      (** Replay one fuzzer case; [None] means no oracle may [Fail]. *)
  | Workloads_case of Workloads.Generator.config
      (** {!Workloads.Generator} output must check and compile. *)

exception Corpus_error of string

val parse_corpus : string -> corpus_entry
(** Parse a [.case] file: ['#'] comments and [key value] lines; see
    [test/corpus/README] for the schema.  @raise Corpus_error. *)

val replay :
  ?params:Oracles.params -> ?config:Gen.config -> corpus_entry -> (unit, string) result
