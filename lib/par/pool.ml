type t = {
  total : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  busy : bool Atomic.t;
}

let max_domains = 128

let default_domains () =
  match Sys.getenv_opt "CODETOMO_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_domains
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Workers sleep on [cond] until the generation counter moves, run the
   published job to exhaustion, then go back to sleep.  A worker that
   misses a generation entirely is fine: jobs self-schedule from an
   atomic counter, so late (or re-run) participants find no work left
   and return immediately. *)
let rec worker_loop t my_gen =
  Mutex.lock t.mutex;
  while t.generation = my_gen && not t.stop do
    Condition.wait t.cond t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let job = t.job in
    Mutex.unlock t.mutex;
    (match job with Some run -> run () | None -> ());
    worker_loop t gen
  end

let create ?domains () =
  let requested = match domains with Some d -> d | None -> default_domains () in
  let total = max 1 (min requested max_domains) in
  let t =
    {
      total;
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      workers = [||];
      busy = Atomic.make false;
    }
  in
  t.workers <- Array.init (total - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let domains t = t.total

let shutdown t =
  Mutex.lock t.mutex;
  let ws = t.workers in
  t.stop <- true;
  t.workers <- [||];
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  Array.iter Domain.join ws

(* Every task is attempted and its outcome recorded per index; the
   exception re-raised afterwards is the lowest-index failure, so the
   observable behaviour does not depend on scheduling.  The serial path
   runs the identical protocol. *)
let collect results =
  let rec first_error i =
    if i >= Array.length results then None
    else
      match results.(i) with
      | Some (Error e) -> Some e
      | _ -> first_error (i + 1)
  in
  match first_error 0 with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None ->
      Array.map
        (function
          | Some (Ok v) -> v
          | _ -> invalid_arg "Par.Pool: task slot left unfilled")
        results

let run_all f a results =
  let n = Array.length a in
  for i = 0 to n - 1 do
    results.(i) <-
      Some
        (match f a.(i) with
        | v -> Ok v
        | exception exn -> Error (exn, Printexc.get_raw_backtrace ()))
  done;
  collect results

let map t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else
    let results = Array.make n None in
    if
      t.total = 1 || n = 1 || t.stop
      || not (Atomic.compare_and_set t.busy false true)
    then run_all f a results
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set t.busy false)
        (fun () ->
          let next = Atomic.make 0 in
          let finished = Atomic.make 0 in
          let done_mutex = Mutex.create () in
          let done_cond = Condition.create () in
          (* Small chunks keep coarse tasks balanced; 1 is the common
             case for the sweep sizes we fan out. *)
          let chunk = max 1 (n / (t.total * 8)) in
          let work () =
            let rec loop () =
              let start = Atomic.fetch_and_add next chunk in
              if start < n then begin
                let stop_ = min n (start + chunk) in
                for i = start to stop_ - 1 do
                  results.(i) <-
                    Some
                      (match f a.(i) with
                      | v -> Ok v
                      | exception exn -> Error (exn, Printexc.get_raw_backtrace ()));
                  (* Whoever completes the last task wakes the caller;
                     blocking (rather than spinning) matters when cores
                     are scarce and a worker still owns the tail task. *)
                  if Atomic.fetch_and_add finished 1 = n - 1 then begin
                    Mutex.lock done_mutex;
                    Condition.broadcast done_cond;
                    Mutex.unlock done_mutex
                  end
                done;
                loop ()
              end
            in
            loop ()
          in
          Mutex.lock t.mutex;
          t.job <- Some work;
          t.generation <- t.generation + 1;
          Condition.broadcast t.cond;
          Mutex.unlock t.mutex;
          work ();
          Mutex.lock done_mutex;
          while Atomic.get finished < n do
            Condition.wait done_cond done_mutex
          done;
          Mutex.unlock done_mutex;
          collect results)

let map_list t f l = Array.to_list (map t f (Array.of_list l))

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
