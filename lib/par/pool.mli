(** Fixed-size domain pool with deterministic fan-out.

    A pool owns [domains - 1] worker domains (the caller is the last
    participant) that stay alive across jobs, so repeated [map] calls
    pay the domain-spawn cost once.  Scheduling is dynamic — workers
    claim chunks of the index space from a shared atomic counter — but
    results are written into per-index slots, so the output order is
    the input order no matter how work was interleaved.  Combined with
    per-task seeding (see {!Stats.Rng.stream}), this makes parallel
    runs bit-identical to serial ones.

    Exceptions raised by tasks are captured per index; after every task
    has been attempted, the exception of the {e lowest failing index}
    is re-raised with its original backtrace — again independent of
    scheduling.

    [map] is not reentrant in the parallel sense: a task that calls
    back into its own pool (nested maps) runs that inner map serially
    instead of deadlocking.  Likewise two top-level maps on one pool
    from different domains serialize the loser.  Both still honour the
    ordering and exception contracts. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] workers.  [domains]
    defaults to {!default_domains}; values are clamped to [1, 128].
    At [domains = 1] no worker is spawned and every map runs on the
    caller — the serial fast path. *)

val domains : t -> int
(** Total parallelism, caller included. *)

val default_domains : unit -> int
(** [CODETOMO_DOMAINS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f a] is [Array.map f a], computed by all participants.
    Result order is input order; if any task raised, the lowest-index
    exception is re-raised after all tasks have run. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list pool f l] is [List.map f l] with the same contract as
    {!map}. *)

val shutdown : t -> unit
(** Join the workers.  Idempotent; subsequent maps run serially. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down on exit,
    whether [f] returns or raises. *)
