(** Multi-node simulation: several motes connected by lossy, delayed
    radio links.

    Time advances in fixed quanta: every node runs up to the quantum
    boundary, transmissions drained in that quantum are routed along the
    sender's outgoing links (Bernoulli loss, per-link delay) and injected
    into the receivers when their delivery time falls due.  The quantum is
    the simulation's lookahead, so deliveries are accurate to within one
    quantum — keep it at or below the smallest link delay you care about.

    Nodes are identified by the index of their registration order. *)

type node_id = int

type link = {
  src : node_id;
  dst : node_id;
  loss : float;  (** Probability a word is dropped in flight. *)
  delay : int;  (** Propagation + MAC delay in cycles. *)
}

type stats = {
  sent : int;  (** Words handed to the network layer. *)
  delivered : int;  (** Words injected into receivers (per link copy). *)
  lost : int;
  per_link : ((node_id * node_id) * int) list;  (** Delivered per link. *)
}

type t

val create : ?seed:int -> nodes:Node.t list -> links:link list -> unit -> t
(** @raise Invalid_argument on dangling link endpoints, loss outside
    [0,1], or negative delay. *)

val node : t -> node_id -> Node.t

val run : ?quantum:int -> t -> until:int -> stats
(** Advance every node's clock to [until] (default quantum 1000 cycles).
    Cumulative statistics since creation. *)
