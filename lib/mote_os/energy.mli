(** Energy accounting — the reason any of this matters on a mote.

    A sensor node spends its battery on three things we can meter from a
    run: CPU-active cycles, sleep cycles, and radio transmissions.  The
    default coefficients are TelosB-flavoured (1 MHz-normalized): 1.8 mA
    active, 5.1 µA sleep at 3 V, ~2 µJ per transmitted payload word.
    Absolute joules are not the point — the {e ratio} between two layouts
    of the same program is, and it only depends on the cycle split. *)

type coefficients = {
  active_nj_per_cycle : float;  (** nanojoules per CPU-active cycle. *)
  sleep_nj_per_cycle : float;  (** nanojoules per idle (sleep) cycle. *)
  tx_nj_per_word : float;  (** nanojoules per transmitted payload word. *)
}

val telosb : coefficients

type report = {
  active_mj : float;  (** millijoules. *)
  sleep_mj : float;
  radio_mj : float;
  total_mj : float;
}

val of_run : ?coefficients:coefficients -> Node.run_stats -> tx_words:int -> report

val of_parts :
  ?coefficients:coefficients ->
  busy_cycles:int ->
  idle_cycles:int ->
  tx_words:int ->
  unit ->
  report

val lifetime_days : ?battery_mah:float -> ?volts:float -> report -> horizon_cycles:int -> cycles_per_second:int -> float
(** Projected battery life if the measured window is representative:
    battery energy (default 2×AA ≈ 2500 mAh at 3 V) divided by the
    window's average power.  [cycles_per_second] is the CPU clock (e.g.
    1_000_000). *)

val pp : Format.formatter -> report -> unit
