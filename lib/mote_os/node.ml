module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices

type task_source =
  | Boot
  | Periodic of { period : int; offset : int }
  | On_radio_rx

type task = { proc : string; source : task_source }

type run_stats = {
  tasks_run : (string * int) list;
  tasks_dropped : int;
  packets_delivered : int;
  total_cycles : int;
  idle_cycles : int;
  busy_cycles : int;
}

let invocations stats proc = Option.value ~default:0 (List.assoc_opt proc stats.tasks_run)

type timer_state = { mutable next_fire : int; period : int; timer_task : string }

type t = {
  machine : Machine.t;
  env : Env.t;
  queue : string Queue.t;
  queue_capacity : int;
  timers : timer_state list;
  radio_tasks : string list;
  (* Radio arrivals are generated lazily in chunks up to this cycle. *)
  mutable radio_horizon : int;
  mutable radio_pending : (int * int) list;
  (* Accumulated statistics. *)
  run_counts : (string, int) Hashtbl.t;
  mutable dropped : int;
  mutable packets : int;
  mutable idle_cycles : int;
  created_at_cycles : int;
  mutable tx_drained : int;
}

let radio_chunk = 1 lsl 17

let create ~machine ~env ~tasks ?(queue_capacity = 16) () =
  if queue_capacity <= 0 then invalid_arg "Node.create: queue capacity must be positive";
  let program = Machine.program machine in
  List.iter
    (fun { proc; _ } ->
      if Mote_isa.Program.find_proc program proc = None then
        invalid_arg (Printf.sprintf "Node.create: no procedure %S in binary" proc))
    tasks;
  Env.attach env (Machine.devices machine);
  (* Boot-time global initialization, if the compiler emitted one. *)
  (match Mote_isa.Program.find_proc program Mote_lang.Compile.init_proc_name with
  | Some _ -> ignore (Machine.run_proc machine Mote_lang.Compile.init_proc_name)
  | None -> ());
  let queue = Queue.create () in
  let timers =
    List.filter_map
      (fun { proc; source } ->
        match source with
        | Periodic { period; offset } ->
            if period <= 0 then invalid_arg "Node.create: period must be positive";
            Some { next_fire = offset; period; timer_task = proc }
        | Boot | On_radio_rx -> None)
      tasks
  in
  let radio_tasks =
    List.filter_map
      (fun { proc; source } -> match source with On_radio_rx -> Some proc | _ -> None)
      tasks
  in
  let t =
    {
      machine;
      env;
      queue;
      queue_capacity;
      timers;
      radio_tasks;
      radio_horizon = 0;
      radio_pending = [];
      run_counts = Hashtbl.create 8;
      dropped = 0;
      packets = 0;
      idle_cycles = 0;
      created_at_cycles = Machine.cycles machine;
      tx_drained = 0;
    }
  in
  List.iter
    (fun { proc; source } -> match source with Boot -> Queue.push proc queue | _ -> ())
    tasks;
  t

let machine t = t.machine

let cycles t = Machine.cycles t.machine

let post t proc =
  if Queue.length t.queue >= t.queue_capacity then t.dropped <- t.dropped + 1
  else Queue.push proc t.queue

(* Extend the pre-generated radio arrival schedule to cover [upto]. *)
let extend_radio t upto =
  while t.radio_horizon <= upto do
    let from_cycle = t.radio_horizon in
    let to_cycle = t.radio_horizon + radio_chunk in
    let arrivals = Env.radio_arrivals t.env ~from_cycle ~to_cycle in
    t.radio_pending <- t.radio_pending @ arrivals;
    t.radio_horizon <- to_cycle
  done

(* Deliver every event with a timestamp <= now. *)
let deliver_due t now =
  List.iter
    (fun timer ->
      while timer.next_fire <= now do
        post t timer.timer_task;
        timer.next_fire <- timer.next_fire + timer.period
      done)
    t.timers;
  extend_radio t now;
  let due, future = List.partition (fun (at, _) -> at <= now) t.radio_pending in
  t.radio_pending <- future;
  List.iter
    (fun (_, payload) ->
      Devices.radio_push_rx (Machine.devices t.machine) payload;
      t.packets <- t.packets + 1;
      List.iter (fun proc -> post t proc) t.radio_tasks)
    due

let inject_packet t payload =
  Devices.radio_push_rx (Machine.devices t.machine) payload;
  t.packets <- t.packets + 1;
  List.iter (fun proc -> post t proc) t.radio_tasks

let drain_tx t =
  let log = Devices.tx_log (Machine.devices t.machine) in
  let fresh = List.filteri (fun i _ -> i >= t.tx_drained) log in
  t.tx_drained <- List.length log;
  fresh

let next_event_time t =
  let timer_next =
    List.fold_left (fun acc timer -> Stdlib.min acc timer.next_fire) max_int t.timers
  in
  match t.radio_pending with
  | (at, _) :: _ -> Stdlib.min timer_next at
  | [] -> timer_next

let run ?(fuel_per_task = 2_000_000) t ~until =
  let continue = ref true in
  while !continue && Machine.cycles t.machine < until do
    let now = Machine.cycles t.machine in
    deliver_due t now;
    match Queue.take_opt t.queue with
    | Some proc ->
        ignore (Machine.run_proc ~fuel:fuel_per_task t.machine proc);
        let count = Option.value ~default:0 (Hashtbl.find_opt t.run_counts proc) in
        Hashtbl.replace t.run_counts proc (count + 1)
    | None ->
        extend_radio t (Stdlib.min until (now + radio_chunk));
        let next = next_event_time t in
        if next = max_int || next >= until then begin
          (* Nothing left to do before the deadline: sleep through it. *)
          t.idle_cycles <- t.idle_cycles + (until - now);
          Machine.idle t.machine (until - now);
          continue := false
        end
        else begin
          t.idle_cycles <- t.idle_cycles + (next - now);
          Machine.idle t.machine (next - now)
        end
  done;
  let total_cycles = Machine.cycles t.machine - t.created_at_cycles in
  {
    tasks_run =
      Hashtbl.fold (fun proc n acc -> (proc, n) :: acc) t.run_counts [] |> List.sort compare;
    tasks_dropped = t.dropped;
    packets_delivered = t.packets;
    total_cycles;
    idle_cycles = t.idle_cycles;
    busy_cycles = total_cycles - t.idle_cycles;
  }
