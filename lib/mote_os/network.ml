type node_id = int

type link = { src : node_id; dst : node_id; loss : float; delay : int }

type stats = {
  sent : int;
  delivered : int;
  lost : int;
  per_link : ((node_id * node_id) * int) list;
}

type t = {
  nodes : Node.t array;
  links : link list;
  rng : Stats.Rng.t;
  (* Deliveries scheduled but not yet due: (due_cycle, dst, payload). *)
  mutable in_flight : (int * node_id * int) list;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  link_counts : (node_id * node_id, int) Hashtbl.t;
}

let create ?(seed = 17) ~nodes ~links () =
  let nodes = Array.of_list nodes in
  let n = Array.length nodes in
  List.iter
    (fun { src; dst; loss; delay } ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Network.create: link endpoint out of range";
      if src = dst then invalid_arg "Network.create: self link";
      if loss < 0.0 || loss > 1.0 then invalid_arg "Network.create: loss outside [0,1]";
      if delay < 0 then invalid_arg "Network.create: negative delay")
    links;
  {
    nodes;
    links;
    rng = Stats.Rng.create seed;
    in_flight = [];
    sent = 0;
    delivered = 0;
    lost = 0;
    link_counts = Hashtbl.create 8;
  }

let node t id = t.nodes.(id)

let bump_link t src dst =
  let key = (src, dst) in
  Hashtbl.replace t.link_counts key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.link_counts key))

let route t ~now ~src payload =
  t.sent <- t.sent + 1;
  List.iter
    (fun link ->
      if link.src = src then
        if Stats.Rng.bernoulli t.rng link.loss then t.lost <- t.lost + 1
        else begin
          t.in_flight <- (now + link.delay, link.dst, payload) :: t.in_flight;
          bump_link t src link.dst
        end)
    t.links

let deliver_due t now =
  let due, future = List.partition (fun (at, _, _) -> at <= now) t.in_flight in
  t.in_flight <- future;
  (* Stable order: by due time so repeated runs are deterministic. *)
  List.sort compare due
  |> List.iter (fun (_, dst, payload) ->
         Node.inject_packet t.nodes.(dst) payload;
         t.delivered <- t.delivered + 1)

let run ?(quantum = 1000) t ~until =
  if quantum <= 0 then invalid_arg "Network.run: quantum must be positive";
  let clock = ref (Array.fold_left (fun acc n -> Stdlib.min acc (Node.cycles n)) max_int t.nodes) in
  while !clock < until do
    let slice_end = Stdlib.min until (!clock + quantum) in
    deliver_due t !clock;
    Array.iteri
      (fun src node ->
        ignore (Node.run node ~until:slice_end);
        let now = Node.cycles node in
        List.iter (fun payload -> route t ~now ~src payload) (Node.drain_tx node))
      t.nodes;
    clock := slice_end
  done;
  deliver_due t !clock;
  {
    sent = t.sent;
    delivered = t.delivered;
    lost = t.lost;
    per_link =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.link_counts [] |> List.sort compare;
  }
