(** A simulated sensor node: TinyOS-style run-to-completion tasks over the
    CT16 machine, driven by timer and radio events from an environment.

    Time is the machine's cycle counter.  Tasks are procedure names in the
    loaded binary; each execution is one procedure invocation — exactly
    the unit Code Tomography times.  The task queue is bounded (TinyOS
    posts fail when the queue is full); drops are counted, not fatal. *)

type task_source =
  | Boot  (** Posted once when the node starts. *)
  | Periodic of { period : int; offset : int }
      (** Posted every [period] cycles, first at [offset]. *)
  | On_radio_rx
      (** Posted once per arriving packet (payload is queued on the radio
          device before the task runs). *)

type task = { proc : string; source : task_source }

type run_stats = {
  tasks_run : (string * int) list;  (** Invocation count per procedure. *)
  tasks_dropped : int;
  packets_delivered : int;
  total_cycles : int;
  idle_cycles : int;
  busy_cycles : int;
}

val invocations : run_stats -> string -> int

type t

val create :
  machine:Mote_machine.Machine.t ->
  env:Env.t ->
  tasks:task list ->
  ?queue_capacity:int ->
  unit ->
  t
(** Attaches the environment's sensors to the machine's devices and runs
    the compiled [__init] procedure if the binary has one.  Default queue
    capacity 16.
    @raise Invalid_argument if a task names a procedure missing from the
    binary. *)

val machine : t -> Mote_machine.Machine.t

val run : ?fuel_per_task:int -> t -> until:int -> run_stats
(** Execute until the cycle clock reaches [until] (tasks run to
    completion, so the clock may overshoot by the last task's length).
    Can be called repeatedly to extend a run; statistics accumulate from
    node creation. *)

val cycles : t -> int
(** The node's current cycle clock. *)

val inject_packet : t -> int -> unit
(** Deliver one inbound payload word from outside the node (another node's
    transmission, routed by {!Network}): queues it on the radio device and
    posts every [On_radio_rx] task. *)

val drain_tx : t -> int list
(** Words the node transmitted since the last drain (oldest first). *)
