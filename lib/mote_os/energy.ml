type coefficients = {
  active_nj_per_cycle : float;
  sleep_nj_per_cycle : float;
  tx_nj_per_word : float;
}

(* 3 V supply, 1.8 mA active, 5.1 uA sleep, at a 1 MHz cycle clock:
   5.4 nJ per active cycle, 0.0153 nJ per sleep cycle.  A CC2420-style
   radio spends roughly 2 uJ shipping one 16-bit payload word (incl. MAC
   framing amortization). *)
let telosb =
  { active_nj_per_cycle = 5.4; sleep_nj_per_cycle = 0.0153; tx_nj_per_word = 2000.0 }

type report = { active_mj : float; sleep_mj : float; radio_mj : float; total_mj : float }

let of_parts ?(coefficients = telosb) ~busy_cycles ~idle_cycles ~tx_words () =
  if busy_cycles < 0 || idle_cycles < 0 || tx_words < 0 then
    invalid_arg "Energy.of_parts: negative input";
  let nj_to_mj v = v /. 1e6 in
  let active_mj = nj_to_mj (float_of_int busy_cycles *. coefficients.active_nj_per_cycle) in
  let sleep_mj = nj_to_mj (float_of_int idle_cycles *. coefficients.sleep_nj_per_cycle) in
  let radio_mj = nj_to_mj (float_of_int tx_words *. coefficients.tx_nj_per_word) in
  { active_mj; sleep_mj; radio_mj; total_mj = active_mj +. sleep_mj +. radio_mj }

let of_run ?coefficients (stats : Node.run_stats) ~tx_words =
  of_parts ?coefficients ~busy_cycles:stats.Node.busy_cycles
    ~idle_cycles:stats.Node.idle_cycles ~tx_words ()

let lifetime_days ?(battery_mah = 2500.0) ?(volts = 3.0) report ~horizon_cycles
    ~cycles_per_second =
  if horizon_cycles <= 0 || cycles_per_second <= 0 then
    invalid_arg "Energy.lifetime_days: non-positive horizon or clock";
  let window_seconds = float_of_int horizon_cycles /. float_of_int cycles_per_second in
  let avg_power_mw = report.total_mj /. window_seconds in
  (* Battery energy in millijoules: mAh * 3600 * V. *)
  let battery_mj = battery_mah *. 3600.0 *. volts in
  battery_mj /. avg_power_mw /. 86_400.0

let pp fmt r =
  Format.fprintf fmt "active %.3f mJ + sleep %.3f mJ + radio %.3f mJ = %.3f mJ"
    r.active_mj r.sleep_mj r.radio_mj r.total_mj
