open Ast

(* The machine's 16-bit two's-complement arithmetic, so folded results are
   bit-identical to executed ones. *)
let wrap v = ((v + 32768) land 0xFFFF) - 32768

let eval_bin op a b =
  wrap
    (match op with
    | Add -> a + b
    | Sub -> a - b
    | Mul -> a * b
    | BAnd -> a land b
    | BOr -> a lor b
    | BXor -> a lxor b
    | Shl -> a lsl (b land 15)
    | Shr -> (a land 0xFFFF) lsr (b land 15))

let eval_rel op a b =
  let holds =
    match op with
    | Req -> a = b
    | Rne -> a <> b
    | Rlt -> a < b
    | Rle -> a <= b
    | Rgt -> a > b
    | Rge -> a >= b
  in
  if holds then 1 else 0

let rec has_effects = function
  | Int _ | Var _ -> false
  | Read_sensor _ | Radio_rx | Timer_now | Call_fn _ -> true
  | Bin (_, a, b) | Rel (_, a, b) | And (a, b) | Or (a, b) -> has_effects a || has_effects b
  | Not e | Arr_get (_, e) -> has_effects e

let rec expr e =
  match e with
  | Int _ | Var _ | Read_sensor _ | Radio_rx | Timer_now -> e
  | Bin (op, a, b) -> (
      match (expr a, expr b) with
      | Int x, Int y -> Int (eval_bin op x y)
      | Int 0, b' when op = Add -> b'
      | a', Int 0 when op = Add || op = Sub || op = BOr || op = BXor || op = Shl || op = Shr
        ->
          a'
      | a', Int 1 when op = Mul -> a'
      | Int 1, b' when op = Mul -> b'
      | a', b' -> Bin (op, a', b'))
  | Rel (op, a, b) -> (
      match (expr a, expr b) with
      | Int x, Int y -> Int (eval_rel op x y)
      | a', b' -> Rel (op, a', b'))
  | Not inner -> (
      (* No double-negation rule: [Not (Not e)] normalizes e to 0/1, which
         [e] itself need not be. *)
      match expr inner with
      | Int 0 -> Int 1
      | Int _ -> Int 0
      | inner' -> Not inner')
  | And (a, b) -> (
      match expr a with
      | Int 0 -> Int 0
      (* A constant-true left side still cannot drop [b]'s 0/1-ness;
         keep the And unless b is constant too. *)
      | Int _ -> (
          match expr b with Int 0 -> Int 0 | Int _ -> Int 1 | b' -> And (Int 1, b'))
      | a' -> And (a', expr b))
  | Or (a, b) -> (
      match expr a with
      | Int x when x <> 0 -> Int 1
      | Int 0 -> (
          match expr b with Int 0 -> Int 0 | Int _ -> Int 1 | b' -> Or (Int 0, b'))
      | a' -> Or (a', expr b))
  | Arr_get (name, idx) -> Arr_get (name, expr idx)
  | Call_fn (f, args) -> Call_fn (f, List.map expr args)

let rec stmt s =
  match s with
  | Assign (x, e) -> [ Assign (x, expr e) ]
  | Arr_set (a, idx, value) -> [ Arr_set (a, expr idx, expr value) ]
  | Radio_tx e -> [ Radio_tx (expr e) ]
  | Led e -> [ Led (expr e) ]
  | Return (Some e) -> [ Return (Some (expr e)) ]
  | Return None -> [ Return None ]
  | Break -> [ Break ]
  | Call (f, args) -> [ Call (f, List.map expr args) ]
  | If (cond, then_block, else_block) -> (
      match expr cond with
      | Int c when not (has_effects cond) ->
          block (if c <> 0 then then_block else else_block)
      | cond' -> [ If (cond', block then_block, block else_block) ])
  | While (cond, body) -> (
      match expr cond with
      | Int 0 when not (has_effects cond) -> []
      | cond' -> [ While (cond', block body) ])

and block stmts = List.concat_map stmt stmts

let program (p : Ast.program) =
  { p with procs = List.map (fun pr -> { pr with body = block pr.body }) p.procs }
