(** Abstract syntax of the mote mini-language.

    A deliberately nesC-shaped subset: 16-bit integer variables, procedures
    without recursion, structured control flow, and builtins for the mote
    peripherals.  Programs are built in OCaml via the {!Dsl} combinators
    (the workloads library is written in it); there is no concrete
    parser — the paper's subject is what happens {e after} the front
    end. *)

type binop = Add | Sub | Mul | BAnd | BOr | BXor | Shl | Shr
type relop = Req | Rne | Rlt | Rle | Rgt | Rge

type expr =
  | Int of int
  | Var of string
  | Bin of binop * expr * expr
  | Rel of relop * expr * expr  (** 1 when the relation holds, else 0. *)
  | Not of expr
  | And of expr * expr  (** Short-circuit. *)
  | Or of expr * expr  (** Short-circuit. *)
  | Read_sensor of int  (** ADC channel read — the nondeterministic input. *)
  | Radio_rx  (** Next queued payload word, 0 when none. *)
  | Timer_now
  | Call_fn of string * expr list
  | Arr_get of string * expr
      (** Global array read; indices are taken modulo nothing — out-of-
          range indices fault at runtime like any wild pointer would. *)

type stmt =
  | Assign of string * expr
  | Arr_set of string * expr * expr  (** [Arr_set (a, index, value)]. *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Break  (** Exit the innermost enclosing loop. *)
  | Call of string * expr list  (** Procedure call for effect. *)
  | Radio_tx of expr
  | Led of expr
  | Return of expr option

type proc = {
  name : string;
  params : string list;
  locals : string list;
  body : stmt list;
}

type program = {
  globals : (string * int) list;  (** Name and boot-time initial value. *)
  arrays : (string * int) list;  (** Name and size in words (zeroed at boot). *)
  procs : proc list;
}

val rel_negate : relop -> relop

val expr_calls : expr -> string list
val stmt_calls : stmt -> string list
(** Callee names appearing anywhere inside (duplicates preserved). *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_proc : Format.formatter -> proc -> unit
val pp_program : Format.formatter -> program -> unit

(** Combinators for writing programs inline.  [Dsl.(v "x" <: i 10)] etc. *)
module Dsl : sig
  val i : int -> expr
  val v : string -> expr
  val ( +: ) : expr -> expr -> expr
  val ( -: ) : expr -> expr -> expr
  val ( *: ) : expr -> expr -> expr
  val ( &: ) : expr -> expr -> expr
  val ( |: ) : expr -> expr -> expr
  val ( ^: ) : expr -> expr -> expr
  val ( <<: ) : expr -> expr -> expr
  val ( >>: ) : expr -> expr -> expr
  val ( =: ) : expr -> expr -> expr
  val ( <>: ) : expr -> expr -> expr
  val ( <: ) : expr -> expr -> expr
  val ( <=: ) : expr -> expr -> expr
  val ( >: ) : expr -> expr -> expr
  val ( >=: ) : expr -> expr -> expr
  val ( &&: ) : expr -> expr -> expr
  val ( ||: ) : expr -> expr -> expr
  val not_ : expr -> expr
  val sensor : int -> expr
  val radio_rx : expr
  val now : expr
  val fn : string -> expr list -> expr
  val at : string -> expr -> expr
  (** Array read: [at "cache" (v "i")]. *)

  val set : string -> expr -> stmt

  val set_at : string -> expr -> expr -> stmt
  (** Array write: [set_at "cache" index value]. *)

  val if_ : expr -> stmt list -> stmt list -> stmt
  val when_ : expr -> stmt list -> stmt
  (** [if_] with an empty else. *)

  val while_ : expr -> stmt list -> stmt
  val break_ : stmt
  val callp : string -> expr list -> stmt
  val send : expr -> stmt
  val led : expr -> stmt
  val return : expr -> stmt
  val return_unit : stmt

  val proc : string -> params:string list -> locals:string list -> stmt list -> proc
end
