(** Semantic checks run before code generation.

    The rules mirror nesC's restrictions on mote code: every name must
    resolve, call arities must match, and the call graph must be acyclic —
    recursion is rejected because frames are allocated statically. *)

val program : Ast.program -> (unit, string list) result
(** [Ok ()] or [Error messages] listing every violation found. *)

val check_exn : Ast.program -> unit
(** @raise Invalid_argument with the joined messages on any violation. *)
