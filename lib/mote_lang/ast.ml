type binop = Add | Sub | Mul | BAnd | BOr | BXor | Shl | Shr
type relop = Req | Rne | Rlt | Rle | Rgt | Rge

type expr =
  | Int of int
  | Var of string
  | Bin of binop * expr * expr
  | Rel of relop * expr * expr
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Read_sensor of int
  | Radio_rx
  | Timer_now
  | Call_fn of string * expr list
  | Arr_get of string * expr

type stmt =
  | Assign of string * expr
  | Arr_set of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Break
  | Call of string * expr list
  | Radio_tx of expr
  | Led of expr
  | Return of expr option

type proc = { name : string; params : string list; locals : string list; body : stmt list }

type program = { globals : (string * int) list; arrays : (string * int) list; procs : proc list }

let rel_negate = function
  | Req -> Rne
  | Rne -> Req
  | Rlt -> Rge
  | Rle -> Rgt
  | Rgt -> Rle
  | Rge -> Rlt

let rec expr_calls = function
  | Int _ | Var _ | Read_sensor _ | Radio_rx | Timer_now -> []
  | Bin (_, a, b) | Rel (_, a, b) | And (a, b) | Or (a, b) -> expr_calls a @ expr_calls b
  | Not e | Arr_get (_, e) -> expr_calls e
  | Call_fn (name, args) -> name :: List.concat_map expr_calls args

let rec stmt_calls = function
  | Assign (_, e) | Radio_tx e | Led e -> expr_calls e
  | Arr_set (_, idx, value) -> expr_calls idx @ expr_calls value
  | Return (Some e) -> expr_calls e
  | Return None | Break -> []
  | If (c, a, b) ->
      expr_calls c @ List.concat_map stmt_calls a @ List.concat_map stmt_calls b
  | While (c, body) -> expr_calls c @ List.concat_map stmt_calls body
  | Call (name, args) -> name :: List.concat_map expr_calls args

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let relop_str = function
  | Req -> "=="
  | Rne -> "!="
  | Rlt -> "<"
  | Rle -> "<="
  | Rgt -> ">"
  | Rge -> ">="

let rec pp_expr fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Var x -> Format.fprintf fmt "%s" x
  | Bin (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Rel (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (relop_str op) pp_expr b
  | Not e -> Format.fprintf fmt "!%a" pp_expr e
  | And (a, b) -> Format.fprintf fmt "(%a && %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf fmt "(%a || %a)" pp_expr a pp_expr b
  | Read_sensor ch -> Format.fprintf fmt "sensor(%d)" ch
  | Radio_rx -> Format.fprintf fmt "radio_rx()"
  | Timer_now -> Format.fprintf fmt "now()"
  | Call_fn (f, args) ->
      Format.fprintf fmt "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_expr)
        args
  | Arr_get (a, idx) -> Format.fprintf fmt "%s[%a]" a pp_expr idx

let rec pp_stmt fmt = function
  | Assign (x, e) -> Format.fprintf fmt "%s = %a;" x pp_expr e
  | Arr_set (a, idx, value) ->
      Format.fprintf fmt "%s[%a] = %a;" a pp_expr idx pp_expr value
  | If (c, a, []) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block a
  | If (c, a, b) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c
        pp_block a pp_block b
  | While (c, body) ->
      Format.fprintf fmt "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_block body
  | Call (f, args) ->
      Format.fprintf fmt "%s(%a);" f
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_expr)
        args
  | Radio_tx e -> Format.fprintf fmt "radio_tx(%a);" pp_expr e
  | Led e -> Format.fprintf fmt "led(%a);" pp_expr e
  | Return (Some e) -> Format.fprintf fmt "return %a;" pp_expr e
  | Return None -> Format.fprintf fmt "return;"
  | Break -> Format.fprintf fmt "break;"

and pp_block fmt stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt stmts

let pp_proc fmt p =
  Format.fprintf fmt "@[<v 2>proc %s(%s) locals(%s) {@,%a@]@,}" p.name
    (String.concat ", " p.params)
    (String.concat ", " p.locals)
    pp_block p.body

let pp_program fmt prog =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (g, init) -> Format.fprintf fmt "global %s = %d;@," g init) prog.globals;
  List.iter (fun (a, size) -> Format.fprintf fmt "array %s[%d];@," a size) prog.arrays;
  List.iter (fun p -> Format.fprintf fmt "%a@," pp_proc p) prog.procs;
  Format.fprintf fmt "@]"

module Dsl = struct
  let i n = Int n
  let v x = Var x
  let ( +: ) a b = Bin (Add, a, b)
  let ( -: ) a b = Bin (Sub, a, b)
  let ( *: ) a b = Bin (Mul, a, b)
  let ( &: ) a b = Bin (BAnd, a, b)
  let ( |: ) a b = Bin (BOr, a, b)
  let ( ^: ) a b = Bin (BXor, a, b)
  let ( <<: ) a b = Bin (Shl, a, b)
  let ( >>: ) a b = Bin (Shr, a, b)
  let ( =: ) a b = Rel (Req, a, b)
  let ( <>: ) a b = Rel (Rne, a, b)
  let ( <: ) a b = Rel (Rlt, a, b)
  let ( <=: ) a b = Rel (Rle, a, b)
  let ( >: ) a b = Rel (Rgt, a, b)
  let ( >=: ) a b = Rel (Rge, a, b)
  let ( &&: ) a b = And (a, b)
  let ( ||: ) a b = Or (a, b)
  let not_ e = Not e
  let sensor ch = Read_sensor ch
  let radio_rx = Radio_rx
  let now = Timer_now
  let fn name args = Call_fn (name, args)
  let at a idx = Arr_get (a, idx)

  let set x e = Assign (x, e)
  let set_at a idx value = Arr_set (a, idx, value)
  let if_ c a b = If (c, a, b)
  let when_ c a = If (c, a, [])
  let while_ c body = While (c, body)
  let break_ = Break
  let callp name args = Call (name, args)
  let send e = Radio_tx e
  let led e = Led e
  let return e = Return (Some e)
  let return_unit = Return None

  let proc name ~params ~locals body = { name; params; locals; body }
end
