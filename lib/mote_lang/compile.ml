open Ast
module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm

type t = {
  items : Asm.item list;
  program : Mote_isa.Program.t;
  global_addrs : (string * int) list;
  array_addrs : (string * int) list;
  frames : (string * (string * int) list) list;
}

let init_proc_name = "__init"

(* Register budget: r0..r11 temporaries, r12 address scratch, r13 reserved
   for instrumentation, r14 spare, r15 return value. *)
let max_temp = 11
let addr_reg = 12
let ret_reg = 15

(* Static data starts above a small scratch area. *)
let data_base = 16

let relop_cond = function
  | Req -> Isa.Eq
  | Rne -> Isa.Ne
  | Rlt -> Isa.Lt
  | Rle -> Isa.Le
  | Rgt -> Isa.Gt
  | Rge -> Isa.Ge

let binop_alu = function
  | Add -> Isa.Add
  | Sub -> Isa.Sub
  | Mul -> Isa.Mul
  | BAnd -> Isa.And
  | BOr -> Isa.Or
  | BXor -> Isa.Xor
  | Shl -> Isa.Shl
  | Shr -> Isa.Shr

type env = {
  global_addrs : (string * int) list;
  array_addrs : (string * int) list;
  frames : (string * (string * int) list) list;
  procs : (string * Ast.proc) list;
}

let lookup_var env ~proc name =
  match List.assoc_opt name (List.assoc proc env.frames) with
  | Some addr -> addr
  | None -> (
      match List.assoc_opt name env.global_addrs with
      | Some addr -> addr
      | None -> raise Not_found)

(* Fits the Movi immediate (we allow full 16-bit signed range). *)
let check_imm n =
  if n < -32768 || n > 65535 then
    invalid_arg (Printf.sprintf "Compile: immediate %d out of 16-bit range" n)

let layout (prog : Ast.program) =
  let next = ref data_base in
  let alloc () =
    let a = !next in
    incr next;
    a
  in
  let global_addrs = List.map (fun (g, _) -> (g, alloc ())) prog.globals in
  let frames =
    List.map
      (fun p -> (p.name, List.map (fun v -> (v, alloc ())) (p.params @ p.locals)))
      prog.procs
  in
  let array_addrs =
    List.map
      (fun (a, size) ->
        let base = !next in
        next := !next + size;
        (a, base))
      prog.arrays
  in
  (global_addrs, array_addrs, frames)

type emitter = {
  mutable rev_items : Asm.item list;
  mutable next_label : int;
  proc : string;
  mutable loop_exits : string list; (* innermost first, for Break *)
}

let emit e item = e.rev_items <- item :: e.rev_items
let emit_i e ins = emit e (Asm.I ins)

let fresh_label e hint =
  let n = e.next_label in
  e.next_label <- n + 1;
  Printf.sprintf "%s$%s%d" e.proc hint n

let load_var e env x dst =
  let addr = lookup_var env ~proc:e.proc x in
  emit_i e (Isa.Movi (addr_reg, addr));
  emit_i e (Isa.Ld (dst, addr_reg, 0))

let store_var e env x src =
  let addr = lookup_var env ~proc:e.proc x in
  emit_i e (Isa.Movi (addr_reg, addr));
  emit_i e (Isa.St (addr_reg, 0, src))

let store_to_addr e addr src =
  emit_i e (Isa.Movi (addr_reg, addr));
  emit_i e (Isa.St (addr_reg, 0, src))

let rec compile_expr e env expr dst =
  if dst > max_temp then invalid_arg "Compile: expression too deep (register overflow)";
  match expr with
  | Int n ->
      check_imm n;
      emit_i e (Isa.Movi (dst, n))
  | Var x -> load_var e env x dst
  | Bin (op, a, Int n) ->
      check_imm n;
      compile_expr e env a dst;
      emit_i e (Isa.Alui (binop_alu op, dst, dst, n))
  | Bin (op, a, b) ->
      compile_expr e env a dst;
      compile_expr e env b (dst + 1);
      emit_i e (Isa.Alu (binop_alu op, dst, dst, dst + 1))
  | Rel (op, a, b) ->
      compile_rel_value e env op a b dst
  | Not inner ->
      compile_expr e env inner dst;
      let l_end = fresh_label e "not" in
      emit_i e (Isa.Cmpi (dst, 0));
      emit_i e (Isa.Movi (dst, 1));
      emit_i e (Isa.Br (Isa.Eq, l_end));
      emit_i e (Isa.Movi (dst, 0));
      emit e (Asm.Label l_end)
  | And _ | Or _ ->
      (* Materialize short-circuit booleans through the condition
         compiler. *)
      let l_false = fresh_label e "false" and l_end = fresh_label e "end" in
      compile_cond_false e env expr ~false_label:l_false ~dst;
      emit_i e (Isa.Movi (dst, 1));
      emit_i e (Isa.Jmp l_end);
      emit e (Asm.Label l_false);
      emit_i e (Isa.Movi (dst, 0));
      emit e (Asm.Label l_end)
  | Read_sensor ch -> emit_i e (Isa.In (dst, Isa.P_sensor ch))
  | Radio_rx -> emit_i e (Isa.In (dst, Isa.P_radio_rx))
  | Timer_now -> emit_i e (Isa.In (dst, Isa.P_timer))
  | Call_fn (f, args) -> compile_call e env f args ~live:dst ~result:(Some dst)
  | Arr_get (a, idx) ->
      let base = List.assoc a env.array_addrs in
      compile_expr e env idx dst;
      emit_i e (Isa.Movi (addr_reg, base));
      emit_i e (Isa.Alu (Isa.Add, addr_reg, addr_reg, dst));
      emit_i e (Isa.Ld (dst, addr_reg, 0))

and compile_rel_value e env op a b dst =
  compile_expr e env a dst;
  (match b with
  | Int n ->
      check_imm n;
      emit_i e (Isa.Cmpi (dst, n))
  | _ ->
      compile_expr e env b (dst + 1);
      emit_i e (Isa.Cmp (dst, dst + 1)));
  let l_end = fresh_label e "rel" in
  emit_i e (Isa.Movi (dst, 1));
  emit_i e (Isa.Br (relop_cond op, l_end));
  emit_i e (Isa.Movi (dst, 0));
  emit e (Asm.Label l_end)

(* Jump to [false_label] when the condition is false; fall through when
   true.  [dst] is the first free temporary. *)
and compile_cond_false e env cond ~false_label ~dst =
  match cond with
  | Rel (op, a, b) ->
      compile_expr e env a dst;
      (match b with
      | Int n ->
          check_imm n;
          emit_i e (Isa.Cmpi (dst, n))
      | _ ->
          compile_expr e env b (dst + 1);
          emit_i e (Isa.Cmp (dst, dst + 1)));
      emit_i e (Isa.Br (relop_cond (rel_negate op), false_label))
  | Not inner -> compile_cond_true e env inner ~true_label:false_label ~dst
  | And (a, b) ->
      compile_cond_false e env a ~false_label ~dst;
      compile_cond_false e env b ~false_label ~dst
  | Or (a, b) ->
      let l_true = fresh_label e "or" in
      compile_cond_true e env a ~true_label:l_true ~dst;
      compile_cond_false e env b ~false_label ~dst;
      emit e (Asm.Label l_true)
  | other ->
      compile_expr e env other dst;
      emit_i e (Isa.Cmpi (dst, 0));
      emit_i e (Isa.Br (Isa.Eq, false_label))

(* Dual: jump to [true_label] when the condition holds. *)
and compile_cond_true e env cond ~true_label ~dst =
  match cond with
  | Rel (op, a, b) ->
      compile_expr e env a dst;
      (match b with
      | Int n ->
          check_imm n;
          emit_i e (Isa.Cmpi (dst, n))
      | _ ->
          compile_expr e env b (dst + 1);
          emit_i e (Isa.Cmp (dst, dst + 1)));
      emit_i e (Isa.Br (relop_cond op, true_label))
  | Not inner -> compile_cond_false e env inner ~false_label:true_label ~dst
  | And (a, b) ->
      let l_false = fresh_label e "and" in
      compile_cond_false e env a ~false_label:l_false ~dst;
      compile_cond_true e env b ~true_label ~dst;
      emit e (Asm.Label l_false)
  | Or (a, b) ->
      compile_cond_true e env a ~true_label ~dst;
      compile_cond_true e env b ~true_label ~dst
  | other ->
      compile_expr e env other dst;
      emit_i e (Isa.Cmpi (dst, 0));
      emit_i e (Isa.Br (Isa.Ne, true_label))

(* Evaluate arguments into the callee frame, save live temporaries around
   the call, and optionally move the result into [result]. *)
and compile_call e env f args ~live ~result =
  let callee =
    match List.assoc_opt f env.procs with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Compile: unknown procedure %S" f)
  in
  let frame = List.assoc f env.frames in
  List.iteri
    (fun i arg ->
      let param = List.nth callee.params i in
      let slot = List.assoc param frame in
      compile_expr e env arg live;
      store_to_addr e slot live)
    args;
  for r = 0 to live - 1 do
    emit_i e (Isa.Push r)
  done;
  emit_i e (Isa.Call f);
  (match result with Some dst -> emit_i e (Isa.Mov (dst, ret_reg)) | None -> ());
  for r = live - 1 downto 0 do
    emit_i e (Isa.Pop r)
  done

let rec compile_stmt e env stmt =
  match stmt with
  | Assign (x, expr) ->
      compile_expr e env expr 0;
      store_var e env x 0
  | Arr_set (a, idx, value) ->
      let base = List.assoc a env.array_addrs in
      compile_expr e env value 0;
      compile_expr e env idx 1;
      emit_i e (Isa.Movi (addr_reg, base));
      emit_i e (Isa.Alu (Isa.Add, addr_reg, addr_reg, 1));
      emit_i e (Isa.St (addr_reg, 0, 0))
  | If (c, then_block, []) ->
      let l_end = fresh_label e "endif" in
      compile_cond_false e env c ~false_label:l_end ~dst:0;
      List.iter (compile_stmt e env) then_block;
      emit e (Asm.Label l_end)
  | If (c, then_block, else_block) ->
      let l_else = fresh_label e "else" and l_end = fresh_label e "endif" in
      compile_cond_false e env c ~false_label:l_else ~dst:0;
      List.iter (compile_stmt e env) then_block;
      emit_i e (Isa.Jmp l_end);
      emit e (Asm.Label l_else);
      List.iter (compile_stmt e env) else_block;
      emit e (Asm.Label l_end)
  | While (c, body) ->
      let l_head = fresh_label e "while" and l_exit = fresh_label e "endwhile" in
      emit e (Asm.Label l_head);
      compile_cond_false e env c ~false_label:l_exit ~dst:0;
      e.loop_exits <- l_exit :: e.loop_exits;
      List.iter (compile_stmt e env) body;
      e.loop_exits <- List.tl e.loop_exits;
      emit_i e (Isa.Jmp l_head);
      emit e (Asm.Label l_exit)
  | Break -> (
      match e.loop_exits with
      | exit_label :: _ -> emit_i e (Isa.Jmp exit_label)
      | [] -> invalid_arg "Compile: break outside a loop")
  | Call (f, args) -> compile_call e env f args ~live:0 ~result:None
  | Radio_tx expr ->
      compile_expr e env expr 0;
      emit_i e (Isa.Out (Isa.P_radio_tx, 0))
  | Led expr ->
      compile_expr e env expr 0;
      emit_i e (Isa.Out (Isa.P_leds, 0))
  | Return (Some expr) ->
      compile_expr e env expr 0;
      emit_i e (Isa.Mov (ret_reg, 0));
      emit_i e Isa.Ret
  | Return None -> emit_i e Isa.Ret

let ends_with_return body =
  match List.rev body with Return _ :: _ -> true | _ -> false

let compile_proc env (p : Ast.proc) =
  let e = { rev_items = []; next_label = 0; proc = p.name; loop_exits = [] } in
  emit e (Asm.Proc p.name);
  List.iter (compile_stmt e env) p.body;
  if not (ends_with_return p.body) then emit_i e Isa.Ret;
  List.rev e.rev_items

let make_init_proc env (prog : Ast.program) =
  let e = { rev_items = []; next_label = 0; proc = init_proc_name; loop_exits = [] } in
  emit e (Asm.Proc init_proc_name);
  List.iter
    (fun (g, init) ->
      check_imm init;
      emit_i e (Isa.Movi (0, init));
      store_to_addr e (List.assoc g env.global_addrs) 0)
    prog.globals;
  emit_i e Isa.Ret;
  List.rev e.rev_items

let compile (prog : Ast.program) =
  Check.check_exn prog;
  let global_addrs, array_addrs, frames = layout prog in
  let env =
    { global_addrs; array_addrs; frames; procs = List.map (fun p -> (p.name, p)) prog.procs }
  in
  let items =
    make_init_proc env prog @ List.concat_map (compile_proc env) prog.procs
  in
  let program = Asm.assemble items in
  { items; program; global_addrs; array_addrs; frames }

let var_address (t : t) ~proc name =
  match List.assoc_opt name (List.assoc proc t.frames) with
  | Some addr -> addr
  | None -> (
      match List.assoc_opt name t.global_addrs with
      | Some addr -> addr
      | None -> raise Not_found)

let array_address (t : t) name =
  match List.assoc_opt name t.array_addrs with
  | Some addr -> addr
  | None -> raise Not_found
