open Ast

let duplicates names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then true
      else begin
        Hashtbl.replace seen n ();
        false
      end)
    names

let program (prog : Ast.program) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let proc_tbl = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace proc_tbl p.name p) prog.procs;
  (* Name uniqueness. *)
  List.iter (fun n -> err "duplicate global %S" n) (duplicates (List.map fst prog.globals));
  List.iter (fun n -> err "duplicate array %S" n) (duplicates (List.map fst prog.arrays));
  List.iter
    (fun (a, size) ->
      if size <= 0 then err "array %S has non-positive size %d" a size;
      if List.mem_assoc a prog.globals then err "array %S collides with a global" a)
    prog.arrays;
  List.iter (fun n -> err "duplicate procedure %S" n)
    (duplicates (List.map (fun p -> p.name) prog.procs));
  let global_names = List.map fst prog.globals in
  List.iter
    (fun p ->
      List.iter
        (fun n -> err "procedure %S: duplicate variable %S" p.name n)
        (duplicates (p.params @ p.locals)))
    prog.procs;
  (* Per-procedure reference and arity checks. *)
  let check_proc p =
    let in_scope x =
      List.mem x p.params || List.mem x p.locals || List.mem x global_names
    in
    let check_array a =
      if not (List.mem_assoc a prog.arrays) then
        err "procedure %S: unknown array %S" p.name a
    in
    let check_call context f args =
      match Hashtbl.find_opt proc_tbl f with
      | None -> err "procedure %S: call to unknown procedure %S" p.name f
      | Some callee ->
          if List.length callee.params <> List.length args then
            err "procedure %S: %s %S expects %d argument(s), got %d" p.name context f
              (List.length callee.params) (List.length args)
    in
    let rec check_expr = function
      | Int _ | Read_sensor _ | Radio_rx | Timer_now -> ()
      | Var x -> if not (in_scope x) then err "procedure %S: unknown variable %S" p.name x
      | Bin (_, a, b) | Rel (_, a, b) | And (a, b) | Or (a, b) ->
          check_expr a;
          check_expr b
      | Not e -> check_expr e
      | Call_fn (f, args) ->
          check_call "function" f args;
          List.iter check_expr args
      | Arr_get (a, idx) ->
          check_array a;
          check_expr idx
    in
    let rec check_stmt ~in_loop = function
      | Assign (x, e) ->
          if not (in_scope x) then err "procedure %S: unknown variable %S" p.name x;
          check_expr e
      | Arr_set (a, idx, value) ->
          check_array a;
          check_expr idx;
          check_expr value
      | If (c, a, b) ->
          check_expr c;
          List.iter (check_stmt ~in_loop) a;
          List.iter (check_stmt ~in_loop) b
      | While (c, body) ->
          check_expr c;
          List.iter (check_stmt ~in_loop:true) body
      | Break -> if not in_loop then err "procedure %S: break outside a loop" p.name
      | Call (f, args) ->
          check_call "procedure" f args;
          List.iter check_expr args
      | Radio_tx e | Led e -> check_expr e
      | Return (Some e) -> check_expr e
      | Return None -> ()
    in
    List.iter (check_stmt ~in_loop:false) p.body
  in
  List.iter check_proc prog.procs;
  (* Recursion: DFS over the call graph. *)
  let color = Hashtbl.create 16 in
  let rec visit name =
    match Hashtbl.find_opt color name with
    | Some `Done -> ()
    | Some `Active -> err "recursion detected through procedure %S" name
    | None -> (
        match Hashtbl.find_opt proc_tbl name with
        | None -> () (* unknown callee already reported *)
        | Some p ->
            Hashtbl.replace color name `Active;
            List.iter visit (List.concat_map stmt_calls p.body);
            Hashtbl.replace color name `Done)
  in
  List.iter (fun p -> visit p.name) prog.procs;
  match List.rev !errors with [] -> Ok () | es -> Error es

let check_exn prog =
  match program prog with
  | Ok () -> ()
  | Error messages -> invalid_arg ("Mote_lang.Check: " ^ String.concat "; " messages)
