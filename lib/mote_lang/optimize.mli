(** Source-level optimization: constant folding and branch pruning.

    Runs before code generation.  Folding matters here beyond the usual
    reasons: pruning a constant conditional removes a branch from the CFG,
    which removes a Markov parameter the estimator would otherwise waste
    samples on, and dead arms stop occupying flash.

    Semantics are preserved exactly, including 16-bit wrap-around —
    folding uses the machine's own arithmetic.  Expressions with effects
    (sensor/radio/timer reads, calls) are never folded away, even inside a
    pruned branch's condition. *)

val expr : Ast.expr -> Ast.expr
val stmt : Ast.stmt -> Ast.stmt list
(** A statement can simplify to several (a pruned [If] inlines an arm) or
    to none (a [while (false)]). *)

val program : Ast.program -> Ast.program

val has_effects : Ast.expr -> bool
(** Reads a device or calls a procedure somewhere inside. *)
