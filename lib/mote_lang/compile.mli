(** Code generation to CT16 assembly.

    Calling convention (no recursion, so frames are static):
    - every procedure owns a fixed memory frame holding params then locals;
    - callers store argument values straight into the callee frame, then
      [Call]; results come back in r15;
    - r0–r11 are expression temporaries, r12 is the address scratch,
      r13 is reserved for instrumentation (never touched here).

    Branch polarity follows the classic front-end convention the placement
    pass later improves on: [if]/[while] conditions branch {e away} on
    false, so the then-branch / loop body falls through in the natural
    layout. *)

type t = {
  items : Mote_isa.Asm.item list;  (** The symbolic assembly. *)
  program : Mote_isa.Program.t;  (** Assembled binary. *)
  global_addrs : (string * int) list;
  array_addrs : (string * int) list;
  frames : (string * (string * int) list) list;
      (** Per procedure: variable name → memory address. *)
}

val init_proc_name : string
(** Name of the synthesized boot procedure that stores the globals'
    initial values (["__init"]); run it once before any task. *)

val compile : Ast.program -> t
(** Checks (see {!Check.check_exn}) then compiles.
    @raise Invalid_argument on semantic errors or register overflow in
    pathologically deep expressions. *)

val var_address : t -> proc:string -> string -> int
(** Address of a variable as seen from [proc] (its frame first, then
    globals).  @raise Not_found. *)

val array_address : t -> string -> int
(** Base address of a global array.  @raise Not_found. *)
