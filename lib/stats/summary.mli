(** Online descriptive statistics (Welford's algorithm).

    Collects count, mean, variance, min and max in a single pass with O(1)
    memory — the shape the mote-side probes would use. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_many : t -> float array -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance; 0 for fewer than two observations. *)

val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

val second_moment : t -> float
(** E[X²] estimate: mean² + biased variance. *)

val merge : t -> t -> t
(** Combine two summaries as if their streams were concatenated. *)

val of_array : float array -> t

val quantile : float array -> float -> float
(** [quantile data q] with linear interpolation; sorts a copy.  [q] in
    [0,1]. *)
