type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let child_seed = bits64 t in
  { state = child_seed }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split t)

let stream ~seed ~index =
  if index < 0 then invalid_arg "Rng.stream: negative index";
  (* Jump the SplitMix64 state by [index + 1] gammas and mix, so stream 0
     differs from [create seed] itself and streams are mutually
     decorrelated without any shared mutable parent. *)
  let base = Int64.of_int seed in
  let jumped =
    Int64.add base (Int64.mul golden_gamma (Int64.of_int (index + 1)))
  in
  { state = mix jumped }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for
     bound << 2^62 and determinism is what matters here.  Masking with
     max_int keeps the value non-negative after Int64 truncation. *)
  let v = Int64.to_int (bits64 t) land max_int in
  v mod bound

let unit_float t =
  (* 53 random bits mapped to [0,1). *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = unit_float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let categorical t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Rng.categorical: weights sum to zero";
  let x = unit_float t *. total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
