type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable n : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0; n = 0 }

let add t x =
  let idx = int_of_float ((x -. t.lo) /. t.width) in
  let idx = Stdlib.max 0 (Stdlib.min (Array.length t.counts - 1) idx) in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.n <- t.n + 1

let of_data ?(bins = 32) data =
  if Array.length data = 0 then invalid_arg "Histogram.of_data: empty data";
  let lo = Array.fold_left Stdlib.min infinity data in
  let hi = Array.fold_left Stdlib.max neg_infinity data in
  let hi = if hi > lo then hi else lo +. 1.0 in
  let t = create ~lo ~hi:(hi +. 1e-9) ~bins in
  Array.iter (add t) data;
  t

let count t = t.n
let bins t = Array.length t.counts
let bin_count t i = t.counts.(i)
let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. t.width)

let bin_fraction t i =
  if t.n = 0 then 0.0 else float_of_int t.counts.(i) /. float_of_int t.n

let mode_center t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  bin_center t !best

let to_density t =
  Array.init (bins t) (fun i -> (bin_center t i, bin_fraction t i))
