let check a b name =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": length mismatch");
  if Array.length a = 0 then invalid_arg (name ^ ": empty input")

let mae a b =
  check a b "Metrics.mae";
  let sum = ref 0.0 in
  Array.iteri (fun i x -> sum := !sum +. abs_float (x -. b.(i))) a;
  !sum /. float_of_int (Array.length a)

let rmse a b =
  check a b "Metrics.rmse";
  let sum = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      sum := !sum +. (d *. d))
    a;
  sqrt (!sum /. float_of_int (Array.length a))

let max_abs_error a b =
  check a b "Metrics.max_abs_error";
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Stdlib.max !m (abs_float (x -. b.(i)))) a;
  !m

let kl_divergence p q =
  check p q "Metrics.kl_divergence";
  let acc = ref 0.0 in
  Array.iteri
    (fun i pi ->
      if pi > 0.0 then acc := !acc +. (pi *. log (pi /. Stdlib.max q.(i) 1e-12)))
    p;
  !acc

let total_variation p q =
  check p q "Metrics.total_variation";
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> acc := !acc +. abs_float (pi -. q.(i))) p;
  0.5 *. !acc

let relative_error ~actual ~expected =
  abs_float (actual -. expected) /. Stdlib.max (abs_float expected) 1e-12

let bootstrap_ci rng data ~iterations ~confidence =
  if Array.length data = 0 then invalid_arg "Metrics.bootstrap_ci: empty data";
  let n = Array.length data in
  let means =
    Array.init iterations (fun _ ->
        let acc = ref 0.0 in
        for _ = 1 to n do
          acc := !acc +. data.(Rng.int rng n)
        done;
        !acc /. float_of_int n)
  in
  let alpha = (1.0 -. confidence) /. 2.0 in
  (Summary.quantile means alpha, Summary.quantile means (1.0 -. alpha))
