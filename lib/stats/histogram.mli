(** Fixed-width binned histograms over floats.

    Used by the timing tomography front end (binning end-to-end latencies)
    and by the report layer for ASCII figures. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [lo, hi) with [bins] equal-width bins.
    Out-of-range samples are clamped into the first/last bin. *)

val of_data : ?bins:int -> float array -> t
(** Build from data using its min/max range (default 32 bins). *)

val add : t -> float -> unit
val count : t -> int
val bins : t -> int
val bin_count : t -> int -> int
val bin_center : t -> int -> float
val bin_fraction : t -> int -> float

val mode_center : t -> float
(** Center of the most populated bin. *)

val to_density : t -> (float * float) array
(** [(center, prob mass)] pairs, masses summing to 1 for non-empty
    histograms. *)
