let uniform rng ~lo ~hi = lo +. Rng.unit_float rng *. (hi -. lo)

let gaussian rng ~mu ~sigma =
  if sigma < 0.0 then invalid_arg "Dist.gaussian: negative sigma";
  (* Box–Muller; one draw per call keeps the stream position predictable. *)
  let u1 = 1.0 -. Rng.unit_float rng in
  let u2 = Rng.unit_float rng in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  -.log (1.0 -. Rng.unit_float rng) /. rate

let poisson rng ~lambda =
  if lambda < 0.0 then invalid_arg "Dist.poisson: negative lambda";
  if lambda = 0.0 then 0
  else if lambda < 64.0 then begin
    let l = exp (-.lambda) in
    let rec loop k p =
      let p = p *. Rng.unit_float rng in
      if p <= l then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else
    let x = gaussian rng ~mu:lambda ~sigma:(sqrt lambda) in
    max 0 (int_of_float (Float.round x))

let geometric rng ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: p outside (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. Rng.unit_float rng in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))

let bernoulli rng ~p = Rng.bernoulli rng p

let dirichlet_pair rng ~alpha =
  (* Beta(a,a) via two Gamma(a) draws (Marsaglia–Tsang needs a >= 1; for
     a < 1 use the boost X = G(a+1) * U^(1/a)). *)
  let rec gamma a =
    if a < 1.0 then
      let u = Rng.unit_float rng in
      gamma (a +. 1.0) *. (u ** (1.0 /. a))
    else begin
      let d = a -. (1.0 /. 3.0) in
      let c = 1.0 /. sqrt (9.0 *. d) in
      let rec try_once () =
        let x = gaussian rng ~mu:0.0 ~sigma:1.0 in
        let v = (1.0 +. (c *. x)) ** 3.0 in
        if v <= 0.0 then try_once ()
        else
          let u = Rng.unit_float rng in
          if log u < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. log v) then d *. v
          else try_once ()
      in
      try_once ()
    end
  in
  let x = gamma alpha and y = gamma alpha in
  x /. (x +. y)

let gaussian_pdf ~mu ~sigma x =
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt (2.0 *. Float.pi))

let gaussian_log_pdf ~mu ~sigma x =
  let z = (x -. mu) /. sigma in
  (-0.5 *. z *. z) -. log sigma -. (0.5 *. log (2.0 *. Float.pi))

let geometric_pmf ~p k =
  if k < 0 then 0.0 else p *. ((1.0 -. p) ** float_of_int k)

let geometric_tail ~p k = if k <= 0 then 1.0 else (1.0 -. p) ** float_of_int k
