(** Deterministic, splittable pseudo-random number generator.

    All stochastic behaviour in the library flows through this module so that
    every experiment is reproducible from a single integer seed.  The
    implementation is SplitMix64, which has a 64-bit state, passes BigCrush,
    and supports cheap splitting for independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator.  Use one child per subsystem to decouple their draws. *)

val split_n : t -> int -> t array
(** [split_n t n] advances [t] [n] times and returns [n] independent
    children, in draw order.  Splitting all streams {e up front} — one
    per task, in task order — is what keeps parallel fan-outs
    bit-identical to serial runs: each task owns its stream regardless
    of which domain executes it, see {!Par.Pool}. *)

val stream : seed:int -> index:int -> t
(** [stream ~seed ~index] is the [index]-th member of an unbounded
    family of decorrelated generators derived from [seed] alone — no
    parent state to thread.  Equal [(seed, index)] pairs always yield
    equal streams, and [stream ~seed ~index:0] differs from
    [create seed].  Use when tasks are keyed by a stable index (sweep
    position, procedure rank) rather than spawned from a live parent. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val unit_float : t -> float
(** Uniform on [0,1). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val categorical : t -> float array -> int
(** [categorical t w] draws index [i] with probability proportional to
    [w.(i)].  Weights must be non-negative and not all zero. *)
