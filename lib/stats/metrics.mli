(** Error metrics used throughout the evaluation: how close are estimated
    branch probabilities / edge frequencies to the ground truth. *)

val mae : float array -> float array -> float
(** Mean absolute error; arrays must have equal, positive length. *)

val rmse : float array -> float array -> float

val max_abs_error : float array -> float array -> float

val kl_divergence : float array -> float array -> float
(** KL(p || q) for probability vectors; q entries are floored at 1e-12 to
    avoid infinities from empirical zeros. *)

val total_variation : float array -> float array -> float
(** 0.5 * L1 distance between probability vectors. *)

val relative_error : actual:float -> expected:float -> float
(** |actual - expected| / max(|expected|, 1e-12). *)

val bootstrap_ci :
  Rng.t -> float array -> iterations:int -> confidence:float -> float * float
(** Percentile-bootstrap confidence interval for the mean. *)
