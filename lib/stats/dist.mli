(** Probability distributions: samplers and a few densities.

    Samplers take an {!Rng.t} explicitly so call sites control their random
    stream.  Densities are provided where the estimators need them (Gaussian
    likelihoods for timing noise, geometric tails for loop models). *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi). *)

val gaussian : Rng.t -> mu:float -> sigma:float -> float
(** Normal draw via Box–Muller.  [sigma] must be non-negative. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate] > 0. *)

val poisson : Rng.t -> lambda:float -> int
(** Poisson counts; Knuth's method for small lambda, normal approximation
    above 64 to stay O(1). *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before first success, support {0,1,...}, for success
    probability [p] in (0,1]. *)

val bernoulli : Rng.t -> p:float -> bool

val dirichlet_pair : Rng.t -> alpha:float -> float
(** Draw [x] from Beta(alpha, alpha): a random branch probability used by
    synthetic model generators.  Symmetric so neither side is favoured. *)

val gaussian_pdf : mu:float -> sigma:float -> float -> float
(** Density of Normal(mu, sigma²) at a point. *)

val gaussian_log_pdf : mu:float -> sigma:float -> float -> float
(** Log-density; safe for tiny densities that underflow {!gaussian_pdf}. *)

val geometric_pmf : p:float -> int -> float
(** [geometric_pmf ~p k] = [p (1-p)^k]. *)

val geometric_tail : p:float -> int -> float
(** [geometric_tail ~p k] = P(X >= k) = [(1-p)^k]. *)
