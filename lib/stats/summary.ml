type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_many t a = Array.iter (add t) a

let count t = t.n
let mean t = t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let total t = t.mean *. float_of_int t.n

let second_moment t =
  if t.n = 0 then 0.0 else (t.mean *. t.mean) +. (t.m2 /. float_of_int t.n)

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n; mean; m2; min = Stdlib.min a.min b.min; max = Stdlib.max a.max b.max }
  end

let of_array a =
  let t = create () in
  add_many t a;
  t

let quantile data q =
  if Array.length data = 0 then invalid_arg "Summary.quantile: empty data";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile: q outside [0,1]";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
