(** Front door for Code Tomography estimation.

    Given the model of a probe-instrumented procedure and its end-to-end
    timing samples, produce a θ estimate with one of the available
    methods, plus the derived artifacts downstream passes want (per-block
    probabilities, edge-frequency profile). *)

type method_ =
  | Em  (** Path-mixture EM — the paper's estimator. *)
  | Moments  (** Mean/variance matching (ablation A8). *)
  | Naive  (** θ = 0.5 everywhere: the no-profile prior. *)

val method_name : method_ -> string
val all_methods : method_ list

type t = {
  method_ : method_;
  theta : float array;
  thetas_by_block : (int * float) list;  (** Branch block id → P(taken). *)
  iterations : int;
  log_likelihood : float option;  (** EM only. *)
  sigma : float option;  (** EM only: final noise scale. *)
  truncated_paths : bool;  (** Path enumeration hit its bounds. *)
  converged : bool;
      (** The iterative method stopped on tolerance, not its iteration
          cap.  Always true for [Naive] and {!fallback}. *)
  outlier_eps : float option;
      (** Final contamination weight — EM with [?outlier] only. *)
}

val fallback : Model.t -> t
(** The estimate placement falls back to when a procedure's telemetry is
    {!Health.Rejected}: uniform θ (the no-profile prior), method
    [Naive], zero iterations.  Total — never raises, even on a model
    with no samples at all. *)

val run :
  ?method_:method_ ->
  ?noise_sigma:float ->
  ?max_paths:int ->
  ?max_visits:int ->
  ?max_iters:int ->
  ?paths:Paths.t ->
  ?outlier:Em.outlier ->
  Model.t ->
  samples:float array ->
  t
(** Defaults: EM, noise σ from a unit-resolution jitter-free timer.
    [~paths] supplies a pre-enumerated (typically session-cached) path
    set for the EM method, skipping re-enumeration; it must belong to
    the same model.  [~outlier] switches the EM to its contamination-
    robust variant ({!Em.estimate}).  Both are ignored by the other
    methods. *)

val run_many :
  ?pool:Par.Pool.t ->
  ?method_:method_ ->
  ?noise_sigma:float ->
  ?max_paths:int ->
  ?max_visits:int ->
  ?max_iters:int ->
  ?outlier:Em.outlier ->
  (Model.t * float array) list ->
  t list
(** [run_many cases] estimates every [(model, samples)] case, fanning
    out over [pool] when given.  Estimation draws no randomness, so the
    result list (in input order) is identical at any domain count. *)

val mae_against : t -> float array -> float
(** Mean absolute θ error against a ground-truth vector. *)

val freq : t -> Model.t -> invocations:float -> Cfgir.Freq.t
