type result = { theta : float array; iterations : int; objective : float; converged : bool }

let clamp p = Stdlib.max 1e-3 (Stdlib.min (1.0 -. 1e-3) p)

let estimate ?(max_iters = 400) ?(tol = 1e-9) ?init ?(learning_rate = 0.15)
    ?(variance_weight = 0.3) ?(noise_sigma = 0.0) model ~samples =
  if Array.length samples = 0 then invalid_arg "Moments.estimate: no samples";
  let summary = Stats.Summary.of_array samples in
  let sample_mean = Stats.Summary.mean summary in
  let sample_var =
    Stdlib.max 0.0 (Stats.Summary.variance summary -. (noise_sigma *. noise_sigma))
  in
  let k = Model.num_params model in
  let mean_scale = Stdlib.max 1.0 (sample_mean *. sample_mean) in
  let var_scale = Stdlib.max 1.0 (sample_var *. sample_var) in
  let objective theta =
    let dm = Model.mean_time model ~theta -. sample_mean in
    let dv = Model.variance_time model ~theta -. sample_var in
    (dm *. dm /. mean_scale) +. (variance_weight *. dv *. dv /. var_scale)
  in
  let theta = ref (match init with Some t -> Array.copy t | None -> Model.uniform_theta model) in
  let lr = ref learning_rate in
  let best = ref (objective !theta) in
  let iterations = ref 0 in
  let converged = ref false in
  let h = 1e-4 in
  while (not !converged) && !iterations < max_iters do
    incr iterations;
    (* Central-difference gradient. *)
    let grad =
      Array.init k (fun j ->
          let up = Array.copy !theta and dn = Array.copy !theta in
          up.(j) <- clamp (up.(j) +. h);
          dn.(j) <- clamp (dn.(j) -. h);
          (objective up -. objective dn) /. (up.(j) -. dn.(j)))
    in
    let gnorm = sqrt (Array.fold_left (fun acc g -> acc +. (g *. g)) 0.0 grad) in
    if gnorm < 1e-12 then converged := true
    else begin
      let candidate =
        Array.mapi (fun j p -> clamp (p -. (!lr *. grad.(j) /. gnorm))) !theta
      in
      let value = objective candidate in
      if value < !best then begin
        if !best -. value < tol then converged := true;
        theta := candidate;
        best := value
      end
      else begin
        lr := !lr /. 2.0;
        if !lr < 1e-6 then converged := true
      end
    end
  done;
  { theta = !theta; iterations = !iterations; objective = !best; converged = !converged }
