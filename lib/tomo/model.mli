(** The discrete-time Markov model of one procedure's execution.

    States are the basic blocks of the {e probe-instrumented} binary's CFG;
    the unknown parameters θ are the taken-probabilities of its conditional
    branches, in {!Cfgir.Cfg.branch_blocks} order (an order that survives
    instrumentation, so estimates transfer to the original binary's CFG
    index-by-index).

    The observable is the probe window: end-to-end cycles between the entry
    and exit timestamps.  Its analytic moments come from absorbing-chain
    theory with per-block rewards
    [c_b + call_residual·calls_b + penalty·E(taken out-edge)], corrected by
    the fixed window offset. *)

type t

val of_cfg : ?call_residual:int -> ?window_correction:int -> Cfgir.Cfg.t -> t
(** Defaults come from {!Profilekit.Probes} — use them whenever the CFG is
    of a probe-instrumented binary.  Pass [~call_residual:0
    ~window_correction:0] to model a bare chain (used by tests on synthetic
    CFGs). *)

val cfg : t -> Cfgir.Cfg.t
val num_params : t -> int
val param_blocks : t -> int array
(** Branch block ids, one per parameter. *)

val param_of_block : t -> int -> int option

val block_cost : t -> int -> float
(** Reward of a block excluding edge penalties: base cycles plus the
    call residual for each call it makes. *)

val window_correction : t -> float

val chain : t -> theta:float array -> Markov.Chain.t
(** Transition matrix under θ: branch edges get θ / 1−θ, unconditional
    edges 1; exits leak to absorption. *)

val mean_time : t -> theta:float array -> float
(** Analytic expected window duration. *)

val variance_time : t -> theta:float array -> float
(** Analytic variance, computed exactly on the edge-expanded chain (one
    state per CFG edge, so per-edge penalties are honoured). *)

val expected_visits : t -> theta:float array -> float array

val freq_of_theta : t -> theta:float array -> invocations:float -> Cfgir.Freq.t
(** The edge-frequency profile the placement pass consumes: expected block
    visits under θ times each out-edge's probability. *)

val uniform_theta : t -> float array
(** The no-information prior: every branch 50/50. *)

val check_theta : t -> float array -> unit
(** @raise Invalid_argument on wrong arity or out-of-range entries. *)
