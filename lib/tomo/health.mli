(** Per-procedure health verdict — the contract between estimation and
    placement under lossy telemetry.

    Estimation over a degraded probe log can fail three ways, in
    increasing order of severity: the EM can stop on its iteration cap
    rather than its tolerance; the surviving sample count can be too thin
    to mean anything; the bootstrap confidence interval can be so wide
    the point estimate is decorative.  Instead of letting each failure
    surface as a different exception (or worse, not at all), every
    estimation carries a verdict:

    - [Healthy]: use the estimate.
    - [Degraded reason]: the estimate is usable but the reported numbers
      deserve suspicion; placement still uses it, reports flag it.
    - [Rejected reason]: the estimate is unusable; placement {e must}
      fall back to the original layout for this procedure.  The fuzz
      oracle asserts no [Rejected] procedure is ever rewritten. *)

type t = Healthy | Degraded of string | Rejected of string

val default_min_samples : int
(** 8 — below this, a bootstrap CI is meaningless. *)

val judge : ?min_samples:int -> converged:bool -> sample_count:int -> unit -> t
(** Sample floor first (0 or thin ⇒ [Rejected]), then convergence
    (⇒ [Degraded]). *)

val apply_ci_width : ?degraded_above:float -> ?rejected_above:float -> width:float -> t -> t
(** Demote on bootstrap CI width (a fraction of θ mass, in [0,1]):
    [Healthy] becomes [Degraded] above [degraded_above] (default 0.5),
    anything becomes [Rejected] above [rejected_above] (default 0.95).
    Never promotes. *)

val worst : t -> t -> t
(** The more severe of the two ([Rejected] > [Degraded] > [Healthy]);
    among equals, the first. *)

val is_rejected : t -> bool
val is_healthy : t -> bool

val to_string : t -> string
(** ["healthy"], ["degraded (reason)"], ["rejected (reason)"]. *)

val pp : Format.formatter -> t -> unit
