(** Uncertainty quantification for Code Tomography estimates.

    End-to-end timing is an indirect observation of θ, so downstream
    consumers (the placement pass, or an engineer deciding whether to trust
    a profile) need to know how tight the estimate is.  This module
    bootstraps the timing sample: resample with replacement, re-run EM
    warm-started from the point estimate, and read percentile intervals per
    parameter. *)

type interval = { lo : float; point : float; hi : float }

type t = {
  intervals : interval array;  (** Per parameter, canonical order. *)
  replicates : int;
}

val width : interval -> float

val bootstrap :
  ?replicates:int ->
  ?confidence:float ->
  ?max_iters:int ->
  Stats.Rng.t ->
  Paths.t ->
  samples:float array ->
  point:float array ->
  t
(** Defaults: 50 replicates, 90% confidence, 15 EM iterations per
    replicate (warm-started, so few are needed).
    @raise Invalid_argument on empty samples. *)

val bootstrap_many :
  ?pool:Par.Pool.t ->
  ?replicates:int ->
  ?confidence:float ->
  ?max_iters:int ->
  Stats.Rng.t ->
  (Paths.t * float array * float array) list ->
  t list
(** Bootstrap several [(paths, samples, point)] cases, consuming one
    {!Stats.Rng.split} child of [rng] per case {e in case order} before
    any resampling begins.  Because each case owns its stream, running
    on [pool] yields exactly the serial intervals. *)

val contains : t -> int -> float -> bool
(** Does parameter [k]'s interval contain a value? *)

val pp : Format.formatter -> t -> unit
