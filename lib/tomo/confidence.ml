type interval = { lo : float; point : float; hi : float }

type t = { intervals : interval array; replicates : int }

let width i = i.hi -. i.lo

let bootstrap ?(replicates = 50) ?(confidence = 0.9) ?(max_iters = 15) rng paths ~samples
    ~point =
  if Array.length samples = 0 then invalid_arg "Confidence.bootstrap: no samples";
  if replicates < 2 then invalid_arg "Confidence.bootstrap: need at least 2 replicates";
  let n = Array.length samples in
  let k = Array.length point in
  let estimates = Array.make_matrix replicates k 0.0 in
  for b = 0 to replicates - 1 do
    let resampled = Array.init n (fun _ -> samples.(Stats.Rng.int rng n)) in
    let r =
      Em.estimate ~max_iters ~init:point ~record_trajectory:false paths
        ~samples:resampled
    in
    Array.blit r.Em.theta 0 estimates.(b) 0 k
  done;
  let alpha = (1.0 -. confidence) /. 2.0 in
  let intervals =
    Array.init k (fun j ->
        let column = Array.init replicates (fun b -> estimates.(b).(j)) in
        {
          lo = Stats.Summary.quantile column alpha;
          point = point.(j);
          hi = Stats.Summary.quantile column (1.0 -. alpha);
        })
  in
  { intervals; replicates }

let bootstrap_many ?pool ?replicates ?confidence ?max_iters rng cases =
  (* Split one stream per case, in case order, before any work starts:
     each bootstrap owns its RNG whatever domain runs it, so parallel
     intervals are bit-identical to serial ones. *)
  let streams = Stats.Rng.split_n rng (List.length cases) in
  let tasks =
    List.mapi (fun i (paths, samples, point) -> (streams.(i), paths, samples, point))
      cases
  in
  let one (stream, paths, samples, point) =
    bootstrap ?replicates ?confidence ?max_iters stream paths ~samples ~point
  in
  match pool with
  | Some pool -> Par.Pool.map_list pool one tasks
  | None -> List.map one tasks

let contains t k v =
  let i = t.intervals.(k) in
  i.lo <= v && v <= i.hi

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun k i ->
      Format.fprintf fmt "theta[%d] = %.3f  [%.3f, %.3f]@," k i.point i.lo i.hi)
    t.intervals;
  Format.fprintf fmt "@]"
