type method_ = Em | Moments | Naive

let method_name = function Em -> "em" | Moments -> "moments" | Naive -> "naive"
let all_methods = [ Em; Moments; Naive ]

type t = {
  method_ : method_;
  theta : float array;
  thetas_by_block : (int * float) list;
  iterations : int;
  log_likelihood : float option;
  sigma : float option;
  truncated_paths : bool;
  converged : bool;
  outlier_eps : float option;
}

let by_block model theta =
  Array.to_list (Array.mapi (fun k id -> (id, theta.(k))) (Model.param_blocks model))

let fallback model =
  let theta = Model.uniform_theta model in
  {
    method_ = Naive;
    theta;
    thetas_by_block = by_block model theta;
    iterations = 0;
    log_likelihood = None;
    sigma = None;
    truncated_paths = false;
    converged = true;
    outlier_eps = None;
  }

let run ?(method_ = Em) ?(noise_sigma = 1.0) ?max_paths ?max_visits ?max_iters ?paths
    ?outlier model ~samples =
  match method_ with
  | Naive -> { (fallback model) with method_ = Naive }
  | Moments ->
      let r = Moments.estimate ?max_iters ~noise_sigma model ~samples in
      {
        method_;
        theta = r.Moments.theta;
        thetas_by_block = by_block model r.Moments.theta;
        iterations = r.Moments.iterations;
        log_likelihood = None;
        sigma = None;
        truncated_paths = false;
        converged = r.Moments.converged;
        outlier_eps = None;
      }
  | Em ->
      let paths =
        match paths with
        | Some p -> p
        | None -> Paths.enumerate ?max_paths ?max_visits model
      in
      (* The estimator surfaces no trajectory, so don't record one. *)
      let r =
        Em.estimate ?max_iters ~sigma:noise_sigma ~record_trajectory:false ?outlier
          paths ~samples
      in
      {
        method_;
        theta = r.Em.theta;
        thetas_by_block = by_block model r.Em.theta;
        iterations = r.Em.iterations;
        log_likelihood = Some r.Em.log_likelihood;
        sigma = Some r.Em.sigma;
        truncated_paths = Paths.truncated paths;
        converged = r.Em.converged;
        outlier_eps = r.Em.outlier_eps;
      }

let run_many ?pool ?method_ ?noise_sigma ?max_paths ?max_visits ?max_iters ?outlier cases =
  let estimate_one (model, samples) =
    run ?method_ ?noise_sigma ?max_paths ?max_visits ?max_iters ?outlier model ~samples
  in
  match pool with
  | Some pool -> Par.Pool.map_list pool estimate_one cases
  | None -> List.map estimate_one cases

let mae_against t truth = Stats.Metrics.mae t.theta truth

let freq t model ~invocations = Model.freq_of_theta model ~theta:t.theta ~invocations
