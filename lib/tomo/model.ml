module Cfg = Cfgir.Cfg
module Isa = Mote_isa.Isa

type t = {
  cfg : Cfg.t;
  params : int array;
  param_index : (int, int) Hashtbl.t;
  block_cost : float array;
  correction : float;
}

let of_cfg ?call_residual ?window_correction cfg =
  let call_residual =
    Option.value ~default:Profilekit.Probes.call_residual call_residual
  in
  let window_correction =
    Option.value ~default:Profilekit.Probes.window_correction window_correction
  in
  let params = Array.of_list (Cfg.branch_blocks cfg) in
  let param_index = Hashtbl.create 8 in
  Array.iteri (fun k id -> Hashtbl.replace param_index id k) params;
  let block_cost =
    Array.init (Cfg.num_blocks cfg) (fun id ->
        let b = Cfg.block cfg id in
        float_of_int (b.Cfg.base_cost + (call_residual * List.length b.Cfg.callees)))
  in
  { cfg; params; param_index; block_cost; correction = float_of_int window_correction }

let cfg t = t.cfg
let num_params t = Array.length t.params
let param_blocks t = Array.copy t.params
let param_of_block t id = Hashtbl.find_opt t.param_index id
let block_cost t id = t.block_cost.(id)
let window_correction t = t.correction

let check_theta t theta =
  if Array.length theta <> num_params t then
    invalid_arg
      (Printf.sprintf "Tomo.Model: theta has %d entries, model has %d parameters"
         (Array.length theta) (num_params t));
  Array.iter
    (fun p ->
      if p < 0.0 || p > 1.0 then invalid_arg "Tomo.Model: theta entry outside [0,1]")
    theta

let uniform_theta t = Array.make (num_params t) 0.5

let chain t ~theta =
  check_theta t theta;
  let n = Cfg.num_blocks t.cfg in
  let m = Linalg.Matrix.make n n 0.0 in
  for id = 0 to n - 1 do
    match (Cfg.block t.cfg id).Cfg.term with
    | Cfg.T_branch (_, taken, fall) ->
        let k = Hashtbl.find t.param_index id in
        m.(id).(taken) <- m.(id).(taken) +. theta.(k);
        m.(id).(fall) <- m.(id).(fall) +. (1.0 -. theta.(k))
    | Cfg.T_jump dst | Cfg.T_fall dst -> m.(id).(dst) <- 1.0
    | Cfg.T_ret | Cfg.T_halt -> ()
  done;
  Markov.Chain.create m

let penalty = float_of_int Isa.taken_penalty

(* Per-block expected reward: block cost plus the expected penalty of the
   out-edge taken from it. *)
let rewards t ~theta =
  Array.init (Cfg.num_blocks t.cfg) (fun id ->
      let edge_penalty =
        match (Cfg.block t.cfg id).Cfg.term with
        | Cfg.T_branch _ ->
            let k = Hashtbl.find t.param_index id in
            penalty *. theta.(k)
        | Cfg.T_jump _ -> penalty
        | Cfg.T_fall _ -> 0.0
        (* Exit blocks: the ret's penalty is outside the probe window and
           already accounted for by the window correction. *)
        | Cfg.T_ret | Cfg.T_halt -> 0.0
      in
      t.block_cost.(id) +. edge_penalty)

let analysis t ~theta = Markov.Absorbing.analyze (chain t ~theta)

let mean_time t ~theta =
  let a = analysis t ~theta in
  Markov.Absorbing.mean_reward a ~rewards:(rewards t ~theta) ~start:0 -. t.correction

(* The window cost is a sum of edge-dependent rewards (the taken penalty is
   paid per edge, not per state), so moments beyond the mean need the chain
   expanded onto edges: one state per CFG edge, rewarded with the edge's
   penalty plus its destination block's cost.  On that chain the accumulated
   reward equals the path cost exactly. *)
let edge_expanded t ~theta =
  check_theta t theta;
  let cfg = t.cfg in
  let edges = Cfg.edges cfg in
  let index = Hashtbl.create 16 in
  List.iteri (fun i e -> Hashtbl.replace index e i) edges;
  let n = List.length edges + 1 in
  (* State 0: "just entered the procedure at block 0"; state i+1: "just
     traversed edge i". *)
  let m = Linalg.Matrix.make n n 0.0 in
  let out_probs src =
    match (Cfg.block cfg src).Cfg.term with
    | Cfg.T_branch (_, taken, fall) ->
        let k = Hashtbl.find t.param_index src in
        [ ((src, taken, Cfg.K_taken), theta.(k)); ((src, fall, Cfg.K_fall), 1.0 -. theta.(k)) ]
    | Cfg.T_jump dst -> [ ((src, dst, Cfg.K_jump), 1.0) ]
    | Cfg.T_fall dst -> [ ((src, dst, Cfg.K_fall), 1.0) ]
    | Cfg.T_ret | Cfg.T_halt -> []
  in
  let connect state block =
    List.iter
      (fun (edge, p) -> m.(state).(Hashtbl.find index edge + 1) <- p)
      (out_probs block)
  in
  connect 0 0;
  List.iteri (fun i (_, dst, _) -> connect (i + 1) dst) edges;
  let edge_penalty = function
    | Cfg.K_taken | Cfg.K_jump -> penalty
    | Cfg.K_fall -> 0.0
  in
  let rewards =
    Array.of_list
      (t.block_cost.(0)
      :: List.map
           (fun (_, dst, kind) -> edge_penalty kind +. t.block_cost.(dst))
           edges)
  in
  (Markov.Chain.create m, rewards)

let variance_time t ~theta =
  let chain, rewards = edge_expanded t ~theta in
  let a = Markov.Absorbing.analyze chain in
  Markov.Absorbing.variance_reward a ~rewards ~start:0

let expected_visits t ~theta =
  Markov.Absorbing.expected_visits (analysis t ~theta) ~start:0

let freq_of_theta t ~theta ~invocations =
  check_theta t theta;
  let visits = expected_visits t ~theta in
  let freq = Cfgir.Freq.create t.cfg ~invocations in
  for id = 0 to Cfg.num_blocks t.cfg - 1 do
    let v = visits.(id) *. invocations in
    match (Cfg.block t.cfg id).Cfg.term with
    | Cfg.T_branch (_, taken, fall) ->
        let k = Hashtbl.find t.param_index id in
        Cfgir.Freq.bump freq ~src:id ~dst:taken ~kind:Cfg.K_taken (v *. theta.(k));
        Cfgir.Freq.bump freq ~src:id ~dst:fall ~kind:Cfg.K_fall (v *. (1.0 -. theta.(k)))
    | Cfg.T_jump dst -> Cfgir.Freq.bump freq ~src:id ~dst ~kind:Cfg.K_jump v
    | Cfg.T_fall dst -> Cfgir.Freq.bump freq ~src:id ~dst ~kind:Cfg.K_fall v
    | Cfg.T_ret | Cfg.T_halt -> ()
  done;
  freq
