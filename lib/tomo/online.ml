type t = {
  paths : Paths.t;
  decay : float;
  sigma : float;
  taken_acc : float array;
  either_acc : float array;
  mutable weight : float;
  mutable count : int;
  (* Scratch reused across observations. *)
  logw : float array;
}

let create ?(decay = 0.999) ?(sigma = 1.0) paths =
  if decay <= 0.0 || decay > 1.0 then invalid_arg "Online.create: decay outside (0,1]";
  if sigma <= 0.0 then invalid_arg "Online.create: sigma must be positive";
  let k = Model.num_params (Paths.model paths) in
  {
    paths;
    decay;
    sigma;
    taken_acc = Array.make k 0.0;
    either_acc = Array.make k 0.0;
    weight = 0.0;
    count = 0;
    logw = Array.make (Array.length (Paths.paths paths)) 0.0;
  }

let theta t =
  Array.init
    (Array.length t.taken_acc)
    (fun j ->
      if t.either_acc.(j) <= 1e-12 then 0.5
      else
        Stdlib.max 1e-4
          (Stdlib.min (1.0 -. 1e-4) (t.taken_acc.(j) /. t.either_acc.(j))))

let observe t value =
  let pth = Paths.paths t.paths in
  let np = Array.length pth in
  let current = theta t in
  let log_prior = Paths.log_prior t.paths ~theta:current in
  (* Posterior over paths for this observation. *)
  let best = ref neg_infinity in
  for p = 0 to np - 1 do
    let lw =
      log_prior.(p) +. Stats.Dist.gaussian_log_pdf ~mu:pth.(p).Paths.cost ~sigma:t.sigma value
    in
    t.logw.(p) <- lw;
    if lw > !best then best := lw
  done;
  let z = ref 0.0 in
  for p = 0 to np - 1 do
    z := !z +. exp (t.logw.(p) -. !best)
  done;
  let lse = !best +. log !z in
  (* Decay then accumulate. *)
  let k = Array.length t.taken_acc in
  for j = 0 to k - 1 do
    t.taken_acc.(j) <- t.taken_acc.(j) *. t.decay;
    t.either_acc.(j) <- t.either_acc.(j) *. t.decay
  done;
  t.weight <- (t.weight *. t.decay) +. 1.0;
  for p = 0 to np - 1 do
    let r = exp (t.logw.(p) -. lse) in
    if r > 1e-12 then begin
      let path = pth.(p) in
      Array.iteri
        (fun j c ->
          if c > 0 then begin
            let fc = r *. float_of_int c in
            t.taken_acc.(j) <- t.taken_acc.(j) +. fc;
            t.either_acc.(j) <- t.either_acc.(j) +. fc
          end)
        path.Paths.taken;
      Array.iteri
        (fun j c ->
          if c > 0 then t.either_acc.(j) <- t.either_acc.(j) +. (r *. float_of_int c))
        path.Paths.nottaken
    end
  done;
  t.count <- t.count + 1

let observe_all t samples = Array.iter (observe t) samples

let observations t = t.count

let effective_weight t = t.weight
