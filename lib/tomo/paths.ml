module Cfg = Cfgir.Cfg
module Isa = Mote_isa.Isa

type path = { cost : float; taken : int array; nottaken : int array }

type signature = {
  s_cost : float;
  s_weight : int;
  s_taken_idx : int array;
  s_taken_cnt : float array;
  s_nottaken_idx : int array;
  s_nottaken_cnt : float array;
}

type t = {
  model : Model.t;
  paths : path array;
  truncated : bool;
  signatures : signature array;
  signature_of_path : int array;
}

exception Too_complex of string

let penalty = float_of_int Isa.taken_penalty

(* Sparse view of a dense count vector: indices ascending, so estimator
   kernels that iterate it accumulate in exactly the order the dense loop
   would have. *)
let sparsify counts =
  let nnz = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 counts in
  let idx = Array.make nnz 0 in
  let cnt = Array.make nnz 0.0 in
  let at = ref 0 in
  Array.iteri
    (fun j c ->
      if c > 0 then begin
        idx.(!at) <- j;
        cnt.(!at) <- float_of_int c;
        incr at
      end)
    counts;
  (idx, cnt)

(* Merge raw paths with identical (cost, taken, nottaken) into weighted
   canonical entries, in first-occurrence order.  Posterior responsibilities
   of merged paths are proportional, so estimators may work per signature —
   the raw array (and [signature_of_path]) is kept so they can still fold
   per-path quantities in enumeration order when exact summation order
   matters. *)
let canonicalize paths =
  let np = Array.length paths in
  let tbl = Hashtbl.create (2 * np) in
  let sig_of = Array.make np 0 in
  let reps = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun p path ->
      let key = (path.cost, path.taken, path.nottaken) in
      match Hashtbl.find_opt tbl key with
      | Some s -> sig_of.(p) <- s
      | None ->
          let s = !next in
          incr next;
          Hashtbl.add tbl key s;
          sig_of.(p) <- s;
          reps := p :: !reps)
    paths;
  let ns = !next in
  let rep = Array.make ns 0 in
  List.iter (fun p -> rep.(sig_of.(p)) <- p) !reps;
  let weight = Array.make ns 0 in
  Array.iter (fun s -> weight.(s) <- weight.(s) + 1) sig_of;
  let signatures =
    Array.init ns (fun s ->
        let path = paths.(rep.(s)) in
        let s_taken_idx, s_taken_cnt = sparsify path.taken in
        let s_nottaken_idx, s_nottaken_cnt = sparsify path.nottaken in
        {
          s_cost = path.cost;
          s_weight = weight.(s);
          s_taken_idx;
          s_taken_cnt;
          s_nottaken_idx;
          s_nottaken_cnt;
        })
  in
  (signatures, sig_of)

let enumerate ?(max_paths = 4096) ?(max_visits = 12) ?max_steps model =
  let cfg = Model.cfg model in
  let n = Cfg.num_blocks cfg in
  let k = Model.num_params model in
  let visits = Array.make n 0 in
  let taken = Array.make k 0 in
  let nottaken = Array.make k 0 in
  let acc = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let steps = ref 0 in
  let step_budget = Option.value max_steps ~default:max_int in
  (* DFS carrying the running cost.  Mutable count arrays are restored on
     the way out, so the whole walk allocates only completed paths.  The
     step budget bounds *work*, not output: on CFGs where almost every
     partial path dies against [max_visits], exponentially many dead ends
     can separate completed paths, and without the cap enumeration would
     effectively never return. *)
  let rec walk id cost =
    if !count >= max_paths || !steps >= step_budget then truncated := true
    else if visits.(id) >= max_visits then truncated := true
    else begin
      incr steps;
      visits.(id) <- visits.(id) + 1;
      let cost = cost +. Model.block_cost model id in
      (match (Cfg.block cfg id).Cfg.term with
      | Cfg.T_ret | Cfg.T_halt ->
          incr count;
          acc :=
            {
              cost = cost -. Model.window_correction model;
              taken = Array.copy taken;
              nottaken = Array.copy nottaken;
            }
            :: !acc
      | Cfg.T_jump dst -> walk dst (cost +. penalty)
      | Cfg.T_fall dst -> walk dst cost
      | Cfg.T_branch (_, tdst, fdst) ->
          let p = Option.get (Model.param_of_block model id) in
          taken.(p) <- taken.(p) + 1;
          walk tdst (cost +. penalty);
          taken.(p) <- taken.(p) - 1;
          nottaken.(p) <- nottaken.(p) + 1;
          walk fdst cost;
          nottaken.(p) <- nottaken.(p) - 1);
      visits.(id) <- visits.(id) - 1
    end
  in
  if n > 0 then walk 0 0.0;
  if !acc = [] then
    raise
      (Too_complex
         (Printf.sprintf "no complete path within %d paths / %d visits" max_paths
            max_visits));
  let paths = Array.of_list (List.rev !acc) in
  let signatures, signature_of_path = canonicalize paths in
  { model; paths; truncated = !truncated; signatures; signature_of_path }

let model t = t.model
let paths t = t.paths
let truncated t = t.truncated
let signatures t = t.signatures
let signature_of_path t = t.signature_of_path
let num_signatures t = Array.length t.signatures

let log_prior t ~theta =
  Model.check_theta t.model theta;
  let eps = 1e-12 in
  let log_t = Array.map (fun p -> log (Stdlib.max eps p)) theta in
  let log_f = Array.map (fun p -> log (Stdlib.max eps (1.0 -. p))) theta in
  Array.map
    (fun path ->
      let acc = ref 0.0 in
      Array.iteri (fun p c -> acc := !acc +. (float_of_int c *. log_t.(p))) path.taken;
      Array.iteri (fun p c -> acc := !acc +. (float_of_int c *. log_f.(p))) path.nottaken;
      !acc)
    t.paths

let signature_log_prior t ~log_t ~log_f out =
  Array.iteri
    (fun s sg ->
      let acc = ref 0.0 in
      let idx = sg.s_taken_idx and cnt = sg.s_taken_cnt in
      for i = 0 to Array.length idx - 1 do
        acc := !acc +. (cnt.(i) *. log_t.(idx.(i)))
      done;
      let idx = sg.s_nottaken_idx and cnt = sg.s_nottaken_cnt in
      for i = 0 to Array.length idx - 1 do
        acc := !acc +. (cnt.(i) *. log_f.(idx.(i)))
      done;
      out.(s) <- !acc)
    t.signatures

let prior_mass t ~theta =
  log_prior t ~theta |> Array.fold_left (fun acc lp -> acc +. exp lp) 0.0

let fold_cost f init t =
  Array.fold_left (fun acc p -> f acc p.cost) init t.paths

let min_cost t = fold_cost Stdlib.min infinity t
let max_cost t = fold_cost Stdlib.max neg_infinity t

let sample_costs rng t ~theta ~n =
  let lp = log_prior t ~theta in
  let weights = Array.map exp lp in
  Array.init n (fun _ -> t.paths.(Stats.Rng.categorical rng weights).cost)
