module Cfg = Cfgir.Cfg
module Isa = Mote_isa.Isa

type path = { cost : float; taken : int array; nottaken : int array }

type t = { model : Model.t; paths : path array; truncated : bool }

exception Too_complex of string

let penalty = float_of_int Isa.taken_penalty

let enumerate ?(max_paths = 4096) ?(max_visits = 12) model =
  let cfg = Model.cfg model in
  let n = Cfg.num_blocks cfg in
  let k = Model.num_params model in
  let visits = Array.make n 0 in
  let taken = Array.make k 0 in
  let nottaken = Array.make k 0 in
  let acc = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  (* DFS carrying the running cost.  Mutable count arrays are restored on
     the way out, so the whole walk allocates only completed paths. *)
  let rec walk id cost =
    if !count >= max_paths then truncated := true
    else if visits.(id) >= max_visits then truncated := true
    else begin
      visits.(id) <- visits.(id) + 1;
      let cost = cost +. Model.block_cost model id in
      (match (Cfg.block cfg id).Cfg.term with
      | Cfg.T_ret | Cfg.T_halt ->
          incr count;
          acc :=
            {
              cost = cost -. Model.window_correction model;
              taken = Array.copy taken;
              nottaken = Array.copy nottaken;
            }
            :: !acc
      | Cfg.T_jump dst -> walk dst (cost +. penalty)
      | Cfg.T_fall dst -> walk dst cost
      | Cfg.T_branch (_, tdst, fdst) ->
          let p = Option.get (Model.param_of_block model id) in
          taken.(p) <- taken.(p) + 1;
          walk tdst (cost +. penalty);
          taken.(p) <- taken.(p) - 1;
          nottaken.(p) <- nottaken.(p) + 1;
          walk fdst cost;
          nottaken.(p) <- nottaken.(p) - 1);
      visits.(id) <- visits.(id) - 1
    end
  in
  if n > 0 then walk 0 0.0;
  if !acc = [] then
    raise
      (Too_complex
         (Printf.sprintf "no complete path within %d paths / %d visits" max_paths
            max_visits));
  { model; paths = Array.of_list (List.rev !acc); truncated = !truncated }

let model t = t.model
let paths t = t.paths
let truncated t = t.truncated

let log_prior t ~theta =
  Model.check_theta t.model theta;
  let eps = 1e-12 in
  let log_t = Array.map (fun p -> log (Stdlib.max eps p)) theta in
  let log_f = Array.map (fun p -> log (Stdlib.max eps (1.0 -. p))) theta in
  Array.map
    (fun path ->
      let acc = ref 0.0 in
      Array.iteri (fun p c -> acc := !acc +. (float_of_int c *. log_t.(p))) path.taken;
      Array.iteri (fun p c -> acc := !acc +. (float_of_int c *. log_f.(p))) path.nottaken;
      !acc)
    t.paths

let prior_mass t ~theta =
  log_prior t ~theta |> Array.fold_left (fun acc lp -> acc +. exp lp) 0.0

let fold_cost f init t =
  Array.fold_left (fun acc p -> f acc p.cost) init t.paths

let min_cost t = fold_cost Stdlib.min infinity t
let max_cost t = fold_cost Stdlib.max neg_infinity t

let sample_costs rng t ~theta ~n =
  let lp = log_prior t ~theta in
  let weights = Array.map exp lp in
  Array.init n (fun _ -> t.paths.(Stats.Rng.categorical rng weights).cost)
