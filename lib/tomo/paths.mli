(** Bounded enumeration of program paths through a procedure model.

    A path is an entry→exit walk; its probability under θ is
    Π θ_k^taken_k (1−θ_k)^nottaken_k and its cost is the exact window
    duration the probes would measure if execution followed it.  Loops make
    the path space infinite, so enumeration bounds the visits per block
    ([max_visits]) and the total number of paths ([max_paths]); the EM
    estimator renormalizes over the enumerated set.  [truncated] reports
    whether anything was cut off — with geometrically-decaying loop
    probabilities the missing mass is the geometric tail. *)

type path = {
  cost : float;  (** Exact window cost along this path. *)
  taken : int array;  (** Per parameter: times the branch was taken. *)
  nottaken : int array;
}

type t

exception Too_complex of string
(** Raised when not even one complete path fits within the bounds. *)

val enumerate : ?max_paths:int -> ?max_visits:int -> Model.t -> t
(** Defaults: 4096 paths, 12 visits per block. *)

val model : t -> Model.t
val paths : t -> path array
val truncated : t -> bool

val log_prior : t -> theta:float array -> float array
(** Per-path log probability under θ (not renormalized). *)

val prior_mass : t -> theta:float array -> float
(** Total probability of the enumerated set — 1 minus truncation loss. *)

val min_cost : t -> float
val max_cost : t -> float

val sample_costs :
  Stats.Rng.t -> t -> theta:float array -> n:int -> float array
(** Draw path costs according to the (renormalized) path distribution —
    synthetic timing observations for tests. *)
