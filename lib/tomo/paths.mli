(** Bounded enumeration of program paths through a procedure model.

    A path is an entry→exit walk; its probability under θ is
    Π θ_k^taken_k (1−θ_k)^nottaken_k and its cost is the exact window
    duration the probes would measure if execution followed it.  Loops make
    the path space infinite, so enumeration bounds the visits per block
    ([max_visits]) and the total number of paths ([max_paths]); the EM
    estimator renormalizes over the enumerated set.  [truncated] reports
    whether anything was cut off — with geometrically-decaying loop
    probabilities the missing mass is the geometric tail.

    Besides the raw path array, enumeration builds the {e canonical} path
    set: paths with identical [(cost, taken, nottaken)] signatures merged
    into one weighted entry whose branch counts are stored sparsely (CSR
    style — index/count pairs for the nonzero entries only).  Loop bodies
    whose inner branches permute across iterations collapse combinatorially
    (e.g. 4096 raw paths → a couple hundred signatures), and every merged
    path has, by construction, the same prior and the same likelihood under
    any (θ, σ) — so estimators can evaluate priors, Gaussian terms and
    responsibilities once per signature instead of once per path. *)

type path = {
  cost : float;  (** Exact window cost along this path. *)
  taken : int array;  (** Per parameter: times the branch was taken. *)
  nottaken : int array;
}

type signature = {
  s_cost : float;  (** Shared window cost of the merged paths. *)
  s_weight : int;  (** How many raw paths carry this signature. *)
  s_taken_idx : int array;  (** Params with taken count > 0, ascending. *)
  s_taken_cnt : float array;  (** Counts aligned with [s_taken_idx]. *)
  s_nottaken_idx : int array;
  s_nottaken_cnt : float array;
}

type t

exception Too_complex of string
(** Raised when not even one complete path fits within the bounds. *)

val enumerate : ?max_paths:int -> ?max_visits:int -> ?max_steps:int -> Model.t -> t
(** Defaults: 4096 paths, 12 visits per block, unbounded steps.
    [max_steps] caps the number of DFS block expansions — the {e work} of
    enumeration, where [max_paths] only caps its {e output}.  On CFGs
    whose partial paths overwhelmingly die against [max_visits],
    exponentially many dead ends separate completed paths and an
    unbounded search effectively never returns; hitting the cap marks the
    result truncated (or raises {!Too_complex} if no path completed). *)

val model : t -> Model.t
val paths : t -> path array
val truncated : t -> bool

val signatures : t -> signature array
(** Canonical (merged) path set, in first-occurrence order. *)

val signature_of_path : t -> int array
(** Raw path index → index into {!signatures}.  Kernels that must
    reproduce a per-path fold bit-for-bit (the EM reference semantics)
    replay cheap per-path accumulations through this map while computing
    the expensive per-signature terms only once. *)

val num_signatures : t -> int

val log_prior : t -> theta:float array -> float array
(** Per-path log probability under θ (not renormalized). *)

val signature_log_prior :
  t -> log_t:float array -> log_f:float array -> float array -> unit
(** [signature_log_prior t ~log_t ~log_f out] fills [out] (length
    {!num_signatures}) with each signature's log prior given per-parameter
    log θ / log (1−θ) vectors, iterating only the sparse nonzero counts.
    Terms accumulate in ascending parameter order — taken then nottaken —
    which matches the dense {!log_prior} fold bit-for-bit (the dense
    loop's zero-count terms add ±0.0, an exact no-op). *)

val prior_mass : t -> theta:float array -> float
(** Total probability of the enumerated set — 1 minus truncation loss. *)

val min_cost : t -> float
val max_cost : t -> float

val sample_costs :
  Stats.Rng.t -> t -> theta:float array -> n:int -> float array
(** Draw path costs according to the (renormalized) path distribution —
    synthetic timing observations for tests. *)
