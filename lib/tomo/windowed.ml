type window = { index : int; first_sample : int; theta : float array; drift : float }

type t = { windows : window list; max_drift : float }

let estimate ?(window_size = 200) ?(max_iters = 40) ?sigma paths ~samples =
  if window_size <= 0 then invalid_arg "Windowed.estimate: window size must be positive";
  let n = Array.length samples in
  if n < window_size / 2 then
    invalid_arg "Windowed.estimate: not enough samples for one window";
  (* Window boundaries: full windows, plus a tail if it is substantial. *)
  let starts = ref [] in
  let at = ref 0 in
  while !at + window_size <= n do
    starts := !at :: !starts;
    at := !at + window_size
  done;
  let starts = List.rev !starts in
  let boundaries =
    match List.rev starts with
    | [] -> [ (0, n) ]
    | last :: _ ->
        let tail = n - (last + window_size) in
        List.mapi
          (fun i s ->
            let is_last = s = last in
            let finish =
              if is_last && tail < window_size / 4 then n else s + window_size
            in
            ignore i;
            (s, finish))
          starts
        @ (if tail >= window_size / 4 then [ (last + window_size, n) ] else [])
  in
  let model = Paths.model paths in
  let prev = ref (Model.uniform_theta model) in
  let max_drift = ref 0.0 in
  let windows =
    List.mapi
      (fun index (s, finish) ->
        let chunk = Array.sub samples s (finish - s) in
        let r =
          Em.estimate ~max_iters ~init:!prev ?sigma ~record_trajectory:false paths
            ~samples:chunk
        in
        let drift =
          if index = 0 then 0.0
          else if Array.length r.Em.theta = 0 then 0.0
          else Stats.Metrics.max_abs_error r.Em.theta !prev
        in
        prev := r.Em.theta;
        if drift > !max_drift then max_drift := drift;
        { index; first_sample = s; theta = r.Em.theta; drift })
      boundaries
  in
  { windows; max_drift = !max_drift }

let drifted ?(threshold = 0.15) t = t.max_drift > threshold

let final_theta t =
  match List.rev t.windows with
  | w :: _ -> w.theta
  | [] -> invalid_arg "Windowed.final_theta: no windows"
