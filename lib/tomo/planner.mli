(** Profiling-duration planner: how long must the mote collect timestamps
    before the estimate is trustworthy?

    The standard error of the EM estimate shrinks as 1/√n.  We measure the
    bootstrap standard error at the current sample count and extrapolate
    to the count needed for a target precision — the answer a deployment
    tool would use to schedule the profiling phase. *)

type plan = {
  current_samples : int;
  current_se : float;  (** Max per-parameter bootstrap standard error. *)
  target_se : float;
  samples_needed : int;
      (** Estimated total samples for the target (≥ current when the
          target is already met... then equal to current). *)
}

val plan :
  ?replicates:int ->
  Stats.Rng.t ->
  Paths.t ->
  samples:float array ->
  target_se:float ->
  plan
(** @raise Invalid_argument on empty samples or non-positive target. *)

val pp : Format.formatter -> plan -> unit
