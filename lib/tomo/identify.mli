(** Identifiability analysis: which branch probabilities can end-to-end
    timing possibly determine?

    A parameter is {e ambiguous} when two enumerated paths have the same
    cost but traverse that branch differently — the timing distribution is
    then invariant under moving probability mass between them, and no
    estimator can recover the true split.  Detecting this statically (it
    needs no samples) tells a deployment which branches need help, e.g.
    cost watermarking (see {!Profilekit.Watermark}). *)

type t = {
  ambiguous : bool array;  (** Per parameter, canonical order. *)
  collisions : int;  (** Path pairs with equal cost but different outcomes. *)
}

val analyze : ?epsilon:float -> Paths.t -> t
(** Two costs within [epsilon] (default 0.5 cycles) count as colliding. *)

val any : t -> bool
val ambiguous_blocks : t -> Model.t -> int list
(** Branch block ids of the ambiguous parameters. *)
