(** Streaming estimation with bounded memory — what actually runs on the
    mote (or its gateway) when samples arrive one at a time.

    Instead of storing the timing stream and re-running batch EM, the
    online estimator keeps per-parameter sufficient statistics (expected
    taken / total traversals) and updates them with a stochastic-EM step
    per observation: compute the path posterior under the current θ, add
    the responsibilities, decay everything by a forgetting factor.  Memory
    is O(paths + parameters) regardless of stream length, and the decay
    makes the estimate track nonstationary inputs — a recursive sibling of
    {!Windowed}. *)

type t

val create : ?decay:float -> ?sigma:float -> Paths.t -> t
(** [decay] in (0,1]: per-observation forgetting factor (1.0 = plain
    running averages; default 0.999 ≈ an effective window of ~1000
    samples).  [sigma] is the timing-noise scale (default 1.0). *)

val observe : t -> float -> unit
(** Feed one end-to-end timing observation. *)

val observe_all : t -> float array -> unit

val theta : t -> float array
(** Current estimate (0.5 for parameters with no evidence yet). *)

val observations : t -> int

val effective_weight : t -> float
(** Decayed total evidence mass — small right after a drift when decay has
    washed out the old regime. *)
