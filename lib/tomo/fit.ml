type t = { total_variation : float; unexplained_mass : float; truncated : bool }

let check ?(sigma = 1.0) paths ~theta ~samples =
  if Array.length samples = 0 then invalid_arg "Fit.check: no samples";
  let pth = Paths.paths paths in
  let lp = Paths.log_prior paths ~theta in
  (* Renormalize over the enumerated set. *)
  let weights = Array.map exp lp in
  let mass = Array.fold_left ( +. ) 0.0 weights in
  let weights = Array.map (fun w -> w /. mass) weights in
  (* Bin both distributions on integer-cycle bins spanning data and model. *)
  let lo =
    Stdlib.min (Paths.min_cost paths) (Array.fold_left Stdlib.min infinity samples)
  in
  let hi =
    Stdlib.max (Paths.max_cost paths) (Array.fold_left Stdlib.max neg_infinity samples)
  in
  let lo = floor (lo -. (3.0 *. sigma)) and hi = ceil (hi +. (3.0 *. sigma)) in
  let bins = Stdlib.max 1 (int_of_float (hi -. lo) + 1) in
  (* Both distributions are smoothed by the same Gaussian kernel, so a
     perfectly-fitting mixture gives TV ≈ 0 even for exact (noise-free)
     timings. *)
  let spread buf center weight =
    let b_lo = Stdlib.max 0 (int_of_float (center -. (4.0 *. sigma) -. lo)) in
    let b_hi = Stdlib.min (bins - 1) (int_of_float (center +. (4.0 *. sigma) -. lo)) in
    let total = ref 0.0 in
    let local = Array.make (Stdlib.max 1 (b_hi - b_lo + 1)) 0.0 in
    for b = b_lo to b_hi do
      let x = lo +. float_of_int b in
      let d = Stats.Dist.gaussian_pdf ~mu:center ~sigma x in
      local.(b - b_lo) <- d;
      total := !total +. d
    done;
    if !total > 0.0 then
      for b = b_lo to b_hi do
        buf.(b) <- buf.(b) +. (weight *. local.(b - b_lo) /. !total)
      done
  in
  let observed = Array.make bins 0.0 in
  let n = float_of_int (Array.length samples) in
  Array.iter (fun s -> spread observed s (1.0 /. n)) samples;
  let predicted = Array.make bins 0.0 in
  Array.iteri
    (fun i path -> if weights.(i) > 0.0 then spread predicted path.Paths.cost weights.(i))
    pth;
  let tv = ref 0.0 in
  for b = 0 to bins - 1 do
    tv := !tv +. abs_float (observed.(b) -. predicted.(b))
  done;
  let unexplained =
    Array.fold_left
      (fun acc s ->
        let near =
          Array.exists (fun p -> abs_float (s -. p.Paths.cost) <= 3.0 *. sigma) pth
        in
        if near then acc else acc +. (1.0 /. n))
      0.0 samples
  in
  {
    total_variation = 0.5 *. !tv;
    unexplained_mass = unexplained;
    truncated = Paths.truncated paths;
  }

let acceptable ?(tv_threshold = 0.15) ?(mass_threshold = 0.02) t =
  t.total_variation <= tv_threshold && t.unexplained_mass <= mass_threshold

let pp fmt t =
  Format.fprintf fmt "TV=%.3f unexplained=%.1f%%%s" t.total_variation
    (100.0 *. t.unexplained_mass)
    (if t.truncated then " (paths truncated)" else "")
