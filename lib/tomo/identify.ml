type t = { ambiguous : bool array; collisions : int }

let analyze ?(epsilon = 0.5) paths =
  let pth = Paths.paths paths in
  let k = Model.num_params (Paths.model paths) in
  let ambiguous = Array.make k false in
  let collisions = ref 0 in
  (* Sort by cost so collision candidates are adjacent runs. *)
  let order = Array.init (Array.length pth) Fun.id in
  Array.sort (fun a b -> compare pth.(a).Paths.cost pth.(b).Paths.cost) order;
  let n = Array.length order in
  for i = 0 to n - 1 do
    let pi = pth.(order.(i)) in
    let j = ref (i + 1) in
    while !j < n && pth.(order.(!j)).Paths.cost -. pi.Paths.cost <= epsilon do
      let pj = pth.(order.(!j)) in
      let differs = ref false in
      for p = 0 to k - 1 do
        if pi.Paths.taken.(p) <> pj.Paths.taken.(p) then begin
          ambiguous.(p) <- true;
          differs := true
        end
      done;
      if !differs then incr collisions;
      incr j
    done
  done;
  { ambiguous; collisions = !collisions }

let any t = Array.exists Fun.id t.ambiguous

let ambiguous_blocks t model =
  let blocks = Model.param_blocks model in
  Array.to_list blocks
  |> List.filteri (fun k _ -> t.ambiguous.(k))
