(** Method-of-moments estimation: the cheap alternative the ablation (A8)
    compares EM against.

    Matches the model's analytic mean and variance of the probe window
    (from absorbing-chain theory, see {!Model}) against the sample moments
    by projected gradient descent on θ, with numeric gradients — the
    objective is a smooth rational function of θ but writing its gradient
    analytically buys nothing at CFG scale.  Identifiability is weaker
    than EM's (two moments versus the whole distribution), which is the
    effect the ablation demonstrates. *)

type result = {
  theta : float array;
  iterations : int;
  objective : float;  (** Final loss (normalized squared moment errors). *)
  converged : bool;
}

val estimate :
  ?max_iters:int ->
  ?tol:float ->
  ?init:float array ->
  ?learning_rate:float ->
  ?variance_weight:float ->
  ?noise_sigma:float ->
  Model.t ->
  samples:float array ->
  result
(** Defaults: 400 iterations, tol 1e-9 on objective improvement, uniform
    init, learning rate 0.15 with halving on non-improvement,
    variance term weighted 0.3, noise σ 0 (its variance is subtracted
    from the sample variance before matching).
    @raise Invalid_argument on empty samples. *)
