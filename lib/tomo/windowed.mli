(** Windowed estimation for nonstationary phenomena.

    Sensor inputs drift (day/night cycles, battery decay, moving targets),
    and with them the branch probabilities.  Splitting the timing stream
    into consecutive windows and estimating each — warm-starting EM from
    the previous window — yields a θ trajectory; when it moves materially,
    the deployed code placement is stale and worth regenerating.  This is
    the "adaptive re-placement" extension the paper's model naturally
    supports, since probes stay in the binary after deployment. *)

type window = {
  index : int;
  first_sample : int;  (** Offset of the window in the sample stream. *)
  theta : float array;
  drift : float;
      (** Max |Δθ| against the previous window (0 for the first). *)
}

type t = {
  windows : window list;  (** Oldest first. *)
  max_drift : float;
}

val estimate :
  ?window_size:int ->
  ?max_iters:int ->
  ?sigma:float ->
  Paths.t ->
  samples:float array ->
  t
(** Default window 200 samples; a trailing partial window is kept if it
    has at least a quarter of [window_size] samples, otherwise folded into
    the previous one.
    @raise Invalid_argument when samples are fewer than half a window. *)

val drifted : ?threshold:float -> t -> bool
(** True when any window-to-window drift exceeds [threshold]
    (default 0.15) — the "re-run the placement pass" signal. *)

val final_theta : t -> float array
