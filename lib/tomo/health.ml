type t = Healthy | Degraded of string | Rejected of string

let default_min_samples = 8

let judge ?(min_samples = default_min_samples) ~converged ~sample_count () =
  if sample_count = 0 then Rejected "no samples survived collection"
  else if sample_count < min_samples then
    Rejected (Printf.sprintf "%d samples < floor %d" sample_count min_samples)
  else if not converged then Degraded "estimator hit its iteration cap"
  else Healthy

let apply_ci_width ?(degraded_above = 0.5) ?(rejected_above = 0.95) ~width verdict =
  if width > rejected_above then
    Rejected (Printf.sprintf "CI width %.2f > %.2f" width rejected_above)
  else
    match verdict with
    | Healthy when width > degraded_above ->
        Degraded (Printf.sprintf "CI width %.2f > %.2f" width degraded_above)
    | v -> v

let severity = function Healthy -> 0 | Degraded _ -> 1 | Rejected _ -> 2
let worst a b = if severity b > severity a then b else a
let is_rejected = function Rejected _ -> true | _ -> false
let is_healthy = function Healthy -> true | _ -> false

let to_string = function
  | Healthy -> "healthy"
  | Degraded r -> Printf.sprintf "degraded (%s)" r
  | Rejected r -> Printf.sprintf "rejected (%s)" r

let pp fmt v = Format.pp_print_string fmt (to_string v)
