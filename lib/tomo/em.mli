(** Expectation–maximization over the path mixture — the Code Tomography
    estimator proper.

    Each timing observation t is modelled as t = cost(π) + ε with π drawn
    from the path distribution under θ and ε Gaussian measurement noise
    (timer quantization + jitter).  The E-step computes path
    responsibilities per observation; the M-step re-estimates each branch
    probability as its expected traversal fraction and (optionally) the
    noise scale.  Observations are grouped by value first — quantized
    timings repeat heavily, making iterations O(distinct values × paths)
    instead of O(samples × paths). *)

type result = {
  theta : float array;
  sigma : float;
  iterations : int;
  log_likelihood : float;
  converged : bool;
  trajectory : (float array * float) list;
      (** (θ, log-likelihood) after each iteration, oldest first — feeds
          the convergence figure F7. *)
}

val estimate :
  ?max_iters:int ->
  ?tol:float ->
  ?init:float array ->
  ?sigma:float ->
  ?estimate_sigma:bool ->
  ?sigma_floor:float ->
  Paths.t ->
  samples:float array ->
  result
(** Defaults: 100 iterations, tolerance 1e-5 on max |Δθ|, uniform θ init,
    initial σ 2.0 (cycles), σ re-estimated with floor 0.1.
    @raise Invalid_argument on empty samples. *)

val default_sigma : resolution:int -> jitter:float -> float
(** Noise scale implied by the timer configuration for a {e differenced}
    pair of timestamps: √((resolution²−1)/6 + 2·jitter²), floored at
    0.1. *)
