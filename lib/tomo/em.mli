(** Expectation–maximization over the path mixture — the Code Tomography
    estimator proper.

    Each timing observation t is modelled as t = cost(π) + ε with π drawn
    from the path distribution under θ and ε Gaussian measurement noise
    (timer quantization + jitter).  The E-step computes path
    responsibilities per observation; the M-step re-estimates each branch
    probability as its expected traversal fraction and (optionally) the
    noise scale.  Observations are grouped by value first — quantized
    timings repeat heavily, making iterations O(distinct values × paths)
    instead of O(samples × paths).

    The kernels run over the {e canonical} path set ({!Paths.signatures}):
    log priors, Gaussian terms and responsibilities are evaluated once per
    merged signature (with residuals precomputed across iterations and the
    per-iteration constants of the Gaussian log-pdf hoisted), while the
    cheap accumulator additions are replayed in raw enumeration order via
    {!Paths.signature_of_path}.  The result is bit-for-bit identical to
    the dense per-path reference at the default [log_threshold]. *)

type result = {
  theta : float array;
  sigma : float;
  iterations : int;
  log_likelihood : float;
  converged : bool;
  trajectory : (float array * float) list;
      (** (θ, log-likelihood) after each iteration, oldest first — feeds
          the convergence figure F7.  Empty when the estimate was run with
          [record_trajectory:false]. *)
  outlier_eps : float option;
      (** Final contamination weight ε — [Some] iff the estimate ran with
          [?outlier]. *)
}

(** Contamination model for the robust variant: the path mixture gains a
    uniform component of weight ε whose support covers both the path-cost
    envelope and the observed sample range, so a timing no path could
    have produced is absorbed instead of dragging θ and σ. *)
type outlier = {
  eps : float;  (** Initial (or fixed) contamination weight. *)
  estimate_eps : bool;  (** Re-estimate ε as the outlier mass fraction. *)
  max_eps : float;  (** Upper clamp on ε. *)
}

val default_outlier : outlier
(** ε = 0.05, re-estimated, clamped to [[1e-6, 0.5]]. *)

val estimate :
  ?max_iters:int ->
  ?tol:float ->
  ?init:float array ->
  ?sigma:float ->
  ?estimate_sigma:bool ->
  ?sigma_floor:float ->
  ?log_threshold:float ->
  ?record_trajectory:bool ->
  ?outlier:outlier ->
  Paths.t ->
  samples:float array ->
  result
(** Defaults: 100 iterations, tolerance 1e-5 on max |Δθ|, uniform θ init,
    initial σ 2.0 (cycles), σ re-estimated with floor 0.1.

    [log_threshold] drops signatures whose log weight trails the
    per-value maximum by more than this before exponentiating.  The
    default ({!exact_log_threshold}) only drops terms whose [exp]
    underflows to exactly 0.0, so it changes no result bit; smaller
    values trade exactness for speed.

    [record_trajectory] (default true) controls whether the per-iteration
    (θ, log-likelihood) trajectory is kept.  Hot callers that never read
    it (bench sweeps, {!Windowed}, {!Planner}, {!Confidence}) pass false
    to skip one θ copy per iteration.

    [outlier] switches on the contamination-robust variant.  Off (the
    default), the exact sparse kernel runs and results stay bit-for-bit
    identical to {!Dense} — robustness is strictly opt-in; on, σ is
    re-estimated over inlier responsibility mass only and the result
    carries the final ε in [outlier_eps].  The robust path makes no
    bit-exactness promise against {!Dense}.
    @raise Invalid_argument on empty samples. *)

val exact_log_threshold : float
(** The largest [log_threshold] that is a provable no-op: beyond it,
    [exp] underflows to +0.0 and the dropped terms never reached any
    accumulator of the dense reference either. *)

val default_sigma : resolution:int -> jitter:float -> float
(** Noise scale implied by the timer configuration for a {e differenced}
    pair of timestamps: √((resolution²−1)/6 + 2·jitter²), floored at
    0.1. *)

val group_samples : float array -> (float * float) array
(** Group samples by exact value into (value, count) pairs sorted
    ascending — the E-step's unit of work.  Exposed for benchmarks. *)

(** The dense per-path reference implementation — the estimator exactly as
    it existed before the sparse-kernel rewrite, kept alive as the oracle
    the optimized kernels are differentially tested against (both by
    [test/test_em_kernels.ml] and by the fuzzer's EM oracle).  Same
    mixture model, same clamping, same convergence rule; every per-path
    term is evaluated densely, so it is slow but unarguable.  At the
    default [log_threshold] the optimized {!estimate} must agree with this
    bit-for-bit. *)
module Dense : sig
  val estimate :
    ?max_iters:int ->
    ?tol:float ->
    ?init:float array ->
    ?sigma:float ->
    ?estimate_sigma:bool ->
    ?sigma_floor:float ->
    ?record_trajectory:bool ->
    Paths.t ->
    samples:float array ->
    result
  (** Defaults match {!estimate}.  @raise Invalid_argument on empty
      samples. *)
end
