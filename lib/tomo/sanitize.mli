(** Sample sanitization — quarantine infeasible probe windows before
    estimation.

    A probe log that crossed a lossy link ({!Profilekit.Transport})
    contains windows no execution could have produced: an exit paired
    with a stale entry across lost records, a corrupted timestamp, a
    window spanning a node reboot.  Feeding them to the estimator
    silently biases θ — and a profile that is silently wrong is worse
    than no profile at all, because the placement pass will happily
    rewrite the binary on top of it.

    Two deterministic stages (no randomness, order-preserving):

    + {e cost envelope}: the path model bounds every feasible window to
      [[min_cost − slack, max_cost + slack]] where the slack scales with
      the measurement-noise σ; anything outside is physically impossible
      and quarantined first.
    + {e MAD outlier rejection} — only when no envelope was given:
      samples farther than [mad_k] robust standard deviations
      (1.4826·MAD, floored) from the median are quarantined.  The
      median/MAD pair has a 50% breakdown point, so a contaminated
      minority cannot drag the cut-offs the way it drags a mean/σ pair.
      With a finite envelope the MAD stage stands down: genuine path
      costs are multi-modal (most windows share the modal path, so the
      MAD collapses to its floor and every legitimate long path would
      read as an outlier) — feasibility is then the model's call, and
      in-envelope garbage is the robust estimator's job
      ({!Em.estimate}'s outlier mixture).

    Edge cases are first-class: an empty input yields an empty output;
    fewer than [mad_min_n] survivors skip the MAD stage (a single sample
    or a duplicates-only set is kept, envelope permitting); a fully
    quarantined set returns [[||]] and the report says so — the caller's
    health verdict ({!Health}) turns that into a typed [Rejected], never
    an exception. *)

type config = {
  envelope_slack : float;
      (** Slack on each side of the cost envelope, in units of the
          measurement-noise σ (floored at 1 cycle). *)
  mad_k : float;  (** MAD-stage cut-off multiplier; [<= 0.] disables. *)
  mad_floor : float;
      (** Lower bound on the robust scale (cycles), so a duplicates-only
          sample set (MAD 0) keeps its duplicates. *)
  mad_min_n : int;  (** Minimum survivors for the MAD stage to engage. *)
}

val default : config
(** slack 6σ, [mad_k] 8, floor 1 cycle, [mad_min_n] 4. *)

type report = {
  total : int;
  kept : int;
  envelope_dropped : int;
  mad_dropped : int;
}

val run :
  ?config:config ->
  ?min_cost:float ->
  ?max_cost:float ->
  sigma:float ->
  float array ->
  float array * report
(** [run ~min_cost ~max_cost ~sigma samples] returns the kept samples in
    their original order plus the quarantine report.  [min_cost] /
    [max_cost] default to ∓∞ (no envelope) — pass {!Paths.min_cost} /
    {!Paths.max_cost} when a path set is available. *)

val median : float array -> float
(** Linear-interpolated median; 0 on empty input.  Exposed for tests. *)

val mad : float array -> float
(** Median absolute deviation (unscaled); 0 on empty input. *)

val pp_report : Format.formatter -> report -> unit
