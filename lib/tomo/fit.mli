(** Model checking: does the fitted path mixture actually explain the
    observed timing distribution?

    A low θ error is unobservable in the field (there is no oracle), but a
    poor distributional fit {e is} observable and flags the situations the
    estimator cannot be trusted in: path enumeration truncated below the
    real iteration counts, an unmodelled code path (interrupt handler,
    fault), or timer noise far from its configured scale. *)

type t = {
  total_variation : float;
      (** TV distance between the observed timing histogram and the
          mixture implied by θ, both discretized to the same bins. *)
  unexplained_mass : float;
      (** Fraction of observations farther than 3σ from every enumerated
          path cost — the "impossible samples". *)
  truncated : bool;  (** Enumeration was cut off (see {!Paths.truncated}). *)
}

val check : ?sigma:float -> Paths.t -> theta:float array -> samples:float array -> t
(** Default σ 1.0. @raise Invalid_argument on empty samples. *)

val acceptable : ?tv_threshold:float -> ?mass_threshold:float -> t -> bool
(** Rule of thumb: TV below 0.15 and unexplained mass below 2%. *)

val pp : Format.formatter -> t -> unit
