type plan = {
  current_samples : int;
  current_se : float;
  target_se : float;
  samples_needed : int;
}

let plan ?(replicates = 40) rng paths ~samples ~target_se =
  if Array.length samples = 0 then invalid_arg "Planner.plan: no samples";
  if target_se <= 0.0 then invalid_arg "Planner.plan: target must be positive";
  let point = (Em.estimate ~record_trajectory:false paths ~samples).Em.theta in
  let k = Array.length point in
  let n = Array.length samples in
  let current_se =
    if k = 0 then 0.0
    else begin
      (* Bootstrap standard error per parameter; keep the worst. *)
      let acc = Array.init k (fun _ -> Stats.Summary.create ()) in
      for _ = 1 to replicates do
        let resampled = Array.init n (fun _ -> samples.(Stats.Rng.int rng n)) in
        let r =
          Em.estimate ~max_iters:15 ~init:point ~record_trajectory:false paths
            ~samples:resampled
        in
        Array.iteri (fun j v -> Stats.Summary.add acc.(j) v) r.Em.theta
      done;
      Array.fold_left (fun worst s -> Stdlib.max worst (Stats.Summary.stddev s)) 0.0 acc
    end
  in
  let samples_needed =
    if current_se <= target_se then n
    else
      (* se ∝ 1/√n ⇒ n' = n (se/target)². *)
      int_of_float (ceil (float_of_int n *. ((current_se /. target_se) ** 2.0)))
  in
  { current_samples = n; current_se; target_se; samples_needed }

let pp fmt p =
  Format.fprintf fmt "n=%d se=%.4f target=%.4f -> need n=%d" p.current_samples
    p.current_se p.target_se p.samples_needed
