type config = {
  envelope_slack : float;
  mad_k : float;
  mad_floor : float;
  mad_min_n : int;
}

let default = { envelope_slack = 6.0; mad_k = 8.0; mad_floor = 1.0; mad_min_n = 4 }

type report = {
  total : int;
  kept : int;
  envelope_dropped : int;
  mad_dropped : int;
}

(* Linear-interpolated median on a private sorted copy. *)
let median xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    if n land 1 = 1 then s.(n / 2) else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))
  end

let mad xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = median xs in
    median (Array.map (fun x -> Float.abs (x -. m)) xs)
  end

(* 1.4826 makes MAD a consistent estimator of σ under normality. *)
let mad_sigma_factor = 1.4826

let run ?(config = default) ?(min_cost = Float.neg_infinity)
    ?(max_cost = Float.infinity) ~sigma samples =
  let total = Array.length samples in
  let slack = config.envelope_slack *. Stdlib.max sigma 1.0 in
  let lo = min_cost -. slack and hi = max_cost +. slack in
  let in_envelope = Array.to_list samples |> List.filter (fun x -> x >= lo && x <= hi) in
  let envelope_dropped = total - List.length in_envelope in
  let survivors = Array.of_list in_envelope in
  (* The MAD stage is the fallback for when no model envelope exists.
     Genuine path costs are multi-modal — most windows share the modal
     path, so the MAD collapses to its floor and every legitimate long
     path would read as an "outlier".  With an envelope, feasibility is
     the model's call; without one, robust statistics are the only
     defense. *)
  let have_envelope = Float.is_finite min_cost || Float.is_finite max_cost in
  let kept, mad_dropped =
    if have_envelope || config.mad_k <= 0.0 || Array.length survivors < config.mad_min_n
    then (survivors, 0)
    else begin
      let m = median survivors in
      let scale = Stdlib.max (mad_sigma_factor *. mad survivors) config.mad_floor in
      let cut = config.mad_k *. scale in
      let keep = Array.to_list survivors |> List.filter (fun x -> Float.abs (x -. m) <= cut) in
      (Array.of_list keep, Array.length survivors - List.length keep)
    end
  in
  (kept, { total; kept = Array.length kept; envelope_dropped; mad_dropped })

let pp_report fmt r =
  Format.fprintf fmt "%d/%d kept (%d outside envelope, %d MAD outliers)" r.kept
    r.total r.envelope_dropped r.mad_dropped
