type result = {
  theta : float array;
  sigma : float;
  iterations : int;
  log_likelihood : float;
  converged : bool;
  trajectory : (float array * float) list;
  outlier_eps : float option;
}

type outlier = { eps : float; estimate_eps : bool; max_eps : float }

let default_outlier = { eps = 0.05; estimate_eps = true; max_eps = 0.5 }

(* A window is the difference of two quantized timestamps, so the
   quantization error is triangular on (−res, res): variance (res²−1)/6 for
   integer cycle counts (zero when res = 1).  Jitter applies at both
   endpoints. *)
let default_sigma ~resolution ~jitter =
  let r = float_of_int resolution in
  Stdlib.max 0.1 (sqrt (((r *. r) -. 1.0) /. 6.0 +. (2.0 *. jitter *. jitter)))

let group_samples samples =
  let n = Array.length samples in
  let tbl = Hashtbl.create (Stdlib.max 16 n) in
  Array.iter
    (fun v -> Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    samples;
  let grouped = Array.make (Hashtbl.length tbl) (0.0, 0.0) in
  let at = ref 0 in
  Hashtbl.iter
    (fun v c ->
      grouped.(!at) <- (v, float_of_int c);
      incr at)
    tbl;
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) grouped;
  grouped

let clamp_theta p = Stdlib.max 1e-4 (Stdlib.min (1.0 -. 1e-4) p)

(* exp x underflows to exactly +0.0 below ≈ −745.14, so dropping a path
   whose log weight trails the per-value max by more than this changes no
   bit of any sum the reference dense E-step would have computed. *)
let exact_log_threshold = 746.0

let half_log_two_pi = 0.5 *. log (2.0 *. Float.pi)

(* Residual matrices above this many entries are recomputed on the fly
   instead of cached (the subtraction is cheap; the cache only saves it). *)
let max_resid_entries = 1 lsl 22

(* Contamination-robust variant: the mixture gains one uniform component
   of weight ε whose support covers both the path-cost envelope and the
   observed sample range, so a sample no path could explain lands on the
   outlier component instead of producing a degenerate E-step.  σ is
   re-estimated over the inlier responsibility mass only, and ε (when
   re-estimated) is the outlier mass fraction, clamped.  This path makes
   no bit-exactness promise — it runs only when the caller opts in. *)
let estimate_robust ~max_iters ~tol ~init ~sigma:sigma0 ~estimate_sigma ~sigma_floor
    ~record_trajectory oc paths ~samples =
  let model = Paths.model paths in
  let k = Model.num_params model in
  let sigs = Paths.signatures paths in
  let ns = Array.length sigs in
  let sig_of = Paths.signature_of_path paths in
  let mult = Array.make ns 0.0 in
  Array.iter (fun s -> mult.(s) <- mult.(s) +. 1.0) sig_of;
  let grouped = group_samples samples in
  let n_total = Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 grouped in
  let sigma0 = Stdlib.max sigma_floor sigma0 in
  (* Uniform support: the widest of the cost envelope and the sample
     range, padded so no observation sits on a density cliff. *)
  let smin, _ = grouped.(0) and smax, _ = grouped.(Array.length grouped - 1) in
  let pad = Stdlib.max (6.0 *. sigma0) 1.0 in
  let lo = Stdlib.min (Paths.min_cost paths) smin -. pad in
  let hi = Stdlib.max (Paths.max_cost paths) smax +. pad in
  let hi = if hi > lo then hi else lo +. 1.0 in
  let log_u = -.log (hi -. lo) in
  let clamp_eps e = Stdlib.max 1e-6 (Stdlib.min oc.max_eps e) in
  let theta = ref (match init with Some t -> Array.copy t | None -> Model.uniform_theta model) in
  let sigma = ref sigma0 in
  let eps = ref (clamp_eps oc.eps) in
  let trajectory = ref [] in
  let iterations = ref 0 in
  let converged = ref false in
  let final_ll = ref neg_infinity in
  let lp = Array.make ns 0.0 in
  let lw = Array.make ns 0.0 in
  let tiny = 1e-12 in
  while (not !converged) && !iterations < max_iters do
    incr iterations;
    Model.check_theta model !theta;
    let log_t = Array.map (fun p -> log (Stdlib.max tiny p)) !theta in
    let log_f = Array.map (fun p -> log (Stdlib.max tiny (1.0 -. p))) !theta in
    Paths.signature_log_prior paths ~log_t ~log_f lp;
    let sg = !sigma in
    let log_sigma = log sg in
    let log_in = log (Stdlib.max tiny (1.0 -. !eps)) in
    let log_out = log !eps +. log_u in
    let taken_acc = Array.make k 0.0 in
    let either_acc = Array.make k 0.0 in
    let sq_acc = ref 0.0 in
    let inlier_mass = ref 0.0 in
    let outlier_mass = ref 0.0 in
    let ll = ref 0.0 in
    Array.iter
      (fun (value, count) ->
        let best = ref log_out in
        for s = 0 to ns - 1 do
          let d = value -. sigs.(s).Paths.s_cost in
          let z = d /. sg in
          let w = log_in +. lp.(s) +. ((-0.5 *. z *. z) -. log_sigma -. half_log_two_pi) in
          lw.(s) <- w;
          if w > !best then best := w
        done;
        let best = !best in
        let z = ref (exp (log_out -. best)) in
        for s = 0 to ns - 1 do
          z := !z +. (mult.(s) *. exp (lw.(s) -. best))
        done;
        let lse = best +. log !z in
        ll := !ll +. (count *. lse);
        outlier_mass := !outlier_mass +. (count *. exp (log_out -. lse));
        for s = 0 to ns - 1 do
          (* One path's responsibility times the signature multiplicity:
             merged paths share identical branch counts by construction. *)
          let r = mult.(s) *. count *. exp (lw.(s) -. lse) in
          if r > 0.0 then begin
            let entry = sigs.(s) in
            let idx = entry.Paths.s_taken_idx and cnt = entry.Paths.s_taken_cnt in
            for i = 0 to Array.length idx - 1 do
              let j = idx.(i) in
              let rf = r *. cnt.(i) in
              taken_acc.(j) <- taken_acc.(j) +. rf;
              either_acc.(j) <- either_acc.(j) +. rf
            done;
            let idx = entry.Paths.s_nottaken_idx and cnt = entry.Paths.s_nottaken_cnt in
            for i = 0 to Array.length idx - 1 do
              either_acc.(idx.(i)) <- either_acc.(idx.(i)) +. (r *. cnt.(i))
            done;
            let d = value -. entry.Paths.s_cost in
            sq_acc := !sq_acc +. (r *. d *. d);
            inlier_mass := !inlier_mass +. r
          end
        done)
      grouped;
    let new_theta =
      Array.init k (fun j ->
          if either_acc.(j) <= 0.0 then !theta.(j) else clamp_theta (taken_acc.(j) /. either_acc.(j)))
    in
    let new_sigma =
      if estimate_sigma then
        Stdlib.max sigma_floor (sqrt (!sq_acc /. Stdlib.max tiny !inlier_mass))
      else !sigma
    in
    let new_eps =
      if oc.estimate_eps then clamp_eps (!outlier_mass /. n_total) else !eps
    in
    let delta =
      Array.mapi (fun j v -> abs_float (v -. !theta.(j))) new_theta
      |> Array.fold_left Stdlib.max (abs_float (new_eps -. !eps))
    in
    theta := new_theta;
    sigma := new_sigma;
    eps := new_eps;
    final_ll := !ll;
    if record_trajectory then trajectory := (Array.copy new_theta, !ll) :: !trajectory;
    if delta < tol then converged := true
  done;
  {
    theta = !theta;
    sigma = !sigma;
    iterations = !iterations;
    log_likelihood = !final_ll;
    converged = !converged;
    trajectory = List.rev !trajectory;
    outlier_eps = Some !eps;
  }

let estimate ?(max_iters = 100) ?(tol = 1e-5) ?init ?(sigma = 2.0) ?(estimate_sigma = true)
    ?(sigma_floor = 0.1) ?(log_threshold = exact_log_threshold)
    ?(record_trajectory = true) ?outlier paths ~samples =
  if Array.length samples = 0 then invalid_arg "Em.estimate: no samples";
  match outlier with
  | Some oc ->
      estimate_robust ~max_iters ~tol ~init ~sigma ~estimate_sigma ~sigma_floor
        ~record_trajectory oc paths ~samples
  | None ->
  let model = Paths.model paths in
  let k = Model.num_params model in
  let sigs = Paths.signatures paths in
  let ns = Array.length sigs in
  let sig_of = Paths.signature_of_path paths in
  let np = Array.length sig_of in
  let grouped = group_samples samples in
  let nv = Array.length grouped in
  let n_total = Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 grouped in
  let theta = ref (match init with Some t -> Array.copy t | None -> Model.uniform_theta model) in
  let sigma = ref (Stdlib.max sigma_floor sigma) in
  let trajectory = ref [] in
  let iterations = ref 0 in
  let converged = ref false in
  let final_ll = ref neg_infinity in
  (* Iteration-invariant: per-(value, signature) residuals value − cost.
     (Only the residual is cached, not its square: σ is re-estimated every
     iteration and the reference rounds (d/σ)·(d/σ), not d²/σ².) *)
  let resid =
    if nv * ns <= max_resid_entries then begin
      let m = Array.make (nv * ns) 0.0 in
      Array.iteri
        (fun v (value, _) ->
          let row = v * ns in
          for s = 0 to ns - 1 do
            m.(row + s) <- value -. sigs.(s).Paths.s_cost
          done)
        grouped;
      Some m
    end
    else None
  in
  (* Per-signature scratch, reused across values and iterations. *)
  let lp = Array.make ns 0.0 in
  let lw = Array.make ns 0.0 in
  let expw = Array.make ns 0.0 in
  let resp = Array.make ns 0.0 in
  let sq = Array.make ns 0.0 in
  let eps = 1e-12 in
  while (not !converged) && !iterations < max_iters do
    incr iterations;
    Model.check_theta model !theta;
    let log_t = Array.map (fun p -> log (Stdlib.max eps p)) !theta in
    let log_f = Array.map (fun p -> log (Stdlib.max eps (1.0 -. p))) !theta in
    Paths.signature_log_prior paths ~log_t ~log_f lp;
    let sg = !sigma in
    let log_sigma = log sg in
    (* Accumulators for the M-step. *)
    let taken_acc = Array.make k 0.0 in
    let either_acc = Array.make k 0.0 in
    let sq_acc = ref 0.0 in
    let ll = ref 0.0 in
    Array.iteri
      (fun v (value, count) ->
        (* E-step for one distinct observation value: the expensive terms
           (log prior, Gaussian log-pdf, both exps) once per signature... *)
        let row = v * ns in
        let best = ref neg_infinity in
        for s = 0 to ns - 1 do
          let d =
            match resid with
            | Some m -> m.(row + s)
            | None -> value -. sigs.(s).Paths.s_cost
          in
          let z = d /. sg in
          let w = lp.(s) +. ((-0.5 *. z *. z) -. log_sigma -. half_log_two_pi) in
          lw.(s) <- w;
          if w > !best then best := w
        done;
        let best = !best in
        for s = 0 to ns - 1 do
          expw.(s) <- (if best -. lw.(s) >= log_threshold then 0.0 else exp (lw.(s) -. best))
        done;
        (* ...then the normalizer replayed per raw path, so the partial
           sums round exactly as the dense per-path fold did. *)
        let z = ref 0.0 in
        for p = 0 to np - 1 do
          z := !z +. expw.(sig_of.(p))
        done;
        let lse = best +. log !z in
        ll := !ll +. (count *. lse);
        for s = 0 to ns - 1 do
          let r = if expw.(s) = 0.0 then 0.0 else count *. exp (lw.(s) -. lse) in
          resp.(s) <- r;
          if r > 0.0 then begin
            let d =
              match resid with
              | Some m -> m.(row + s)
              | None -> value -. sigs.(s).Paths.s_cost
            in
            sq.(s) <- r *. d *. d
          end
        done;
        (* M-step accumulation, also replayed in raw enumeration order with
           the per-signature responsibility, iterating only nonzero branch
           counts (the dense loop guarded on c > 0, so the terms match). *)
        for p = 0 to np - 1 do
          let s = sig_of.(p) in
          let r = resp.(s) in
          if r > 0.0 then begin
            let entry = sigs.(s) in
            let idx = entry.Paths.s_taken_idx and cnt = entry.Paths.s_taken_cnt in
            for i = 0 to Array.length idx - 1 do
              let j = idx.(i) in
              let rf = r *. cnt.(i) in
              taken_acc.(j) <- taken_acc.(j) +. rf;
              either_acc.(j) <- either_acc.(j) +. rf
            done;
            let idx = entry.Paths.s_nottaken_idx and cnt = entry.Paths.s_nottaken_cnt in
            for i = 0 to Array.length idx - 1 do
              either_acc.(idx.(i)) <- either_acc.(idx.(i)) +. (r *. cnt.(i))
            done;
            sq_acc := !sq_acc +. sq.(s)
          end
        done)
      grouped;
    let new_theta =
      Array.init k (fun j ->
          if either_acc.(j) <= 0.0 then !theta.(j) else clamp_theta (taken_acc.(j) /. either_acc.(j)))
    in
    let new_sigma =
      if estimate_sigma then Stdlib.max sigma_floor (sqrt (!sq_acc /. n_total)) else !sigma
    in
    let delta =
      Array.mapi (fun j v -> abs_float (v -. !theta.(j))) new_theta
      |> Array.fold_left Stdlib.max 0.0
    in
    theta := new_theta;
    sigma := new_sigma;
    final_ll := !ll;
    if record_trajectory then trajectory := (Array.copy new_theta, !ll) :: !trajectory;
    if delta < tol then converged := true
  done;
  {
    theta = !theta;
    sigma = !sigma;
    iterations = !iterations;
    log_likelihood = !final_ll;
    converged = !converged;
    trajectory = List.rev !trajectory;
    outlier_eps = None;
  }

(* The dense per-path reference the sparse kernels were derived from.  Kept
   as a library citizen (not test scaffolding) so the equivalence tests and
   the differential fuzzer exercise one and the same implementation.  Every
   fold below visits raw paths in enumeration order and guards on c > 0 —
   the exact semantics the optimized kernels replay bit-for-bit. *)
module Dense = struct
  let estimate ?(max_iters = 100) ?(tol = 1e-5) ?init ?(sigma = 2.0)
      ?(estimate_sigma = true) ?(sigma_floor = 0.1) ?(record_trajectory = true)
      paths ~samples =
    if Array.length samples = 0 then invalid_arg "Em.Dense.estimate: no samples";
    let model = Paths.model paths in
    let k = Model.num_params model in
    let pth = Paths.paths paths in
    let np = Array.length pth in
    let grouped = group_samples samples in
    let n_total = Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 grouped in
    let theta =
      ref (match init with Some t -> Array.copy t | None -> Model.uniform_theta model)
    in
    let sigma = ref (Stdlib.max sigma_floor sigma) in
    let trajectory = ref [] in
    let iterations = ref 0 in
    let converged = ref false in
    let final_ll = ref neg_infinity in
    let logw = Array.make np 0.0 in
    while (not !converged) && !iterations < max_iters do
      incr iterations;
      let log_prior = Paths.log_prior paths ~theta:!theta in
      let taken_acc = Array.make k 0.0 in
      let either_acc = Array.make k 0.0 in
      let sq_acc = ref 0.0 in
      let ll = ref 0.0 in
      Array.iter
        (fun (value, count) ->
          let best = ref neg_infinity in
          for p = 0 to np - 1 do
            let lw =
              log_prior.(p)
              +. Stats.Dist.gaussian_log_pdf ~mu:pth.(p).Paths.cost ~sigma:!sigma value
            in
            logw.(p) <- lw;
            if lw > !best then best := lw
          done;
          let z = ref 0.0 in
          for p = 0 to np - 1 do
            z := !z +. exp (logw.(p) -. !best)
          done;
          let lse = !best +. log !z in
          ll := !ll +. (count *. lse);
          for p = 0 to np - 1 do
            let r = count *. exp (logw.(p) -. lse) in
            if r > 0.0 then begin
              let path = pth.(p) in
              Array.iteri
                (fun j c ->
                  if c > 0 then begin
                    let fc = float_of_int c in
                    taken_acc.(j) <- taken_acc.(j) +. (r *. fc);
                    either_acc.(j) <- either_acc.(j) +. (r *. fc)
                  end)
                path.Paths.taken;
              Array.iteri
                (fun j c ->
                  if c > 0 then either_acc.(j) <- either_acc.(j) +. (r *. float_of_int c))
                path.Paths.nottaken;
              let d = value -. path.Paths.cost in
              sq_acc := !sq_acc +. (r *. d *. d)
            end
          done)
        grouped;
      let new_theta =
        Array.init k (fun j ->
            if either_acc.(j) <= 0.0 then !theta.(j)
            else clamp_theta (taken_acc.(j) /. either_acc.(j)))
      in
      let new_sigma =
        if estimate_sigma then Stdlib.max sigma_floor (sqrt (!sq_acc /. n_total))
        else !sigma
      in
      let delta =
        Array.mapi (fun j v -> abs_float (v -. !theta.(j))) new_theta
        |> Array.fold_left Stdlib.max 0.0
      in
      theta := new_theta;
      sigma := new_sigma;
      final_ll := !ll;
      if record_trajectory then trajectory := (Array.copy new_theta, !ll) :: !trajectory;
      if delta < tol then converged := true
    done;
    {
      theta = !theta;
      sigma = !sigma;
      iterations = !iterations;
      log_likelihood = !final_ll;
      converged = !converged;
      trajectory = List.rev !trajectory;
      outlier_eps = None;
    }
end
