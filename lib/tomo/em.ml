type result = {
  theta : float array;
  sigma : float;
  iterations : int;
  log_likelihood : float;
  converged : bool;
  trajectory : (float array * float) list;
}

(* A window is the difference of two quantized timestamps, so the
   quantization error is triangular on (−res, res): variance (res²−1)/6 for
   integer cycle counts (zero when res = 1).  Jitter applies at both
   endpoints. *)
let default_sigma ~resolution ~jitter =
  let r = float_of_int resolution in
  Stdlib.max 0.1 (sqrt (((r *. r) -. 1.0) /. 6.0 +. (2.0 *. jitter *. jitter)))

let group_samples samples =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun v -> Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    samples;
  Hashtbl.fold (fun v c acc -> (v, float_of_int c) :: acc) tbl [] |> List.sort compare
  |> Array.of_list

let clamp_theta p = Stdlib.max 1e-4 (Stdlib.min (1.0 -. 1e-4) p)

let estimate ?(max_iters = 100) ?(tol = 1e-5) ?init ?(sigma = 2.0) ?(estimate_sigma = true)
    ?(sigma_floor = 0.1) paths ~samples =
  if Array.length samples = 0 then invalid_arg "Em.estimate: no samples";
  let model = Paths.model paths in
  let k = Model.num_params model in
  let pth = Paths.paths paths in
  let np = Array.length pth in
  let grouped = group_samples samples in
  let n_total = Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 grouped in
  let theta = ref (match init with Some t -> Array.copy t | None -> Model.uniform_theta model) in
  let sigma = ref (Stdlib.max sigma_floor sigma) in
  let trajectory = ref [] in
  let iterations = ref 0 in
  let converged = ref false in
  let final_ll = ref neg_infinity in
  let logw = Array.make np 0.0 in
  while (not !converged) && !iterations < max_iters do
    incr iterations;
    let log_prior = Paths.log_prior paths ~theta:!theta in
    (* Accumulators for the M-step. *)
    let taken_acc = Array.make k 0.0 in
    let either_acc = Array.make k 0.0 in
    let sq_acc = ref 0.0 in
    let ll = ref 0.0 in
    Array.iter
      (fun (value, count) ->
        (* E-step for one distinct observation value. *)
        let best = ref neg_infinity in
        for p = 0 to np - 1 do
          let lw =
            log_prior.(p)
            +. Stats.Dist.gaussian_log_pdf ~mu:pth.(p).Paths.cost ~sigma:!sigma value
          in
          logw.(p) <- lw;
          if lw > !best then best := lw
        done;
        let z = ref 0.0 in
        for p = 0 to np - 1 do
          z := !z +. exp (logw.(p) -. !best)
        done;
        let lse = !best +. log !z in
        ll := !ll +. (count *. lse);
        for p = 0 to np - 1 do
          let r = count *. exp (logw.(p) -. lse) in
          if r > 0.0 then begin
            let path = pth.(p) in
            Array.iteri
              (fun j c ->
                if c > 0 then begin
                  let fc = float_of_int c in
                  taken_acc.(j) <- taken_acc.(j) +. (r *. fc);
                  either_acc.(j) <- either_acc.(j) +. (r *. fc)
                end)
              path.Paths.taken;
            Array.iteri
              (fun j c ->
                if c > 0 then either_acc.(j) <- either_acc.(j) +. (r *. float_of_int c))
              path.Paths.nottaken;
            let d = value -. path.Paths.cost in
            sq_acc := !sq_acc +. (r *. d *. d)
          end
        done)
      grouped;
    let new_theta =
      Array.init k (fun j ->
          if either_acc.(j) <= 0.0 then !theta.(j) else clamp_theta (taken_acc.(j) /. either_acc.(j)))
    in
    let new_sigma =
      if estimate_sigma then Stdlib.max sigma_floor (sqrt (!sq_acc /. n_total)) else !sigma
    in
    let delta =
      Array.mapi (fun j v -> abs_float (v -. !theta.(j))) new_theta
      |> Array.fold_left Stdlib.max 0.0
    in
    theta := new_theta;
    sigma := new_sigma;
    final_ll := !ll;
    trajectory := (Array.copy new_theta, !ll) :: !trajectory;
    if delta < tol then converged := true
  done;
  {
    theta = !theta;
    sigma = !sigma;
    iterations = !iterations;
    log_likelihood = !final_ll;
    converged = !converged;
    trajectory = List.rev !trajectory;
  }
