(** A placement: the order in which a procedure's basic blocks are laid
    out in flash.  Position 0 must hold the entry block (the procedure's
    address is its first instruction). *)

type t = int array
(** [t.(i)] is the block id at position [i]. *)

val natural : Cfgir.Cfg.t -> t
(** Original (compiler) order: the identity permutation. *)

val validate : Cfgir.Cfg.t -> t -> unit
(** @raise Invalid_argument unless [t] is a permutation of all block ids
    with the entry first. *)

val position_of : t -> int array
(** Inverse permutation: block id → position. *)

val next_in_layout : t -> int -> int option
(** Block physically following the given block, if any. *)

val pp : Format.formatter -> t -> unit
