type t = int array

let natural cfg = Array.init (Cfgir.Cfg.num_blocks cfg) (fun i -> i)

let validate cfg t =
  let n = Cfgir.Cfg.num_blocks cfg in
  if Array.length t <> n then invalid_arg "Placement: wrong length";
  if n > 0 && t.(0) <> 0 then invalid_arg "Placement: entry block must be first";
  let seen = Array.make n false in
  Array.iter
    (fun id ->
      if id < 0 || id >= n then invalid_arg "Placement: block id out of range";
      if seen.(id) then invalid_arg "Placement: duplicate block id";
      seen.(id) <- true)
    t

let position_of t =
  let pos = Array.make (Array.length t) 0 in
  Array.iteri (fun i id -> pos.(id) <- i) t;
  pos

let next_in_layout t id =
  let pos = position_of t in
  let i = pos.(id) in
  if i + 1 < Array.length t then Some t.(i + 1) else None

let pp fmt t =
  Format.fprintf fmt "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "B%d") t)))
