(** Static evaluation of a placement against an edge-frequency profile.

    Predicts, without running anything, how many layout-sensitive control
    transfers will be {e taken} per the profile — the quantity the mote's
    fetch stage stalls on.  The rules mirror exactly what {!Rewrite}
    emits:

    - branch whose fall-through successor is laid out next: taken as often
      as the taken edge fires;
    - branch whose {e taken} successor is next: condition gets flipped, so
      it is taken as often as the old fall edge fires;
    - branch with neither successor adjacent: branch to the taken target
      plus a bridging jump, so every execution transfers except none —
      taken-edge weight plus fall-edge weight;
    - jump/fall-through edges: free when the destination is adjacent, one
      taken transfer per traversal otherwise. *)

type policy =
  | Not_taken  (** Every taken transfer stalls (the default mote model). *)
  | Btfn
      (** Backward-taken/forward-not-taken: a conditional branch whose
          target lands {e earlier in the layout} is predicted taken, so it
          stalls only when it falls through — and vice versa.
          Unconditional jumps always stall. *)

type report = {
  taken_transfers : float;
      (** Expected stalling transfers under the policy (profile units). *)
  considered : float;  (** Branch executions + surviving jump traversals. *)
  taken_rate : float;  (** taken / considered (0 when nothing executes). *)
  bridge_jumps : int;  (** Bridging jumps the rewrite will add. *)
  size_words : int;  (** Predicted flash words after rewriting. *)
}

val evaluate : ?policy:policy -> Cfgir.Freq.t -> Placement.t -> report

val taken_transfers : ?policy:policy -> Cfgir.Freq.t -> Placement.t -> float
(** Shorthand for [(evaluate f p).taken_transfers]. *)
