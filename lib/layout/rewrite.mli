(** The binary-rewriting pass: materialize placements into a new program.

    For every procedure, blocks are emitted in placement order; conditional
    branches are re-pointed and their polarity flipped when the taken
    successor becomes the fall-through; bridging jumps are inserted where a
    fall-through edge was broken and deleted where a jump target became
    adjacent.  Everything else — including calls across procedures — is
    relinked symbolically and reassembled, so the output is a complete,
    runnable binary. *)

val items :
  Mote_isa.Program.t ->
  placements:(string * Placement.t) list ->
  Mote_isa.Asm.item list
(** Procedures not named in [placements] keep their natural order. *)

val program :
  Mote_isa.Program.t -> placements:(string * Placement.t) list -> Mote_isa.Program.t
(** [items] followed by assembly. *)

val apply_all :
  Mote_isa.Program.t ->
  algorithm:(Cfgir.Freq.t -> Placement.t) ->
  profiles:(string * Cfgir.Freq.t) list ->
  Mote_isa.Program.t
(** Compute a placement for every profiled procedure with [algorithm] and
    rewrite.  Procedures without a profile are left in natural order. *)
