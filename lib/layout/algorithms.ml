module Cfg = Cfgir.Cfg

(* Union of chains, each a block list in layout order.  [chain_id.(b)] is
   the chain a block currently belongs to; chains live in [chains] keyed by
   a representative id. *)
let pettis_hansen freq =
  let cfg = Cfgir.Freq.cfg freq in
  let n = Cfg.num_blocks cfg in
  let chain_id = Array.init n (fun i -> i) in
  let chains = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    Hashtbl.replace chains i [ i ]
  done;
  let head c = List.hd (Hashtbl.find chains c) in
  let tail c = List.hd (List.rev (Hashtbl.find chains c)) in
  let weighted_edges =
    Cfgir.Freq.weights freq
    |> List.filter (fun ((src, dst, _), _) -> src <> dst)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  List.iter
    (fun ((src, dst, _), w) ->
      if w > 0.0 then begin
        let ca = chain_id.(src) and cb = chain_id.(dst) in
        (* Merge only tail→head so both chains stay contiguous, and never
           put a block in front of the entry. *)
        if ca <> cb && tail ca = src && head cb = dst && dst <> 0 then begin
          let merged = Hashtbl.find chains ca @ Hashtbl.find chains cb in
          Hashtbl.replace chains ca merged;
          Hashtbl.remove chains cb;
          List.iter (fun b -> chain_id.(b) <- ca) merged
        end
      end)
    weighted_edges;
  (* Order chains: entry chain first, then repeatedly the chain most
     strongly connected (either direction) to what is already placed. *)
  let edge_weight = Hashtbl.create 32 in
  List.iter
    (fun ((src, dst, _), w) ->
      let add a b =
        let key = (a, b) in
        Hashtbl.replace edge_weight key
          (w +. Option.value ~default:0.0 (Hashtbl.find_opt edge_weight key))
      in
      add src dst;
      add dst src)
    (Cfgir.Freq.weights freq);
  let remaining = Hashtbl.fold (fun c _ acc -> c :: acc) chains [] |> List.sort compare in
  let remaining = List.filter (fun c -> c <> chain_id.(0)) remaining in
  let placed = ref (Hashtbl.find chains chain_id.(0)) in
  let order = ref [ chain_id.(0) ] in
  let rec place remaining =
    match remaining with
    | [] -> ()
    | _ ->
        let connection c =
          List.fold_left
            (fun acc b ->
              List.fold_left
                (fun acc p ->
                  acc +. Option.value ~default:0.0 (Hashtbl.find_opt edge_weight (b, p)))
                acc !placed)
            0.0 (Hashtbl.find chains c)
        in
        let best =
          List.fold_left
            (fun (bc, bw) c ->
              let w = connection c in
              if w > bw then (c, w) else (bc, bw))
            (List.hd remaining, connection (List.hd remaining))
            (List.tl remaining)
        in
        let c = fst best in
        order := c :: !order;
        placed := !placed @ Hashtbl.find chains c;
        place (List.filter (fun x -> x <> c) remaining)
  in
  place remaining;
  let placement =
    List.rev !order |> List.concat_map (fun c -> Hashtbl.find chains c) |> Array.of_list
  in
  Placement.validate cfg placement;
  placement

let greedy freq =
  let cfg = Cfgir.Freq.cfg freq in
  let n = Cfg.num_blocks cfg in
  let visits = Cfgir.Freq.block_visits freq in
  let placed = Array.make n false in
  let order = ref [] in
  let place id =
    placed.(id) <- true;
    order := id :: !order
  in
  let heaviest_successor id =
    Cfg.successors cfg id
    |> List.filter (fun (dst, _) -> not placed.(dst))
    |> List.map (fun (dst, kind) -> (dst, Cfgir.Freq.get freq ~src:id ~dst ~kind))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> function
    | (dst, _) :: _ -> Some dst
    | [] -> None
  in
  let hottest_unplaced () =
    let best = ref None in
    for id = 0 to n - 1 do
      if not placed.(id) then
        match !best with
        | Some b when visits.(b) >= visits.(id) -> ()
        | _ -> best := Some id
    done;
    !best
  in
  let rec grow id =
    place id;
    match heaviest_successor id with
    | Some dst -> grow dst
    | None -> (
        match hottest_unplaced () with Some fresh -> grow fresh | None -> ())
  in
  if n > 0 then grow 0;
  let placement = Array.of_list (List.rev !order) in
  Placement.validate cfg placement;
  placement

let exhaustive ~better ?(max_blocks = 9) freq =
  let cfg = Cfgir.Freq.cfg freq in
  let n = Cfg.num_blocks cfg in
  if n > max_blocks then
    invalid_arg
      (Printf.sprintf "Layout: exhaustive search limited to %d blocks, CFG has %d"
         max_blocks n);
  if n <= 1 then Placement.natural cfg
  else begin
    let rest = Array.init (n - 1) (fun i -> i + 1) in
    let best = ref (Placement.natural cfg) in
    let best_score = ref (Eval.taken_transfers freq !best) in
    (* Heap's algorithm over the non-entry blocks. *)
    let consider () =
      let candidate = Array.append [| 0 |] rest in
      let score = Eval.taken_transfers freq candidate in
      if better score !best_score then begin
        best := candidate;
        best_score := score
      end
    in
    let swap i j =
      let t = rest.(i) in
      rest.(i) <- rest.(j);
      rest.(j) <- t
    in
    let rec permute k =
      if k = 1 then consider ()
      else
        for i = 0 to k - 1 do
          permute (k - 1);
          if k mod 2 = 0 then swap i (k - 1) else swap 0 (k - 1)
        done
    in
    permute (n - 1);
    !best
  end

let optimal ?max_blocks freq = exhaustive ~better:(fun a b -> a < b) ?max_blocks freq
let pessimal ?max_blocks freq = exhaustive ~better:(fun a b -> a > b) ?max_blocks freq

let anneal ?(seed = 1) ?(iterations = 4000) ?(restarts = 3) freq =
  let cfg = Cfgir.Freq.cfg freq in
  let n = Cfg.num_blocks cfg in
  let seed_placement = pettis_hansen freq in
  if n <= 2 then seed_placement
  else begin
    let rng = Stats.Rng.create seed in
    let score p = Eval.taken_transfers freq p in
    let best = ref (Array.copy seed_placement) in
    let best_score = ref (score seed_placement) in
    for restart = 1 to restarts do
      ignore restart;
      let current = Array.copy !best in
      let current_score = ref (score current) in
      (* Geometric cooling sized to the typical edge weight. *)
      let t0 = Stdlib.max 1.0 (!best_score /. 10.0) in
      for i = 0 to iterations - 1 do
        let temp = t0 *. (0.995 ** float_of_int i) in
        let a = 1 + Stats.Rng.int rng (n - 1) in
        let b = 1 + Stats.Rng.int rng (n - 1) in
        if a <> b then begin
          let tmp = current.(a) in
          current.(a) <- current.(b);
          current.(b) <- tmp;
          let candidate_score = score current in
          let delta = candidate_score -. !current_score in
          let accept =
            delta <= 0.0
            || Stats.Rng.unit_float rng < exp (-.delta /. Stdlib.max 1e-9 temp)
          in
          if accept then begin
            current_score := candidate_score;
            if candidate_score < !best_score then begin
              best := Array.copy current;
              best_score := candidate_score
            end
          end
          else begin
            (* Undo. *)
            let tmp = current.(a) in
            current.(a) <- current.(b);
            current.(b) <- tmp
          end
        end
      done
    done;
    Placement.validate cfg !best;
    !best
  end
