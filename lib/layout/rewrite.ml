module Cfg = Cfgir.Cfg
module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Program = Mote_isa.Program

let block_label proc id = Printf.sprintf "%s$B%d" proc id

let items program ~placements =
  let procs =
    Program.procs program |> List.sort (fun a b -> compare a.Program.entry b.Program.entry)
  in
  let call_target addr =
    match Program.proc_at program addr with
    | Some p when p.Program.entry = addr -> p.Program.name
    | Some p ->
        invalid_arg
          (Printf.sprintf "Rewrite: call into the middle of procedure %s" p.Program.name)
    | None -> invalid_arg (Printf.sprintf "Rewrite: call to unmapped address %d" addr)
  in
  let emit_proc info =
    let name = info.Program.name in
    let cfg = Cfg.of_proc program info in
    let placement =
      match List.assoc_opt name placements with
      | Some p ->
          Placement.validate cfg p;
          p
      | None -> Placement.natural cfg
    in
    let n = Array.length placement in
    let out = ref [ Asm.Proc name ] in
    let push item = out := item :: !out in
    Array.iteri
      (fun i id ->
        let b = Cfg.block cfg id in
        push (Asm.Label (block_label name id));
        let body_last =
          match b.Cfg.term with
          | Cfg.T_fall _ -> b.Cfg.last (* no terminator instruction to drop *)
          | _ -> b.Cfg.last - 1
        in
        for addr = b.Cfg.first to body_last do
          let ins = Program.instr program addr in
          push (Asm.I (Isa.map_label call_target ins))
        done;
        let next = if i + 1 < n then Some placement.(i + 1) else None in
        let lbl = block_label name in
        match b.Cfg.term with
        | Cfg.T_branch (cond, tdst, fdst) ->
            if next = Some fdst then push (Asm.I (Isa.Br (cond, lbl tdst)))
            else if next = Some tdst then
              push (Asm.I (Isa.Br (Isa.negate_cond cond, lbl fdst)))
            else begin
              push (Asm.I (Isa.Br (cond, lbl tdst)));
              push (Asm.I (Isa.Jmp (lbl fdst)))
            end
        | Cfg.T_jump dst | Cfg.T_fall dst ->
            if next <> Some dst then push (Asm.I (Isa.Jmp (lbl dst)))
        | Cfg.T_ret -> push (Asm.I Isa.Ret)
        | Cfg.T_halt -> push (Asm.I Isa.Halt))
      placement;
    List.rev !out
  in
  List.concat_map emit_proc procs

let program prog ~placements = Asm.assemble (items prog ~placements)

let apply_all prog ~algorithm ~profiles =
  let placements = List.map (fun (name, freq) -> (name, algorithm freq)) profiles in
  program prog ~placements
