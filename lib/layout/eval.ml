module Cfg = Cfgir.Cfg
module Isa = Mote_isa.Isa

type policy = Not_taken | Btfn

type report = {
  taken_transfers : float;
  considered : float;
  taken_rate : float;
  bridge_jumps : int;
  size_words : int;
}

let jmp_words = Isa.size (Isa.Jmp 0)

(* Stall mass of one emitted conditional branch: [w_takes] executions take
   it, [w_falls] fall through.  Under BTFN a backward branch (target at or
   before the branch's own block — the branch instruction sits at the
   block's end, so a self-loop is backward too) is predicted taken. *)
let branch_stall policy ~src_pos ~target_pos ~w_takes ~w_falls =
  match policy with
  | Not_taken -> w_takes
  | Btfn -> if target_pos <= src_pos then w_falls else w_takes

let evaluate ?(policy = Not_taken) freq placement =
  let cfg = Cfgir.Freq.cfg freq in
  Placement.validate cfg placement;
  let pos = Placement.position_of placement in
  let n = Cfg.num_blocks cfg in
  let next id = if pos.(id) + 1 < n then Some placement.(pos.(id) + 1) else None in
  let taken = ref 0.0 and considered = ref 0.0 in
  let bridges = ref 0 in
  let size = ref 0 in
  for id = 0 to n - 1 do
    let b = Cfg.block cfg id in
    size := !size + b.Cfg.size_words;
    let adjacent dst = next id = Some dst in
    match b.Cfg.term with
    | Cfg.T_branch (_, tdst, fdst) ->
        let wt = Cfgir.Freq.get freq ~src:id ~dst:tdst ~kind:Cfg.K_taken in
        let wf = Cfgir.Freq.get freq ~src:id ~dst:fdst ~kind:Cfg.K_fall in
        let stall = branch_stall policy ~src_pos:pos.(id) in
        if adjacent fdst then begin
          (* Branch kept: takes wt times, to tdst. *)
          taken := !taken +. stall ~target_pos:pos.(tdst) ~w_takes:wt ~w_falls:wf;
          considered := !considered +. wt +. wf
        end
        else if adjacent tdst then begin
          (* Condition flipped: takes wf times, to fdst. *)
          taken := !taken +. stall ~target_pos:pos.(fdst) ~w_takes:wf ~w_falls:wt;
          considered := !considered +. wt +. wf
        end
        else begin
          (* Branch to the taken target plus a bridging jump to the fall
             target: the jump is itself an always-stalling transfer. *)
          taken :=
            !taken +. stall ~target_pos:pos.(tdst) ~w_takes:wt ~w_falls:wf +. wf;
          considered := !considered +. wt +. wf +. wf;
          incr bridges;
          size := !size + jmp_words
        end
    | Cfg.T_jump dst ->
        let w = Cfgir.Freq.get freq ~src:id ~dst ~kind:Cfg.K_jump in
        if adjacent dst then size := !size - jmp_words
        else begin
          taken := !taken +. w;
          considered := !considered +. w
        end
    | Cfg.T_fall dst ->
        let w = Cfgir.Freq.get freq ~src:id ~dst ~kind:Cfg.K_fall in
        if not (adjacent dst) then begin
          taken := !taken +. w;
          considered := !considered +. w;
          incr bridges;
          size := !size + jmp_words
        end
    | Cfg.T_ret | Cfg.T_halt -> ()
  done;
  {
    taken_transfers = !taken;
    considered = !considered;
    taken_rate = (if !considered > 0.0 then !taken /. !considered else 0.0);
    bridge_jumps = !bridges;
    size_words = !size;
  }

let taken_transfers ?policy freq placement = (evaluate ?policy freq placement).taken_transfers
