(** Placement algorithms.

    [pettis_hansen] is the classic bottom-up chain construction from
    Pettis & Hansen (PLDI 1990) — the pass the paper feeds its estimated
    profiles into.  [greedy] is the simpler top-down trace-growing
    baseline, [optimal]/[pessimal] exhaust permutations on small
    procedures to bound what placement can possibly achieve (ablation
    A9). *)

val pettis_hansen : Cfgir.Freq.t -> Placement.t
(** Merge blocks into chains along edges in decreasing weight order (a
    merge joins the tail of one chain to the head of another; the entry
    block is pinned as a chain head), then emit the entry chain first and
    the remaining chains in decreasing order of their connection weight to
    the already-placed ones. *)

val greedy : Cfgir.Freq.t -> Placement.t
(** Grow a single trace from the entry along the heaviest outgoing edge to
    an unplaced block; restart from the hottest unplaced block when
    stuck. *)

val optimal : ?max_blocks:int -> Cfgir.Freq.t -> Placement.t
(** Exhaustive minimization of {!Eval.taken_transfers}.
    @raise Invalid_argument when the CFG has more than [max_blocks]
    (default 9) blocks. *)

val pessimal : ?max_blocks:int -> Cfgir.Freq.t -> Placement.t
(** Exhaustive maximization — the worst-case layout for T4's spread. *)

val anneal :
  ?seed:int -> ?iterations:int -> ?restarts:int -> Cfgir.Freq.t -> Placement.t
(** Simulated annealing over placements (neighbour move: swap two
    non-entry blocks or relocate one), seeded from the Pettis–Hansen
    result and never returning anything worse than it.  Useful on
    procedures too large for {!optimal}.  Defaults: seed 1, 4000
    iterations per restart, 3 restarts. *)
