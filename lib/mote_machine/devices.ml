type probe_record = { pc : int; cycles : int; value : int }

type t = {
  timer_resolution : int;
  timer_jitter : float;
  probe_capacity : int option;
  probe_loss : float;
  rng : Stats.Rng.t;
  mutable sensor : int -> int;
  radio_rx_q : int Queue.t;
  mutable tx_log : int list; (* newest first *)
  mutable leds : int;
  mutable led_writes : int;
  mutable probes : probe_record list; (* newest first *)
  mutable probe_count : int;
  mutable probes_dropped : int;
  counters : (int, int) Hashtbl.t;
}

let create ?(timer_resolution = 1) ?(timer_jitter = 0.0) ?probe_capacity
    ?(probe_loss = 0.0) ?rng () =
  if timer_resolution <= 0 then invalid_arg "Devices.create: resolution must be positive";
  if timer_jitter < 0.0 then invalid_arg "Devices.create: negative jitter";
  (match probe_capacity with
  | Some c when c <= 0 -> invalid_arg "Devices.create: probe capacity must be positive"
  | _ -> ());
  if probe_loss < 0.0 || probe_loss >= 1.0 then
    invalid_arg "Devices.create: probe loss outside [0,1)";
  let rng = match rng with Some r -> r | None -> Stats.Rng.create 7 in
  {
    timer_resolution;
    timer_jitter;
    probe_capacity;
    probe_loss;
    rng;
    sensor = (fun _ -> 0);
    radio_rx_q = Queue.create ();
    tx_log = [];
    leds = 0;
    led_writes = 0;
    probes = [];
    probe_count = 0;
    probes_dropped = 0;
    counters = Hashtbl.create 64;
  }

let timer_resolution t = t.timer_resolution

let read_timer t ~cycles =
  let noisy =
    if t.timer_jitter = 0.0 then float_of_int cycles
    else Stats.Dist.gaussian t.rng ~mu:(float_of_int cycles) ~sigma:t.timer_jitter
  in
  let ticks = int_of_float (floor (noisy /. float_of_int t.timer_resolution)) in
  Stdlib.max 0 ticks

let set_sensor t f = t.sensor <- f
let read_sensor t ~channel = t.sensor channel

let radio_push_rx t v = Queue.push v t.radio_rx_q

let radio_rx t = match Queue.take_opt t.radio_rx_q with Some v -> v | None -> 0

let radio_rx_pending t = Queue.length t.radio_rx_q

let radio_tx t v = t.tx_log <- v :: t.tx_log
let tx_log t = List.rev t.tx_log

let set_leds t v =
  t.leds <- v;
  t.led_writes <- t.led_writes + 1

let leds t = t.leds
let led_writes t = t.led_writes

(* Two loss modes: a full buffer drops the incoming record (reader fell
   behind for good), and an unreliable uplink loses records independently
   at [probe_loss]. *)
let probe t ~pc ~cycles ~value =
  let buffer_full =
    match t.probe_capacity with Some cap -> t.probe_count >= cap | None -> false
  in
  if buffer_full || (t.probe_loss > 0.0 && Stats.Rng.bernoulli t.rng t.probe_loss) then
    t.probes_dropped <- t.probes_dropped + 1
  else begin
    t.probes <- { pc; cycles; value } :: t.probes;
    t.probe_count <- t.probe_count + 1
  end

let probe_log t = List.rev t.probes
let probes_dropped t = t.probes_dropped

let clear_probe_log t =
  t.probes <- [];
  t.probe_count <- 0

let bump_counter t id =
  let current = Option.value ~default:0 (Hashtbl.find_opt t.counters id) in
  Hashtbl.replace t.counters id (current + 1)

let counter t id = Option.value ~default:0 (Hashtbl.find_opt t.counters id)

let counters t =
  Hashtbl.fold (fun id v acc -> if v <> 0 then (id, v) :: acc else acc) t.counters []
  |> List.sort compare

let reset_volatile t =
  Queue.clear t.radio_rx_q;
  t.tx_log <- [];
  t.leds <- 0;
  t.led_writes <- 0;
  t.probes <- [];
  t.probe_count <- 0;
  t.probes_dropped <- 0;
  Hashtbl.reset t.counters
