(** The CT16 interpreter: cycle-counted execution of assembled programs.

    Arithmetic is 16-bit two's-complement, memory is a flat word array, and
    the stack grows down from the top of memory.  Every taken control
    transfer (taken branch, jump, call, return) pays
    {!Mote_isa.Isa.taken_penalty} extra cycles — the static
    predict-not-taken model whose miss rate code placement minimizes.

    Procedures run with TinyOS-style run-to-completion semantics via
    {!run_proc}: the machine pushes a sentinel return address, jumps to the
    entry, and executes until the matching [Ret].  Global memory persists
    across invocations (mote programs keep state in statics). *)

open Mote_isa

type prediction =
  | Predict_not_taken
      (** AVR/MSP430 style: fetch always proceeds sequentially, every
          taken transfer pays the penalty (the default, and the model the
          placement pass optimizes for). *)
  | Predict_btfn
      (** Backward-taken/forward-not-taken static heuristic: a conditional
          branch to a lower address is predicted taken; the penalty is
          paid on mispredictions.  Unconditional transfers still redirect
          fetch and pay the penalty. *)

type stats = {
  instructions : int;
  cycles : int;
  cond_branches : int;  (** Conditional branches executed. *)
  taken_cond_branches : int;
  mispredicted_branches : int;
      (** Conditional branches that paid the penalty under the machine's
          prediction policy (equals taken count for
          {!Predict_not_taken}). *)
  unconditional_transfers : int;  (** [Jmp] instructions executed. *)
  calls : int;
  returns : int;
}

val taken_transfer_rate : stats -> float
(** (mispredicted conditional + jumps) / (conditional + jumps): the
    fraction of layout-sensitive control transfers that stall the fetch
    stage — the paper's "branch misprediction rate" analogue.  0 when no
    such transfers executed. *)

exception Fault of string
(** Out-of-range memory/pc access, stack overflow, fuel exhaustion, reads
    from write-only ports. *)

type t

val create :
  ?mem_words:int ->
  ?prediction:prediction ->
  program:Program.t ->
  devices:Devices.t ->
  unit ->
  t
(** Fresh machine with zeroed registers and memory (default 4096 words,
    {!Predict_not_taken}). *)

val program : t -> Program.t
val devices : t -> Devices.t
val cycles : t -> int
val stats : t -> stats
val halted : t -> bool

val reg : t -> Isa.reg -> int
val set_reg : t -> Isa.reg -> int -> unit
val read_mem : t -> int -> int
val write_mem : t -> int -> int -> unit

val set_branch_hook : t -> (pc:int -> taken:bool -> unit) option -> unit
(** Invoked on every conditional branch with its outcome; used by the
    oracle (perturbation-free) profiler. *)

val set_trace_hook :
  t -> (pc:int -> instr:int Isa.instr -> cycles:int -> unit) option -> unit
(** Invoked before every instruction executes (with the cycle count at
    that point) — execution tracing for debugging; costs nothing when
    unset. *)

val run_proc : ?fuel:int -> t -> string -> int
(** [run_proc t name] executes one invocation of the procedure and returns
    the cycles it consumed (including instrumentation the binary carries).
    Registers are scratch across invocations; memory persists.
    @raise Fault on traps or when [fuel] instructions (default 1e7) are
    exceeded.
    @raise Not_found if the procedure does not exist. *)

val run_from_symbol : ?fuel:int -> t -> string -> unit
(** Jump to a symbol and run until [Halt] — for whole-program tests. *)

val idle : t -> int -> unit
(** Advance the cycle clock without executing instructions — the mote
    sleeping until the next interrupt.  Count must be non-negative. *)

val reset : t -> unit
(** Zero registers, flags, memory and statistics (keeps devices). *)
