(** Memory-mapped peripherals of the simulated mote.

    The timer models the on-mote hardware clock the Code Tomography probes
    read: it ticks once every [resolution] CPU cycles and can carry Gaussian
    read jitter, which is exactly the measurement noise the estimator has to
    live with (experiment F3 sweeps both).  The probe and counter ports are
    the two instrumentation back ends; sensor and radio connect to the
    stochastic environment. *)

type probe_record = { pc : int; cycles : int; value : int }

type t

val create :
  ?timer_resolution:int ->
  ?timer_jitter:float ->
  ?probe_capacity:int ->
  ?probe_loss:float ->
  ?rng:Stats.Rng.t ->
  unit ->
  t
(** [timer_resolution] in cycles per tick (default 1);
    [timer_jitter] is the std-dev of Gaussian noise in cycles added before
    quantization (default 0); [probe_capacity] bounds the probe log —
    records arriving when it is full are dropped and counted (default:
    unbounded); [probe_loss] in [0,1) loses records independently, like an
    unreliable log uplink (default 0).  [rng] drives jitter and loss
    (default seed 7). *)

val timer_resolution : t -> int

val read_timer : t -> cycles:int -> int
(** Current tick count: ⌊(cycles + noise) / resolution⌋, clamped at 0. *)

val set_sensor : t -> (int -> int) -> unit
(** Install the environment's sensor function (channel → reading). *)

val read_sensor : t -> channel:int -> int

val radio_push_rx : t -> int -> unit
(** Enqueue an inbound payload word (called by the environment / OS). *)

val radio_rx : t -> int
(** Pop the next inbound word; 0 when the queue is empty. *)

val radio_rx_pending : t -> int

val radio_tx : t -> int -> unit
val tx_log : t -> int list
(** Transmitted words, oldest first. *)

val set_leds : t -> int -> unit
val leds : t -> int
val led_writes : t -> int

val probe : t -> pc:int -> cycles:int -> value:int -> unit
val probe_log : t -> probe_record list
(** Probe writes, oldest first (drops excluded). *)

val probes_dropped : t -> int
(** Records lost to a full probe buffer. *)

val clear_probe_log : t -> unit

val bump_counter : t -> int -> unit
val counter : t -> int -> int
val counters : t -> (int * int) list
(** All counters with non-zero values, sorted by id. *)

val reset_volatile : t -> unit
(** Clear logs, counters and queues; keeps configuration. *)
