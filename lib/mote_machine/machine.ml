open Mote_isa

type prediction = Predict_not_taken | Predict_btfn

type stats = {
  instructions : int;
  cycles : int;
  cond_branches : int;
  taken_cond_branches : int;
  mispredicted_branches : int;
  unconditional_transfers : int;
  calls : int;
  returns : int;
}

let taken_transfer_rate s =
  let considered = s.cond_branches + s.unconditional_transfers in
  if considered = 0 then 0.0
  else
    float_of_int (s.mispredicted_branches + s.unconditional_transfers)
    /. float_of_int considered

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

type t = {
  program : Program.t;
  devices : Devices.t;
  prediction : prediction;
  regs : int array;
  mem : int array;
  mutable flag_z : bool;
  mutable flag_n : bool;
  mutable pc : int;
  mutable sp : int;
  mutable halted : bool;
  mutable instructions : int;
  mutable cycles : int;
  mutable cond_branches : int;
  mutable taken_cond_branches : int;
  mutable mispredicted_branches : int;
  mutable unconditional_transfers : int;
  mutable calls : int;
  mutable returns : int;
  mutable branch_hook : (pc:int -> taken:bool -> unit) option;
  mutable trace_hook : (pc:int -> instr:int Isa.instr -> cycles:int -> unit) option;
}

(* Sentinel return address marking the bottom of a run_proc invocation. *)
let sentinel = -1

let create ?(mem_words = 4096) ?(prediction = Predict_not_taken) ~program ~devices () =
  if mem_words <= 16 then invalid_arg "Machine.create: memory too small";
  {
    program;
    devices;
    prediction;
    regs = Array.make Isa.num_regs 0;
    mem = Array.make mem_words 0;
    flag_z = false;
    flag_n = false;
    pc = 0;
    sp = mem_words;
    halted = false;
    instructions = 0;
    cycles = 0;
    cond_branches = 0;
    taken_cond_branches = 0;
    mispredicted_branches = 0;
    unconditional_transfers = 0;
    calls = 0;
    returns = 0;
    branch_hook = None;
    trace_hook = None;
  }

let program t = t.program
let devices t = t.devices
let cycles t = t.cycles
let halted t = t.halted

let stats t =
  {
    instructions = t.instructions;
    cycles = t.cycles;
    cond_branches = t.cond_branches;
    taken_cond_branches = t.taken_cond_branches;
    mispredicted_branches = t.mispredicted_branches;
    unconditional_transfers = t.unconditional_transfers;
    calls = t.calls;
    returns = t.returns;
  }

let check_reg r = if r < 0 || r >= Isa.num_regs then fault "bad register r%d" r

let reg t r =
  check_reg r;
  t.regs.(r)

(* 16-bit two's-complement wrap. *)
let wrap v = ((v + 32768) land 0xFFFF) - 32768

let set_reg t r v =
  check_reg r;
  t.regs.(r) <- wrap v

let read_mem t addr =
  if addr < 0 || addr >= Array.length t.mem then fault "load outside memory: %d" addr;
  t.mem.(addr)

let write_mem t addr v =
  if addr < 0 || addr >= Array.length t.mem then fault "store outside memory: %d" addr;
  t.mem.(addr) <- wrap v

let set_branch_hook t hook = t.branch_hook <- hook
let set_trace_hook t hook = t.trace_hook <- hook

let push t v =
  t.sp <- t.sp - 1;
  if t.sp < 0 then fault "stack overflow";
  t.mem.(t.sp) <- v

let pop t =
  if t.sp >= Array.length t.mem then fault "stack underflow";
  let v = t.mem.(t.sp) in
  t.sp <- t.sp + 1;
  v

let eval_cond t = function
  | Isa.Eq -> t.flag_z
  | Isa.Ne -> not t.flag_z
  | Isa.Lt -> t.flag_n
  | Isa.Ge -> not t.flag_n
  | Isa.Le -> t.flag_n || t.flag_z
  | Isa.Gt -> not (t.flag_n || t.flag_z)

let alu op a b =
  match op with
  | Isa.Add -> a + b
  | Isa.Sub -> a - b
  | Isa.Mul -> a * b
  | Isa.And -> a land b
  | Isa.Or -> a lor b
  | Isa.Xor -> a lxor b
  | Isa.Shl -> a lsl (b land 15)
  | Isa.Shr -> (a land 0xFFFF) lsr (b land 15)

let set_flags t v =
  t.flag_z <- v = 0;
  t.flag_n <- v < 0

let port_in t = function
  | Isa.P_timer -> Devices.read_timer t.devices ~cycles:t.cycles
  | Isa.P_sensor ch -> Devices.read_sensor t.devices ~channel:ch
  | Isa.P_radio_rx -> Devices.radio_rx t.devices
  | Isa.P_radio_tx -> fault "cannot read from radio.tx"
  | Isa.P_leds -> Devices.leds t.devices
  | Isa.P_probe -> fault "cannot read from probe port"
  | Isa.P_counter -> fault "cannot read from counter port"

let port_out t port v =
  match port with
  | Isa.P_radio_tx -> Devices.radio_tx t.devices v
  | Isa.P_leds -> Devices.set_leds t.devices v
  | Isa.P_probe -> Devices.probe t.devices ~pc:t.pc ~cycles:t.cycles ~value:v
  | Isa.P_counter -> Devices.bump_counter t.devices v
  | Isa.P_timer -> fault "cannot write to timer"
  | Isa.P_sensor _ -> fault "cannot write to sensor"
  | Isa.P_radio_rx -> fault "cannot write to radio.rx"

(* Execute the instruction at pc.  Returns [true] while the current
   invocation is still running; [false] once it returned to the sentinel or
   halted. *)
let step t =
  let n = Program.length t.program in
  if t.pc < 0 || t.pc >= n then fault "pc outside program: %d" t.pc;
  let at = t.pc in
  let ins = Program.instr t.program at in
  (match t.trace_hook with
  | Some hook -> hook ~pc:at ~instr:ins ~cycles:t.cycles
  | None -> ());
  t.instructions <- t.instructions + 1;
  t.cycles <- t.cycles + Isa.base_cost ins;
  let continue = ref true in
  (match ins with
  | Isa.Nop -> t.pc <- at + 1
  | Isa.Halt ->
      t.halted <- true;
      continue := false
  | Isa.Movi (r, i) ->
      set_reg t r i;
      t.pc <- at + 1
  | Isa.Mov (d, s) ->
      set_reg t d t.regs.(s);
      t.pc <- at + 1
  | Isa.Alu (op, d, a, b) ->
      set_reg t d (alu op t.regs.(a) t.regs.(b));
      t.pc <- at + 1
  | Isa.Alui (op, d, a, i) ->
      set_reg t d (alu op t.regs.(a) i);
      t.pc <- at + 1
  | Isa.Cmp (a, b) ->
      set_flags t (wrap (t.regs.(a) - t.regs.(b)));
      t.pc <- at + 1
  | Isa.Cmpi (a, i) ->
      set_flags t (wrap (t.regs.(a) - i));
      t.pc <- at + 1
  | Isa.Ld (d, a, off) ->
      set_reg t d (read_mem t (t.regs.(a) + off));
      t.pc <- at + 1
  | Isa.St (a, off, s) ->
      write_mem t (t.regs.(a) + off) t.regs.(s);
      t.pc <- at + 1
  | Isa.Push r ->
      push t t.regs.(r);
      t.pc <- at + 1
  | Isa.Pop r ->
      set_reg t r (pop t);
      t.pc <- at + 1
  | Isa.Br (c, target) ->
      let taken = eval_cond t c in
      t.cond_branches <- t.cond_branches + 1;
      (match t.branch_hook with Some hook -> hook ~pc:at ~taken | None -> ());
      let predicted_taken =
        match t.prediction with
        | Predict_not_taken -> false
        | Predict_btfn -> target < at
      in
      if taken <> predicted_taken then begin
        t.mispredicted_branches <- t.mispredicted_branches + 1;
        t.cycles <- t.cycles + Isa.taken_penalty
      end;
      if taken then begin
        t.taken_cond_branches <- t.taken_cond_branches + 1;
        t.pc <- target
      end
      else t.pc <- at + 1
  | Isa.Jmp target ->
      t.unconditional_transfers <- t.unconditional_transfers + 1;
      t.cycles <- t.cycles + Isa.taken_penalty;
      t.pc <- target
  | Isa.Call target ->
      t.calls <- t.calls + 1;
      t.cycles <- t.cycles + Isa.taken_penalty;
      push t (at + 1);
      t.pc <- target
  | Isa.Ret ->
      t.returns <- t.returns + 1;
      t.cycles <- t.cycles + Isa.taken_penalty;
      let addr = pop t in
      if addr = sentinel then continue := false else t.pc <- addr
  | Isa.In (r, port) ->
      set_reg t r (port_in t port);
      t.pc <- at + 1
  | Isa.Out (port, r) ->
      port_out t port t.regs.(r);
      t.pc <- at + 1);
  !continue

let run_until_done ?(fuel = 10_000_000) t =
  let remaining = ref fuel in
  let running = ref true in
  while !running do
    if !remaining <= 0 then fault "out of fuel at pc=%d" t.pc;
    decr remaining;
    running := step t
  done

let run_proc ?fuel t name =
  let info =
    match Program.find_proc t.program name with
    | Some p -> p
    | None -> raise Not_found
  in
  let before = t.cycles in
  t.halted <- false;
  push t sentinel;
  t.pc <- info.Program.entry;
  run_until_done ?fuel t;
  t.cycles - before

let run_from_symbol ?fuel t name =
  match Program.find_symbol t.program name with
  | None -> raise Not_found
  | Some addr ->
      t.halted <- false;
      t.pc <- addr;
      (* Halting is the only way out: give the bottom frame a sentinel so a
         stray Ret faults on stack underflow rather than looping. *)
      run_until_done ?fuel t

let idle t n =
  if n < 0 then invalid_arg "Machine.idle: negative cycles";
  t.cycles <- t.cycles + n

let reset t =
  Array.fill t.regs 0 (Array.length t.regs) 0;
  Array.fill t.mem 0 (Array.length t.mem) 0;
  t.flag_z <- false;
  t.flag_n <- false;
  t.pc <- 0;
  t.sp <- Array.length t.mem;
  t.halted <- false;
  t.instructions <- 0;
  t.cycles <- 0;
  t.cond_branches <- 0;
  t.taken_cond_branches <- 0;
  t.mispredicted_branches <- 0;
  t.unconditional_transfers <- 0;
  t.calls <- 0;
  t.returns <- 0
