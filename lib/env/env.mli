(** Stochastic environments: the nondeterministic inputs that make a sensor
    program's execution a Markov process.

    An environment supplies ADC readings per channel and a radio arrival
    process.  Channels are modelled independently; readings are clamped to
    the 10-bit ADC range [0, 1023]. *)

type sensor_model =
  | Constant of int
  | Uniform of int * int  (** Inclusive bounds. *)
  | Gaussian of { mu : float; sigma : float }
  | Random_walk of { start : int; step_sigma : float; lo : int; hi : int }
      (** Slowly drifting phenomenon (temperature-like). *)
  | Bursty of {
      quiet : sensor_model;
      active : sensor_model;
      p_enter : float;  (** Quiet → active per reading. *)
      p_exit : float;  (** Active → quiet per reading. *)
    }
      (** Two-state Markov-modulated source: long quiet stretches with
          occasional event bursts — the canonical sensor-network input. *)

type radio_model =
  | Silent
  | Poisson of { per_kilocycle : float; payload_lo : int; payload_hi : int }
      (** Arrival rate per 1000 CPU cycles; payload uniform in bounds. *)

type config = {
  seed : int;
  channels : (int * sensor_model) list;
  radio : radio_model;
}

val default_config : config
(** Seed 42, channel 0 Gaussian(512, 80), silent radio. *)

type t

val create : config -> t
val config : t -> config

val read : t -> int -> int
(** Sample channel; unconfigured channels read 0.  Advances the channel's
    state (random walks drift, bursty sources switch). *)

val attach : t -> Mote_machine.Devices.t -> unit
(** Install {!read} as the device sensor function. *)

val radio_arrivals : t -> from_cycle:int -> to_cycle:int -> (int * int) list
(** Packet arrivals in the half-open cycle window: [(cycle, payload)] in
    increasing cycle order. *)

val adc_min : int
val adc_max : int
