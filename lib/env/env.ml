type sensor_model =
  | Constant of int
  | Uniform of int * int
  | Gaussian of { mu : float; sigma : float }
  | Random_walk of { start : int; step_sigma : float; lo : int; hi : int }
  | Bursty of {
      quiet : sensor_model;
      active : sensor_model;
      p_enter : float;
      p_exit : float;
    }

type radio_model =
  | Silent
  | Poisson of { per_kilocycle : float; payload_lo : int; payload_hi : int }

type config = { seed : int; channels : (int * sensor_model) list; radio : radio_model }

let default_config =
  { seed = 42; channels = [ (0, Gaussian { mu = 512.0; sigma = 80.0 }) ]; radio = Silent }

let adc_min = 0
let adc_max = 1023

(* Mutable per-channel state threaded through successive readings. *)
type channel_state = { model : sensor_model; mutable walk : float; mutable active : bool }

type t = {
  cfg : config;
  rng : Stats.Rng.t;
  radio_rng : Stats.Rng.t;
  states : (int, channel_state) Hashtbl.t;
}

let create cfg =
  let rng = Stats.Rng.create cfg.seed in
  let radio_rng = Stats.Rng.split rng in
  let states = Hashtbl.create 8 in
  List.iter
    (fun (ch, model) ->
      let walk = match model with Random_walk { start; _ } -> float_of_int start | _ -> 0.0 in
      Hashtbl.replace states ch { model; walk; active = false })
    cfg.channels;
  { cfg; rng; radio_rng; states }

let config t = t.cfg

let clamp v = Stdlib.max adc_min (Stdlib.min adc_max v)

let rec sample t state model =
  match model with
  | Constant v -> clamp v
  | Uniform (lo, hi) ->
      if hi < lo then invalid_arg "Env: uniform bounds inverted";
      clamp (lo + Stats.Rng.int t.rng (hi - lo + 1))
  | Gaussian { mu; sigma } ->
      clamp (int_of_float (Float.round (Stats.Dist.gaussian t.rng ~mu ~sigma)))
  | Random_walk { step_sigma; lo; hi; _ } ->
      let next = state.walk +. Stats.Dist.gaussian t.rng ~mu:0.0 ~sigma:step_sigma in
      let next = Stdlib.max (float_of_int lo) (Stdlib.min (float_of_int hi) next) in
      state.walk <- next;
      clamp (int_of_float (Float.round next))
  | Bursty { quiet; active; p_enter; p_exit } ->
      (if state.active then begin
         if Stats.Rng.bernoulli t.rng p_exit then state.active <- false
       end
       else if Stats.Rng.bernoulli t.rng p_enter then state.active <- true);
      sample t state (if state.active then active else quiet)

let read t channel =
  match Hashtbl.find_opt t.states channel with
  | None -> 0
  | Some state -> sample t state state.model

let attach t devices = Mote_machine.Devices.set_sensor devices (read t)

let radio_arrivals t ~from_cycle ~to_cycle =
  match t.cfg.radio with
  | Silent -> []
  | Poisson { per_kilocycle; payload_lo; payload_hi } ->
      if to_cycle <= from_cycle || per_kilocycle <= 0.0 then []
      else begin
        let rate_per_cycle = per_kilocycle /. 1000.0 in
        (* Exponential inter-arrival gaps over the window. *)
        let rec gen at acc =
          let gap = Stats.Dist.exponential t.radio_rng ~rate:rate_per_cycle in
          let at = at +. gap in
          if at >= float_of_int to_cycle then List.rev acc
          else
            let payload =
              payload_lo + Stats.Rng.int t.radio_rng (Stdlib.max 1 (payload_hi - payload_lo + 1))
            in
            gen at ((int_of_float at, payload) :: acc)
        in
        gen (float_of_int from_cycle) []
      end
