type profile_key = { name : string; config : Pipeline.config }

type estimate_key = {
  pname : string;
  pconfig : Pipeline.config;
  method_name : string;
  max_samples : int option;
  max_paths : int option;
  max_visits : int option;
  watermarked : bool;
  sanitize : Tomo.Sanitize.config option;
  outlier : Tomo.Em.outlier option;
  min_samples : int option;
}

type variants_key = {
  vname : string;
  vconfig : Pipeline.config;
  eval_config : Pipeline.config option;
  vmethod : string;
  vsanitize : Tomo.Sanitize.config option;
  voutlier : Tomo.Em.outlier option;
  vmin_samples : int option;
}

(* Path sets are keyed WITHOUT the timing config: the instrumented binary
   depends only on the workload, so one enumeration serves every cell of a
   resolution × jitter sweep.  [pkey] is the per-model key Pipeline passes
   to the cache (procedure name, "watermarked:"-prefixed for the
   watermarked profiling image). *)
type paths_key = {
  wname : string;
  pkey : string;
  p_max_paths : int option;
  p_max_visits : int option;
}

type t = {
  pool : Par.Pool.t;
  owns_pool : bool;
  mutex : Mutex.t;
  compilations : (string, Mote_lang.Compile.t) Hashtbl.t;
  profiles : (profile_key, Pipeline.profile_run) Hashtbl.t;
  estimates : (estimate_key, Pipeline.estimation list * (string * int) list) Hashtbl.t;
  variants : (variants_key, Pipeline.variant list) Hashtbl.t;
  path_sets : (paths_key, Tomo.Paths.t) Hashtbl.t;
}

let create ?domains ?pool () =
  let pool, owns_pool =
    match pool with
    | Some p -> (p, false)
    | None -> (Par.Pool.create ?domains (), true)
  in
  {
    pool;
    owns_pool;
    mutex = Mutex.create ();
    compilations = Hashtbl.create 8;
    profiles = Hashtbl.create 16;
    estimates = Hashtbl.create 32;
    variants = Hashtbl.create 8;
    path_sets = Hashtbl.create 32;
  }

let close t = if t.owns_pool then Par.Pool.shutdown t.pool
let pool t = t.pool
let domains t = Par.Pool.domains t.pool
let map_list t f xs = Par.Pool.map_list t.pool f xs

(* Compute outside the lock so concurrent misses on different keys run
   in parallel; on a same-key race the first insert wins and the loser's
   (equal) candidate is dropped, keeping every caller's view identical. *)
let memo t tbl key compute =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt tbl key with
  | Some v ->
      Mutex.unlock t.mutex;
      v
  | None ->
      Mutex.unlock t.mutex;
      let candidate = compute () in
      Mutex.lock t.mutex;
      let v =
        match Hashtbl.find_opt tbl key with
        | Some winner -> winner
        | None ->
            Hashtbl.replace tbl key candidate;
            candidate
      in
      Mutex.unlock t.mutex;
      v

let compiled t (w : Workloads.t) =
  memo t t.compilations w.Workloads.name (fun () -> Workloads.compiled w)

let paths_cache t ?max_paths ?max_visits (w : Workloads.t) pkey compute =
  memo t t.path_sets
    {
      wname = w.Workloads.name;
      pkey;
      p_max_paths = max_paths;
      p_max_visits = max_visits;
    }
    compute

(* The fully-loaded context for one (workload, enumeration bounds) pair:
   the session's pool plus its memoized path sets.  This is what outside
   callers driving Pipeline stages directly should thread. *)
let ctx t ?max_paths ?max_visits (w : Workloads.t) =
  Pipeline.Ctx.make ~pool:t.pool ~paths_cache:(paths_cache t ?max_paths ?max_visits w) ()

let profile t ?(config = Pipeline.default_config) (w : Workloads.t) =
  memo t t.profiles
    { name = w.Workloads.name; config }
    (fun () -> Pipeline.profile ~config ~compiled:(compiled t w) w)

let estimate_key ?(config = Pipeline.default_config) ~method_ ~max_samples ~max_paths
    ~max_visits ~watermarked ~sanitize ~outlier ~min_samples (w : Workloads.t) =
  {
    pname = w.Workloads.name;
    pconfig = config;
    method_name = Tomo.Estimator.method_name method_;
    max_samples;
    max_paths;
    max_visits;
    watermarked;
    sanitize;
    outlier;
    min_samples;
  }

let estimate t ?(method_ = Tomo.Estimator.Em) ?max_samples ?max_paths ?max_visits
    ?sanitize ?outlier ?min_samples ?config (w : Workloads.t) =
  let key =
    estimate_key ?config ~method_ ~max_samples ~max_paths ~max_visits
      ~watermarked:false ~sanitize ~outlier ~min_samples w
  in
  fst
    (memo t t.estimates key (fun () ->
         let run = profile t ?config w in
         ( Pipeline.estimate ~ctx:(ctx t ?max_paths ?max_visits w) ~method_ ?max_samples
             ?max_paths ?max_visits ?sanitize ?outlier ?min_samples run,
           [] )))

let estimate_watermarked t ?(method_ = Tomo.Estimator.Em) ?max_samples ?max_paths
    ?max_visits ?sanitize ?outlier ?min_samples ?config (w : Workloads.t) =
  let key =
    estimate_key ?config ~method_ ~max_samples ~max_paths ~max_visits ~watermarked:true
      ~sanitize ~outlier ~min_samples w
  in
  memo t t.estimates key (fun () ->
      let run = profile t ?config w in
      Pipeline.estimate_watermarked ~ctx:(ctx t ?max_paths ?max_visits w) ~method_
        ?max_samples ?max_paths ?max_visits ?sanitize ?outlier ?min_samples run)

let compare_layouts t ?eval_config ?(method_ = Tomo.Estimator.Em) ?sanitize ?outlier
    ?min_samples ?(config = Pipeline.default_config) (w : Workloads.t) =
  let key =
    {
      vname = w.Workloads.name;
      vconfig = config;
      eval_config;
      vmethod = Tomo.Estimator.method_name method_;
      vsanitize = sanitize;
      voutlier = outlier;
      vmin_samples = min_samples;
    }
  in
  memo t t.variants key (fun () ->
      let run = profile t ~config w in
      Pipeline.compare_layouts ~ctx:(ctx t w) ?eval_config ~method_ ?sanitize ?outlier
        ?min_samples run)

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.compilations;
  Hashtbl.reset t.profiles;
  Hashtbl.reset t.estimates;
  Hashtbl.reset t.variants;
  Hashtbl.reset t.path_sets;
  Mutex.unlock t.mutex
