(** The pipeline engine: memoized stage artifacts plus a domain pool.

    A [Session.t] owns every expensive artifact the evaluation reuses —
    compilations, probe-instrumented profile runs, per-procedure
    estimations, and the four-way layout comparisons — each memoized
    under a key of workload name plus the full {!Pipeline.config} (and,
    for estimation, the estimator knobs).  Experiments that share a
    stage get it computed once per session instead of once per caller;
    this replaces the ad-hoc profile caches the bench harness used to
    keep privately.

    All stage computations are deterministic given their key, so the
    memo tables are also safe under the session's own parallelism: the
    tables are mutex-guarded, values are computed outside the lock, and
    when two domains race to fill a key the first insert wins — both
    candidates are equal anyway.

    Fan-out goes through the session's {!Par.Pool}: per-procedure
    estimation, the four {!Pipeline.compare_layouts} variant runs, and
    any caller-side sweep via {!map_list}.  Every task derives its
    randomness from its own key (workload seed, sweep index), never
    from a generator shared across tasks, so a session at [domains = 4]
    produces bit-identical tables to one at [domains = 1]. *)

type t

val create : ?domains:int -> ?pool:Par.Pool.t -> unit -> t
(** [create ()] builds a session with a fresh pool of
    [Par.Pool.default_domains ()] domains ([CODETOMO_DOMAINS] wins over
    [Domain.recommended_domain_count]).  [~domains] overrides the size;
    [~pool] adopts an existing pool instead (the caller keeps ownership
    and {!close} will not shut it down). *)

val close : t -> unit
(** Shut down the session's pool if the session created it.  The memo
    tables survive; further calls run serially. *)

val pool : t -> Par.Pool.t
val domains : t -> int

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Fan an arbitrary per-item computation through the session pool,
    preserving order (see {!Par.Pool.map_list}). *)

val compiled : t -> Workloads.t -> Mote_lang.Compile.t
(** Memoized {!Workloads.compiled}. *)

val paths_cache :
  t -> ?max_paths:int -> ?max_visits:int -> Workloads.t -> Pipeline.paths_cache
(** The session's memo hook for enumerated path sets, scoped to one
    (workload, enumeration bounds) pair.  Keyed {e without} the timing
    config — the instrumented binary depends only on the workload — so
    an entire resolution × jitter sweep shares one enumeration (and one
    canonical-signature merge) per procedure.  {!estimate},
    {!estimate_watermarked} and {!compare_layouts} pass it to the
    pipeline automatically; it is exposed for callers driving
    {!Pipeline.estimate} directly. *)

val ctx : t -> ?max_paths:int -> ?max_visits:int -> Workloads.t -> Pipeline.Ctx.t
(** The session's fully-loaded {!Pipeline.Ctx}: its pool plus its
    {!paths_cache} scoped to one (workload, enumeration bounds) pair.
    Callers driving {!Pipeline.estimate} (or the fleet service) directly
    pass this one value instead of threading pool and cache separately. *)

val profile : t -> ?config:Pipeline.config -> Workloads.t -> Pipeline.profile_run
(** Memoized {!Pipeline.profile} keyed by workload name and config. *)

val estimate :
  t ->
  ?method_:Tomo.Estimator.method_ ->
  ?max_samples:int ->
  ?max_paths:int ->
  ?max_visits:int ->
  ?sanitize:Tomo.Sanitize.config ->
  ?outlier:Tomo.Em.outlier ->
  ?min_samples:int ->
  ?config:Pipeline.config ->
  Workloads.t ->
  Pipeline.estimation list
(** Memoized per-procedure estimation of the (memoized) profile run,
    keyed additionally by method, the estimator bounds, and the
    robustness knobs (sanitizer config, outlier mixture, sample floor).
    The per-procedure work fans out through the pool. *)

val estimate_watermarked :
  t ->
  ?method_:Tomo.Estimator.method_ ->
  ?max_samples:int ->
  ?max_paths:int ->
  ?max_visits:int ->
  ?sanitize:Tomo.Sanitize.config ->
  ?outlier:Tomo.Em.outlier ->
  ?min_samples:int ->
  ?config:Pipeline.config ->
  Workloads.t ->
  Pipeline.estimation list * (string * int) list
(** Memoized {!Pipeline.estimate_watermarked} over the memoized profile
    run. *)

val compare_layouts :
  t ->
  ?eval_config:Pipeline.config ->
  ?method_:Tomo.Estimator.method_ ->
  ?sanitize:Tomo.Sanitize.config ->
  ?outlier:Tomo.Em.outlier ->
  ?min_samples:int ->
  ?config:Pipeline.config ->
  Workloads.t ->
  Pipeline.variant list
(** Memoized {!Pipeline.compare_layouts}: the four variant evaluations
    run on the pool, once per (workload, config, eval config, method,
    robustness knobs). *)

val clear : t -> unit
(** Drop every memoized artifact (the pool is untouched). *)
