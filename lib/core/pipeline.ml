module Freq = Cfgir.Freq
module Cfg = Cfgir.Cfg
module Program = Mote_isa.Program
module Asm = Mote_isa.Asm
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices
module Node = Mote_os.Node

type config = {
  seed : int;
  horizon : int option;
  timer_resolution : int;
  timer_jitter : float;
  prediction : Machine.prediction;
  faults : Profilekit.Transport.config option;
}

let default_config =
  {
    seed = 42;
    horizon = None;
    timer_resolution = 1;
    timer_jitter = 0.0;
    prediction = Machine.Predict_not_taken;
    faults = None;
  }

type profile_run = {
  workload : Workloads.t;
  compiled : Mote_lang.Compile.t;
  instrumented : Program.t;
  config : config;
  samples : (string * float array) list;
  oracle_thetas : (string * float array) list;
  oracle_freqs : (string * Freq.t) list;
  invocations : (string * int) list;
  node_stats : Node.run_stats;
  transport : Profilekit.Transport.stats option;
  discarded : int;
}

let noise_sigma config =
  Tomo.Em.default_sigma ~resolution:config.timer_resolution ~jitter:config.timer_jitter

let horizon_of config (w : Workloads.t) = Option.value ~default:w.Workloads.horizon config.horizon

let make_node ~config ~(workload : Workloads.t) ~binary =
  let devices =
    Devices.create ~timer_resolution:config.timer_resolution
      ~timer_jitter:config.timer_jitter
      ~rng:(Stats.Rng.create (config.seed + 7919))
      ()
  in
  let machine = Machine.create ~prediction:config.prediction ~program:binary ~devices () in
  let env =
    Env.create { (workload.Workloads.env_config) with Env.seed = config.seed }
  in
  Node.create ~machine ~env ~tasks:workload.Workloads.tasks ()

(* Fan a per-item computation through a pool when one is given; the
   serial path is the same code, so results are identical either way. *)
let pmap ?pool f xs =
  match pool with
  | Some pool -> Par.Pool.map_list pool f xs
  | None -> List.map f xs

(* Telemetry collection.  A clean config reads the probe log with the
   strict collector (whose Unbalanced check is a real invariant there);
   with a fault model the raw log first crosses the simulated link, then
   the resynchronizing collector pairs up what survived.  The transport
   seed is derived from the profiling seed, not equal to it, so the link
   noise is independent of the environment's draws. *)
let collect_telemetry ~config ~program ~devices =
  match config.faults with
  | None -> (Profilekit.Probes.collect ~program ~devices, None, 0)
  | Some faults ->
      let records, stats =
        Profilekit.Transport.perturb ~seed:(config.seed + 104729) faults
          (Devices.probe_log devices)
      in
      let r =
        Profilekit.Probes.collect_lossy_records ~program
          ~resolution:(Devices.timer_resolution devices)
          records
      in
      (r.Profilekit.Probes.samples, Some stats, r.Profilekit.Probes.discarded)

let profile ?(config = default_config) ?compiled (workload : Workloads.t) =
  let compiled =
    match compiled with Some c -> c | None -> Workloads.compiled workload
  in
  let instrumented_items = Profilekit.Probes.instrument compiled.Mote_lang.Compile.items in
  let instrumented = Asm.assemble instrumented_items in
  let node = make_node ~config ~workload ~binary:instrumented in
  let machine = Node.machine node in
  let oracle = Profilekit.Oracle.attach machine in
  let node_stats = Node.run node ~until:(horizon_of config workload) in
  let devices = Machine.devices machine in
  let sample_set, transport, discarded =
    collect_telemetry ~config ~program:instrumented ~devices
  in
  let samples =
    List.map
      (fun proc -> (proc, Profilekit.Probes.samples_for sample_set proc))
      workload.Workloads.profiled
  in
  (* Ground truth is expressed against the original binary's CFGs; branch
     order is instrumentation-invariant so the vectors line up. *)
  let original = compiled.Mote_lang.Compile.program in
  (* Invocation counts come from the probe stream itself (one window per
     invocation) — helper procedures are never posted as tasks, so the
     scheduler's counts would miss them. *)
  let invocations =
    List.map (fun (proc, s) -> (proc, Array.length s)) samples
  in
  let oracle_thetas =
    List.map
      (fun proc -> (proc, Profilekit.Oracle.theta_vector oracle ~proc))
      workload.Workloads.profiled
  in
  let oracle_freqs =
    List.map
      (fun proc ->
        let inv = float_of_int (Node.invocations node_stats proc) in
        let counts =
          Profilekit.Oracle.counts oracle ~proc
          |> List.map (fun (id, (tk, fl)) -> (id, (float_of_int tk, float_of_int fl)))
        in
        let cfg = Cfg.of_proc_name original proc in
        (proc, Profilekit.Flowcount.freq_of_branch_counts cfg ~invocations:inv ~counts))
      workload.Workloads.profiled
  in
  Profilekit.Oracle.detach oracle;
  {
    workload;
    compiled;
    instrumented;
    config;
    samples;
    oracle_thetas;
    oracle_freqs;
    invocations;
    node_stats;
    transport;
    discarded;
  }

let original_cfg run proc =
  Cfg.of_proc_name run.compiled.Mote_lang.Compile.program proc

let model_of run proc = Tomo.Model.of_cfg (Cfg.of_proc_name run.instrumented proc)

type estimation = {
  proc : string;
  estimate : Tomo.Estimator.t;
  truth : float array;
  mae : float;
  sample_count : int;
  health : Tomo.Health.t;
  sanitize_report : Tomo.Sanitize.report option;
}

(* [max_samples] keeps the chronological prefix: the first N observation
   windows, as if profiling had simply stopped after N invocations (the
   planner's stopping-rule assumption). *)
let truncate_samples ?max_samples all =
  match max_samples with
  | Some n when n >= 0 && Array.length all > n -> Array.sub all 0 n
  | _ -> all

type paths_cache = string -> (unit -> Tomo.Paths.t) -> Tomo.Paths.t

module Ctx = struct
  type nonrec t = { pool : Par.Pool.t option; paths_cache : paths_cache option }

  let none = { pool = None; paths_cache = None }
  let make ?pool ?paths_cache () = { pool; paths_cache }
  let of_pool pool = { pool = Some pool; paths_cache = None }
  let pool t = t.pool
  let paths_cache t = t.paths_cache
end

let ctx_parts = function
  | None -> (None, None)
  | Some c -> (Ctx.pool c, Ctx.paths_cache c)

(* The instrumented binary — hence every per-procedure path model — depends
   only on the workload, not on the timing config, so a path set enumerated
   once serves the whole resolution × jitter grid.  The cache key is the
   procedure name (prefixed for the watermarked image, whose models differ);
   the owner of the cache closure is responsible for scoping it to one
   (workload, enumeration-bounds) pair. *)
let cached_paths ?paths_cache ~method_ ~key enumerate =
  match (method_, paths_cache) with
  | Tomo.Estimator.Em, Some cache -> Some (cache key enumerate)
  | _ -> None

(* Shared per-procedure estimation under the robustness knobs:
   sanitize → sample floor → estimate → health verdict.  With every knob
   at its default this is exactly the old code path (no sanitization, a
   floor of 1 that only intercepts the empty-sample [Invalid_argument],
   the exact EM).  [paths] must be the materialized set for the EM
   method — it also provides the sanitizer's cost envelope. *)
let estimate_proc ?sanitize ?outlier ?(min_samples = 1) ~method_ ~noise_sigma:sigma
    ?max_paths ?max_visits ~paths ~model ~truth ~proc samples =
  let samples, sanitize_report =
    match sanitize with
    | None -> (samples, None)
    | Some sc ->
        let min_cost, max_cost =
          match paths with
          | Some p -> (Tomo.Paths.min_cost p, Tomo.Paths.max_cost p)
          | None -> (Float.neg_infinity, Float.infinity)
        in
        let kept, report =
          Tomo.Sanitize.run ~config:sc ~min_cost ~max_cost ~sigma samples
        in
        (kept, Some report)
  in
  let n = Array.length samples in
  let floor = Stdlib.max 1 min_samples in
  let estimate, health =
    if n < floor then
      ( Tomo.Estimator.fallback model,
        Tomo.Health.judge ~min_samples:floor ~converged:true ~sample_count:n () )
    else
      let e =
        Tomo.Estimator.run ~method_ ~noise_sigma:sigma ?max_paths ?max_visits ?paths
          ?outlier model ~samples
      in
      ( e,
        Tomo.Health.judge ~min_samples:floor
          ~converged:e.Tomo.Estimator.converged ~sample_count:n () )
  in
  let mae =
    if Array.length truth = 0 then 0.0
    else Stats.Metrics.mae estimate.Tomo.Estimator.theta truth
  in
  { proc; estimate; truth; mae; sample_count = n; health; sanitize_report }

(* For EM the path set is materialized here (cached or not): the
   estimator needs it anyway, and the sanitizer reads its cost
   envelope. *)
let materialize_paths ?paths_cache ~method_ ~key ?max_paths ?max_visits model =
  let enumerate () = Tomo.Paths.enumerate ?max_paths ?max_visits model in
  match method_ with
  | Tomo.Estimator.Em -> (
      match cached_paths ?paths_cache ~method_ ~key enumerate with
      | Some p -> Some p
      | None -> Some (enumerate ()))
  | _ -> None

let estimate_with ?pool ?paths_cache ?(method_ = Tomo.Estimator.Em) ?max_samples
    ?max_paths ?max_visits ?sanitize ?outlier ?min_samples run =
  pmap ?pool
    (fun proc ->
      let all = List.assoc proc run.samples in
      let samples = truncate_samples ?max_samples all in
      let model = model_of run proc in
      let paths =
        materialize_paths ?paths_cache ~method_ ~key:proc ?max_paths ?max_visits model
      in
      let truth = List.assoc proc run.oracle_thetas in
      estimate_proc ?sanitize ?outlier ?min_samples ~method_
        ~noise_sigma:(noise_sigma run.config) ?max_paths ?max_visits ~paths ~model
        ~truth ~proc samples)
    run.workload.Workloads.profiled

(* Ambiguous branches (equal-cost arms) in the coordinates of the
   probe-instrumented binary — the ones end-to-end timing cannot estimate
   without help. *)
let ambiguous_sites_with ?paths_cache ?max_paths ?max_visits run =
  List.concat_map
    (fun proc ->
      let model = model_of run proc in
      let enumerate () = Tomo.Paths.enumerate ?max_paths ?max_visits model in
      (* These are the estimator's own models, so a cached path set is
         shared with {!estimate} under the same key. *)
      match
        match paths_cache with Some cache -> cache proc enumerate | None -> enumerate ()
      with
      | paths ->
          let id = Tomo.Identify.analyze paths in
          List.map (fun block -> (proc, block)) (Tomo.Identify.ambiguous_blocks id model)
      | exception Tomo.Paths.Too_complex _ -> [])
    run.workload.Workloads.profiled

let estimate_watermarked_with ?pool ?paths_cache ?(method_ = Tomo.Estimator.Em)
    ?max_samples ?max_paths ?max_visits ?sanitize ?outlier ?min_samples run =
  let sites = ambiguous_sites_with ?paths_cache ?max_paths ?max_visits run in
  if sites = [] then
    ( estimate_with ?pool ?paths_cache ~method_ ?max_samples ?max_paths ?max_visits
        ?sanitize ?outlier ?min_samples run,
      [] )
  else begin
    (* Rebuild the profiling image with delay stubs on the ambiguous taken
       edges, then profile and estimate against that image's own model.
       Branch order is preserved by both transformations, so the estimates
       transfer to the original binary index-by-index. *)
    let probed_items = Profilekit.Probes.instrument run.compiled.Mote_lang.Compile.items in
    let watermarked_items = Profilekit.Watermark.instrument ~sites probed_items in
    let binary = Asm.assemble watermarked_items in
    let node = make_node ~config:run.config ~workload:run.workload ~binary in
    let machine = Node.machine node in
    let oracle = Profilekit.Oracle.attach machine in
    ignore (Node.run node ~until:(horizon_of run.config run.workload));
    (* The watermarked telemetry crosses the same (possibly faulty) link
       as the plain profiling run's. *)
    let sample_set, _, _ =
      collect_telemetry ~config:run.config ~program:binary
        ~devices:(Machine.devices machine)
    in
    let estimations =
      pmap ?pool
        (fun proc ->
          let all = Profilekit.Probes.samples_for sample_set proc in
          let samples = truncate_samples ?max_samples all in
          let model = Tomo.Model.of_cfg (Cfg.of_proc_name binary proc) in
          (* The watermarked image's models differ from the plain ones, so
             its cache entries live under a distinct key. *)
          let paths =
            materialize_paths ?paths_cache ~method_ ~key:("watermarked:" ^ proc)
              ?max_paths ?max_visits model
          in
          let truth = Profilekit.Oracle.theta_vector oracle ~proc in
          estimate_proc ?sanitize ?outlier ?min_samples ~method_
            ~noise_sigma:(noise_sigma run.config) ?max_paths ?max_visits ~paths ~model
            ~truth ~proc samples)
        run.workload.Workloads.profiled
    in
    Profilekit.Oracle.detach oracle;
    (estimations, sites)
  end

let estimated_freqs run estimations =
  List.map
    (fun e ->
      let cfg = original_cfg run e.proc in
      let model = Tomo.Model.of_cfg ~call_residual:0 ~window_correction:0 cfg in
      let inv = float_of_int (List.assoc e.proc run.invocations) in
      (e.proc, Tomo.Model.freq_of_theta model ~theta:e.estimate.theta ~invocations:inv))
    estimations

type variant = {
  label : string;
  binary : Program.t;
  stats : Machine.stats;
  taken_rate : float;
  taken_transfers : int;
  busy_cycles : int;
  idle_cycles : int;
  tx_words : int;
  flash_words : int;
}

let run_binary ?(config = default_config) (workload : Workloads.t) binary ~label =
  let node = make_node ~config ~workload ~binary in
  let node_stats = Node.run node ~until:(horizon_of config workload) in
  let machine = Node.machine node in
  let stats = Machine.stats machine in
  {
    label;
    binary;
    stats;
    taken_rate = Machine.taken_transfer_rate stats;
    taken_transfers =
      stats.Machine.mispredicted_branches + stats.Machine.unconditional_transfers;
    busy_cycles = node_stats.Node.busy_cycles;
    idle_cycles = node_stats.Node.idle_cycles;
    tx_words = List.length (Devices.tx_log (Machine.devices machine));
    flash_words = Program.flash_words binary;
  }

let natural_binary run = run.compiled.Mote_lang.Compile.program

let placed_binary run ~profiles ~algorithm =
  Layout.Rewrite.apply_all (natural_binary run) ~algorithm ~profiles

(* Invert a profile: heavy edges become light and vice versa, so chain
   merging actively separates hot pairs. *)
let invert_freq freq =
  let weights = Freq.weights freq in
  let max_w = List.fold_left (fun acc (_, w) -> Stdlib.max acc w) 0.0 weights in
  let out = Freq.create (Freq.cfg freq) ~invocations:(Freq.invocations freq) in
  List.iter
    (fun ((src, dst, kind), w) -> Freq.bump out ~src ~dst ~kind (max_w -. w))
    weights;
  out

let worst_placement freq =
  match Layout.Algorithms.pessimal freq with
  | p -> p
  | exception Invalid_argument _ ->
      Layout.Algorithms.pettis_hansen (invert_freq freq)

let worst_binary run =
  placed_binary run ~profiles:run.oracle_freqs ~algorithm:worst_placement

let compare_layouts_with ?pool ?paths_cache ?eval_config ?(method_ = Tomo.Estimator.Em)
    ?sanitize ?outlier ?min_samples run =
  let eval_config =
    match eval_config with
    | Some c -> c
    | None -> { run.config with seed = run.config.seed + 1000 }
  in
  let estimations =
    estimate_with ?pool ?paths_cache ~method_ ?sanitize ?outlier ?min_samples run
  in
  (* A Rejected procedure contributes no profile: Rewrite leaves an
     unprofiled procedure in its natural layout, which is exactly the
     graceful-degradation contract.  The variant label carries the
     fallback count so reports can't silently present a partial layout
     as a full tomography one. *)
  let usable, fallbacks =
    List.partition (fun e -> not (Tomo.Health.is_rejected e.health)) estimations
  in
  let tomo_label =
    match fallbacks with
    | [] -> "tomography"
    | fs -> Printf.sprintf "tomography[%d fallback]" (List.length fs)
  in
  let tomo_freqs = estimated_freqs run usable in
  let natural = natural_binary run in
  let tomo =
    placed_binary run ~profiles:tomo_freqs ~algorithm:Layout.Algorithms.pettis_hansen
  in
  let perfect =
    placed_binary run ~profiles:run.oracle_freqs
      ~algorithm:Layout.Algorithms.pettis_hansen
  in
  let worst = worst_binary run in
  (* Each variant runs on its own fresh machine/environment pair seeded
     from [eval_config], so the four evaluations are independent and can
     fan out through the pool without changing any number. *)
  pmap ?pool
    (fun (label, binary) -> run_binary ~config:eval_config run.workload binary ~label)
    [
      ("natural", natural);
      ("worst", worst);
      (tomo_label, tomo);
      ("perfect", perfect);
    ]

(* Canonical entry points: one [?ctx] instead of [?pool]/[?paths_cache].
   The [_with] implementations above stay the single source of truth;
   these only destructure the context. *)

let estimate ?ctx ?method_ ?max_samples ?max_paths ?max_visits ?sanitize ?outlier
    ?min_samples run =
  let pool, paths_cache = ctx_parts ctx in
  estimate_with ?pool ?paths_cache ?method_ ?max_samples ?max_paths ?max_visits
    ?sanitize ?outlier ?min_samples run

let ambiguous_sites ?ctx ?max_paths ?max_visits run =
  let _, paths_cache = ctx_parts ctx in
  ambiguous_sites_with ?paths_cache ?max_paths ?max_visits run

let estimate_watermarked ?ctx ?method_ ?max_samples ?max_paths ?max_visits ?sanitize
    ?outlier ?min_samples run =
  let pool, paths_cache = ctx_parts ctx in
  estimate_watermarked_with ?pool ?paths_cache ?method_ ?max_samples ?max_paths
    ?max_visits ?sanitize ?outlier ?min_samples run

let compare_layouts ?ctx ?eval_config ?method_ ?sanitize ?outlier ?min_samples run =
  let pool, paths_cache = ctx_parts ctx in
  compare_layouts_with ?pool ?paths_cache ?eval_config ?method_ ?sanitize ?outlier
    ?min_samples run

module Legacy = struct
  let estimate = estimate_with
  let estimate_watermarked = estimate_watermarked_with
  let compare_layouts = compare_layouts_with
end
