(** End-to-end Code Tomography pipelines.

    This is the public face of the library: compile a workload, run its
    probe-instrumented binary on the simulated mote under its stochastic
    environment, estimate the Markov parameters from the end-to-end timing
    stream, turn the estimates into edge-frequency profiles, feed those to
    the placement pass, and measure what the re-laid-out binary actually
    does.  Each stage is also callable on its own. *)

module Freq = Cfgir.Freq

type config = {
  seed : int;  (** Environment seed for the profiling run. *)
  horizon : int option;  (** Simulated cycles; default the workload's. *)
  timer_resolution : int;  (** Cycles per timer tick (F3 sweeps this). *)
  timer_jitter : float;  (** Gaussian timer noise, in cycles. *)
  prediction : Mote_machine.Machine.prediction;
      (** Static branch-prediction policy of the simulated core (ablation
          A11 compares them). *)
  faults : Profilekit.Transport.config option;
      (** Fault model for the probe uplink.  [None] reads the log
          intact with the strict collector; [Some] routes it through
          {!Profilekit.Transport.perturb} (seeded from [seed], but on an
          independent stream) and the resynchronizing lossy collector.
          The R13 experiment sweeps this. *)
}

val default_config : config
(** seed 42, workload horizon, resolution 1, no jitter, predict
    not-taken, no link faults. *)

(** {1 Profiling} *)

type profile_run = {
  workload : Workloads.t;
  compiled : Mote_lang.Compile.t;
  instrumented : Mote_isa.Program.t;
  config : config;
  samples : (string * float array) list;
      (** Exclusive end-to-end cycles per profiled procedure. *)
  oracle_thetas : (string * float array) list;
      (** Ground-truth taken probabilities, canonical branch order. *)
  oracle_freqs : (string * Freq.t) list;
      (** Ground-truth profiles on the {e original} binary's CFGs. *)
  invocations : (string * int) list;
  node_stats : Mote_os.Node.run_stats;
  transport : Profilekit.Transport.stats option;
      (** Link-fault accounting — [Some] iff the config carries a fault
          model. *)
  discarded : int;
      (** Probe windows the lossy collector had to abandon (0 on a clean
          link). *)
}

val profile :
  ?config:config -> ?compiled:Mote_lang.Compile.t -> Workloads.t -> profile_run
(** Run the workload once with probes and the oracle attached.
    [?compiled] reuses an existing compilation of the same workload
    (e.g. {!Session}'s memoized one) instead of recompiling. *)

val original_cfg : profile_run -> string -> Cfgir.Cfg.t
val model_of : profile_run -> string -> Tomo.Model.t
(** Timing model of the instrumented procedure. *)

val noise_sigma : config -> float
(** The measurement-noise scale implied by the timer configuration. *)

(** {1 Estimation} *)

type estimation = {
  proc : string;
  estimate : Tomo.Estimator.t;
  truth : float array;
  mae : float;
  sample_count : int;  (** Samples actually estimated from (post-sanitize). *)
  health : Tomo.Health.t;
      (** Per-procedure verdict from the sample floor and estimator
          convergence.  A {!Tomo.Health.Rejected} procedure carries the
          uniform fallback estimate ({!Tomo.Estimator.fallback}) and is
          never rewritten by placement. *)
  sanitize_report : Tomo.Sanitize.report option;
      (** Quarantine accounting — [Some] iff estimation ran with
          [?sanitize]. *)
}

type paths_cache = string -> (unit -> Tomo.Paths.t) -> Tomo.Paths.t
(** A memo hook for enumerated path sets: [cache key enumerate] returns
    the cached set for [key] or computes, stores and returns
    [enumerate ()].  The instrumented binary — hence every per-procedure
    path model — depends only on the workload, never on the timing
    config, so one enumeration can serve an entire resolution × jitter
    sweep.  Keys are procedure names (the watermarked profiling image
    uses a ["watermarked:"] prefix since its models differ); the owner
    must scope the cache to a single (workload, [max_paths],
    [max_visits]) combination — {!Session} does exactly this. *)

(** The execution context of a pipeline stage — the one value that
    carries everything a stage shares with its surroundings: the domain
    pool its fan-outs run on and the path-set memo it reads enumerated
    models from.  It replaces the [?pool]/[?paths_cache] pairs that used
    to thread separately through every entry point; the old signatures
    survive as deprecated wrappers in {!Legacy}.

    A context changes scheduling and sharing only, never results:
    {!Ctx.none} (no pool, no cache) computes the same values serially
    and from scratch. *)
module Ctx : sig
  type t

  val none : t
  (** Serial, uncached — the default when no [?ctx] is passed. *)

  val make : ?pool:Par.Pool.t -> ?paths_cache:paths_cache -> unit -> t
  (** Build a context from its parts; omitted parts mean "serial" /
      "uncached".  {!Session.ctx} builds the fully-loaded one. *)

  val of_pool : Par.Pool.t -> t
  (** Pool only — the common case for one-shot CLI runs. *)

  val pool : t -> Par.Pool.t option
  val paths_cache : t -> paths_cache option
end

val estimate :
  ?ctx:Ctx.t ->
  ?method_:Tomo.Estimator.method_ ->
  ?max_samples:int ->
  ?max_paths:int ->
  ?max_visits:int ->
  ?sanitize:Tomo.Sanitize.config ->
  ?outlier:Tomo.Em.outlier ->
  ?min_samples:int ->
  profile_run ->
  estimation list
(** Estimate every profiled procedure.  [max_samples] keeps the
    {e chronological prefix} — the first [max_samples] observation
    windows, exactly as if profiling had stopped once that many
    invocations had been seen.  This matches {!Tomo.Planner}'s
    stopping-rule semantics (F2 sweeps "how long must we profile?",
    not "which windows do we keep?").  When [max_samples] is absent,
    negative, or at least the sample count, all samples are used.
    [ctx] supplies the domain pool the per-procedure estimations fan
    out over and the path-set memo they read; estimation is
    deterministic, so the result is identical with or without it.

    The robustness knobs are all opt-in and, at their defaults, leave
    every result bit-identical to the pre-robustness pipeline:
    [sanitize] quarantines infeasible timings ({!Tomo.Sanitize}) using
    the EM path set's cost envelope; [outlier] switches the EM to its
    contamination-robust variant; [min_samples] (default 1) is the floor
    below which a procedure is {!Tomo.Health.Rejected} and given the
    uniform fallback estimate instead of an exception — with the default
    floor only the zero-sample case (which previously raised
    [Invalid_argument]) is intercepted. *)

val ambiguous_sites :
  ?ctx:Ctx.t ->
  ?max_paths:int ->
  ?max_visits:int ->
  profile_run ->
  (string * int) list
(** Branches whose probabilities end-to-end timing cannot determine
    (equal-cost arms), as [(procedure, branch block id)] in the
    instrumented binary's coordinates — see {!Tomo.Identify}. *)

val estimate_watermarked :
  ?ctx:Ctx.t ->
  ?method_:Tomo.Estimator.method_ ->
  ?max_samples:int ->
  ?max_paths:int ->
  ?max_visits:int ->
  ?sanitize:Tomo.Sanitize.config ->
  ?outlier:Tomo.Em.outlier ->
  ?min_samples:int ->
  profile_run ->
  estimation list * (string * int) list
(** Like {!estimate}, but when {!ambiguous_sites} is non-empty the
    profiling image is rebuilt with {!Profilekit.Watermark} delay stubs on
    those branches and re-profiled, restoring identifiability.  Returns
    the estimations (aligned with the original branch order, as always)
    and the watermarked sites.  The production binary is untouched —
    watermarks exist only in the profiling build. *)

val estimated_freqs : profile_run -> estimation list -> (string * Freq.t) list
(** Convert estimates into profiles on the original CFGs (expected visits
    under θ times the observed invocation counts). *)

(** {1 Placement evaluation} *)

type variant = {
  label : string;
  binary : Mote_isa.Program.t;
  stats : Mote_machine.Machine.stats;
  taken_rate : float;
  taken_transfers : int;
      (** Absolute stalling-transfer count (mispredicted conditionals plus
          jumps) — the robust cross-layout metric:
          the rate's denominator itself changes with layout (bridge jumps
          add always-taken transfers), so a pessimal layout can show a
          {e lower} rate while stalling more. *)
  busy_cycles : int;
  idle_cycles : int;
  tx_words : int;  (** Radio payload words transmitted during the run. *)
  flash_words : int;
}

val run_binary :
  ?config:config -> Workloads.t -> Mote_isa.Program.t -> label:string -> variant
(** Execute an arbitrary binary of the workload under the workload's
    environment (fresh machine, given seed) and collect its dynamics. *)

val natural_binary : profile_run -> Mote_isa.Program.t

val placed_binary :
  profile_run ->
  profiles:(string * Freq.t) list ->
  algorithm:(Freq.t -> Layout.Placement.t) ->
  Mote_isa.Program.t

val worst_binary : profile_run -> Mote_isa.Program.t
(** Pessimal placement from the oracle profile (exhaustive on small
    procedures, inverted Pettis–Hansen above that). *)

val compare_layouts :
  ?ctx:Ctx.t ->
  ?eval_config:config ->
  ?method_:Tomo.Estimator.method_ ->
  ?sanitize:Tomo.Sanitize.config ->
  ?outlier:Tomo.Em.outlier ->
  ?min_samples:int ->
  profile_run ->
  variant list
(** The T4/F5 experiment for one workload: natural, worst-case,
    tomography-guided and perfect-profile binaries, all run under the same
    evaluation environment (default: profiling seed + 1000, so placement
    is tested on fresh inputs from the same distribution).  [ctx]'s pool
    runs the four variant evaluations on separate domains; every variant
    owns a fresh machine/environment seeded from the evaluation config,
    so parallel output is bit-identical to serial.

    The robustness knobs are forwarded to {!estimate}.  A procedure whose
    health comes back {!Tomo.Health.Rejected} contributes {e no} profile
    to the tomography layout — the rewriter leaves it in its natural
    placement — and the tomography variant's label becomes
    ["tomography[N fallback]"] so a partial layout is never mistaken for
    a full one. *)

(** {1 Deprecated}

    The pre-{!Ctx} entry points, kept as thin wrappers so downstream
    callers keep compiling while they migrate.  Each builds a context
    from its [?pool]/[?paths_cache] arguments and defers to the
    canonical function; results are identical.  No in-repo caller uses
    these. *)
module Legacy : sig
  val estimate :
    ?pool:Par.Pool.t ->
    ?paths_cache:paths_cache ->
    ?method_:Tomo.Estimator.method_ ->
    ?max_samples:int ->
    ?max_paths:int ->
    ?max_visits:int ->
    ?sanitize:Tomo.Sanitize.config ->
    ?outlier:Tomo.Em.outlier ->
    ?min_samples:int ->
    profile_run ->
    estimation list
  [@@ocaml.deprecated "use Pipeline.estimate ?ctx (Pipeline.Ctx bundles pool and paths cache)"]

  val estimate_watermarked :
    ?pool:Par.Pool.t ->
    ?paths_cache:paths_cache ->
    ?method_:Tomo.Estimator.method_ ->
    ?max_samples:int ->
    ?max_paths:int ->
    ?max_visits:int ->
    ?sanitize:Tomo.Sanitize.config ->
    ?outlier:Tomo.Em.outlier ->
    ?min_samples:int ->
    profile_run ->
    estimation list * (string * int) list
  [@@ocaml.deprecated
    "use Pipeline.estimate_watermarked ?ctx (Pipeline.Ctx bundles pool and paths cache)"]

  val compare_layouts :
    ?pool:Par.Pool.t ->
    ?paths_cache:paths_cache ->
    ?eval_config:config ->
    ?method_:Tomo.Estimator.method_ ->
    ?sanitize:Tomo.Sanitize.config ->
    ?outlier:Tomo.Em.outlier ->
    ?min_samples:int ->
    profile_run ->
    variant list
  [@@ocaml.deprecated
    "use Pipeline.compare_layouts ?ctx (Pipeline.Ctx bundles pool and paths cache)"]
end
