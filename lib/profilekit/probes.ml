open Mote_isa

let scratch_reg = 13

let probe_items =
  [ Asm.I (Isa.In (scratch_reg, Isa.P_timer)); Asm.I (Isa.Out (Isa.P_probe, scratch_reg)) ]

let in_cost = Isa.base_cost (Isa.In (scratch_reg, Isa.P_timer))
let out_cost = Isa.base_cost (Isa.Out (Isa.P_probe, scratch_reg))
let ret_cost = Isa.base_cost Isa.Ret + Isa.taken_penalty

let probe_cycles_per_invocation = 2 * (in_cost + out_cost)

let probe_flash_words_per_site =
  List.fold_left
    (fun acc item -> match item with Asm.I i -> acc + Isa.size i | _ -> acc)
    0 probe_items

(* Entry [in] before the window, exit [out] and the ret's base cost after
   it.  The ret's taken penalty is never part of any block's cost in the
   timing model, so it must not be subtracted here. *)
let window_correction = in_cost + out_cost + Isa.base_cost Isa.Ret

(* Caller-side: call taken penalty + callee entry [in] + callee exit [out]
   + callee ret. *)
let call_residual = Isa.taken_penalty + in_cost + out_cost + ret_cost

let instrument ?(skip = [ Mote_lang.Compile.init_proc_name ]) items =
  let rec go current_skipped = function
    | [] -> []
    | (Asm.Proc name as item) :: rest ->
        let skipped = List.mem name skip in
        if skipped then item :: go skipped rest
        else (item :: probe_items) @ go skipped rest
    | (Asm.I Isa.Ret as item) :: rest when not current_skipped ->
        probe_items @ (item :: go current_skipped rest)
    | item :: rest -> item :: go current_skipped rest
  in
  go true items

type sample_set = (string * float array) list

exception Unbalanced of string

type frame = { proc : string; t_entry : int; mutable child_cycles : int }

(* Timestamps travel through 16-bit registers, so tick counts wrap at
   2^16 — differences are taken modulo 2^16, which is correct as long as a
   single window spans fewer than 65536 ticks (mote procedures are run-to-
   completion tasks, orders of magnitude shorter). *)
let wrap16 v = v land 0xFFFF
let diff16 later earlier = (later - earlier) land 0xFFFF

let collect_records ~program ~resolution records =
  let to_cycles ticks = ticks * resolution in
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack : frame list ref = ref [] in
  let record_sample proc v =
    let cell =
      match Hashtbl.find_opt samples proc with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace samples proc c;
          c
    in
    cell := v :: !cell
  in
  List.iter
    (fun { Mote_machine.Devices.pc; value; _ } ->
      let proc =
        match Program.proc_at program pc with
        | Some p -> p
        | None -> raise (Unbalanced (Printf.sprintf "probe at %d outside any procedure" pc))
      in
      let is_entry = pc = proc.Program.entry + 1 in
      if is_entry then
        stack := { proc = proc.Program.name; t_entry = wrap16 value; child_cycles = 0 } :: !stack
      else begin
        match !stack with
        | [] ->
            raise (Unbalanced (Printf.sprintf "exit probe for %s with empty stack" proc.Program.name))
        | frame :: rest ->
            if frame.proc <> proc.Program.name then
              raise
                (Unbalanced
                   (Printf.sprintf "exit probe for %s while %s is open" proc.Program.name
                      frame.proc));
            let inclusive = to_cycles (diff16 (wrap16 value) frame.t_entry) in
            let exclusive = inclusive - frame.child_cycles in
            record_sample frame.proc (float_of_int exclusive);
            (match rest with
            | parent :: _ -> parent.child_cycles <- parent.child_cycles + inclusive
            | [] -> ());
            stack := rest
      end)
    records;
  Hashtbl.fold
    (fun proc cell acc -> (proc, Array.of_list (List.rev !cell)) :: acc)
    samples []
  |> List.sort compare

let collect ~program ~devices =
  collect_records ~program
    ~resolution:(Mote_machine.Devices.timer_resolution devices)
    (Mote_machine.Devices.probe_log devices)

let samples_for set proc = Option.value ~default:[||] (List.assoc_opt proc set)

type lossy_result = { samples : sample_set; discarded : int }

type lossy_frame = {
  lproc : string;
  lt_entry : int;
  mutable lchild : int;
  mutable corrupted : bool;
}

let collect_lossy_records ?max_window ~program ~resolution records =
  let to_cycles ticks = ticks * resolution in
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let record_sample proc v =
    let cell =
      match Hashtbl.find_opt samples proc with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace samples proc c;
          c
    in
    cell := v :: !cell
  in
  let stack : lossy_frame list ref = ref [] in
  let discarded = ref 0 in
  let poison () = List.iter (fun f -> f.corrupted <- true) !stack in
  let discard_top () =
    match !stack with
    | [] -> ()
    | _ :: rest ->
        incr discarded;
        stack := rest;
        poison ()
  in
  (* Close the top frame as [proc]'s exit if it matches; otherwise, if
     [proc] is open deeper, unwind (discarding) to it; otherwise the entry
     record was lost — skip the exit. *)
  let rec close proc t_exit =
    match !stack with
    | [] ->
        incr discarded;
        ()
    | frame :: rest when frame.lproc = proc ->
        let inclusive = to_cycles (diff16 t_exit frame.lt_entry) in
        let implausible =
          match max_window with Some m -> inclusive > m | None -> false
        in
        if implausible then begin
          (* A window longer than any plausible invocation: this exit
             paired with a stale entry across lost records. *)
          incr discarded;
          stack := rest;
          poison ()
        end
        else begin
          if frame.corrupted then incr discarded
          else record_sample frame.lproc (float_of_int (inclusive - frame.lchild));
          (match rest with
          | parent :: _ -> parent.lchild <- parent.lchild + inclusive
          | [] -> ());
          stack := rest
        end
    | _ ->
        if List.exists (fun f -> f.lproc = proc) !stack then begin
          discard_top ();
          close proc t_exit
        end
        else begin
          (* Exit with no matching entry: its entry record was lost, and we
             cannot know which open windows it contaminated. *)
          incr discarded;
          poison ()
        end
  in
  List.iter
    (fun { Mote_machine.Devices.pc; value; _ } ->
      match Program.proc_at program pc with
      | None ->
          incr discarded;
          poison ()
      | Some proc ->
          let name = proc.Program.name in
          if pc = proc.Program.entry + 1 then begin
            (* Recursion is impossible in mote programs, so an entry for an
               already-open procedure proves its previous exit was lost:
               everything open is torn. *)
            if List.exists (fun f -> f.lproc = name) !stack then begin
              discarded := !discarded + List.length !stack;
              stack := []
            end;
            stack :=
              { lproc = name; lt_entry = wrap16 value; lchild = 0; corrupted = false }
              :: !stack
          end
          else close name (wrap16 value))
    records;
  (* Frames still open at the end of the log never completed. *)
  discarded := !discarded + List.length !stack;
  let samples =
    Hashtbl.fold
      (fun proc cell acc -> (proc, Array.of_list (List.rev !cell)) :: acc)
      samples []
    |> List.sort compare
  in
  { samples; discarded = !discarded }

let collect_lossy ?max_window ~program ~devices () =
  collect_lossy_records ?max_window ~program
    ~resolution:(Mote_machine.Devices.timer_resolution devices)
    (Mote_machine.Devices.probe_log devices)

(* Wire-format ingest: decode (rejecting unknown versions with the typed
   Wire.Error) and delegate to the record-list collectors. *)

let collect_wire ~program ~resolution batch =
  collect_records ~program ~resolution (Wire.decode_exn batch)

let collect_lossy_wire ?max_window ~program ~resolution batch =
  collect_lossy_records ?max_window ~program ~resolution (Wire.decode_exn batch)
