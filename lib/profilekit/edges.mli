(** Full edge-count instrumentation — the conventional profiling baseline
    Code Tomography competes against.

    Every conditional branch gets two counters {e in mote RAM}: the
    fall-through edge is counted inline right after the branch, and the
    taken edge is counted in a trampoline stub appended to the procedure
    that the branch is redirected through.  A counter bump is the real
    read-modify-write sequence (borrow a register, load, add, store,
    restore), so the dynamic cost is what arc profiling actually pays on a
    load/store MCU — compare {!counter_cycles_per_edge} with
    {!Probes.probe_cycles_per_invocation}.

    Branch instructions keep their relative order under instrumentation, so
    counter ids map back to the {e original} program's CFG by enumerating
    its branches in address order.  Counters are 16-bit mote words: runs
    must keep individual edge counts below 32768. *)

open Mote_isa

val default_counter_base : int
(** First RAM word used for counters (3072 — above the compiler's static
    data for all bundled workloads, below the stack). *)

val instrument : ?counter_base:int -> Asm.item list -> Asm.item list

val num_counters : Program.t -> int
(** For an {e original} (uninstrumented) program: 2 × number of conditional
    branches = RAM words the counters occupy. *)

val counter_cycles_per_edge : int
(** Dynamic cost of one inline counter bump. *)

val branch_order : Program.t -> (string * int) list
(** Original program's conditional branches in address order:
    [(proc name, block id)] — the [j]-th entry owns counters [2j] (taken)
    and [2j+1] (fall). *)

val counts_of_memory :
  original:Program.t ->
  ?counter_base:int ->
  Mote_machine.Machine.t ->
  (string * (int * (int * int)) list) list
(** Read the counters out of the instrumented machine's RAM:
    per procedure, [(branch block id, (taken, fall))]. *)

val thetas_of_memory :
  original:Program.t ->
  ?counter_base:int ->
  Mote_machine.Machine.t ->
  (string * (int * float) list) list
(** Observed taken probabilities; 0.5 for never-executed branches. *)
