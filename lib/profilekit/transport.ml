(* Fault-injecting probe transport.

   Each fault stage owns its own Stats.Rng.stream keyed by a fixed stage
   index, so (a) the whole perturbation is a pure function of
   (seed, config, log) — byte-identical at any domain count — and (b)
   raising one stage's rate never shifts another stage's random pattern
   (a stage's *input* can still change, of course: stages apply in the
   physical order source clock → node → channel → link).  A stage whose
   rate is zero returns its input unchanged. *)

module Devices = Mote_machine.Devices

type config = {
  skew : float;
  drift : float;
  reboot : float;
  reboot_flush : int;
  burst_enter : float;
  burst_exit : float;
  burst_drop : float;
  drop : float;
  corrupt : float;
  corrupt_bits : int;
  duplicate : float;
  reorder : float;
  reorder_span : int;
}

let default =
  {
    skew = 0.0;
    drift = 0.0;
    reboot = 0.0;
    reboot_flush = 8;
    burst_enter = 0.0;
    burst_exit = 0.25;
    burst_drop = 0.8;
    drop = 0.0;
    corrupt = 0.0;
    corrupt_bits = 2;
    duplicate = 0.0;
    reorder = 0.0;
    reorder_span = 4;
  }

let field ?(drop = 0.05) ?(corrupt = 0.01) () = { default with drop; corrupt }

let is_identity c =
  c.skew = 0.0 && c.drift = 0.0 && c.reboot = 0.0 && c.burst_enter = 0.0
  && c.drop = 0.0 && c.corrupt = 0.0 && c.duplicate = 0.0 && c.reorder = 0.0

type stats = {
  sent : int;
  delivered : int;
  dropped_drop : int;
  dropped_burst : int;
  dropped_reboot : int;
  reboots : int;
  corrupted : int;
  duplicated : int;
  reordered : int;
}

let wrap16 v = v land 0xFFFF

(* Fixed stage indices for Stats.Rng.stream — append-only, so saved fault
   campaigns stay replayable when new stages are added. *)
let clock_stream = 0 (* reserved: the clock stage draws nothing today *)
let reboot_stream = 1
let burst_stream = 2
let drop_stream = 3
let corrupt_stream = 4
let duplicate_stream = 5
let reorder_stream = 6

let _ = clock_stream

(* Source clock: multiplicative skew plus linear drift, applied to the
   16-bit timestamp payload.  Deterministic — no draws. *)
let clock_stage c records =
  if c.skew = 0.0 && c.drift = 0.0 then records
  else
    List.mapi
      (fun i (r : Devices.probe_record) ->
        let skewed = Float.round (float_of_int r.value *. (1.0 +. c.skew)) in
        let drifted = Float.round (float_of_int i *. c.drift) in
        { r with Devices.value = wrap16 (int_of_float skewed + int_of_float drifted) })
      records

let reboot_stage rng c ~lost ~reboots records =
  if c.reboot = 0.0 then records
  else begin
    let flush = ref 0 in
    List.filter
      (fun (_ : Devices.probe_record) ->
        if !flush > 0 then begin
          decr flush;
          incr lost;
          false
        end
        else if Stats.Rng.bernoulli rng c.reboot then begin
          incr reboots;
          flush := Stdlib.max 0 (c.reboot_flush - 1);
          incr lost;
          false
        end
        else true)
      records
  end

let burst_stage rng c ~lost records =
  if c.burst_enter = 0.0 then records
  else begin
    let bad = ref false in
    List.filter
      (fun (_ : Devices.probe_record) ->
        (if !bad then begin
           if Stats.Rng.bernoulli rng c.burst_exit then bad := false
         end
         else if Stats.Rng.bernoulli rng c.burst_enter then bad := true);
        if !bad && Stats.Rng.bernoulli rng c.burst_drop then begin
          incr lost;
          false
        end
        else true)
      records
  end

let drop_stage rng c ~lost records =
  if c.drop = 0.0 then records
  else
    List.filter
      (fun (_ : Devices.probe_record) ->
        if Stats.Rng.bernoulli rng c.drop then begin
          incr lost;
          false
        end
        else true)
      records

let corrupt_stage rng c ~corrupted records =
  if c.corrupt = 0.0 then records
  else
    List.map
      (fun (r : Devices.probe_record) ->
        if Stats.Rng.bernoulli rng c.corrupt then begin
          incr corrupted;
          let mask = ref 0 in
          for _ = 1 to Stdlib.max 1 c.corrupt_bits do
            mask := !mask lor (1 lsl Stats.Rng.int rng 16)
          done;
          { r with Devices.value = wrap16 (r.Devices.value lxor !mask) }
        end
        else r)
      records

let duplicate_stage rng c ~duplicated records =
  if c.duplicate = 0.0 then records
  else
    List.concat_map
      (fun (r : Devices.probe_record) ->
        if Stats.Rng.bernoulli rng c.duplicate then begin
          incr duplicated;
          [ r; r ]
        end
        else [ r ])
      records

(* Bounded reordering: a displaced record sinks by 1..reorder_span
   positions; a stable sort on the displaced indices realizes every
   displacement while preserving the relative order of the rest. *)
let reorder_stage rng c ~reordered records =
  if c.reorder = 0.0 then records
  else begin
    let arr = Array.of_list records in
    let keyed =
      Array.mapi
        (fun i r ->
          let d =
            if Stats.Rng.bernoulli rng c.reorder then begin
              incr reordered;
              1 + Stats.Rng.int rng (Stdlib.max 1 c.reorder_span)
            end
            else 0
          in
          (i + d, r))
        arr
    in
    Array.stable_sort (fun (a, _) (b, _) -> compare a b) keyed;
    Array.to_list (Array.map snd keyed)
  end

let perturb ?(seed = 0) c records =
  let stream i = Stats.Rng.stream ~seed ~index:i in
  let dropped_drop = ref 0 in
  let dropped_burst = ref 0 in
  let dropped_reboot = ref 0 in
  let reboots = ref 0 in
  let corrupted = ref 0 in
  let duplicated = ref 0 in
  let reordered = ref 0 in
  let out =
    clock_stage c records
    |> reboot_stage (stream reboot_stream) c ~lost:dropped_reboot ~reboots
    |> burst_stage (stream burst_stream) c ~lost:dropped_burst
    |> drop_stage (stream drop_stream) c ~lost:dropped_drop
    |> corrupt_stage (stream corrupt_stream) c ~corrupted
    |> duplicate_stage (stream duplicate_stream) c ~duplicated
    |> reorder_stage (stream reorder_stream) c ~reordered
  in
  ( out,
    {
      sent = List.length records;
      delivered = List.length out;
      dropped_drop = !dropped_drop;
      dropped_burst = !dropped_burst;
      dropped_reboot = !dropped_reboot;
      reboots = !reboots;
      corrupted = !corrupted;
      duplicated = !duplicated;
      reordered = !reordered;
    } )

let pp_stats fmt s =
  Format.fprintf fmt
    "sent %d, delivered %d (lost: %d random, %d burst, %d reboot over %d reboots; \
     corrupted %d, duplicated %d, reordered %d)"
    s.sent s.delivered s.dropped_drop s.dropped_burst s.dropped_reboot s.reboots
    s.corrupted s.duplicated s.reordered
