module Cfg = Cfgir.Cfg

let freq_of_branch_counts cfg ~invocations ~counts =
  let n = Cfg.num_blocks cfg in
  (* x = c + U x, where c collects entry flow and known branch-edge inflow
     and U carries flow along unconditional (jump/fall) edges. *)
  let c = Array.make n 0.0 in
  c.(0) <- invocations;
  let u = Linalg.Matrix.make n n 0.0 in
  for src = 0 to n - 1 do
    match (Cfg.block cfg src).Cfg.term with
    | Cfg.T_branch (_, taken_dst, fall_dst) ->
        let taken, fall =
          match List.assoc_opt src counts with Some tf -> tf | None -> (0.0, 0.0)
        in
        c.(taken_dst) <- c.(taken_dst) +. taken;
        c.(fall_dst) <- c.(fall_dst) +. fall
    | Cfg.T_jump dst | Cfg.T_fall dst -> u.(dst).(src) <- u.(dst).(src) +. 1.0
    | Cfg.T_ret | Cfg.T_halt -> ()
  done;
  let i_minus_u = Linalg.Matrix.sub (Linalg.Matrix.identity n) u in
  let visits = Linalg.Solve.lu_solve i_minus_u c in
  let freq = Cfgir.Freq.create cfg ~invocations in
  for src = 0 to n - 1 do
    match (Cfg.block cfg src).Cfg.term with
    | Cfg.T_branch (_, taken_dst, fall_dst) ->
        let taken, fall =
          match List.assoc_opt src counts with Some tf -> tf | None -> (0.0, 0.0)
        in
        Cfgir.Freq.bump freq ~src ~dst:taken_dst ~kind:Cfg.K_taken taken;
        Cfgir.Freq.bump freq ~src ~dst:fall_dst ~kind:Cfg.K_fall fall
    | Cfg.T_jump dst -> Cfgir.Freq.bump freq ~src ~dst ~kind:Cfg.K_jump visits.(src)
    | Cfg.T_fall dst -> Cfgir.Freq.bump freq ~src ~dst ~kind:Cfg.K_fall visits.(src)
    | Cfg.T_ret | Cfg.T_halt -> ()
  done;
  freq
