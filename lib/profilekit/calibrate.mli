(** Empirical calibration of the timing-model constants.

    The analytic values in {!Probes} ({!Probes.window_correction},
    {!Probes.call_residual}) are derived from the ISA cost table.  A port
    to a different core — or a core whose documentation is wrong, which is
    the common case — can instead {e measure} them: run two tiny
    calibration procedures (a straight-line leaf and a caller wrapping it)
    under probes, compare measured windows against the zero-constant
    analytic cost, and read the constants off the difference.  Both
    procedures are branch-free, so the measurement is exact. *)

type t = {
  window_correction : int;
  call_residual : int;
  leaf_window : int;  (** Raw measured leaf window, for diagnostics. *)
}

val run : ?leaf_body_cycles:int -> unit -> t
(** Build, instrument and execute the calibration pair on a fresh machine
    (default leaf body ≈ 10 cycles).  Deterministic. *)

val matches_analytic : t -> bool
(** Do the measured constants equal {!Probes}'s analytic ones?  (They must,
    on the bundled CT16 core — the test suite checks it.) *)
