(** Reconstructing full edge frequencies from branch outcome counts.

    Branch profilers (the oracle and the counter instrumentation) observe
    only conditional-branch outcomes.  Every other edge's traversal count
    follows from flow conservation: a block's visits equal its inbound
    flow (plus the invocation count for the entry), and its unconditional
    out-edge carries exactly its visits.  This solves the resulting linear
    system [(I − U) x = c] and materializes the complete profile. *)

val freq_of_branch_counts :
  Cfgir.Cfg.t ->
  invocations:float ->
  counts:(int * (float * float)) list ->
  Cfgir.Freq.t
(** [counts] maps each branch block to its (taken, fall) totals.  Branch
    blocks absent from the list count as (0, 0).
    @raise Linalg.Solve.Singular for CFGs whose unconditional-flow part is
    cyclic (cannot happen for binaries produced by the compiler: every
    loop is broken by a conditional branch or exits). *)
