module Isa = Mote_isa.Isa
module Asm = Mote_isa.Asm
module Machine = Mote_machine.Machine
module Devices = Mote_machine.Devices
module Cfg = Cfgir.Cfg

type t = { window_correction : int; call_residual : int; leaf_window : int }

(* Straight-line cost of an instrumented procedure, with zero constants:
   block base costs only (no branches, no calls counted). *)
let zero_model_cost program name =
  let cfg = Cfg.of_proc_name program name in
  let total = ref 0 in
  for id = 0 to Cfg.num_blocks cfg - 1 do
    total := !total + (Cfg.block cfg id).Cfg.base_cost
  done;
  !total

let run ?(leaf_body_cycles = 10) () =
  if leaf_body_cycles < 1 then invalid_arg "Calibrate.run: need a positive leaf body";
  let items =
    (Asm.Proc "cal_leaf" :: List.init leaf_body_cycles (fun _ -> Asm.movi 0 1))
    @ [ Asm.ret ]
    @ [ Asm.Proc "cal_caller"; Asm.call "cal_leaf"; Asm.ret ]
  in
  let instrumented = Asm.assemble (Probes.instrument items) in
  let devices = Devices.create () in
  let machine = Machine.create ~program:instrumented ~devices () in
  ignore (Machine.run_proc machine "cal_caller");
  let samples = Probes.collect ~program:instrumented ~devices in
  let window proc =
    match Probes.samples_for samples proc with
    | [| w |] -> int_of_float w
    | other ->
        invalid_arg
          (Printf.sprintf "Calibrate: expected one %s window, got %d" proc
             (Array.length other))
  in
  let leaf_window = window "cal_leaf" in
  let caller_window = window "cal_caller" in
  (* leaf:   W = cost - correction            (no calls)
     caller: W = cost + residual - correction (one call) *)
  let window_correction = zero_model_cost instrumented "cal_leaf" - leaf_window in
  let call_residual =
    caller_window - zero_model_cost instrumented "cal_caller" + window_correction
  in
  { window_correction; call_residual; leaf_window }

let matches_analytic t =
  t.window_correction = Probes.window_correction
  && t.call_residual = Probes.call_residual
