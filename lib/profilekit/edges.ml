open Mote_isa

let default_counter_base = 3072

let scratch = Probes.scratch_reg (* r13: address register *)
let borrowed = 12 (* saved/restored around each bump *)

(* push r12; movi r13,addr; ld r12,[r13]; addi r12,1; st [r13],r12; pop r12 *)
let bump_items addr =
  [
    Asm.I (Isa.Push borrowed);
    Asm.I (Isa.Movi (scratch, addr));
    Asm.I (Isa.Ld (borrowed, scratch, 0));
    Asm.I (Isa.Alui (Isa.Add, borrowed, borrowed, 1));
    Asm.I (Isa.St (scratch, 0, borrowed));
    Asm.I (Isa.Pop borrowed);
  ]

let counter_cycles_per_edge =
  List.fold_left
    (fun acc item -> match item with Asm.I i -> acc + Isa.base_cost i | _ -> acc)
    0 (bump_items 0)

let stub_label j = Printf.sprintf "__edge_stub_%d" j

let instrument ?(counter_base = default_counter_base) items =
  (* Walk items keeping the stubs accumulated for the current procedure;
     flush them before the next [Proc] so branches stay intra-procedural. *)
  let j = ref 0 in
  let rec go pending = function
    | [] -> List.concat (List.rev pending)
    | (Asm.Proc _ as item) :: rest -> List.concat (List.rev pending) @ (item :: go [] rest)
    | Asm.I (Isa.Br (cond, target)) :: rest ->
        let idx = !j in
        incr j;
        let stub =
          Asm.Label (stub_label idx)
          :: (bump_items (counter_base + (2 * idx)) @ [ Asm.I (Isa.Jmp target) ])
        in
        (Asm.I (Isa.Br (cond, stub_label idx))
        :: bump_items (counter_base + (2 * idx) + 1))
        @ go (stub :: pending) rest
    | item :: rest -> item :: go pending rest
  in
  go [] items

let branch_order program =
  (* Procedures in address order, branch blocks in address order within
     each: matches the global Br-instruction order the instrumenter saw. *)
  let procs =
    Program.procs program
    |> List.sort (fun a b -> compare a.Program.entry b.Program.entry)
  in
  List.concat_map
    (fun info ->
      let cfg = Cfgir.Cfg.of_proc program info in
      Cfgir.Cfg.branch_blocks cfg
      |> List.map (fun id -> (id, (Cfgir.Cfg.block cfg id).Cfgir.Cfg.last))
      |> List.sort (fun (_, a) (_, b) -> compare a b)
      |> List.map (fun (id, _) -> (info.Program.name, id)))
    procs

let num_counters program = 2 * List.length (branch_order program)

let group_by_proc entries =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (proc, v) ->
      match Hashtbl.find_opt tbl proc with
      | Some cell -> cell := v :: !cell
      | None ->
          Hashtbl.replace tbl proc (ref [ v ]);
          order := proc :: !order)
    entries;
  List.rev_map (fun proc -> (proc, List.rev !(Hashtbl.find tbl proc))) !order

let counts_of_memory ~original ?(counter_base = default_counter_base) machine =
  branch_order original
  |> List.mapi (fun jdx (proc, block_id) ->
         let read off =
           Mote_machine.Machine.read_mem machine (counter_base + (2 * jdx) + off)
         in
         (proc, (block_id, (read 0, read 1))))
  |> group_by_proc

let thetas_of_memory ~original ?counter_base machine =
  counts_of_memory ~original ?counter_base machine
  |> List.map (fun (proc, entries) ->
         ( proc,
           List.map
             (fun (block_id, (taken, fall)) ->
               let total = taken + fall in
               let p =
                 if total = 0 then 0.5 else float_of_int taken /. float_of_int total
               in
               (block_id, p))
             entries ))
