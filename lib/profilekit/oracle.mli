(** Perturbation-free ground-truth profiler.

    Hooks the simulator's branch-resolution callback, so it observes every
    conditional branch outcome without adding a single instruction or cycle
    to the program — something only possible in simulation.  This provides
    the "perfect profile" upper bound for placement quality and the ground
    truth that the estimation-accuracy experiments compare against. *)


type t

val attach : Mote_machine.Machine.t -> t
(** Installs the hook (replacing any previous one) and starts counting. *)

val detach : t -> unit

val counts : t -> proc:string -> (int * (int * int)) list
(** [(branch block id, (taken, fall))] for the procedure, block-ordered. *)

val thetas : t -> proc:string -> (int * float) list
(** Observed taken probabilities; 0.5 for never-executed branches. *)

val theta_vector : t -> proc:string -> float array
(** In {!Cfgir.Cfg.branch_blocks} order. *)

val total_branches : t -> int

val freq : t -> proc:string -> invocations:float -> Cfgir.Freq.t
(** Empirical edge-frequency profile: branch edges get their observed
    counts; unconditional edges get the flow implied by conservation
    (computed exactly from the counts, see {!Flowcount}). *)
