type error =
  | Bad_magic
  | Unsupported_version of int
  | Truncated of { expected : int; got : int }

exception Error of error

let current_version = 1
let magic = "CTPL"
let header_bytes = 10
let record_bytes = 10

let error_to_string = function
  | Bad_magic -> "probe batch: bad magic (not a CTPL batch)"
  | Unsupported_version v ->
      Printf.sprintf "probe batch: unsupported format version %d (this build speaks %d)"
        v current_version
  | Truncated { expected; got } ->
      Printf.sprintf "probe batch: truncated (%d bytes expected, %d present)" expected
        got

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

(* Big-endian fixed-width fields.  [cycles] gets 48 bits: horizons are
   simulated cycle counts and can exceed 32 bits long before any mote
   field fails; pc and value are 16-bit machine words already. *)

let put_be b width v =
  for i = width - 1 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_be s off width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let encode records =
  let n = List.length records in
  let b = Buffer.create (header_bytes + (n * record_bytes)) in
  Buffer.add_string b magic;
  put_be b 2 current_version;
  put_be b 4 n;
  List.iter
    (fun { Mote_machine.Devices.pc; cycles; value } ->
      put_be b 2 (pc land 0xffff);
      put_be b 6 (cycles land 0xffff_ffff_ffff);
      put_be b 2 (value land 0xffff))
    records;
  Buffer.contents b

let decode s =
  let len = String.length s in
  if len < header_bytes then
    if len >= 4 && String.sub s 0 4 <> magic then Result.Error Bad_magic
    else Result.Error (Truncated { expected = header_bytes; got = len })
  else if String.sub s 0 4 <> magic then Result.Error Bad_magic
  else
    let version = get_be s 4 2 in
    if version <> current_version then Result.Error (Unsupported_version version)
    else
      let count = get_be s 6 4 in
      let expected = header_bytes + (count * record_bytes) in
      if len <> expected then Result.Error (Truncated { expected; got = len })
      else
        let rec go i acc =
          if i < 0 then Result.Ok acc
          else
            let off = header_bytes + (i * record_bytes) in
            let r =
              {
                Mote_machine.Devices.pc = get_be s off 2;
                cycles = get_be s (off + 2) 6;
                value = get_be s (off + 8) 2;
              }
            in
            go (i - 1) (r :: acc)
        in
        go (count - 1) []

let decode_exn s = match decode s with Ok r -> r | Result.Error e -> raise (Error e)
