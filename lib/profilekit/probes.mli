(** Entry/exit timing probes — the only instrumentation Code Tomography
    needs.

    Each instrumented procedure gets a two-instruction prologue probe and a
    two-instruction probe before every [Ret]:
    {v
      in  r13, timer       ; timestamp
      out probe, r13       ; stream it to the logger
    v}
    r13 is reserved by the compiler, so no save/restore is needed.  The
    probes cost {!probe_cycles_per_invocation} cycles and a few flash words
    per procedure — orders of magnitude below full edge instrumentation
    (experiment T6).

    {!collect} converts the device's probe log into {e exclusive} per-
    invocation durations: nested callee windows are subtracted the way
    gprof does it, so a procedure's samples reflect its own code plus the
    fixed {!call_residual} per call it makes. *)

open Mote_isa

val scratch_reg : int

val instrument : ?skip:string list -> Asm.item list -> Asm.item list
(** Insert probes into every procedure except those in [skip] (default:
    the compiler's [__init]). *)

val probe_cycles_per_invocation : int
(** Dynamic cost added per invocation (entry probe + one exit probe). *)

val probe_flash_words_per_site : int

val window_correction : int
(** Cycles of an instrumented invocation that fall {e outside} the
    measured window (entry [in], exit [out], the [ret] and its taken
    penalty).  The timing model's analytic mean must subtract this. *)

val call_residual : int
(** Cycles attributed to the caller, per call to an instrumented callee,
    that are not part of the caller's own block costs: the call's taken
    penalty plus the callee-side probe halves and its [ret]. *)

type sample_set = (string * float array) list
(** Per procedure: exclusive duration (in cycles, after multiplying ticks
    back by the timer resolution) of each completed invocation, in
    execution order. *)

exception Unbalanced of string
(** Probe log does not nest properly (e.g. a run was cut mid-task). *)

val collect : program:Program.t -> devices:Mote_machine.Devices.t -> sample_set
(** Pair up the probe log of an instrumented binary.  Invocations still
    open at the end of the log are discarded. *)

val collect_records :
  program:Program.t ->
  resolution:int ->
  Mote_machine.Devices.probe_record list ->
  sample_set
(** {!collect} on an explicit record list — the shape a base station
    sees after the log crossed a (possibly fault-injecting, see
    {!Transport}) link.  [resolution] is the mote timer's cycles per
    tick. *)

val samples_for : sample_set -> string -> float array
(** Convenience accessor; [||] when the procedure has no samples. *)

type lossy_result = {
  samples : sample_set;  (** Windows whose records all survived. *)
  discarded : int;  (** Frames abandoned because a record was missing. *)
}

val collect_lossy :
  ?max_window:int ->
  program:Mote_isa.Program.t ->
  devices:Mote_machine.Devices.t ->
  unit ->
  lossy_result
(** Like {!collect}, but tolerant of records lost in flight (bounded
    buffers, unreliable uplinks — see {!Mote_machine.Devices.create}):
    instead of raising {!Unbalanced}, the collector resynchronizes.  An
    exit whose procedure is open deeper in the stack closes (and discards)
    the intervening frames; an exit with no matching open frame is
    skipped; an entry for an already-open procedure tears the whole stack
    (recursion being impossible, its previous exit must have been lost);
    any frame that was open while something was discarded is itself
    discarded, so surviving samples are exactly the fully-observed,
    fully-nested windows.  [max_window] (cycles) additionally discards
    windows longer than any plausible invocation — the signature of an
    exit pairing with a stale entry across a doubly-lost boundary.

    Caveat: if a nested invocation loses {e both} its records, nothing in
    the log betrays it and the enclosing window silently absorbs the
    child's time.  When {!Mote_machine.Devices.probes_dropped} exceeds
    what [discarded] accounts for, treat caller samples with
    suspicion (leaf procedures are unaffected). *)

val collect_lossy_records :
  ?max_window:int ->
  program:Program.t ->
  resolution:int ->
  Mote_machine.Devices.probe_record list ->
  lossy_result
(** {!collect_lossy} on an explicit record list — feed it the output of
    {!Transport.perturb} to model a full field deployment. *)

val collect_wire :
  program:Program.t -> resolution:int -> string -> sample_set
(** {!collect_records} on a serialized batch: the strict collector over
    the {!Wire} format.  A batch with a bad magic, an unknown format
    version or a truncated payload raises the typed {!Wire.Error} —
    unknown versions are {e rejected}, never guessed at. *)

val collect_lossy_wire :
  ?max_window:int -> program:Program.t -> resolution:int -> string -> lossy_result
(** {!collect_lossy_records} on a serialized batch.  Loss-tolerance is
    about records missing {e inside} a well-formed batch; a batch whose
    envelope itself is unreadable still raises {!Wire.Error} — the
    lossy collector resynchronizes across damage, it does not invent
    records from bytes it cannot parse. *)
