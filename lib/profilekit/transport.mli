(** Fault-injecting probe transport — deployment realism for the probe log.

    In the field the probe stream crosses a lossy, delaying radio link
    between the mote and the base station; what the estimator receives is
    not the pristine log {!Mote_machine.Devices.probe_log} accumulates in
    simulation.  This module perturbs a raw probe log with the classic
    telemetry pathologies, each independently configurable and each driven
    by its own {!Stats.Rng.stream} so that campaigns are byte-identical at
    any domain count and a fault stage's random pattern never shifts when
    another stage's rate changes:

    + clock skew and drift (timestamps scaled / cumulatively offset);
    + node-reboot truncation (a run of records lost at each reboot);
    + Gilbert–Elliott burst loss (two-state good/bad channel);
    + per-word Bernoulli drop (independent loss);
    + word corruption (random bit flips in the timestamp payload);
    + duplication (link-layer retransmit of an already-delivered word);
    + bounded reordering (records displaced by at most a fixed span).

    Stages apply in exactly that order — source clock first, then node,
    then channel, then link — and a stage whose rate is zero is the
    identity, so {!default} (all rates zero) returns the log unchanged.
    The perturbed log is meant to be fed to
    {!Probes.collect_lossy_records}, which resynchronizes across the
    damage; {!Tomo.Sanitize} then quarantines the windows the damage made
    infeasible. *)

type config = {
  skew : float;
      (** Relative clock-frequency error: each timestamp [v] becomes
          [round (v * (1 + skew))] (mod 2^16).  0 disables. *)
  drift : float;
      (** Cumulative clock drift in ticks added per record: record [i]
          gains [round (i * drift)] ticks.  0 disables. *)
  reboot : float;  (** Per-record probability of a node reboot. *)
  reboot_flush : int;
      (** Records lost at each reboot (the node's unflushed buffer). *)
  burst_enter : float;  (** Gilbert–Elliott: P(good → bad) per record. *)
  burst_exit : float;  (** Gilbert–Elliott: P(bad → good) per record. *)
  burst_drop : float;  (** Loss probability while the channel is bad. *)
  drop : float;  (** Independent per-record Bernoulli loss. *)
  corrupt : float;  (** Per-record probability of payload corruption. *)
  corrupt_bits : int;
      (** Bits flipped (uniformly among the 16) per corruption. *)
  duplicate : float;  (** Per-record probability of a duplicate delivery. *)
  reorder : float;  (** Per-record probability of displacement. *)
  reorder_span : int;
      (** Maximum forward displacement, in records, of a reordered word. *)
}

val default : config
(** All rates zero (identity transport); spans at sensible defaults
    ([reboot_flush] 8, [corrupt_bits] 2, [reorder_span] 4). *)

val field : ?drop:float -> ?corrupt:float -> unit -> config
(** [field ()] is the canonical "deployed in the field" preset used by the
    acceptance tests and the R13 sweep: 5% independent loss and 1% word
    corruption over {!default}. *)

val is_identity : config -> bool
(** True when every fault rate is zero — {!perturb} is then the identity
    on any log. *)

type stats = {
  sent : int;  (** Records offered to the transport. *)
  delivered : int;  (** Records in the perturbed log (duplicates included). *)
  dropped_drop : int;  (** Lost to independent Bernoulli loss. *)
  dropped_burst : int;  (** Lost inside Gilbert–Elliott bad states. *)
  dropped_reboot : int;  (** Lost to reboot truncation. *)
  reboots : int;
  corrupted : int;
  duplicated : int;
  reordered : int;  (** Records delivered out of arrival order. *)
}

val perturb :
  ?seed:int ->
  config ->
  Mote_machine.Devices.probe_record list ->
  Mote_machine.Devices.probe_record list * stats
(** Apply the configured faults to a probe log.  Deterministic in
    [(seed, config, log)]: every stage draws from its own
    [Stats.Rng.stream ~seed ~index:stage] and never consults the wall
    clock or global state (default seed 0). *)

val pp_stats : Format.formatter -> stats -> unit
