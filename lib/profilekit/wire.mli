(** Versioned serialization of probe-record batches — the fleet uplink
    format.

    A mote (or its gateway) ships probe records to the base station in
    batches; once batches cross process or deployment boundaries the
    format needs a header, or a fleet rolling out new firmware corrupts
    every old base station silently.  Every serialized batch therefore
    starts with a fixed magic and a format version:

    {v
      offset  size  field
      0       4     magic "CTPL"
      4       2     format version (big endian; currently 1)
      6       4     record count   (big endian)
      10      10/r  records: pc u16 | cycles u48 | value u16
    v}

    {!decode} accepts exactly the versions this build understands and
    rejects everything else with a {e typed} error — never a silent
    misparse: a batch from firmware vN+1 fails loudly as
    [Unsupported_version], and line noise fails as [Bad_magic] or
    [Truncated].  The strict and lossy collectors gain [_wire] entry
    points in {!Probes} that enforce this at ingest. *)

type error =
  | Bad_magic
      (** The first four bytes are not "CTPL" — not a probe batch. *)
  | Unsupported_version of int
      (** Well-formed header, but a format this build does not speak. *)
  | Truncated of { expected : int; got : int }
      (** Byte length disagrees with the header's record count. *)

exception Error of error

val current_version : int
(** The version {!encode} writes — 1. *)

val magic : string
(** ["CTPL"]. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val encode : Mote_machine.Devices.probe_record list -> string
(** Serialize a batch under {!current_version}.  [decode (encode b)]
    is [Ok b] for any batch whose fields fit the wire widths (pc and
    value are 16-bit on the mote already; cycles fits 48 bits for any
    simulated horizon). *)

val decode : string -> (Mote_machine.Devices.probe_record list, error) result
(** Parse a serialized batch; total — all failures land in [Error]. *)

val decode_exn : string -> Mote_machine.Devices.probe_record list
(** {!decode}, raising {!Error} — for callers already inside an error
    boundary (the ctomo CLI's [guarded], the fleet ingest loop). *)
