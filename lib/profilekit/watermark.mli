(** Cost watermarking: make equal-cost branch arms timing-distinguishable
    during profiling.

    When {!Tomo.Identify} flags a branch as ambiguous, end-to-end timing
    cannot estimate it because both outcomes cost the same.  The fix is a
    profiling-build-only transformation: route the branch's taken edge
    through a small delay stub ([nop; jmp target]), skewing that outcome by
    a few cycles so the timing mixture separates.  The production binary —
    the one the placement pass rewrites — never carries the stub; only the
    instrumented profiling image does, and the estimator models the
    instrumented CFG, so no correction is needed anywhere.

    Branch order is preserved (stubs add a jump, not a branch), so
    parameter vectors transfer between the watermarked and original
    binaries index-by-index, exactly as with the timing probes. *)

open Mote_isa

val stub_delay_cycles : rank:int -> int
(** Extra cycles a watermarked taken edge costs.  The [rank]-th
    watermarked branch of a procedure (0-based, address order) gets a
    stub of 2{^rank} nops plus the stub jump, so any combination of taken
    outcomes shifts the path cost by a distinct amount — multiple
    mutually-colliding branches separate simultaneously. *)

val instrument : sites:(string * int) list -> Asm.item list -> Asm.item list
(** [sites] are [(procedure, branch block id)] pairs in the coordinates of
    the {e assembled} input (as produced by {!Edges.branch_order} /
    {!Tomo.Identify.ambiguous_blocks}).  Branches not listed are left
    untouched.  Unknown sites are ignored. *)
