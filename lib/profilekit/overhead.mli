(** Static instrumentation-overhead accounting for experiment T6.

    Dynamic (cycle) overhead comes from actually running each binary under
    the same environment seed; that orchestration lives in the core
    pipeline.  Here we account for what can be read off the binaries:
    flash occupancy and the RAM the instrumentation needs. *)

open Mote_isa

type report = {
  flash_words : int;
  flash_overhead_words : int;  (** vs. the base binary. *)
  flash_overhead_pct : float;
  ram_words : int;  (** Buffers/counters the scheme needs. *)
}

val probe_ram_words : int
(** The tomography log buffer: probes stream (pc, tick) pairs; motes batch
    them in a small fixed buffer before shipping over the radio/UART. *)

val of_binaries : base:Program.t -> instrumented:Program.t -> ram_words:int -> report

val probes_report : base:Program.t -> instrumented:Program.t -> report
val edges_report : base:Program.t -> instrumented:Program.t -> report
(** RAM = one word per edge counter, derived from the base binary. *)
