open Mote_isa

type report = {
  flash_words : int;
  flash_overhead_words : int;
  flash_overhead_pct : float;
  ram_words : int;
}

let probe_ram_words = 16

let of_binaries ~base ~instrumented ~ram_words =
  let base_words = Program.flash_words base in
  let words = Program.flash_words instrumented in
  {
    flash_words = words;
    flash_overhead_words = words - base_words;
    flash_overhead_pct =
      (if base_words = 0 then 0.0
       else 100.0 *. float_of_int (words - base_words) /. float_of_int base_words);
    ram_words;
  }

let probes_report ~base ~instrumented =
  of_binaries ~base ~instrumented ~ram_words:probe_ram_words

let edges_report ~base ~instrumented =
  of_binaries ~base ~instrumented ~ram_words:(Edges.num_counters base)
