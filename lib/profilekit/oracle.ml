module Machine = Mote_machine.Machine
module Program = Mote_isa.Program
module Cfg = Cfgir.Cfg

type site = { proc : string; block : int }

type t = {
  machine : Machine.t;
  cfgs : (string * Cfg.t) list;
  sites : (int, site) Hashtbl.t; (* branch pc -> site *)
  taken : (string * int, int) Hashtbl.t;
  fall : (string * int, int) Hashtbl.t;
  mutable total : int;
}

let attach machine =
  let program = Machine.program machine in
  let cfgs = List.map (fun cfg -> (cfg.Cfg.proc.Program.name, cfg)) (Cfg.of_program program) in
  let sites = Hashtbl.create 64 in
  List.iter
    (fun (name, cfg) ->
      List.iter
        (fun id ->
          let block = Cfg.block cfg id in
          Hashtbl.replace sites block.Cfg.last { proc = name; block = id })
        (Cfg.branch_blocks cfg))
    cfgs;
  let t =
    { machine; cfgs; sites; taken = Hashtbl.create 64; fall = Hashtbl.create 64; total = 0 }
  in
  Machine.set_branch_hook machine
    (Some
       (fun ~pc ~taken ->
         match Hashtbl.find_opt t.sites pc with
         | None -> ()
         | Some { proc; block } ->
             t.total <- t.total + 1;
             let tbl = if taken then t.taken else t.fall in
             let key = (proc, block) in
             Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))));
  t

let detach t = Machine.set_branch_hook t.machine None

let cfg_of t proc =
  match List.assoc_opt proc t.cfgs with
  | Some cfg -> cfg
  | None -> invalid_arg (Printf.sprintf "Oracle: unknown procedure %S" proc)

let counts t ~proc =
  let cfg = cfg_of t proc in
  List.map
    (fun id ->
      let get tbl = Option.value ~default:0 (Hashtbl.find_opt tbl (proc, id)) in
      (id, (get t.taken, get t.fall)))
    (Cfg.branch_blocks cfg)

let thetas t ~proc =
  counts t ~proc
  |> List.map (fun (id, (tk, fl)) ->
         let total = tk + fl in
         (id, if total = 0 then 0.5 else float_of_int tk /. float_of_int total))

let theta_vector t ~proc = Array.of_list (List.map snd (thetas t ~proc))

let total_branches t = t.total

let freq t ~proc ~invocations =
  let cfg = cfg_of t proc in
  let counts =
    counts t ~proc
    |> List.map (fun (id, (tk, fl)) -> (id, (float_of_int tk, float_of_int fl)))
  in
  Flowcount.freq_of_branch_counts cfg ~invocations ~counts
