open Mote_isa

let jmp_cycles = Isa.base_cost (Isa.Jmp 0) + Isa.taken_penalty

let stub_delay_cycles ~rank = jmp_cycles + (1 lsl rank)

let stub_label j = Printf.sprintf "__wm_stub_%d" j

let instrument ~sites items =
  (* The j-th Br instruction in item order corresponds to the j-th entry of
     Edges.branch_order on the assembled program, so translate sites into
     global branch indices first.  Each watermarked branch in a procedure
     gets a distinct power-of-two nop count: any subset of taken outcomes
     then shifts the path cost by a unique amount, so previously-colliding
     paths separate no matter how many branches were ambiguous. *)
  let assembled = Asm.assemble items in
  let order = Edges.branch_order assembled in
  let wanted : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let rank_within : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun j ((proc, _) as site) ->
      if List.mem site sites then begin
        let rank = Option.value ~default:0 (Hashtbl.find_opt rank_within proc) in
        Hashtbl.replace rank_within proc (rank + 1);
        Hashtbl.replace wanted j rank
      end)
    order;
  let j = ref 0 in
  let rec go pending = function
    | [] -> List.concat (List.rev pending)
    | (Asm.Proc _ as item) :: rest -> List.concat (List.rev pending) @ (item :: go [] rest)
    | (Asm.I (Isa.Br (cond, target)) as item) :: rest -> (
        let idx = !j in
        incr j;
        match Hashtbl.find_opt wanted idx with
        | Some rank ->
            let stub =
              (Asm.Label (stub_label idx) :: List.init (1 lsl rank) (fun _ -> Asm.I Isa.Nop))
              @ [ Asm.I (Isa.Jmp target) ]
            in
            Asm.I (Isa.Br (cond, stub_label idx)) :: go (stub :: pending) rest
        | None -> item :: go pending rest)
    | item :: rest -> item :: go pending rest
  in
  go [] items
