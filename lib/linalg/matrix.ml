type t = float array array

let make r c v =
  if r < 0 || c < 0 then invalid_arg "Matrix.make: negative size";
  Array.init r (fun _ -> Array.make c v)

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0))

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then [||]
  else begin
    let c = Array.length rows.(0) in
    Array.iter
      (fun row -> if Array.length row <> c then invalid_arg "Matrix.of_rows: ragged rows")
      rows;
    Array.map Array.copy rows
  end

let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)
let get m i j = m.(i).(j)
let set m i j v = m.(i).(j) <- v
let copy m = Array.map Array.copy m

let transpose m =
  let r = rows m and c = cols m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let zip_with f a b =
  if rows a <> rows b || cols a <> cols b then invalid_arg "Matrix: shape mismatch";
  Array.mapi (fun i row -> Array.mapi (fun j x -> f x b.(i).(j)) row) a

let add a b = zip_with ( +. ) a b
let sub a b = zip_with ( -. ) a b
let scale k m = Array.map (Array.map (fun x -> k *. x)) m
let map f m = Array.map (Array.map f) m

let mul a b =
  if cols a <> rows b then invalid_arg "Matrix.mul: inner dimensions differ";
  let n = rows a and m = cols b and k = cols a in
  Array.init n (fun i ->
      Array.init m (fun j ->
          let acc = ref 0.0 in
          for t = 0 to k - 1 do
            acc := !acc +. (a.(i).(t) *. b.(t).(j))
          done;
          !acc))

let mat_vec m v =
  if cols m <> Array.length v then invalid_arg "Matrix.mat_vec: size mismatch";
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun j x -> acc := !acc +. (x *. v.(j))) row;
      !acc)
    m

let vec_mat v m =
  if rows m <> Array.length v then invalid_arg "Matrix.vec_mat: size mismatch";
  Array.init (cols m) (fun j ->
      let acc = ref 0.0 in
      for i = 0 to rows m - 1 do
        acc := !acc +. (v.(i) *. m.(i).(j))
      done;
      !acc)

let max_abs m =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc x -> Stdlib.max acc (abs_float x)) acc row)
    0.0 m

let equal ?(eps = 1e-9) a b =
  rows a = rows b && cols a = cols b && max_abs (sub a b) <= eps

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun row ->
      Format.fprintf fmt "[";
      Array.iteri
        (fun j x -> Format.fprintf fmt (if j = 0 then "%8.4f" else " %8.4f") x)
        row;
      Format.fprintf fmt "]@,")
    m;
  Format.fprintf fmt "@]"
