exception Singular

(* LU decomposition with partial pivoting, in place on a copy.
   Returns (lu, perm, sign). *)
let lu_decompose a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Solve: matrix must be square";
  let lu = Matrix.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Pivot selection. *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if abs_float lu.(i).(k) > abs_float lu.(!pivot).(k) then pivot := i
    done;
    if !pivot <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!pivot);
      lu.(!pivot) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tp;
      sign := -. !sign
    end;
    if abs_float lu.(k).(k) < 1e-12 then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = lu.(i).(k) /. lu.(k).(k) in
      lu.(i).(k) <- factor;
      for j = k + 1 to n - 1 do
        lu.(i).(j) <- lu.(i).(j) -. (factor *. lu.(k).(j))
      done
    done
  done;
  (lu, perm, !sign)

let back_substitute lu perm b =
  let n = Array.length b in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward: L y = P b (unit diagonal). *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done
  done;
  (* Backward: U x = y. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. lu.(i).(i)
  done;
  x

let lu_solve a b =
  if Matrix.rows a <> Array.length b then invalid_arg "Solve.lu_solve: size mismatch";
  let lu, perm, _ = lu_decompose a in
  back_substitute lu perm b

let solve_many a b =
  let lu, perm, _ = lu_decompose a in
  let cols_b = Matrix.cols b in
  let n = Matrix.rows b in
  let out = Matrix.make n cols_b 0.0 in
  for j = 0 to cols_b - 1 do
    let col = Array.init n (fun i -> b.(i).(j)) in
    let x = back_substitute lu perm col in
    Array.iteri (fun i v -> out.(i).(j) <- v) x
  done;
  out

let inverse a = solve_many a (Matrix.identity (Matrix.rows a))

let determinant a =
  match lu_decompose a with
  | lu, _, sign ->
      let n = Matrix.rows a in
      let acc = ref sign in
      for i = 0 to n - 1 do
        acc := !acc *. lu.(i).(i)
      done;
      !acc
  | exception Singular -> 0.0

let least_squares a b =
  let at = Matrix.transpose a in
  let ata = Matrix.mul at a in
  let n = Matrix.rows ata in
  for i = 0 to n - 1 do
    ata.(i).(i) <- ata.(i).(i) +. 1e-9
  done;
  let atb = Matrix.mat_vec at b in
  lu_solve ata atb
