(** Projection onto the probability simplex and related clamps.

    The moment-matching estimator performs gradient steps on branch
    probabilities; after each step the parameters must be pulled back into
    the feasible set (each probability in [eps, 1-eps], sibling outgoing
    probabilities summing to 1). *)

val clamp : ?eps:float -> float -> float
(** Clamp a single probability into [eps, 1 − eps] (default eps 1e-6). *)

val project : float array -> float array
(** Euclidean projection onto the simplex {x ≥ 0, Σx = 1} (Duchi et al.
    2008). Returns a fresh array. *)

val normalize : float array -> float array
(** Rescale non-negative weights to sum to 1; uniform if all zero. *)
