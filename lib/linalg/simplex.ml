let clamp ?(eps = 1e-6) p = Stdlib.max eps (Stdlib.min (1.0 -. eps) p)

let project v =
  let n = Array.length v in
  if n = 0 then invalid_arg "Simplex.project: empty vector";
  let sorted = Array.copy v in
  Array.sort (fun a b -> compare b a) sorted;
  (* Find rho = max { j : sorted.(j) - (cumsum - 1)/(j+1) > 0 }. *)
  let cumsum = ref 0.0 in
  let theta = ref 0.0 in
  let rho = ref (-1) in
  Array.iteri
    (fun j x ->
      cumsum := !cumsum +. x;
      let t = (!cumsum -. 1.0) /. float_of_int (j + 1) in
      if x -. t > 0.0 then begin
        rho := j;
        theta := t
      end)
    sorted;
  if !rho < 0 then Array.make n (1.0 /. float_of_int n)
  else Array.map (fun x -> Stdlib.max 0.0 (x -. !theta)) v

let normalize w =
  let total = Array.fold_left ( +. ) 0.0 w in
  let n = Array.length w in
  if n = 0 then invalid_arg "Simplex.normalize: empty vector";
  if total <= 0.0 then Array.make n (1.0 /. float_of_int n)
  else Array.map (fun x -> x /. total) w
