(** Linear solvers: LU with partial pivoting, inverse, least squares.

    These back the absorbing-chain computations ((I - Q)⁻¹) and the
    method-of-moments estimator (normal equations). *)

exception Singular
(** Raised when a factorization meets a (numerically) zero pivot. *)

val lu_solve : Matrix.t -> float array -> float array
(** [lu_solve a b] solves [a x = b] for square [a].  @raise Singular. *)

val solve_many : Matrix.t -> Matrix.t -> Matrix.t
(** [solve_many a b] solves [a X = b] column-wise.  @raise Singular. *)

val inverse : Matrix.t -> Matrix.t
(** @raise Singular on singular input. *)

val determinant : Matrix.t -> float

val least_squares : Matrix.t -> float array -> float array
(** Minimizes ‖A x − b‖₂ via Tikhonov-damped normal equations
    (ridge 1e-9) — adequate for the small, well-scaled systems here. *)
