(** Small dense matrices over floats.

    Sized for CFG-scale problems (tens of states), so the implementation
    favours clarity: row-major [float array array], O(n³) factorizations. *)

type t = float array array

val make : int -> int -> float -> t
val identity : int -> t
val of_rows : float array array -> t
(** Validates rectangularity and copies. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val mat_vec : t -> float array -> float array
val vec_mat : float array -> t -> float array

val map : (float -> float) -> t -> t

val max_abs : t -> float
(** Largest absolute entry; 0 for empty matrices. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
