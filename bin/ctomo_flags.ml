(* The shared Cmdliner vocabulary for ctomo subcommands.

   Every subcommand that profiles, estimates or places speaks the same
   flag set — workload selection, timing model, link-fault model,
   robustness knobs, and the parallelism dial.  Defining each term once
   here keeps names, defaults and --help texts identical across
   profile/place/report/fleet; a cram test (test/cli/help.t) holds the
   subcommands to it. *)

open Cmdliner
module P = Codetomo.Pipeline

let workload_conv =
  let parse s =
    match Workloads.find s with
    | w -> Ok w
    | exception Not_found ->
        Error
          (`Msg
            (Printf.sprintf "unknown workload %S (try: %s)" s
               (String.concat ", " (List.map (fun w -> w.Workloads.name) Workloads.all))))
  in
  Arg.conv (parse, fun fmt w -> Format.pp_print_string fmt w.Workloads.name)

let workload_arg =
  Arg.(
    required
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to operate on.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Environment seed.")

let resolution_arg =
  Arg.(
    value & opt int 1
    & info [ "resolution" ] ~docv:"CYCLES" ~doc:"Timer resolution in cycles per tick.")

let jitter_arg =
  Arg.(
    value & opt float 0.0
    & info [ "jitter" ] ~docv:"SIGMA" ~doc:"Gaussian timer jitter in cycles.")

let horizon_arg =
  Arg.(
    value & opt (some int) None
    & info [ "horizon" ] ~docv:"CYCLES" ~doc:"Simulated cycles (default: workload's).")

let method_conv =
  let parse = function
    | "em" -> Ok Tomo.Estimator.Em
    | "moments" -> Ok Tomo.Estimator.Moments
    | "naive" -> Ok Tomo.Estimator.Naive
    | s -> Error (`Msg (Printf.sprintf "unknown method %S (em|moments|naive)" s))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Tomo.Estimator.method_name m))

let method_arg =
  Arg.(
    value
    & opt method_conv Tomo.Estimator.Em
    & info [ "method" ] ~docv:"METHOD" ~doc:"Estimator: em, moments or naive.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "domains" ] ~docv:"N"
        ~doc:
          "Domains for the parallel stages (per-procedure estimation, the \
           four layout evaluations, bootstrap CIs).  Defaults to \
           $(b,CODETOMO_DOMAINS), else the recommended domain count.  \
           Output is bit-identical at any value.")

(* Every parallel task derives its randomness from its own key (workload
   seed or a pre-split stream), so -j changes only wall-clock time,
   never a number. *)
let with_pool domains f =
  let pool = Par.Pool.create ?domains () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

(* Operational failures (unreadable files, infeasible requests, malformed
   inputs) become a one-line message and exit 1 instead of a backtrace. *)
let guarded f =
  try f () with
  | Invalid_argument msg | Sys_error msg | Failure msg ->
      Printf.eprintf "ctomo: %s\n%!" msg;
      exit 1
  | Cfgir.Profile_io.Format_error msg ->
      Printf.eprintf "ctomo: %s\n%!" msg;
      exit 1
  | Profilekit.Wire.Error e ->
      Printf.eprintf "ctomo: %s\n%!" (Profilekit.Wire.error_to_string e);
      exit 1

(* --- link-fault and robustness flags (profile / place / report / fleet) --- *)

let loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P" ~doc:"Independent per-record probe loss probability on the uplink.")

let corrupt_arg =
  Arg.(
    value & opt float 0.0
    & info [ "corrupt" ] ~docv:"P" ~doc:"Per-record timestamp bit-corruption probability.")

let duplicate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "duplicate" ] ~docv:"P" ~doc:"Per-record duplication probability.")

let reorder_arg =
  Arg.(
    value & opt float 0.0
    & info [ "reorder" ] ~docv:"P" ~doc:"Per-record bounded-reordering probability.")

let faults_of loss corrupt duplicate reorder =
  if loss = 0.0 && corrupt = 0.0 && duplicate = 0.0 && reorder = 0.0 then None
  else
    Some
      {
        Profilekit.Transport.default with
        Profilekit.Transport.drop = loss;
        corrupt;
        duplicate;
        reorder;
      }

let faults_term =
  Term.(const faults_of $ loss_arg $ corrupt_arg $ duplicate_arg $ reorder_arg)

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:"Quarantine infeasible timings (cost envelope + MAD) before estimation.")

let robust_arg =
  Arg.(
    value & flag
    & info [ "robust" ]
        ~doc:"Contamination-robust EM: add a uniform outlier mixture component.")

let min_samples_arg =
  Arg.(
    value & opt int 1
    & info [ "min-samples" ] ~docv:"N"
        ~doc:
          "Reject procedures with fewer surviving samples; rejected procedures fall \
           back to the uniform prior and keep their natural layout.")

let sanitize_of flag = if flag then Some Tomo.Sanitize.default else None
let outlier_of flag = if flag then Some Tomo.Em.default_outlier else None

let config_of seed resolution jitter horizon faults =
  {
    P.seed;
    horizon;
    timer_resolution = resolution;
    timer_jitter = jitter;
    prediction = Mote_machine.Machine.Predict_not_taken;
    faults;
  }

let print_transport run =
  match run.P.transport with
  | None -> ()
  | Some ts ->
      Printf.printf "link: %s; %d windows discarded\n\n"
        (Format.asprintf "%a" Profilekit.Transport.pp_stats ts)
        run.P.discarded

let theta_str theta =
  "[" ^ String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") theta)) ^ "]"
