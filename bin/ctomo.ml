(* ctomo: command-line front end for the Code Tomography pipeline.

   Subcommands:
     list      enumerate bundled workloads
     inspect   static structure of a workload (source, CFGs)
     dot       Graphviz CFG of one procedure
     trace     cycle-annotated instruction trace of a procedure
     profile   run the probe-instrumented binary and estimate branch
               probabilities, comparing against the simulation oracle
               (--save-profile persists the result)
     place     full pipeline: profile, estimate, place, evaluate layouts
               (--profile reuses a saved profile)
     report    estimates with confidence intervals + fit checks + layout +
               energy, in one shot
     fleet     simulate an N-node deployment streaming probe batches over
               lossy links; fuse per-node online estimates and place
     overhead  instrumentation cost comparison (probes vs edge counters)
     asm       assemble a .s file; hexdump, disassemble or run it

   Shared flags (workload/timing/faults/robustness/-j) live in
   Ctomo_flags so every subcommand documents them identically. *)

open Cmdliner
open Ctomo_flags
module P = Codetomo.Pipeline
module Cfg = Cfgir.Cfg
module Program = Mote_isa.Program

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun w ->
        Printf.printf "%-10s %s (%d tasks, horizon %d cycles)\n" w.Workloads.name
          w.Workloads.description (List.length w.Workloads.tasks) w.Workloads.horizon)
      Workloads.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List bundled workloads") Term.(const run $ const ())

(* --- inspect --- *)

let inspect_cmd =
  let run w =
    let c = Workloads.compiled w in
    let program = c.Mote_lang.Compile.program in
    Printf.printf "workload %s: %d flash words\n\n" w.Workloads.name
      (Program.flash_words program);
    Format.printf "%a@." Mote_lang.Ast.pp_program w.Workloads.program;
    List.iter
      (fun cfg ->
        if cfg.Cfg.proc.Program.name <> Mote_lang.Compile.init_proc_name then
          Format.printf "%a@." Cfg.pp cfg)
      (Cfg.of_program program)
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show a workload's source and control-flow graphs")
    Term.(const run $ workload_arg)

(* --- dot --- *)

let dot_cmd =
  let proc_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "p"; "proc" ] ~docv:"PROC" ~doc:"Procedure name.")
  in
  let run w proc =
    let c = Workloads.compiled w in
    match Cfg.of_proc_name c.Mote_lang.Compile.program proc with
    | cfg -> print_string (Cfg.to_dot cfg)
    | exception Not_found ->
        Printf.eprintf "no procedure %S in %s\n" proc w.Workloads.name;
        exit 1
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a Graphviz CFG for one procedure")
    Term.(const run $ workload_arg $ proc_arg)

(* --- profile --- *)

let save_profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-profile" ] ~docv:"FILE"
        ~doc:"Write the estimated edge-frequency profiles to FILE (feed it back with 'place --profile').")

let profile_cmd =
  let run w seed resolution jitter horizon method_ save domains faults sanitize robust
      min_samples =
    guarded @@ fun () ->
    with_pool domains @@ fun pool ->
    let config = config_of seed resolution jitter horizon faults in
    let run = P.profile ~config w in
    Printf.printf "profiled %s: %d busy cycles, %d tasks dropped\n\n" w.Workloads.name
      run.P.node_stats.Mote_os.Node.busy_cycles
      run.P.node_stats.Mote_os.Node.tasks_dropped;
    print_transport run;
    let estimations =
      P.estimate ~ctx:(P.Ctx.of_pool pool) ~method_ ?sanitize:(sanitize_of sanitize)
        ?outlier:(outlier_of robust) ~min_samples run
    in
    List.iter
      (fun e ->
        let samples = List.assoc e.P.proc run.P.samples in
        if Array.length samples = 0 then
          Printf.printf "%s: no invocations observed (%s)\n\n" e.P.proc
            (Tomo.Health.to_string e.P.health)
        else begin
          let s = Stats.Summary.of_array samples in
          Printf.printf "%s: %d samples, mean window %.1f cycles (sd %.1f)\n" e.P.proc
            e.P.sample_count (Stats.Summary.mean s) (Stats.Summary.stddev s);
          Printf.printf "  estimated theta: %s\n" (theta_str e.P.estimate.Tomo.Estimator.theta);
          Printf.printf "  oracle theta:    %s\n" (theta_str e.P.truth);
          Printf.printf "  MAE: %.4f%s\n" e.P.mae
            (if e.P.estimate.Tomo.Estimator.truncated_paths then
               "  (path enumeration truncated)"
             else "");
          (match e.P.sanitize_report with
          | Some r ->
              Printf.printf "  sanitize: %s\n" (Format.asprintf "%a" Tomo.Sanitize.pp_report r)
          | None -> ());
          if not (Tomo.Health.is_healthy e.P.health) then
            Printf.printf "  health: %s\n" (Tomo.Health.to_string e.P.health);
          print_newline ()
        end)
      estimations;
    match save with
    | None -> ()
    | Some path ->
        Cfgir.Profile_io.save ~path (P.estimated_freqs run estimations);
        Printf.printf "profiles written to %s\n" path
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Profile a workload and estimate its branch probabilities")
    Term.(
      const run $ workload_arg $ seed_arg $ resolution_arg $ jitter_arg $ horizon_arg
      $ method_arg $ save_profile_arg $ domains_arg $ faults_term $ sanitize_arg
      $ robust_arg $ min_samples_arg)

(* --- place --- *)

let load_profile_arg =
  Arg.(
    value
    & opt (some non_dir_file) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:"Use a saved profile (from 'profile --save-profile') for the tomography layout instead of re-estimating.")

let place_cmd =
  let run w seed resolution jitter horizon method_ profile_file domains faults sanitize
      robust min_samples =
    guarded @@ fun () ->
    with_pool domains @@ fun pool ->
    let config = config_of seed resolution jitter horizon faults in
    let run = P.profile ~config w in
    print_transport run;
    let variants =
      match profile_file with
      | None ->
          P.compare_layouts ~ctx:(P.Ctx.of_pool pool) ~method_
            ?sanitize:(sanitize_of sanitize) ?outlier:(outlier_of robust) ~min_samples
            run
      | Some path ->
          let original = P.natural_binary run in
          let lookup name =
            match Cfg.of_proc_name original name with
            | cfg -> Some cfg
            | exception Not_found -> None
          in
          let profiles = Cfgir.Profile_io.load ~path ~lookup in
          let placed =
            P.placed_binary run ~profiles ~algorithm:Layout.Algorithms.pettis_hansen
          in
          let eval_config = { config with P.seed = config.P.seed + 1000 } in
          Par.Pool.map_list pool
            (fun (label, binary) -> P.run_binary ~config:eval_config w binary ~label)
            [ ("natural", original); ("saved-profile", placed) ]
    in
    let rows =
      List.map
        (fun v ->
          [
            v.P.label;
            string_of_int v.P.taken_transfers;
            Report.Table.fmt_pct v.P.taken_rate;
            string_of_int v.P.busy_cycles;
            string_of_int v.P.flash_words;
          ])
        variants
    in
    print_endline
      (Report.Table.render
         ~headers:[ "layout"; "taken"; "rate"; "busy cycles"; "flash(w)" ]
         rows)
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:"Run the full pipeline and compare layouts (natural/worst/tomography/perfect)")
    Term.(
      const run $ workload_arg $ seed_arg $ resolution_arg $ jitter_arg $ horizon_arg
      $ method_arg $ load_profile_arg $ domains_arg $ faults_term $ sanitize_arg
      $ robust_arg $ min_samples_arg)

(* --- overhead --- *)

let overhead_cmd =
  let run w seed resolution jitter horizon =
    guarded @@ fun () ->
    let config = config_of seed resolution jitter horizon None in
    let c = Workloads.compiled w in
    let base = c.Mote_lang.Compile.program in
    let probes =
      Mote_isa.Asm.assemble (Profilekit.Probes.instrument c.Mote_lang.Compile.items)
    in
    let edges =
      Mote_isa.Asm.assemble (Profilekit.Edges.instrument c.Mote_lang.Compile.items)
    in
    let pr = Profilekit.Overhead.probes_report ~base ~instrumented:probes in
    let er = Profilekit.Overhead.edges_report ~base ~instrumented:edges in
    let busy binary = (P.run_binary ~config w binary ~label:"x").P.busy_cycles in
    let base_busy = busy base in
    let row label flash extra ram b =
      [
        label;
        string_of_int flash;
        string_of_int extra;
        string_of_int ram;
        string_of_int b;
        Printf.sprintf "%.1f%%" (100.0 *. float_of_int (b - base_busy) /. float_of_int base_busy);
      ]
    in
    print_endline
      (Report.Table.render
         ~headers:[ "instr."; "flash(w)"; "+flash"; "ram(w)"; "busy"; "+busy%" ]
         [
           row "none" (Program.flash_words base) 0 0 base_busy;
           row "probes" pr.Profilekit.Overhead.flash_words
             pr.Profilekit.Overhead.flash_overhead_words pr.Profilekit.Overhead.ram_words
             (busy probes);
           row "edges" er.Profilekit.Overhead.flash_words
             er.Profilekit.Overhead.flash_overhead_words er.Profilekit.Overhead.ram_words
             (busy edges);
         ])
  in
  Cmd.v
    (Cmd.info "overhead" ~doc:"Compare instrumentation overheads on one workload")
    Term.(const run $ workload_arg $ seed_arg $ resolution_arg $ jitter_arg $ horizon_arg)

(* --- trace --- *)

let trace_cmd =
  let proc_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "p"; "proc" ] ~docv:"PROC" ~doc:"Procedure to trace.")
  in
  let count_arg =
    Arg.(value & opt int 1 & info [ "n" ] ~docv:"N" ~doc:"Invocations to trace.")
  in
  let run w proc n seed =
    guarded @@ fun () ->
    let c = Workloads.compiled w in
    let program = c.Mote_lang.Compile.program in
    if Program.find_proc program proc = None then begin
      Printf.eprintf "no procedure %S in %s\n" proc w.Workloads.name;
      exit 1
    end;
    let devices = Mote_machine.Devices.create () in
    let env = Env.create { (w.Workloads.env_config) with Env.seed } in
    Env.attach env devices;
    let machine = Mote_machine.Machine.create ~program ~devices () in
    ignore (Mote_machine.Machine.run_proc machine Mote_lang.Compile.init_proc_name);
    Mote_machine.Machine.set_trace_hook machine
      (Some
         (fun ~pc ~instr ~cycles ->
           Printf.printf "%8d  %4d: %s\n" cycles pc
             (Mote_isa.Isa.to_string string_of_int instr)));
    for i = 1 to n do
      Printf.printf "--- invocation %d ---\n" i;
      ignore (Mote_machine.Machine.run_proc machine proc)
    done
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print a cycle-annotated instruction trace of a procedure's invocations")
    Term.(const run $ workload_arg $ proc_arg $ count_arg $ seed_arg)

(* --- report --- *)

let report_cmd =
  let run w seed resolution jitter horizon domains faults sanitize robust min_samples =
    guarded @@ fun () ->
    with_pool domains @@ fun pool ->
    let config = config_of seed resolution jitter horizon faults in
    let run = P.profile ~config w in
    Printf.printf "=== %s: %s ===\n\n" w.Workloads.name w.Workloads.description;
    print_transport run;
    let sanitize = sanitize_of sanitize and outlier = outlier_of robust in
    (* Estimation with uncertainty and fit diagnostics.  Each procedure
       gets its own pre-split bootstrap stream, so the fan-out order
       (and hence -j) cannot change a single interval. *)
    let procs = w.Workloads.profiled in
    let rng = Stats.Rng.create (seed + 31) in
    let streams = Stats.Rng.split_n rng (List.length procs) in
    let per_proc =
      Par.Pool.map_list pool
        (fun (i, proc) ->
          let raw = List.assoc proc run.P.samples in
          let model = P.model_of run proc in
          let floor = Stdlib.max 1 min_samples in
          if Array.length raw = 0 then
            ( proc,
              raw,
              None,
              Tomo.Health.judge ~min_samples:floor ~converged:true ~sample_count:0 (),
              None )
          else
            let paths = Tomo.Paths.enumerate ~max_paths:20_000 model in
            let samples, sreport =
              match sanitize with
              | None -> (raw, None)
              | Some sc ->
                  let kept, r =
                    Tomo.Sanitize.run ~config:sc ~min_cost:(Tomo.Paths.min_cost paths)
                      ~max_cost:(Tomo.Paths.max_cost paths)
                      ~sigma:(P.noise_sigma config) raw
                  in
                  (kept, Some r)
            in
            let n = Array.length samples in
            if n < floor then
              ( proc,
                samples,
                sreport,
                Tomo.Health.judge ~min_samples:floor ~converged:true ~sample_count:n (),
                None )
            else
              let est =
                Tomo.Em.estimate ~sigma:(P.noise_sigma config) ?outlier paths ~samples
              in
              let ci =
                Tomo.Confidence.bootstrap ~replicates:30 streams.(i) paths ~samples
                  ~point:est.Tomo.Em.theta
              in
              let fit =
                Tomo.Fit.check ~sigma:est.Tomo.Em.sigma paths ~theta:est.Tomo.Em.theta
                  ~samples
              in
              (* The verdict folds in all three degradation signals: the
                 sample floor, EM convergence, and how wide the widest
                 bootstrap interval came out. *)
              let width =
                Array.fold_left
                  (fun acc itv -> Stdlib.max acc (Tomo.Confidence.width itv))
                  0.0 ci.Tomo.Confidence.intervals
              in
              let health =
                Tomo.Health.judge ~min_samples:floor ~converged:est.Tomo.Em.converged
                  ~sample_count:n ()
                |> Tomo.Health.apply_ci_width ~width
              in
              (proc, samples, sreport, health, Some (ci, fit)))
        (List.mapi (fun i proc -> (i, proc)) procs)
    in
    List.iter
      (fun (proc, samples, sreport, health, result) ->
        match result with
        | None -> Printf.printf "%s: %s\n\n" proc (Tomo.Health.to_string health)
        | Some (ci, fit) ->
            let truth = List.assoc proc run.P.oracle_thetas in
            Printf.printf "%s (%d samples):\n" proc (Array.length samples);
            Array.iteri
              (fun k i ->
                Printf.printf
                  "  theta[%d] = %.3f  [%.3f, %.3f]   (oracle %.3f)\n" k
                  i.Tomo.Confidence.point i.Tomo.Confidence.lo i.Tomo.Confidence.hi
                  truth.(k))
              ci.Tomo.Confidence.intervals;
            (match sreport with
            | Some r ->
                Printf.printf "  sanitize: %s\n"
                  (Format.asprintf "%a" Tomo.Sanitize.pp_report r)
            | None -> ());
            if not (Tomo.Health.is_healthy health) then
              Printf.printf "  health: %s\n" (Tomo.Health.to_string health);
            Printf.printf "  fit: %s -> %s\n\n"
              (Format.asprintf "%a" Tomo.Fit.pp fit)
              (if Tomo.Fit.acceptable fit then "acceptable" else "SUSPECT"))
      per_proc;
    (* Layout and energy consequences. *)
    let variants =
      P.compare_layouts ~ctx:(P.Ctx.of_pool pool) ?sanitize ?outlier ~min_samples run
    in
    let horizon_cycles = Option.value ~default:w.Workloads.horizon config.P.horizon in
    let rows =
      List.map
        (fun v ->
          let energy =
            Mote_os.Energy.of_parts ~busy_cycles:v.P.busy_cycles
              ~idle_cycles:(horizon_cycles - v.P.busy_cycles) ~tx_words:v.P.tx_words ()
          in
          let days =
            Mote_os.Energy.lifetime_days energy ~horizon_cycles
              ~cycles_per_second:1_000_000
          in
          [
            v.P.label;
            string_of_int v.P.taken_transfers;
            Report.Table.fmt_pct v.P.taken_rate;
            string_of_int v.P.busy_cycles;
            Printf.sprintf "%.3f" energy.Mote_os.Energy.total_mj;
            Printf.sprintf "%.0f" days;
          ])
        variants
    in
    print_endline
      (Report.Table.render
         ~headers:[ "layout"; "stalls"; "rate"; "busy cycles"; "energy mJ"; "life (days)" ]
         rows)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "One-stop workload report: estimates with confidence intervals and fit checks, \
          layout comparison, energy and projected battery life")
    Term.(
      const run $ workload_arg $ seed_arg $ resolution_arg $ jitter_arg $ horizon_arg
      $ domains_arg $ faults_term $ sanitize_arg $ robust_arg $ min_samples_arg)

(* --- fleet --- *)

let fleet_cmd =
  let nodes_arg =
    Arg.(value & opt int 8 & info [ "nodes" ] ~docv:"N" ~doc:"Number of simulated nodes.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 10
      & info [ "rounds" ] ~docv:"N" ~doc:"Aggregation rounds (one uplink batch per node per round).")
  in
  let batch_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"N"
          ~doc:"Records per uplink batch (default: spread each node's log evenly over the rounds).")
  in
  let field_arg =
    Arg.(
      value & flag
      & info [ "field" ]
          ~doc:
            "Use the canonical field-deployment link model (5% loss, 1% corruption) as the \
             base fault model.  Explicit $(b,--loss)/$(b,--corrupt)/$(b,--duplicate)/$(b,--reorder) \
             flags replace it.")
  in
  let no_vary_arg =
    Arg.(
      value & flag
      & info [ "no-vary" ]
          ~doc:"Give every node identical fault rates instead of deterministic per-node variation.")
  in
  let decay_arg =
    Arg.(
      value & opt float 0.999
      & info [ "decay" ] ~docv:"D" ~doc:"Forgetting factor of the per-node online estimators.")
  in
  let replace_every_arg =
    Arg.(
      value & opt int 0
      & info [ "replace-every" ] ~docv:"K"
          ~doc:"Re-run placement every K rounds (0 = final round only; the final round always places).")
  in
  let timings_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "timings" ] ~docv:"FILE"
          ~doc:"Write wall-clock seconds as bench-compatible timings JSON.")
  in
  let run w seed resolution jitter horizon domains faults field no_vary nodes rounds batch
      decay min_samples replace_every timings =
    guarded @@ fun () ->
    with_pool domains @@ fun pool ->
    let session = Codetomo.Session.create ~pool () in
    let base_faults =
      match (faults, field) with
      | Some f, _ -> f
      | None, true -> Profilekit.Transport.field ()
      | None, false -> Profilekit.Transport.default
    in
    let config =
      {
        (Fleet.Service.default_config w) with
        Fleet.Service.nodes;
        rounds;
        batch;
        seed;
        faults = base_faults;
        vary_faults = not no_vary;
        pipeline = config_of seed resolution jitter horizon None;
        decay;
        min_samples;
        replace_every;
      }
    in
    let t0 = Unix.gettimeofday () in
    let report = Fleet.Service.run ~session config in
    let seconds = Unix.gettimeofday () -. t0 in
    Printf.printf "fleet %s: %d nodes, %d rounds, seed %d\n" w.Workloads.name nodes rounds
      seed;
    List.iter
      (fun (n : Fleet.Sim.node) ->
        Printf.printf
          "  node %d: env seed %6d, drop %.3f corrupt %.3f duplicate %.3f reorder %.3f\n"
          n.Fleet.Sim.id n.Fleet.Sim.env_seed n.Fleet.Sim.faults.Profilekit.Transport.drop
          n.Fleet.Sim.faults.Profilekit.Transport.corrupt
          n.Fleet.Sim.faults.Profilekit.Transport.duplicate
          n.Fleet.Sim.faults.Profilekit.Transport.reorder)
      report.Fleet.Service.roster;
    print_newline ();
    let rows =
      List.map
        (fun (r : Fleet.Service.round_report) ->
          [
            string_of_int r.Fleet.Service.round;
            string_of_int r.Fleet.Service.delivered;
            string_of_int r.Fleet.Service.fed;
            string_of_int r.Fleet.Service.discarded;
            Printf.sprintf "%d/%d" r.Fleet.Service.admitted r.Fleet.Service.rejected;
            Printf.sprintf "%.4f" r.Fleet.Service.fused_mae;
            (match r.Fleet.Service.placement with
            | None -> "-"
            | Some p -> Printf.sprintf "%.1f%%" (100.0 *. p.Fleet.Service.reduction));
          ])
        report.Fleet.Service.round_reports
    in
    print_endline
      (Report.Table.render
         ~headers:[ "round"; "delivered"; "fed"; "discarded"; "admit/rej"; "fused MAE"; "reduction" ]
         rows);
    let final = report.Fleet.Service.final in
    Printf.printf
      "\nfinal placement (round %d, %s):\n  taken transfers %d -> %d across the fleet (%.1f%% reduction)\n"
      final.Fleet.Service.at_round final.Fleet.Service.label
      final.Fleet.Service.natural_taken final.Fleet.Service.placed_taken
      (100.0 *. final.Fleet.Service.reduction);
    List.iter
      (fun (id, procs) ->
        List.iter
          (fun (proc, h) ->
            if not (Tomo.Health.is_healthy h) then
              Printf.printf "  health: node %d %s: %s\n" id proc (Tomo.Health.to_string h))
          procs)
      report.Fleet.Service.health;
    List.iter
      (fun (proc, d) ->
        if d > 0.0 then Printf.printf "  drift: %s max window-to-window %.4f\n" proc d)
      report.Fleet.Service.drift;
    match timings with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Printf.fprintf oc
          "{\n  \"domains\": %d,\n  \"total_seconds\": %.3f,\n  \"experiments\": [\n    { \"name\": \"fleet\", \"seconds\": %.3f }\n  ]\n}\n"
          (Codetomo.Session.domains session) seconds seconds;
        close_out oc;
        Printf.eprintf "[timings written to %s]\n%!" path
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate an N-node deployment streaming probe batches over lossy links; \
          fuse the per-node online estimates with health gating and place from the \
          fleet profile")
    Term.(
      const run $ workload_arg $ seed_arg $ resolution_arg $ jitter_arg $ horizon_arg
      $ domains_arg $ faults_term $ field_arg $ no_vary_arg $ nodes_arg $ rounds_arg
      $ batch_arg $ decay_arg $ min_samples_arg $ replace_every_arg $ timings_arg)

(* --- asm --- *)

let asm_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some non_dir_file) None
      & info [] ~docv:"FILE.s" ~doc:"Assembly source file.")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("hex", `Hex); ("dis", `Dis); ("run", `Run) ]) `Hex
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"hex: flash image; dis: disassembly; run: execute from 'main' until halt.")
  in
  let run file mode =
    guarded @@ fun () ->
    let ic = open_in file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Mote_isa.Parse.parse_program text with
    | exception Mote_isa.Parse.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" file line message;
        exit 1
    | exception Mote_isa.Asm.Error message ->
        Printf.eprintf "%s: %s\n" file message;
        exit 1
    | program -> (
        match mode with
        | `Hex -> print_string (Mote_isa.Encode.hexdump program)
        | `Dis -> Format.printf "%a@." Program.pp program
        | `Run ->
            let devices = Mote_machine.Devices.create () in
            let machine = Mote_machine.Machine.create ~program ~devices () in
            Mote_machine.Machine.run_from_symbol machine "main";
            let stats = Mote_machine.Machine.stats machine in
            Printf.printf "halted after %d instructions, %d cycles\n"
              stats.Mote_machine.Machine.instructions stats.Mote_machine.Machine.cycles;
            Printf.printf "r0=%d r1=%d r2=%d r3=%d leds=%d tx=[%s]\n"
              (Mote_machine.Machine.reg machine 0)
              (Mote_machine.Machine.reg machine 1)
              (Mote_machine.Machine.reg machine 2)
              (Mote_machine.Machine.reg machine 3)
              (Mote_machine.Devices.leds devices)
              (String.concat ";"
                 (List.map string_of_int (Mote_machine.Devices.tx_log devices))))
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble a CT16 source file; dump, disassemble or run it")
    Term.(const run $ file_arg $ mode_arg)

let () =
  let info =
    Cmd.info "ctomo" ~version:"1.0.0"
      ~doc:"Code Tomography: estimation-based profiling for sensor network programs"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            inspect_cmd;
            dot_cmd;
            trace_cmd;
            profile_cmd;
            place_cmd;
            overhead_cmd;
            report_cmd;
            fleet_cmd;
            asm_cmd;
          ]))
