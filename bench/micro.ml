(* B10: Bechamel micro-benchmarks for the moving parts of the pipeline:
   simulator speed, CFG extraction, path enumeration, the EM estimator and
   the placement pass. *)

open Bechamel
open Toolkit

let prepared_sense =
  lazy
    (let w = Workloads.sense in
     let c = Workloads.compiled w in
     let run =
       Codetomo.Pipeline.profile
         ~config:{ Codetomo.Pipeline.default_config with horizon = Some 1_000_000 }
         w
     in
     (w, c, run))

let test_simulator =
  Test.make ~name:"simulate 100 sense_task invocations"
    (Staged.stage (fun () ->
         let _, c, _ = Lazy.force prepared_sense in
         let devices = Mote_machine.Devices.create () in
         Mote_machine.Devices.set_sensor devices (fun _ -> 500);
         let m =
           Mote_machine.Machine.create ~program:c.Mote_lang.Compile.program ~devices ()
         in
         ignore (Mote_machine.Machine.run_proc m Mote_lang.Compile.init_proc_name);
         for _ = 1 to 100 do
           ignore (Mote_machine.Machine.run_proc m "sense_task")
         done))

let test_cfg =
  Test.make ~name:"CFG extraction (whole sense binary)"
    (Staged.stage (fun () ->
         let _, c, _ = Lazy.force prepared_sense in
         ignore (Cfgir.Cfg.of_program c.Mote_lang.Compile.program)))

let test_paths =
  Test.make ~name:"path enumeration (report_task)"
    (Staged.stage (fun () ->
         let _, _, run = Lazy.force prepared_sense in
         let model = Codetomo.Pipeline.model_of run "report_task" in
         ignore (Tomo.Paths.enumerate model)))

let test_em =
  Test.make ~name:"EM estimate (sense_task, 1000 samples)"
    (Staged.stage (fun () ->
         let _, _, run = Lazy.force prepared_sense in
         let samples = List.assoc "sense_task" run.Codetomo.Pipeline.samples in
         let samples =
           if Array.length samples > 1000 then Array.sub samples 0 1000 else samples
         in
         let model = Codetomo.Pipeline.model_of run "sense_task" in
         let paths = Tomo.Paths.enumerate model in
         ignore (Tomo.Em.estimate paths ~samples)))

(* The sparse-kernel benches run on ctp_rx_task — the grid's dominant cell
   (4096 raw paths merging to a couple hundred signatures). *)
let prepared_ctp =
  lazy
    (let w = Workloads.ctp in
     let run =
       Codetomo.Pipeline.profile
         ~config:{ Codetomo.Pipeline.default_config with timer_jitter = 4.0 }
         w
     in
     let samples = List.assoc "ctp_rx_task" run.Codetomo.Pipeline.samples in
     let model = Codetomo.Pipeline.model_of run "ctp_rx_task" in
     let paths = Tomo.Paths.enumerate model in
     (model, paths, samples))

let test_paths_merge =
  Test.make ~name:"path enumeration + merge (ctp_rx_task)"
    (Staged.stage (fun () ->
         let model, _, _ = Lazy.force prepared_ctp in
         ignore (Tomo.Paths.enumerate model)))

let test_em_sparse =
  Test.make ~name:"EM estimate, 3 iters (ctp_rx_task, jitter 4)"
    (Staged.stage (fun () ->
         let _, paths, samples = Lazy.force prepared_ctp in
         ignore
           (Tomo.Em.estimate ~max_iters:3 ~sigma:4.0 ~record_trajectory:false paths
              ~samples)))

let test_log_prior =
  Test.make ~name:"signature log-prior kernel (ctp_rx_task)"
    (Staged.stage (fun () ->
         let _, paths, _ = Lazy.force prepared_ctp in
         let model = Tomo.Paths.model paths in
         let theta = Array.map (fun _ -> 0.3) (Tomo.Model.uniform_theta model) in
         let log_t = Array.map log theta in
         let log_f = Array.map (fun t -> log (1.0 -. t)) theta in
         let out = Array.make (Tomo.Paths.num_signatures paths) 0.0 in
         Tomo.Paths.signature_log_prior paths ~log_t ~log_f out))

let test_placement =
  Test.make ~name:"Pettis-Hansen + rewrite (sense)"
    (Staged.stage (fun () ->
         let _, c, run = Lazy.force prepared_sense in
         ignore
           (Layout.Rewrite.apply_all c.Mote_lang.Compile.program
              ~algorithm:Layout.Algorithms.pettis_hansen
              ~profiles:run.Codetomo.Pipeline.oracle_freqs)))

let benchmark () =
  ignore (Lazy.force prepared_sense);
  ignore (Lazy.force prepared_ctp);
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) () in
  let grouped =
    Test.make_grouped ~name:"codetomo"
      [
        test_simulator; test_cfg; test_paths; test_em; test_paths_merge;
        test_em_sparse; test_log_prior; test_placement;
      ]
  in
  let results = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock results
  in
  let lines = Hashtbl.fold (fun name result acc -> (name, result) :: acc) ols [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-55s %12.0f ns/run\n%!" name est
      | _ -> Printf.printf "  %-55s (no estimate)\n%!" name)
    (List.sort compare lines)

let b10 () =
  Experiments.section "B10. Micro-benchmarks (Bechamel, monotonic clock)";
  benchmark ()
