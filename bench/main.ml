(* Evaluation driver: `dune exec bench/main.exe` regenerates every table
   and figure; `dune exec bench/main.exe -- t4` runs a single one.

   Options:
     -j N, --domains N   size of the session's domain pool (default:
                         CODETOMO_DOMAINS, else the recommended count)
     --timings FILE      write per-experiment wall-clock seconds as JSON
                         (the tables themselves are unaffected, so serial
                         and parallel stdout stay byte-identical) *)

let experiments =
  [
    ("t1", Experiments.t1);
    ("f2", Experiments.f2);
    ("f3", Experiments.f3);
    ("t4", Experiments.t4);
    ("f5", Experiments.f5);
    ("t6", Experiments.t6);
    ("f7", Experiments.f7);
    ("a8", Experiments.a8);
    ("a9", Experiments.a9);
    ("a11", Experiments.a11);
    ("s12", Experiments.s12);
    ("f13", Experiments.f13);
    ("f14", Experiments.f14);
    ("r13", Experiments.r13);
    ("a15", Experiments.a15);
    ("f15", Experiments.f15);
    ("b10", Micro.b10);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [-j N] [--timings FILE] [experiment ...]\navailable: %s\n"
    (String.concat ", " (List.map fst experiments));
  exit 1

let parse_args argv =
  let rec go args names domains timings =
    match args with
    | [] -> (List.rev names, domains, timings)
    | ("-j" | "--domains") :: value :: rest -> (
        match int_of_string_opt value with
        | Some d when d >= 1 -> go rest names (Some d) timings
        | _ ->
            Printf.eprintf "-j expects a positive integer, got %S\n" value;
            exit 1)
    | [ ("-j" | "--domains") ] ->
        Printf.eprintf "-j expects a domain count\n";
        exit 1
    | "--timings" :: file :: rest -> go rest names domains (Some file)
    | [ "--timings" ] ->
        Printf.eprintf "--timings expects a file path\n";
        exit 1
    | name :: rest -> go rest (name :: names) domains timings
  in
  go (List.tl (Array.to_list argv)) [] None None

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_timings ~path ~domains timed =
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 timed in
  let oc =
    try open_out path
    with Sys_error msg ->
      Printf.eprintf "cannot write timings: %s\n" msg;
      exit 1
  in
  Printf.fprintf oc "{\n  \"domains\": %d,\n  \"total_seconds\": %.3f,\n  \"experiments\": [\n"
    domains total;
  List.iteri
    (fun i (name, seconds) ->
      Printf.fprintf oc "    { \"name\": \"%s\", \"seconds\": %.3f }%s\n"
        (json_escape name) seconds
        (if i = List.length timed - 1 then "" else ","))
    timed;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.eprintf "[timings written to %s]\n%!" path

let () =
  let names, domains, timings = parse_args Sys.argv in
  Option.iter Experiments.set_domains domains;
  let chosen =
    match names with
    | [] -> experiments
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt (String.lowercase_ascii name) experiments with
            | Some run -> (String.lowercase_ascii name, run)
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" name
                  (String.concat ", " (List.map fst experiments));
                exit 1)
          names
  in
  if chosen = [] then usage ();
  let timed =
    List.map
      (fun (name, run) ->
        let t0 = Unix.gettimeofday () in
        run ();
        (name, Unix.gettimeofday () -. t0))
      chosen
  in
  Option.iter (fun path -> write_timings ~path ~domains:(Experiments.domains ()) timed) timings
