(* Evaluation driver: `dune exec bench/main.exe` regenerates every table
   and figure; `dune exec bench/main.exe -- t4` runs a single one. *)

let experiments =
  [
    ("t1", Experiments.t1);
    ("f2", Experiments.f2);
    ("f3", Experiments.f3);
    ("t4", Experiments.t4);
    ("f5", Experiments.f5);
    ("t6", Experiments.t6);
    ("f7", Experiments.f7);
    ("a8", Experiments.a8);
    ("a9", Experiments.a9);
    ("a11", Experiments.a11);
    ("s12", Experiments.s12);
    ("f13", Experiments.f13);
    ("f14", Experiments.f14);
    ("a15", Experiments.a15);
    ("b10", Micro.b10);
  ]

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> List.iter (fun (_, run) -> run ()) experiments
  | _ :: names ->
      List.iter
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) experiments with
          | Some run -> run ()
          | None ->
              Printf.eprintf "unknown experiment %S; available: %s\n" name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
  | [] -> ()
