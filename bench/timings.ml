(* Compare two `main.exe --timings` JSON files.

     timings.exe BASELINE CURRENT [--gate RATIO] [--min-seconds S]

   Prints a per-experiment table of baseline vs current wall-clock with
   the current/baseline ratio.  With [--gate], exits 1 when any
   experiment whose baseline takes at least [--min-seconds] (default
   0.5s — below that the ratio is timer noise) regressed by more than
   the given factor.  Experiments present in only one file are reported
   but never gate. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

(* A minimal recursive-descent parser — enough for the timings format
   (and any other JSON these tools may grow), with no dependencies. *)
let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?';
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

type run = { domains : int; total : float; experiments : (string * float) list }

let field name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "timings: %s\n" msg;
      exit 2
  in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let json =
    try parse_json contents
    with Parse_error msg ->
      Printf.eprintf "timings: %s: %s\n" path msg;
      exit 2
  in
  let num = function Some (Num f) -> f | _ -> nan in
  let experiments =
    match field "experiments" json with
    | Some (Arr entries) ->
        List.filter_map
          (fun e ->
            match (field "name" e, field "seconds" e) with
            | Some (Str name), Some (Num s) -> Some (name, s)
            | _ -> None)
          entries
    | _ ->
        Printf.eprintf "timings: %s: no \"experiments\" array\n" path;
        exit 2
  in
  {
    domains = int_of_float (num (field "domains" json));
    total = num (field "total_seconds" json);
    experiments;
  }

let usage () =
  prerr_endline
    "usage: timings.exe BASELINE CURRENT [--gate RATIO] [--min-seconds S]";
  exit 2

let () =
  let rec parse args files gate min_seconds =
    match args with
    | [] -> (List.rev files, gate, min_seconds)
    | "--gate" :: v :: rest -> (
        match float_of_string_opt v with
        | Some g when g > 0.0 -> parse rest files (Some g) min_seconds
        | _ -> usage ())
    | "--min-seconds" :: v :: rest -> (
        match float_of_string_opt v with
        | Some s when s >= 0.0 -> parse rest files gate s
        | _ -> usage ())
    | f :: rest -> parse rest (f :: files) gate min_seconds
  in
  let files, gate, min_seconds =
    parse (List.tl (Array.to_list Sys.argv)) [] None 0.5
  in
  let base_path, cur_path =
    match files with [ b; c ] -> (b, c) | _ -> usage ()
  in
  let base = load base_path and cur = load cur_path in
  Printf.printf "baseline: %s  (%d domains, %.3fs total)\n" base_path base.domains
    base.total;
  Printf.printf "current:  %s  (%d domains, %.3fs total)\n\n" cur_path cur.domains
    cur.total;
  Printf.printf "  %-12s %12s %12s %10s\n" "experiment" "baseline(s)" "current(s)"
    "ratio";
  let regressions = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, b) ->
      Hashtbl.replace seen name ();
      match List.assoc_opt name cur.experiments with
      | None -> Printf.printf "  %-12s %12.3f %12s %10s\n" name b "-" "gone"
      | Some c ->
          let ratio = if b > 0.0 then c /. b else nan in
          let gated =
            match gate with
            | Some g when b >= min_seconds && ratio > g ->
                regressions := (name, b, c, ratio) :: !regressions;
                "  << regression"
            | _ -> ""
          in
          Printf.printf "  %-12s %12.3f %12.3f %9.2fx%s\n" name b c ratio gated)
    base.experiments;
  List.iter
    (fun (name, c) ->
      if not (Hashtbl.mem seen name) then
        Printf.printf "  %-12s %12s %12.3f %10s\n" name "-" c "new")
    cur.experiments;
  if base.total > 0.0 then
    Printf.printf "\n  %-12s %12.3f %12.3f %9.2fx\n" "TOTAL" base.total cur.total
      (cur.total /. base.total);
  match (gate, !regressions) with
  | Some g, (_ :: _ as r) ->
      Printf.printf "\nFAIL: %d experiment(s) regressed beyond %.2fx (noise floor %.2fs)\n"
        (List.length r) g min_seconds;
      exit 1
  | Some g, [] ->
      Printf.printf "\nOK: no experiment regressed beyond %.2fx (noise floor %.2fs)\n" g
        min_seconds
  | None, _ -> ()
