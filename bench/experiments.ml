(* The evaluation harness: one function per table/figure of the paper's
   evaluation (reconstructed — see DESIGN.md), each printing the
   corresponding table or ASCII figure. *)

module P = Codetomo.Pipeline
module Cfg = Cfgir.Cfg
module Freq = Cfgir.Freq
module Program = Mote_isa.Program
module Machine = Mote_machine.Machine
module Node = Mote_os.Node
module Table = Report.Table
module Chart = Report.Chart

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

(* Every table is printed, and additionally dumped as CSV when
   CODETOMO_CSV_DIR is set — so the evaluation data can be re-plotted
   outside this harness. *)
let emit_table ~name ~headers rows =
  print_endline (Table.render ~headers rows);
  match Sys.getenv_opt "CODETOMO_CSV_DIR" with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".csv") in
      Report.Csv.write_file ~path ~headers rows;
      Printf.printf "[csv written to %s]\n" path

let f = Table.fmt_float
let pct = Table.fmt_pct

(* One Codetomo.Session per bench process: every experiment draws its
   profile runs, estimations and layout variants from the session's memo
   tables (so t4, f5 and f13 share one compare_layouts, F2 and F3 share
   seed-42 profiles, ...) and fans its sweeps out over the session's
   domain pool.  [set_domains] must be called before the first
   experiment runs; the bench driver does so from the -j flag. *)
let requested_domains : int option ref = ref None
let set_domains n = requested_domains := Some n

let session = lazy (Codetomo.Session.create ?domains:!requested_domains ())
let sess () = Lazy.force session
let domains () = Codetomo.Session.domains (sess ())

let profile ?config w = Codetomo.Session.profile (sess ()) ?config w

(* Order-preserving parallel map over the session pool.  Every task must
   derive its randomness from its own key (seed, sweep index), so the
   emitted tables are bit-identical at any domain count. *)
let pmap f xs = Codetomo.Session.map_list (sess ()) f xs

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

(* ------------------------------------------------------------------ *)
(* T1: benchmark characteristics.                                      *)
(* ------------------------------------------------------------------ *)

let t1 () =
  section "T1. Benchmark characteristics (static)";
  let rows =
    pmap
      (fun w ->
        let c = Codetomo.Session.compiled (sess ()) w in
        let program = c.Mote_lang.Compile.program in
        let cfgs =
          Cfg.of_program program
          |> List.filter (fun cfg ->
                 cfg.Cfg.proc.Program.name <> Mote_lang.Compile.init_proc_name)
        in
        let blocks = List.fold_left (fun acc cfg -> acc + Cfg.num_blocks cfg) 0 cfgs in
        let branches =
          List.fold_left (fun acc cfg -> acc + Cfg.static_cond_branches cfg) 0 cfgs
        in
        let loops =
          List.fold_left (fun acc cfg -> acc + List.length (Cfg.loop_headers cfg)) 0 cfgs
        in
        [
          w.Workloads.name;
          string_of_int (List.length cfgs);
          string_of_int blocks;
          string_of_int branches;
          string_of_int loops;
          string_of_int (Program.flash_words program);
          string_of_int (List.length w.Workloads.tasks);
        ])
      Workloads.all
  in
  emit_table ~name:"t1"
    ~headers:[ "workload"; "procs"; "blocks"; "branches"; "loops"; "flash(w)"; "tasks" ]
    rows

(* ------------------------------------------------------------------ *)
(* F2: estimation accuracy vs number of timing samples.                *)
(* ------------------------------------------------------------------ *)

let sample_points = [ 10; 30; 100; 300; 1000; 3000 ]

(* Small-sample MAE varies with which invocations happen to land in the
   prefix, so each point is a mean over independent environment seeds. *)
let f2_seeds = [ 42; 1042; 2042 ]

let f2 () =
  section
    "F2. Branch-probability MAE vs number of end-to-end timing samples\n\
     (EM; mean over 3 environment seeds)";
  (* Warm the (workload x seed) profile runs in parallel first, then fan
     the (workload x sample-count) estimation grid; each grid cell reads
     the memoized runs and estimates serially inside its own task. *)
  ignore
    (pmap
       (fun (w, seed) -> ignore (profile ~config:{ P.default_config with P.seed } w))
       (List.concat_map
          (fun w -> List.map (fun seed -> (w, seed)) f2_seeds)
          Workloads.all));
  let cells =
    pmap
      (fun (w, n) ->
        let maes =
          List.concat_map
            (fun seed ->
              let config = { P.default_config with P.seed } in
              List.map
                (fun e -> e.P.mae)
                (Codetomo.Session.estimate (sess ()) ~max_samples:n ~config w))
            f2_seeds
        in
        mean maes)
      (List.concat_map
         (fun w -> List.map (fun n -> (w, n)) sample_points)
         Workloads.all)
  in
  let series =
    List.mapi
      (fun i w ->
        let pts =
          List.mapi
            (fun j n ->
              (float_of_int n, List.nth cells ((i * List.length sample_points) + j)))
            sample_points
        in
        (w.Workloads.name, Array.of_list pts))
      Workloads.all
  in
  let rows =
    List.map
      (fun (name, pts) ->
        name :: List.map (fun (_, mae) -> f ~decimals:4 mae) (Array.to_list pts))
      series
  in
  emit_table ~name:"f2"
    ~headers:("workload" :: List.map (fun n -> Printf.sprintf "n=%d" n) sample_points)
    rows;
  print_endline
    (Chart.line ~log_x:true ~x_label:"samples" ~y_label:"MAE"
       ~title:"F2: estimation error vs sample count" series)

(* ------------------------------------------------------------------ *)
(* F3: accuracy vs timer resolution and jitter.                        *)
(* ------------------------------------------------------------------ *)

(* CI's perf-smoke job runs a reduced grid (CODETOMO_F3_REDUCED=1): fewer
   resolutions, jitters and seeds — still exercising every workload and
   both sweep axes end to end, but fast enough to gate on.  The full grid
   is the default and is what every published table uses. *)
let f3_reduced = Sys.getenv_opt "CODETOMO_F3_REDUCED" <> None
let resolutions = if f3_reduced then [ 1; 8; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ]

let f3_workloads () = [ Workloads.sense; Workloads.filter; Workloads.ctp ]

(* Individual runs are noisy at coarse resolutions (path costs alias into
   the same tick), so each point averages several environment seeds. *)
let f3_seeds = if f3_reduced then [ 42 ] else [ 42; 142; 242 ]

let f3 () =
  section "F3. Estimation MAE vs timer resolution (cycles/tick; EM, no jitter)";
  let mae_at w config =
    List.map
      (fun seed ->
        let config = { config with P.seed = seed } in
        mean
          (List.map (fun e -> e.P.mae) (Codetomo.Session.estimate (sess ()) ~config w)))
      f3_seeds
    |> mean
  in
  (* Fan the full (workload x sweep-point) grid; each cell profiles and
     estimates its three seeds inside its own task, hitting the session
     memo for anything another cell (or experiment) already derived. *)
  let sweep points config_of =
    let grid =
      List.concat_map
        (fun w -> List.map (fun p -> (w, p)) points)
        (f3_workloads ())
    in
    let maes = pmap (fun (w, p) -> mae_at w (config_of p)) grid in
    List.mapi
      (fun i w ->
        let pts =
          List.mapi
            (fun j p -> (p, List.nth maes ((i * List.length points) + j)))
            points
        in
        (w.Workloads.name, Array.of_list pts))
      (f3_workloads ())
  in
  let series =
    sweep
      (List.map float_of_int resolutions)
      (fun r -> { P.default_config with P.timer_resolution = int_of_float r })
  in
  let rows =
    List.map
      (fun (name, pts) ->
        name :: List.map (fun (_, mae) -> f ~decimals:4 mae) (Array.to_list pts))
      series
  in
  emit_table ~name:"f3"
    ~headers:("workload" :: List.map (fun r -> Printf.sprintf "res=%d" r) resolutions)
    rows;
  print_endline
    (Chart.line ~log_x:true ~x_label:"timer resolution (cycles/tick)" ~y_label:"MAE"
       ~title:"F3a: estimation error vs timer resolution" series);
  (* Jitter sweep at resolution 1. *)
  let jitters = if f3_reduced then [ 0.0; 4.0 ] else [ 0.0; 1.0; 2.0; 4.0; 8.0 ] in
  let jitter_series =
    sweep jitters (fun j -> { P.default_config with P.timer_jitter = j })
  in
  print_endline
    (Chart.line ~x_label:"timer jitter sigma (cycles)" ~y_label:"MAE"
       ~title:"F3b: estimation error vs timer jitter" jitter_series)

(* ------------------------------------------------------------------ *)
(* T4 / F5: placement quality.                                         *)
(* ------------------------------------------------------------------ *)

(* Memoized in the session: t4, f5 and f13 all read the same four
   variant runs, computed once. *)
let layout_variants w = Codetomo.Session.compare_layouts (sess ()) w

(* Warm every workload's variants in parallel before the tables read
   them back in order. *)
let warm_layout_variants () = ignore (pmap (fun w -> ignore (layout_variants w)) Workloads.all)

let t4 () =
  warm_layout_variants ();
  section
    "T4. Taken-transfer ('misprediction') counts and rates by layout\n\
     (evaluation on fresh inputs: profiling seed + 1000)";
  let rows =
    List.concat_map
      (fun w ->
        let variants = layout_variants w in
        List.map
          (fun v ->
            [
              w.Workloads.name;
              v.P.label;
              string_of_int v.P.taken_transfers;
              pct v.P.taken_rate;
              string_of_int v.P.busy_cycles;
              string_of_int v.P.flash_words;
            ])
          variants)
      Workloads.all
  in
  emit_table ~name:"t4"
    ~headers:[ "workload"; "layout"; "taken"; "taken rate"; "busy cycles"; "flash(w)" ]
    rows;
  (* Reduction summary. *)
  let rows =
    List.map
      (fun w ->
        let variants = layout_variants w in
        let get label = List.find (fun v -> v.P.label = label) variants in
        let nat = get "natural" and tomo = get "tomography" and perf = get "perfect" in
        let red v =
          1.0
          -. (float_of_int v.P.taken_transfers /. float_of_int nat.P.taken_transfers)
        in
        [
          w.Workloads.name;
          pct (red tomo);
          pct (red perf);
          pct
            (if nat.P.taken_transfers = perf.P.taken_transfers then 1.0
             else
               float_of_int (nat.P.taken_transfers - tomo.P.taken_transfers)
               /. float_of_int (nat.P.taken_transfers - perf.P.taken_transfers));
        ])
      Workloads.all
  in
  emit_table ~name:"t4_summary"
    ~headers:[ "workload"; "tomo reduction"; "perfect reduction"; "headroom captured" ]
    rows

let f5 () =
  warm_layout_variants ();
  section "F5. Execution cycles normalized to the natural layout";
  let labels = [ "natural"; "worst"; "tomography"; "perfect" ] in
  let rows =
    List.map
      (fun w ->
        let variants = layout_variants w in
        let get label = List.find (fun v -> v.P.label = label) variants in
        let nat = float_of_int (get "natural").P.busy_cycles in
        w.Workloads.name
        :: List.map
             (fun l -> f ~decimals:4 (float_of_int (get l).P.busy_cycles /. nat))
             labels)
      Workloads.all
  in
  emit_table ~name:"f5" ~headers:("workload" :: labels) rows;
  let series =
    List.map
      (fun label ->
        ( label,
          Array.of_list
            (List.mapi
               (fun i w ->
                 let variants = layout_variants w in
                 let get l = List.find (fun v -> v.P.label = l) variants in
                 let nat = float_of_int (get "natural").P.busy_cycles in
                 (float_of_int i, float_of_int (get label).P.busy_cycles /. nat))
               Workloads.all) ))
      labels
  in
  print_endline
    (Chart.line ~x_label:"workload index" ~y_label:"cycles vs natural"
       ~title:"F5: normalized cycles (x = workload index in T1 order)" series)

(* ------------------------------------------------------------------ *)
(* T6: profiling overhead — tomography probes vs full edge counters.   *)
(* ------------------------------------------------------------------ *)

let t6 () =
  section "T6. Profiling overhead: Code Tomography probes vs edge instrumentation";
  let rows =
    List.concat (pmap
      (fun w ->
        let c = Codetomo.Session.compiled (sess ()) w in
        let base = c.Mote_lang.Compile.program in
        let probes =
          Mote_isa.Asm.assemble (Profilekit.Probes.instrument c.Mote_lang.Compile.items)
        in
        let edges =
          Mote_isa.Asm.assemble (Profilekit.Edges.instrument c.Mote_lang.Compile.items)
        in
        let pr = Profilekit.Overhead.probes_report ~base ~instrumented:probes in
        let er = Profilekit.Overhead.edges_report ~base ~instrumented:edges in
        let cycles binary =
          (P.run_binary w binary ~label:"overhead").P.busy_cycles
        in
        let base_cycles = cycles base in
        let row label (r : Profilekit.Overhead.report) binary =
          let busy = cycles binary in
          [
            w.Workloads.name;
            label;
            string_of_int r.Profilekit.Overhead.flash_words;
            string_of_int r.Profilekit.Overhead.flash_overhead_words;
            Printf.sprintf "%.1f%%" r.Profilekit.Overhead.flash_overhead_pct;
            string_of_int r.Profilekit.Overhead.ram_words;
            string_of_int busy;
            Printf.sprintf "%.1f%%"
              (100.0 *. float_of_int (busy - base_cycles) /. float_of_int base_cycles);
          ]
        in
        [
          [
            w.Workloads.name; "none";
            string_of_int (Program.flash_words base); "0"; "0.0%"; "0";
            string_of_int base_cycles; "0.0%";
          ];
          row "probes" pr probes;
          row "edges" er edges;
        ])
      Workloads.all)
  in
  emit_table ~name:"t6"
    ~headers:
      [
        "workload"; "instr."; "flash(w)"; "+flash"; "+flash%"; "ram(w)";
        "busy cycles"; "+cycles%";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* F7: EM convergence.                                                 *)
(* ------------------------------------------------------------------ *)

let f7 () =
  section "F7. EM convergence (log-likelihood and MAE per iteration)";
  let cases = [ (Workloads.sense, "sense_task"); (Workloads.ctp, "ctp_rx_task") ] in
  let series =
    List.concat_map
      (fun (w, proc) ->
        let run = profile w in
        let samples = List.assoc proc run.P.samples in
        let truth = List.assoc proc run.P.oracle_thetas in
        let model = P.model_of run proc in
        let paths = Tomo.Paths.enumerate model in
        let r =
          Tomo.Em.estimate ~sigma:(P.noise_sigma run.P.config) ~tol:0.0 ~max_iters:25
            paths ~samples
        in
        let maes =
          List.mapi
            (fun i (theta, _) ->
              (float_of_int (i + 1), Stats.Metrics.mae theta truth))
            r.Tomo.Em.trajectory
        in
        let lls = List.map snd r.Tomo.Em.trajectory in
        let ll_lo = List.fold_left Stdlib.min infinity lls in
        let ll_hi = List.fold_left Stdlib.max neg_infinity lls in
        let span = Stdlib.max 1e-9 (ll_hi -. ll_lo) in
        let lls_norm =
          List.mapi
            (fun i ll -> (float_of_int (i + 1), (ll -. ll_lo) /. span))
            lls
        in
        [
          (proc ^ " MAE", Array.of_list maes);
          (proc ^ " loglik (normalized)", Array.of_list lls_norm);
        ])
      cases
  in
  print_endline
    (Chart.line ~x_label:"EM iteration" ~y_label:"MAE / normalized loglik"
       ~title:"F7: EM convergence" series)

(* ------------------------------------------------------------------ *)
(* A8: estimator ablation.                                             *)
(* ------------------------------------------------------------------ *)

let a8 () =
  section "A8. Ablation: estimation method (MAE and resulting placement quality)";
  let methods = Tomo.Estimator.[ Em; Moments; Naive ] in
  ignore (pmap (fun w -> ignore (profile w)) Workloads.all);
  let rows =
    pmap
      (fun (w, m) ->
        let run = profile w in
        let est = Codetomo.Session.estimate (sess ()) ~method_:m w in
        let mae = mean (List.map (fun e -> e.P.mae) est) in
        let freqs = P.estimated_freqs run est in
        let binary =
          P.placed_binary run ~profiles:freqs ~algorithm:Layout.Algorithms.pettis_hansen
        in
        let eval_config = { run.P.config with P.seed = run.P.config.P.seed + 1000 } in
        let v = P.run_binary ~config:eval_config w binary ~label:"x" in
        [
          w.Workloads.name;
          Tomo.Estimator.method_name m;
          f ~decimals:4 mae;
          string_of_int v.P.taken_transfers;
          string_of_int v.P.busy_cycles;
        ])
      (List.concat_map (fun w -> List.map (fun m -> (w, m)) methods) Workloads.all)
  in
  emit_table ~name:"a8"
    ~headers:[ "workload"; "method"; "MAE"; "taken after placement"; "busy cycles" ]
    rows

(* ------------------------------------------------------------------ *)
(* A9: placement-algorithm ablation under exact (oracle) profiles.     *)
(* ------------------------------------------------------------------ *)

let a9 () =
  section "A9. Ablation: placement algorithm under exact profiles (static eval)";
  let algorithms =
    [
      ("natural", fun freq -> Layout.Placement.natural (Freq.cfg freq));
      ("greedy", Layout.Algorithms.greedy);
      ("pettis-hansen", Layout.Algorithms.pettis_hansen);
      ("anneal", fun freq -> Layout.Algorithms.anneal freq);
    ]
  in
  ignore (pmap (fun w -> ignore (profile w)) Workloads.all);
  (* The exhaustive-optimal search dominates this table; fan it out one
     task per profiled procedure. *)
  let tasks =
    List.concat_map
      (fun w ->
        let run = profile w in
        List.map (fun (proc, freq) -> (w, proc, freq)) run.P.oracle_freqs)
      Workloads.all
  in
  let rows =
    List.concat
      (pmap
         (fun (w, proc, freq) ->
           let cfg = Freq.cfg freq in
           let optimal =
             if Cfg.num_blocks cfg <= 9 then
               Some (Layout.Eval.taken_transfers freq (Layout.Algorithms.optimal freq))
             else None
           in
           List.map
             (fun (name, algo) ->
               let score = Layout.Eval.taken_transfers freq (algo freq) in
               [
                 w.Workloads.name;
                 proc;
                 name;
                 f ~decimals:1 score;
                 (match optimal with
                 | Some o -> f ~decimals:1 o
                 | None -> "n/a (>9 blocks)");
               ])
             algorithms)
         tasks)
  in
  emit_table ~name:"a9"
    ~headers:[ "workload"; "procedure"; "algorithm"; "taken (static)"; "optimal" ]
    rows

(* ------------------------------------------------------------------ *)
(* A11: does the core's static prediction policy change the story?     *)
(* Under BTFN the fetch stage already wins on loop back-edges, so      *)
(* placement has less headroom — but the estimation pipeline is        *)
(* unchanged.                                                          *)
(* ------------------------------------------------------------------ *)

let a11 () =
  section "A11. Ablation: static branch prediction policy (dynamic, perfect profiles)";
  ignore (pmap (fun w -> ignore (profile w)) Workloads.all);
  let rows =
    List.concat (pmap
      (fun w ->
        let run = profile w in
        let placed =
          P.placed_binary run ~profiles:run.P.oracle_freqs
            ~algorithm:Layout.Algorithms.pettis_hansen
        in
        List.map
          (fun (policy_name, prediction) ->
            let config =
              { run.P.config with P.seed = run.P.config.P.seed + 1000; prediction }
            in
            let natural = P.run_binary ~config w (P.natural_binary run) ~label:"nat" in
            let opt = P.run_binary ~config w placed ~label:"opt" in
            let reduction =
              if natural.P.taken_transfers = 0 then 0.0
              else
                1.0
                -. (float_of_int opt.P.taken_transfers
                   /. float_of_int natural.P.taken_transfers)
            in
            [
              w.Workloads.name;
              policy_name;
              string_of_int natural.P.taken_transfers;
              string_of_int opt.P.taken_transfers;
              pct reduction;
              string_of_int (natural.P.busy_cycles - opt.P.busy_cycles);
            ])
          [
            ("not-taken", Mote_machine.Machine.Predict_not_taken);
            ("btfn", Mote_machine.Machine.Predict_btfn);
          ])
      Workloads.all)
  in
  emit_table ~name:"a11"
    ~headers:
      [
        "workload"; "policy"; "stalls (natural)"; "stalls (placed)"; "reduction";
        "cycles saved";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* S12: scalability on machine-generated programs.                     *)
(* ------------------------------------------------------------------ *)

let s12 () =
  section "S12. Scalability: estimator cost and accuracy vs generated program size";
  (* One task per generated program: generation, simulation and EM all
     derive from the row's own seed, so the fan-out is deterministic
     (the EM-ms column is wall-clock and varies run to run either way). *)
  let rows =
    pmap
      (fun (depth, stmts, seed) ->
        let config =
          { Workloads.Generator.default_config with seed; max_depth = depth; stmts_per_block = stmts }
        in
        let program = Workloads.Generator.generate ~config () in
        let c = Mote_lang.Compile.compile program in
        let instrumented =
          Mote_isa.Asm.assemble (Profilekit.Probes.instrument c.Mote_lang.Compile.items)
        in
        let devices = Mote_machine.Devices.create () in
        let env = Env.create (Workloads.Generator.env_config ~seed) in
        Env.attach env devices;
        let m = Mote_machine.Machine.create ~program:instrumented ~devices () in
        ignore (Mote_machine.Machine.run_proc m Mote_lang.Compile.init_proc_name);
        let oracle = Profilekit.Oracle.attach m in
        for _ = 1 to 2000 do
          ignore (Mote_machine.Machine.run_proc m "gen_task")
        done;
        let samples =
          Profilekit.Probes.(
            samples_for (collect ~program:instrumented ~devices)) "gen_task"
        in
        let cfg = Cfg.of_proc_name instrumented "gen_task" in
        let model = Tomo.Model.of_cfg cfg in
        let samples = if Array.length samples > 800 then Array.sub samples 0 800 else samples in
        let t0 = Sys.time () in
        let result =
          match Tomo.Paths.enumerate ~max_paths:4000 ~max_visits:8 model with
          | paths ->
              let r = Tomo.Em.estimate ~max_iters:30 paths ~samples in
              let truth = Profilekit.Oracle.theta_vector oracle ~proc:"gen_task" in
              let mae =
                if Array.length truth = 0 then 0.0
                else Stats.Metrics.mae r.Tomo.Em.theta truth
              in
              Some (Array.length (Tomo.Paths.paths paths), mae)
          | exception Tomo.Paths.Too_complex _ -> None
        in
        let elapsed_ms = (Sys.time () -. t0) *. 1000.0 in
        [
          Printf.sprintf "depth=%d stmts=%d seed=%d" depth stmts seed;
          string_of_int (Cfg.num_blocks cfg);
          string_of_int (Cfg.static_cond_branches cfg);
          (match result with Some (p, _) -> string_of_int p | None -> ">4000");
          (match result with Some (_, mae) -> f ~decimals:4 mae | None -> "n/a");
          f ~decimals:1 elapsed_ms;
        ])
      (* Chosen to span roughly 5 -> 100 blocks. *)
      [ (2, 2, 5); (2, 2, 3); (3, 2, 2); (4, 2, 1); (4, 3, 4); (4, 4, 2); (4, 4, 6) ]
  in
  emit_table ~name:"s12"
    ~headers:[ "generator config"; "blocks"; "branches"; "paths"; "MAE"; "EM ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* F13: energy and projected battery life.  Placement saves active     *)
(* cycles; on a duty-cycled mote that converts into lifetime.          *)
(* ------------------------------------------------------------------ *)

let f13 () =
  warm_layout_variants ();
  section "F13. Energy per run and projected battery life (TelosB model, 1 MHz core)";
  let rows =
    List.concat_map
      (fun w ->
        let horizon = w.Workloads.horizon in
        let variants = layout_variants w in
        List.filter_map
          (fun v ->
            if v.P.label = "worst" then None
            else begin
              let energy =
                Mote_os.Energy.of_parts ~busy_cycles:v.P.busy_cycles
                  ~idle_cycles:(horizon - v.P.busy_cycles) ~tx_words:v.P.tx_words ()
              in
              let days =
                Mote_os.Energy.lifetime_days energy ~horizon_cycles:horizon
                  ~cycles_per_second:1_000_000
              in
              Some
                [
                  w.Workloads.name;
                  v.P.label;
                  f ~decimals:3 energy.Mote_os.Energy.active_mj;
                  f ~decimals:3 energy.Mote_os.Energy.radio_mj;
                  f ~decimals:3 energy.Mote_os.Energy.total_mj;
                  f ~decimals:0 days;
                ]
            end)
          variants)
      Workloads.all
  in
  emit_table ~name:"f13"
    ~headers:[ "workload"; "layout"; "cpu mJ"; "radio mJ"; "total mJ"; "lifetime (days)" ]
    rows

(* ------------------------------------------------------------------ *)
(* F14: robustness to probe-record loss (bounded buffers, lossy         *)
(* uplinks) with the resynchronizing collector.                         *)
(* ------------------------------------------------------------------ *)

let f14 () =
  section "F14. Estimation MAE vs probe-record loss rate (lossy collector, filter)";
  let w = Workloads.filter in
  let compiled = Codetomo.Session.compiled (sess ()) w in
  let inst =
    Mote_isa.Asm.assemble (Profilekit.Probes.instrument compiled.Mote_lang.Compile.items)
  in
  (* Each loss rate simulates on its own machine with its own seed-11
     device RNG, so the sweep fans out without reordering draws. *)
  let rows =
    pmap
      (fun loss ->
        let devices =
          Mote_machine.Devices.create ~probe_loss:loss
            ~rng:(Stats.Rng.create 11) ()
        in
        let machine = Mote_machine.Machine.create ~program:inst ~devices () in
        let env = Env.create w.Workloads.env_config in
        let node_ = Node.create ~machine ~env ~tasks:w.Workloads.tasks () in
        let oracle = Profilekit.Oracle.attach machine in
        ignore (Node.run node_ ~until:w.Workloads.horizon);
        let r =
          Profilekit.Probes.collect_lossy ~max_window:200 ~program:inst ~devices ()
        in
        let samples =
          Profilekit.Probes.samples_for r.Profilekit.Probes.samples "filter_task"
        in
        let truth = Profilekit.Oracle.theta_vector oracle ~proc:"filter_task" in
        let model = Tomo.Model.of_cfg (Cfg.of_proc_name inst "filter_task") in
        let paths = Tomo.Paths.enumerate model in
        let est = Tomo.Em.estimate paths ~samples in
        [
          pct loss;
          string_of_int (Mote_machine.Devices.probes_dropped devices);
          string_of_int (Array.length samples);
          string_of_int r.Profilekit.Probes.discarded;
          f ~decimals:4 (Stats.Metrics.mae est.Tomo.Em.theta truth);
        ])
      [ 0.0; 0.05; 0.1; 0.2; 0.3 ]
  in
  emit_table ~name:"f14"
    ~headers:[ "loss rate"; "records lost"; "windows kept"; "discarded"; "MAE" ]
    rows

(* ------------------------------------------------------------------ *)
(* R13: graceful degradation under transport faults.  F14 stresses the  *)
(* lossy collector alone; R13 stresses the whole pipeline — field-link  *)
(* faults on the probe stream, with and without the sanitation stack    *)
(* (envelope+MAD sanitizer, robust EM, sample floor) — and reads out    *)
(* both estimation error and the placement win that survives.           *)
(* ------------------------------------------------------------------ *)

(* CI's fault-smoke job runs a reduced 2x2x2 grid (CODETOMO_R13_REDUCED=1)
   against a committed timings baseline; the full grid is the default. *)
let r13_reduced = Sys.getenv_opt "CODETOMO_R13_REDUCED" <> None
let r13_losses = if r13_reduced then [ 0.0; 0.1 ] else [ 0.0; 0.05; 0.1; 0.2 ]
let r13_corrupts = if r13_reduced then [ 0.0; 0.01 ] else [ 0.0; 0.01; 0.05 ]

let r13 () =
  section
    "R13. Graceful degradation under probe-transport faults (filter)\n\
     (loss x corruption x sanitation; sanitized arm = envelope+MAD sanitizer,\n\
     robust EM with outlier mixture, sample floor with Rejected fallback)";
  let w = Workloads.filter in
  let grid =
    List.concat_map
      (fun loss ->
        List.concat_map
          (fun corrupt ->
            List.map (fun arm -> (loss, corrupt, arm)) [ false; true ])
          r13_corrupts)
      r13_losses
  in
  let rows =
    pmap
      (fun (loss, corrupt, sanitized) ->
        (* The zero-fault row keeps [faults = None]: it is the exact
           default pipeline (strict collector), so its numbers coincide
           with t4/f5 and anchor the degradation curves. *)
        let faults =
          if loss = 0.0 && corrupt = 0.0 then None
          else Some (Profilekit.Transport.field ~drop:loss ~corrupt ())
        in
        let config = { P.default_config with P.faults } in
        let sanitize = if sanitized then Some Tomo.Sanitize.default else None in
        let outlier = if sanitized then Some Tomo.Em.default_outlier else None in
        let min_samples =
          if sanitized then Some Tomo.Health.default_min_samples else None
        in
        let run = profile ~config w in
        let windows =
          List.fold_left (fun acc (_, s) -> acc + Array.length s) 0 run.P.samples
        in
        let ests =
          Codetomo.Session.estimate (sess ()) ?sanitize ?outlier ?min_samples
            ~config w
        in
        let rejected =
          List.length (List.filter (fun e -> Tomo.Health.is_rejected e.P.health) ests)
        in
        let variants =
          Codetomo.Session.compare_layouts (sess ()) ?sanitize ?outlier
            ?min_samples ~config w
        in
        let find label_prefix =
          List.find
            (fun v ->
              String.length v.P.label >= String.length label_prefix
              && String.sub v.P.label 0 (String.length label_prefix) = label_prefix)
            variants
        in
        let natural = find "natural" and tomo = find "tomography" in
        let reduction =
          float_of_int (natural.P.taken_transfers - tomo.P.taken_transfers)
          /. float_of_int (max 1 natural.P.taken_transfers)
        in
        [
          pct loss;
          pct corrupt;
          (if sanitized then "on" else "off");
          string_of_int windows;
          string_of_int run.P.discarded;
          string_of_int rejected;
          f ~decimals:4 (mean (List.map (fun e -> e.P.mae) ests));
          pct reduction;
        ])
      grid
  in
  emit_table ~name:"r13"
    ~headers:
      [
        "loss";
        "corrupt";
        "sanitize";
        "windows";
        "discarded";
        "rejected";
        "mean MAE";
        "taken reduction";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* A15: cost watermarking vs the identifiability limit.                 *)
(* ------------------------------------------------------------------ *)

let a15 () =
  section
    "A15. Cost watermarking: restoring identifiability for equal-cost arms\n\
     (profiling-build-only delay stubs on ambiguous taken edges)";
  ignore (pmap (fun w -> ignore (profile w)) Workloads.all);
  let rows =
    List.concat (pmap
      (fun w ->
        let run = profile w in
        let sites = P.ambiguous_sites run in
        let plain = Codetomo.Session.estimate (sess ()) w in
        let wm, _ = Codetomo.Session.estimate_watermarked (sess ()) w in
        List.map2
          (fun a b ->
            let n_sites =
              List.length (List.filter (fun (proc, _) -> proc = a.P.proc) sites)
            in
            [
              w.Workloads.name;
              a.P.proc;
              string_of_int n_sites;
              f ~decimals:4 a.P.mae;
              f ~decimals:4 b.P.mae;
            ])
          plain wm)
      Workloads.all)
  in
  emit_table ~name:"a15"
    ~headers:
      [ "workload"; "procedure"; "ambiguous branches"; "MAE plain"; "MAE watermarked" ]
    rows

(* ------------------------------------------------------------------ *)
(* F15: fleet scaling sweep.                                           *)
(* ------------------------------------------------------------------ *)

(* CI's fleet-smoke job runs a reduced grid (CODETOMO_F15_REDUCED=1)
   against a committed timings baseline; the full grid is the default.
   Grid points run serially — each Fleet.Service.run already fans its
   node work out over the session pool. *)
let f15_reduced = Sys.getenv_opt "CODETOMO_F15_REDUCED" <> None
let f15_nodes = if f15_reduced then [ 2; 4 ] else [ 2; 4; 8 ]
let f15_rounds = if f15_reduced then [ 4 ] else [ 4; 10 ]
let f15_losses = if f15_reduced then [ 0.0; 0.1 ] else [ 0.0; 0.05; 0.1 ]

let f15 () =
  section
    "F15. Fleet scaling: nodes x rounds x loss (filter)\n\
     (N simulated nodes stream Wire batches over faulty uplinks; the base\n\
     station fuses health-gated per-node online estimates and places from\n\
     the fleet profile.  MAE columns: fused theta vs the pooled oracle at\n\
     mid-campaign and at the end — the convergence curve.)";
  let w = Workloads.filter in
  let rows =
    List.concat_map
      (fun nodes ->
        List.concat_map
          (fun rounds ->
            List.map
              (fun loss ->
                let faults =
                  if loss = 0.0 then Profilekit.Transport.default
                  else Profilekit.Transport.field ~drop:loss ()
                in
                let config =
                  {
                    (Fleet.Service.default_config w) with
                    Fleet.Service.nodes;
                    rounds;
                    faults;
                  }
                in
                let report = Fleet.Service.run ~session:(sess ()) config in
                let round r =
                  List.nth report.Fleet.Service.round_reports (r - 1)
                in
                let mid = round (max 1 (rounds / 2)) and last = round rounds in
                let final = report.Fleet.Service.final in
                [
                  string_of_int nodes;
                  string_of_int rounds;
                  pct loss;
                  string_of_int last.Fleet.Service.delivered;
                  string_of_int last.Fleet.Service.fed;
                  Printf.sprintf "%d/%d" last.Fleet.Service.admitted
                    last.Fleet.Service.rejected;
                  f ~decimals:4 mid.Fleet.Service.fused_mae;
                  f ~decimals:4 last.Fleet.Service.fused_mae;
                  pct final.Fleet.Service.reduction;
                ])
              f15_losses)
          f15_rounds)
      f15_nodes
  in
  emit_table ~name:"f15"
    ~headers:
      [
        "nodes";
        "rounds";
        "loss";
        "delivered";
        "fed";
        "admit/rej";
        "MAE mid";
        "MAE final";
        "taken reduction";
      ]
    rows

let all () =
  t1 ();
  f2 ();
  f3 ();
  t4 ();
  f5 ();
  t6 ();
  f7 ();
  a8 ();
  a9 ();
  a11 ();
  s12 ();
  f13 ();
  f14 ();
  r13 ();
  a15 ();
  f15 ()
